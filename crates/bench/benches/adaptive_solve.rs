//! Adaptive runtime precision benchmark: fixed Scaled(Fp32) streaming vs an
//! adaptive session that starts from Scaled(Fp16) and escalates only when the
//! stall detector fires.
//!
//! Two regimes:
//!
//! * `hpcg_16^3` (well-conditioned, diagonally scaled) — the adaptive session
//!   must never escalate, so it keeps the fp16 matrix stream and moves fewer
//!   matrix bytes than the fixed fp32 configuration (the PR's acceptance
//!   criterion, recorded in `BENCH_pr8.json`),
//! * `wide_laplacian_1e16` (DAD Laplacian with ~1e16 entry dynamic range) —
//!   fixed Scaled(Fp16) stalls outright; the adaptive session escalates
//!   mid-solve and converges hands-off, which the fixed fp32 row prices.
//!
//! Cycles-to-converge, matrix-stream bytes and escalation counts are printed
//! per row (captured into the baseline JSON alongside the timings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_core::prelude::*;
use f3r_precision::Precision;
use f3r_precond::PrecondKind;
use f3r_sparse::gen::{hpcg_matrix, poisson2d_5pt, random_rhs};
use f3r_sparse::scaling::jacobi_scale;
use f3r_sparse::CsrMatrix;
use std::hint::black_box;
use std::sync::Arc;

/// Fixed at HPCG 16³ / 24×24 DAD Laplacian so recorded baselines stay
/// comparable across machines.
const GRID: usize = 16;
const WIDE_NX: usize = 24;

fn wide_system(nx: usize, expo: f64) -> CsrMatrix<f64> {
    let a = jacobi_scale(&poisson2d_5pt(nx, nx));
    let n = a.n_rows();
    let d: Vec<f64> = (0..n)
        .map(|i| 10f64.powf(-expo + 2.0 * expo * i as f64 / (n - 1) as f64))
        .collect();
    a.scale_rows_cols(&d, &d)
}

fn builder(matrix: &Arc<ProblemMatrix>, storage: MatrixStorage) -> SolverBuilder {
    SolverBuilder::new(Arc::clone(matrix))
        .levels(vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres_stored(10, storage, Precision::Fp64),
        ])
        .precond(PrecondKind::Jacobi)
        .max_outer_cycles(10)
}

fn bench_adaptive_solve(c: &mut Criterion) {
    f3r_bench::emit_parallel_meta();
    let problems = [
        (
            format!("hpcg_{GRID}^3"),
            jacobi_scale(&hpcg_matrix(GRID, GRID, GRID)),
        ),
        (
            format!("wide_laplacian_1e16_{WIDE_NX}x{WIDE_NX}"),
            wide_system(WIDE_NX, 4.0),
        ),
    ];

    let mut group = c.benchmark_group("adaptive_solve");
    group.sample_size(10);

    for (problem, a) in problems {
        let matrix = Arc::new(ProblemMatrix::from_csr(a));
        let n = matrix.dim();
        let b = random_rhs(n, 5);

        let fixed32 = builder(&matrix, MatrixStorage::Scaled(Precision::Fp32)).build();
        let adaptive = builder(&matrix, MatrixStorage::Scaled(Precision::Fp16))
            .adaptive_default()
            .build();

        for (variant, prepared) in [("fixed_fp32", &fixed32), ("adaptive_fp16", &adaptive)] {
            // One measured solve on a fresh session for the counter-based
            // metrics the baseline JSON records.
            let mut x = vec![0.0; n];
            let r = prepared.session().solve(&b, &mut x);
            assert!(r.converged, "{variant}/{problem}: {r}");
            eprintln!(
                "adaptive_solve/{variant}/{problem}: cycles={} outer_it={} matrix_bytes={} \
                 escalations={} deescalations={} switch_bytes={}",
                r.residual_history.len(),
                r.outer_iterations,
                r.counters.matrix_bytes_total(),
                r.counters.total_escalations(),
                r.counters.total_deescalations(),
                r.counters.switch_bytes,
            );

            group.bench_function(BenchmarkId::new(variant, &problem), |bch| {
                bch.iter(|| {
                    // Fresh session per solve: adaptive runs re-walk their
                    // escalations, so both variants time the full cold path.
                    let mut x = vec![0.0; n];
                    let r = prepared.session().solve(&b, &mut x);
                    assert!(r.converged);
                    black_box(r.outer_iterations)
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_adaptive_solve);
criterion_main!(benches);
