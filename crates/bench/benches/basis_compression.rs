//! Orthogonalisation-sweep benchmark for compressed Krylov-basis storage.
//!
//! Times one classical Gram–Schmidt orthogonalisation against an `m = 30`
//! vector basis — the dominant BLAS-1 stream of an FGMRES cycle (the
//! `(5/2)m²` term of the paper's Section 4.1 model) — with the basis stored
//! in fp64, fp32 and fp16 (`CompressedBasis<S>`), for n = 2^14 … 2^18.  The
//! working precision is fp64 throughout, so the rows isolate the effect of
//! the *storage* width: the projection dots (`dot2_compressed`) and the
//! update axpys (`axpy_scaled_from`) stream the basis at the storage
//! precision's bandwidth.  A `compress` row times the compress-on-write
//! (`narrow_scaled_into` via `CompressedBasis::compress_scaled`), which each
//! iteration pays once per new basis vector.
//!
//! Methodology and recorded baselines: see `crates/bench/README.md` and
//! `BENCH_pr3.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_core::basis::CompressedBasis;
use f3r_precision::Scalar;
use f3r_sparse::blas1;
use half::f16;
use std::hint::black_box;

/// Basis length of the sweep (the paper's mid-level restart scale).
const M: usize = 30;

fn sizes() -> Vec<usize> {
    // n = 2^14 .. 2^18; override the upper bound via F3R_BENCH_MAX_LOG2N to
    // shorten smoke runs.
    let max_log2 = std::env::var("F3R_BENCH_MAX_LOG2N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(18usize);
    (14..=max_log2.clamp(14, 22)).map(|p| 1usize << p).collect()
}

/// Deterministic pseudo-random working-precision vector.
fn filled(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (((i * 2654435761) ^ (seed * 40503)) % 8191) as f64 / 8191.0 - 0.5)
        .collect()
}

/// Build an `M`-vector compressed basis in storage precision `S`.
fn build_basis<S: Scalar>(n: usize) -> CompressedBasis<S> {
    let mut basis = CompressedBasis::<S>::new(n, M);
    for j in 0..M {
        basis.compress_scaled(j, 1.0, &filled(n, j + 1));
    }
    basis
}

/// One classical Gram–Schmidt orthogonalisation of `w` against the whole
/// basis: M projection dots (fused in pairs) followed by M axpy updates,
/// exactly the sweep FGMRES issues at iteration j = M-1.
fn orth_sweep<S: Scalar>(basis: &CompressedBasis<S>, w: &mut [f64], h: &mut [f64; M]) {
    let mut i = 0;
    while i + 1 < M {
        let (vi, si) = basis.vector(i);
        let (vi1, si1) = basis.vector(i + 1);
        let (a, b) = blas1::dot2_compressed(w, vi, si, vi1, si1);
        h[i] = a;
        h[i + 1] = b;
        i += 2;
    }
    if i < M {
        let (vi, si) = basis.vector(i);
        h[i] = blas1::dot_compressed(w, vi, si);
    }
    for (i, hi) in h.iter().enumerate() {
        let (vi, si) = basis.vector(i);
        blas1::axpy_scaled_from(-hi * 1e-3, vi, si, w);
    }
}

fn bench_storage<S: Scalar>(c: &mut Criterion, label: &str) {
    let mut group = c.benchmark_group("basis_compression");
    group.sample_size(10);
    for n in sizes() {
        let basis = build_basis::<S>(n);
        let mut w = filled(n, 777);
        let mut h = [0.0f64; M];
        group.bench_function(BenchmarkId::new(format!("orth_m30/{label}"), n), |b| {
            b.iter(|| {
                orth_sweep(black_box(&basis), black_box(&mut w), &mut h);
                black_box(h[M - 1])
            })
        });
        let src = filled(n, 3);
        let mut target = CompressedBasis::<S>::new(n, 1);
        group.bench_function(BenchmarkId::new(format!("compress/{label}"), n), |b| {
            b.iter(|| {
                target.compress_scaled(0, 1.0, black_box(&src));
                black_box(target.vector(0).1)
            })
        });
    }
    group.finish();
}

fn meta(_c: &mut Criterion) {
    f3r_bench::emit_parallel_meta();
}

fn bench_all(c: &mut Criterion) {
    bench_storage::<f64>(c, "fp64");
    bench_storage::<f32>(c, "fp32");
    bench_storage::<f16>(c, "fp16");
}

criterion_group!(benches, meta, bench_all);
criterion_main!(benches);
