//! Section 4.1 benchmark: evaluating the Eq. 1-3 memory-access model and the
//! two-level split optimisation (also prints the worked-example answer).

use criterion::{criterion_group, criterion_main, Criterion};
use f3r_core::cost_model::{best_split, eq123, RowCosts};
use std::hint::black_box;

fn bench_cost_model(c: &mut Criterion) {
    let costs = RowCosts::paper_example();
    let best = best_split(costs, 64);
    eprintln!(
        "cost model worked example: best two-level split of F^64 is m_outer = {} ({}/{} words per row)",
        best.m_outer, best.nested_traffic, best.reference_traffic
    );
    let mut group = c.benchmark_group("cost_model_eq123");
    group.sample_size(50);
    group.bench_function("best_two_level_split_m64", |b| {
        b.iter(|| black_box(best_split(black_box(costs), black_box(64))))
    });
    group.bench_function("eq123_f3r_operating_point", |b| {
        b.iter(|| black_box(eq123(black_box(costs), black_box(4), black_box(2))))
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
