//! Figure 1 benchmark: full solves of the CPU-node configuration — the three
//! F3R precision schemes against CG and FGMRES(64) on the HPCG problem, and
//! against BiCGStab on the HPGMP problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_bench::BenchProblem;
use f3r_core::prelude::*;
use f3r_precision::Precision;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_cpu_node");
    group.sample_size(10);
    for problem in [BenchProblem::hpcg(), BenchProblem::hpgmp()] {
        for scheme in [F3rScheme::Fp64, F3rScheme::Fp32, F3rScheme::Fp16] {
            let mut solver = problem.f3r(scheme, false);
            group.bench_function(BenchmarkId::new(&problem.name, solver.name()), |b| {
                b.iter(|| problem.solve_checked(&mut solver))
            });
        }
        for prec in [Precision::Fp64, Precision::Fp16] {
            let mut solver = problem.krylov_baseline(prec);
            group.bench_function(BenchmarkId::new(&problem.name, solver.name()), |b| {
                b.iter(|| problem.solve_checked(solver.as_mut()))
            });
        }
        let mut fgmres = problem.fgmres64(Precision::Fp64);
        group.bench_function(BenchmarkId::new(&problem.name, fgmres.name()), |b| {
            b.iter(|| problem.solve_checked(&mut fgmres))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
