//! Figure 2 benchmark: the GPU-node configuration (SD-AINV preconditioner +
//! sliced-ELLPACK SpMV) for the three F3R precision schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_bench::BenchProblem;
use f3r_core::prelude::*;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_gpu_node");
    group.sample_size(10);
    let problem = BenchProblem::hpcg_sell();
    for scheme in [F3rScheme::Fp64, F3rScheme::Fp32, F3rScheme::Fp16] {
        let mut solver = problem.f3r(scheme, true);
        group.bench_function(BenchmarkId::new(&problem.name, solver.name()), |b| {
            b.iter(|| problem.solve_checked(&mut solver))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
