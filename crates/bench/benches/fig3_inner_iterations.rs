//! Figure 3 benchmark: fp16-F3R solve time as (m2, m3, m4) vary around the
//! default (8, 4, 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_bench::BenchProblem;
use f3r_core::prelude::*;

fn bench_fig3(c: &mut Criterion) {
    let problem = BenchProblem::hpcg();
    let configs = [
        ("default_8-4-2", F3rParams::default()),
        ("m4=1", F3rParams::with_inner(8, 4, 1)),
        ("m4=3", F3rParams::with_inner(8, 4, 3)),
        ("m3=2", F3rParams::with_inner(8, 2, 2)),
        ("m3=6", F3rParams::with_inner(8, 6, 2)),
        ("m2=6", F3rParams::with_inner(6, 4, 2)),
        ("m2=10", F3rParams::with_inner(10, 4, 2)),
    ];
    let mut group = c.benchmark_group("fig3_inner_iterations");
    group.sample_size(10);
    for (label, params) in configs {
        let mut solver = problem.f3r_with(params, F3rScheme::Fp16);
        group.bench_function(BenchmarkId::new(&problem.name, label), |b| {
            b.iter(|| problem.solve_checked(&mut solver))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
