//! Figure 4 / Table 4 benchmark: fp16-F3R against the nesting-depth
//! reference solvers F2, fp16-F2, F3, fp16-F3 and F4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_bench::BenchProblem;
use f3r_core::prelude::*;

fn bench_fig4(c: &mut Criterion) {
    let problem = BenchProblem::hpcg();
    let settings = problem.settings(false);
    let specs = vec![
        f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings),
        f2_spec(&settings),
        fp16_f2_spec(&settings),
        f3_spec(&settings),
        fp16_f3_spec(&settings),
        f4_spec(&settings),
    ];
    let mut group = c.benchmark_group("fig4_nesting_depth");
    group.sample_size(10);
    for spec in specs {
        let name = spec.name.clone();
        let mut solver = problem.prepare(spec).session();
        group.bench_function(BenchmarkId::new(&problem.name, name), |b| {
            b.iter(|| problem.solve_checked(&mut solver))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
