//! Figure 5 benchmark: fp16-F3R solve time as the adaptive weight-update
//! cycle c varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_bench::BenchProblem;
use f3r_core::prelude::*;

fn bench_fig5(c: &mut Criterion) {
    let problem = BenchProblem::hpcg();
    let mut group = c.benchmark_group("fig5_weight_cycle");
    group.sample_size(10);
    for cycle in [1usize, 16, 64, 256] {
        let params = F3rParams {
            weight_cycle: cycle,
            ..F3rParams::default()
        };
        let mut solver = problem.f3r_with(params, F3rScheme::Fp16);
        group.bench_function(BenchmarkId::new(&problem.name, format!("c={cycle}")), |b| {
            b.iter(|| problem.solve_checked(&mut solver))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
