//! Figure 6 benchmark: adaptive weight updating against fixed weights.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_bench::BenchProblem;
use f3r_core::prelude::*;

fn bench_fig6(c: &mut Criterion) {
    let problem = BenchProblem::hpcg();
    let settings = problem.settings(false);
    let mut group = c.benchmark_group("fig6_adaptive_weight");
    group.sample_size(10);

    let mut adaptive = problem
        .prepare(f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings))
        .session();
    group.bench_function(BenchmarkId::new(&problem.name, "adaptive c=64"), |b| {
        b.iter(|| problem.solve_checked(&mut adaptive))
    });
    for omega in [0.8, 1.0, 1.2] {
        let mut fixed = problem
            .prepare(f3r_spec_fixed_weight(
                F3rParams::default(),
                F3rScheme::Fp16,
                &settings,
                omega,
            ))
            .session();
        group.bench_function(BenchmarkId::new(&problem.name, format!("fixed w={omega}")), |b| {
            b.iter(|| problem.solve_checked(&mut fixed))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
