//! Micro-benchmarks of the BLAS-1 kernels in the three working precisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_precision::Scalar;
use f3r_sparse::blas1;
use half::f16;
use std::hint::black_box;

fn vectors<T: Scalar>(n: usize) -> (Vec<T>, Vec<T>) {
    let x: Vec<T> = (0..n).map(|i| T::from_f64(((i % 17) as f64 - 8.0) / 17.0)).collect();
    let y: Vec<T> = (0..n).map(|i| T::from_f64(((i % 13) as f64 - 6.0) / 13.0)).collect();
    (x, y)
}

fn bench_blas1(c: &mut Criterion) {
    let n = 1 << 16;
    let mut group = c.benchmark_group("blas1");
    group.sample_size(20);

    let (x64, y64) = vectors::<f64>(n);
    let (x32, y32) = vectors::<f32>(n);
    let (x16, y16) = vectors::<f16>(n);

    group.bench_function(BenchmarkId::new("dot", "fp64"), |b| {
        b.iter(|| black_box(blas1::dot(black_box(&x64), black_box(&y64))))
    });
    group.bench_function(BenchmarkId::new("dot", "fp32"), |b| {
        b.iter(|| black_box(blas1::dot(black_box(&x32), black_box(&y32))))
    });
    group.bench_function(BenchmarkId::new("dot", "fp16"), |b| {
        b.iter(|| black_box(blas1::dot(black_box(&x16), black_box(&y16))))
    });

    let mut z64 = y64.clone();
    group.bench_function(BenchmarkId::new("axpy", "fp64"), |b| {
        b.iter(|| blas1::axpy(black_box(0.5), black_box(&x64), black_box(&mut z64)))
    });
    let mut z32 = y32.clone();
    group.bench_function(BenchmarkId::new("axpy", "fp32"), |b| {
        b.iter(|| blas1::axpy(black_box(0.5), black_box(&x32), black_box(&mut z32)))
    });
    let mut z16 = y16.clone();
    group.bench_function(BenchmarkId::new("axpy", "fp16"), |b| {
        b.iter(|| blas1::axpy(black_box(0.5), black_box(&x16), black_box(&mut z16)))
    });
    group.finish();
}

criterion_group!(benches, bench_blas1);
criterion_main!(benches);
