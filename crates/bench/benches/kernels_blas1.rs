//! Micro-benchmarks of the BLAS-1 kernels in the three working precisions.
//!
//! Every kernel is timed twice: the production direct-widening kernel
//! (`blas1::*`) and the pre-widening naive kernel preserved in
//! `f3r_sparse::reference` (per-element `f64` round trip + scalar
//! `mul_add`).  The `naive_*` rows are the "before" numbers the
//! direct-widening layer is measured against; see `crates/bench/README.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_precision::Scalar;
use f3r_sparse::{blas1, reference};
use half::f16;
use std::hint::black_box;

fn vectors<T: Scalar>(n: usize) -> (Vec<T>, Vec<T>) {
    let x: Vec<T> = (0..n).map(|i| T::from_f64(((i % 17) as f64 - 8.0) / 17.0)).collect();
    let y: Vec<T> = (0..n).map(|i| T::from_f64(((i % 13) as f64 - 6.0) / 13.0)).collect();
    (x, y)
}

fn meta(_c: &mut Criterion) {
    f3r_bench::emit_parallel_meta();
}

fn bench_blas1(c: &mut Criterion) {
    let n = 1 << 16;
    let mut group = c.benchmark_group("blas1");
    group.sample_size(20);

    let (x64, y64) = vectors::<f64>(n);
    let (x32, y32) = vectors::<f32>(n);
    let (x16, y16) = vectors::<f16>(n);

    group.bench_function(BenchmarkId::new("dot", "fp64"), |b| {
        b.iter(|| black_box(blas1::dot(black_box(&x64), black_box(&y64))))
    });
    group.bench_function(BenchmarkId::new("dot", "fp32"), |b| {
        b.iter(|| black_box(blas1::dot(black_box(&x32), black_box(&y32))))
    });
    group.bench_function(BenchmarkId::new("dot", "fp16"), |b| {
        b.iter(|| black_box(blas1::dot(black_box(&x16), black_box(&y16))))
    });
    group.bench_function(BenchmarkId::new("naive_dot", "fp64"), |b| {
        b.iter(|| black_box(reference::dot_naive(black_box(&x64), black_box(&y64))))
    });
    group.bench_function(BenchmarkId::new("naive_dot", "fp32"), |b| {
        b.iter(|| black_box(reference::dot_naive(black_box(&x32), black_box(&y32))))
    });
    group.bench_function(BenchmarkId::new("naive_dot", "fp16"), |b| {
        b.iter(|| black_box(reference::dot_naive(black_box(&x16), black_box(&y16))))
    });

    let mut z64 = y64.clone();
    group.bench_function(BenchmarkId::new("axpy", "fp64"), |b| {
        b.iter(|| blas1::axpy(black_box(0.5), black_box(&x64), black_box(&mut z64)))
    });
    let mut z32 = y32.clone();
    group.bench_function(BenchmarkId::new("axpy", "fp32"), |b| {
        b.iter(|| blas1::axpy(black_box(0.5), black_box(&x32), black_box(&mut z32)))
    });
    let mut z16 = y16.clone();
    group.bench_function(BenchmarkId::new("axpy", "fp16"), |b| {
        b.iter(|| blas1::axpy(black_box(0.5), black_box(&x16), black_box(&mut z16)))
    });
    let mut z64n = y64.clone();
    group.bench_function(BenchmarkId::new("naive_axpy", "fp64"), |b| {
        b.iter(|| reference::axpy_naive(black_box(0.5), black_box(&x64), black_box(&mut z64n)))
    });
    let mut z32n = y32.clone();
    group.bench_function(BenchmarkId::new("naive_axpy", "fp32"), |b| {
        b.iter(|| reference::axpy_naive(black_box(0.5), black_box(&x32), black_box(&mut z32n)))
    });
    let mut z16n = y16.clone();
    group.bench_function(BenchmarkId::new("naive_axpy", "fp16"), |b| {
        b.iter(|| reference::axpy_naive(black_box(0.5), black_box(&x16), black_box(&mut z16n)))
    });

    // Fused kernels: one pass where the solvers previously issued two.
    group.bench_function(BenchmarkId::new("dot2", "fp32"), |b| {
        b.iter(|| {
            black_box(blas1::dot2(
                black_box(&x32),
                black_box(&y32),
                black_box(&y32),
                black_box(&x32),
            ))
        })
    });
    group.bench_function(BenchmarkId::new("dot_with_sqnorm", "fp32"), |b| {
        b.iter(|| black_box(blas1::dot_with_sqnorm(black_box(&x32), black_box(&y32))))
    });
    let mut z32f = y32.clone();
    group.bench_function(BenchmarkId::new("axpy_norm2", "fp32"), |b| {
        b.iter(|| {
            black_box(blas1::axpy_norm2(black_box(0.5), black_box(&x32), black_box(&mut z32f)))
        })
    });
    group.finish();
}

criterion_group!(benches, meta, bench_blas1);
criterion_main!(benches);
