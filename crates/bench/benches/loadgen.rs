//! Serving-layer load generator: warm registry vs cold per-request setup.
//!
//! Closed-loop clients hammer a Zipf-ish mix of four problems (weighted
//! 8/4/2/1) through two serving strategies at identical concurrency:
//!
//! * `cold` — the no-registry baseline: every request builds its own
//!   `PreparedSolver` (precision copies + factorisation), opens a fresh
//!   `SolveSession` and solves.  This is what a naive server pays per
//!   request.
//! * `warm` — the `f3r-serve` path: a fingerprint-keyed `SolverRegistry`
//!   prepares each solver once, warm `SessionPool`s recycle workspaces, and
//!   the admission-controlled `ServeHandle` runs the solves.  The registry
//!   is pre-warmed, so the row measures cache steady state.
//!
//! Each mode runs for `F3R_LOADGEN_SECONDS` (default 5; CI smoke uses the
//! default).  Rows report requests/s, the registry hit rate, and the
//! per-precision modeled byte traffic, and are appended to `F3R_BENCH_JSON`
//! like every other bench in this crate.  The PR 10 headline artifact
//! (`BENCH_pr10.json`) is this bench's output: acceptance is
//! `warm.req_per_s >= 1.25 x cold.req_per_s`.
//!
//! This is a custom `harness = false` main (throughput of a multi-threaded
//! closed loop, not a criterion sample loop).

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use f3r_core::prelude::*;
use f3r_precision::counters::CounterSnapshot;
use f3r_serve::{RequestOptions, ServeConfig, ServeHandle, SolverRegistry};
use f3r_sparse::gen::{hpcg_matrix, random_rhs};
use f3r_sparse::scaling::jacobi_scale;

const CLIENTS: usize = 4;
/// Zipf-ish request mix over the four problems (8/4/2/1 out of 15).
const MIX: [usize; 15] = [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 3];

/// Each problem as both its raw CSR form (what a request would arrive with —
/// the cold mode rebuilds the multi-precision handle from it every time) and
/// the shared handle the warm mode registers once.
fn problems() -> Vec<(f3r_sparse::CsrMatrix<f64>, Arc<ProblemMatrix>)> {
    [
        jacobi_scale(&hpcg_matrix(12, 12, 12)),
        jacobi_scale(&hpcg_matrix(10, 10, 10)),
        jacobi_scale(&hpcg_matrix(8, 8, 8)),
        jacobi_scale(&hpcg_matrix(14, 14, 14)),
    ]
    .into_iter()
    .map(|a| {
        let handle = Arc::new(ProblemMatrix::from_csr(a.clone()));
        (a, handle)
    })
    .collect()
}

/// fp16-F3R with block-Jacobi IC(0) — the PR 4 `solver_reuse` configuration.
/// Its innermost adaptive Richardson sweep is exactly what warm sessions
/// amortize: the weights stay tuned to the preconditioned operator across
/// pooled solves (a warmed solve saves a whole outer iteration on these
/// problems), while every cold request re-learns them from scratch.
fn spec() -> NestedSpec {
    f3r_spec(
        F3rParams::default(),
        F3rScheme::Fp16,
        &SolverSettings {
            precond: f3r_precond::PrecondKind::BlockJacobiIc0 { blocks: 8, alpha: 1.0 },
            ..SolverSettings::default()
        },
    )
}

struct ModeResult {
    requests: u64,
    elapsed: f64,
    hit_rate: Option<f64>,
    kernels: CounterSnapshot,
}

impl ModeResult {
    fn req_per_s(&self) -> f64 {
        self.requests as f64 / self.elapsed
    }
}

/// Cold baseline: per-request `ProblemMatrix::from_csr` +
/// `SolverBuilder::build()` + fresh session (nothing survives the request).
fn run_cold(
    matrices: &[(f3r_sparse::CsrMatrix<f64>, Arc<ProblemMatrix>)],
    duration: Duration,
) -> ModeResult {
    let s = spec();
    let completed = AtomicU64::new(0);
    let kernels = std::sync::Mutex::new(CounterSnapshot::default());
    let deadline = Instant::now() + duration;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let s = &s;
            let completed = &completed;
            let kernels = &kernels;
            scope.spawn(move || {
                let mut seed = 10_000 * (client as u64 + 1);
                while Instant::now() < deadline {
                    let (csr, _) = &matrices[MIX[(seed as usize) % MIX.len()]];
                    let matrix = Arc::new(ProblemMatrix::from_csr(csr.clone()));
                    let n = matrix.dim();
                    let prepared = SolverBuilder::new(matrix).spec(s.clone()).build();
                    let mut x = vec![0.0; n];
                    let r = prepared.session().solve(&random_rhs(n, seed), &mut x);
                    assert!(r.converged, "cold: {r}");
                    seed += 1;
                    kernels.lock().unwrap().accumulate(&r.counters);
                    // ordering: statistics counter, no synchronization implied.
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    ModeResult {
        requests: completed.load(Ordering::Relaxed),
        elapsed: started.elapsed().as_secs_f64(),
        hit_rate: None,
        kernels: kernels.into_inner().unwrap(),
    }
}

/// Warm path: pre-warmed registry + serve front-end, cache steady state.
fn run_warm(
    matrices: &[(f3r_sparse::CsrMatrix<f64>, Arc<ProblemMatrix>)],
    duration: Duration,
) -> ModeResult {
    let s = spec();
    let registry = SolverRegistry::with_defaults();
    let serve = ServeHandle::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: CLIENTS,
            queue_capacity: 2 * CLIENTS,
            backpressure: f3r_serve::Backpressure::Block,
        },
    );
    // Pre-warm: build every solver and push two concurrent rounds of
    // `CLIENTS` requests through each pool, so `CLIENTS` sessions per solver
    // get parked warm (workspaces allocated, Richardson weights settling)
    // before the measured window — the cold misses are the other mode's job
    // to price.
    for (_, matrix) in matrices {
        let solver = registry.get_or_prepare(matrix, &s).expect("valid spec");
        for round in 0..2 {
            let tickets: Vec<_> = (0..CLIENTS as u64)
                .map(|i| {
                    let b = random_rhs(matrix.dim(), 1 + round * CLIENTS as u64 + i);
                    serve
                        .submit(&solver, b, RequestOptions::default())
                        .expect("warmup submit")
                })
                .collect();
            for t in tickets {
                assert!(t.wait().results[0].converged);
            }
        }
    }
    let warmup = serve.metrics();

    let completed = AtomicU64::new(0);
    let deadline = Instant::now() + duration;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let s = &s;
            let registry = &registry;
            let serve = &serve;
            let completed = &completed;
            scope.spawn(move || {
                let mut seed = 20_000 * (client as u64 + 1);
                while Instant::now() < deadline {
                    let (_, matrix) = &matrices[MIX[(seed as usize) % MIX.len()]];
                    let solver = registry.get_or_prepare(matrix, s).expect("valid spec");
                    let b = random_rhs(matrix.dim(), seed);
                    seed += 1;
                    let r = serve
                        .submit(&solver, b, RequestOptions::default())
                        .expect("blocking admission never rejects")
                        .wait();
                    assert!(r.results[0].converged, "warm: {}", r.results[0]);
                    // ordering: statistics counter, no synchronization implied.
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = serve.metrics();
    serve.shutdown();

    // Subtract the warmup lookups so the hit rate covers the measured window.
    let hits = metrics.registry.hits - warmup.registry.hits;
    let lookups =
        hits + (metrics.registry.misses - warmup.registry.misses);
    // Kernel counters include the warmup work (one solve per problem) —
    // noise over a multi-second window, so the totals are reported as-is.
    ModeResult {
        requests: completed.load(Ordering::Relaxed),
        elapsed,
        hit_rate: Some(hits as f64 / lookups.max(1) as f64),
        kernels: metrics.kernels,
    }
}

fn emit(bench: &str, r: &ModeResult) {
    let hit = r
        .hit_rate
        .map_or("null".to_string(), |h| format!("{h:.4}"));
    println!(
        "loadgen/{bench}: {:.1} req/s ({} requests in {:.2} s), hit rate {}, bytes [fp16 {}, fp32 {}, fp64 {}]",
        r.req_per_s(),
        r.requests,
        r.elapsed,
        hit,
        r.kernels.bytes_moved[0],
        r.kernels.bytes_moved[1],
        r.kernels.bytes_moved[2],
    );
    if let Ok(path) = std::env::var("F3R_BENCH_JSON") {
        let line = format!(
            "{{\"group\":\"loadgen\",\"bench\":\"{bench}\",\"clients\":{CLIENTS},\"req_per_s\":{:.3},\"requests\":{},\"elapsed_s\":{:.3},\"hit_rate\":{hit},\"bytes_fp16\":{},\"bytes_fp32\":{},\"bytes_fp64\":{}}}",
            r.req_per_s(),
            r.requests,
            r.elapsed,
            r.kernels.bytes_moved[0],
            r.kernels.bytes_moved[1],
            r.kernels.bytes_moved[2],
        );
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = writeln!(f, "{line}");
        }
    }
}

fn main() {
    f3r_bench::emit_parallel_meta();
    let seconds: u64 = std::env::var("F3R_LOADGEN_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let duration = Duration::from_secs(seconds);
    let matrices = problems();

    let cold = run_cold(&matrices, duration);
    emit("cold", &cold);
    let warm = run_warm(&matrices, duration);
    emit("warm", &warm);

    let speedup = warm.req_per_s() / cold.req_per_s();
    println!("loadgen/speedup: warm serves {speedup:.2}x the cold request rate at {CLIENTS} clients");
    if let Ok(path) = std::env::var("F3R_BENCH_JSON") {
        let line = format!(
            "{{\"group\":\"loadgen\",\"bench\":\"warm_over_cold\",\"clients\":{CLIENTS},\"speedup\":{speedup:.3}}}"
        );
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = writeln!(f, "{line}");
        }
    }
}
