//! Matrix-storage sweep: CSR vs SELL × fp64/fp32/fp16 × plain vs row-scaled
//! SpMV, with the modeled byte counters attached as throughput, so the
//! recorded medians carry the bandwidth argument of the scaled matrix store
//! (PR 5) even on machines where softfloat fp16 conversion dominates
//! wall-clock.
//!
//! The scaled kernels stream the same narrowed values plus one `f64` scale
//! per row and fold the scale into the accumulator once per row; on a
//! hardware-fp16 machine they run at the plain kernel's bandwidth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use f3r_bench::BenchProblem;
use f3r_precision::traffic::TrafficModel;
use f3r_precision::{f16, Precision, Scalar};
use f3r_sparse::spmv::{spmv_scaled_seq, spmv_scaled_sell_seq, spmv_seq, spmv_sell_seq};
use f3r_sparse::{CsrMatrix, ScaledCsr, ScaledSell, SellMatrix};
use std::hint::black_box;

fn meta(_c: &mut Criterion) {
    f3r_bench::emit_parallel_meta();
}

fn bench_storage<TA: Scalar>(
    group: &mut criterion::BenchmarkGroup<'_>,
    a64: &CsrMatrix<f64>,
    x: &[f64],
    y: &mut [f64],
) {
    let n = a64.n_rows();
    let nnz = a64.nnz();
    let p = TA::PRECISION;

    let plain: CsrMatrix<TA> = a64.to_precision();
    group.throughput(Throughput::Bytes(TrafficModel::spmv_bytes(
        nnz,
        n,
        p,
        Precision::Fp64,
    )));
    group.bench_function(BenchmarkId::new("csr", format!("{p}")), |b| {
        b.iter(|| spmv_seq(black_box(&plain), black_box(x), black_box(y)))
    });

    let scaled = ScaledCsr::<TA>::from_f64(a64);
    group.throughput(Throughput::Bytes(TrafficModel::spmv_scaled_bytes(
        nnz,
        n,
        p,
        Precision::Fp64,
    )));
    group.bench_function(BenchmarkId::new("csr", format!("scaled-{p}")), |b| {
        b.iter(|| spmv_scaled_seq(black_box(&scaled), black_box(x), black_box(y)))
    });

    let sell = SellMatrix::from_csr(&plain, 32);
    group.throughput(Throughput::Bytes(TrafficModel::spmv_bytes(
        nnz,
        n,
        p,
        Precision::Fp64,
    )));
    group.bench_function(BenchmarkId::new("sell32", format!("{p}")), |b| {
        b.iter(|| spmv_sell_seq(black_box(&sell), black_box(x), black_box(y)))
    });

    let scaled_sell = ScaledSell::<TA>::from_csr_f64(a64, 32);
    group.throughput(Throughput::Bytes(TrafficModel::spmv_scaled_bytes(
        nnz,
        n,
        p,
        Precision::Fp64,
    )));
    group.bench_function(BenchmarkId::new("sell32", format!("scaled-{p}")), |b| {
        b.iter(|| spmv_scaled_sell_seq(black_box(&scaled_sell), black_box(x), black_box(y)))
    });
}

fn bench_matrix_storage(c: &mut Criterion) {
    let p = BenchProblem::hpcg();
    let a64 = &p.matrix_csr;
    let n = a64.n_rows();
    let x: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) / 11.0).collect();
    let mut y = vec![0.0f64; n];

    let mut group = c.benchmark_group("matrix_storage");
    group.sample_size(30);
    bench_storage::<f64>(&mut group, a64, &x, &mut y);
    bench_storage::<f32>(&mut group, a64, &x, &mut y);
    bench_storage::<f16>(&mut group, a64, &x, &mut y);
    group.finish();
}

criterion_group!(benches, meta, bench_matrix_storage);
criterion_main!(benches);
