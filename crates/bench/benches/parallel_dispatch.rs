//! Worker-pool dispatch overhead and the mid-size kernel sweep.
//!
//! Two questions, both introduced by replacing the per-call scoped-thread
//! spawn with the persistent `f3r-parallel` worker pool:
//!
//! 1. **`dispatch` group** — what does one parallel helper call cost when
//!    the body is empty?  `pool/empty` times a full pool round trip
//!    (enqueue, execute, unpark); `scoped_spawn/empty` times what the
//!    previous layer paid, an OS thread spawn + join per call.  The pool
//!    must be at least an order of magnitude cheaper — that gap is what
//!    lets the dispatch thresholds sit at the seed values.
//!
//! 2. **`*_sweep` groups** — across the paper's mid-size range
//!    (n = 2^13…2^18, plus a 2^20 guard against large-size regressions),
//!    how do the size-dispatching kernels (`dot`, `axpy`, CSR `spmv`)
//!    compare against their forced-sequential twins (`dot_seq`,
//!    `axpy_seq`, `spmv_seq`) in fp16 and fp32?  Below the thresholds the
//!    pair must coincide; above, the pool path must win on a multi-core
//!    machine.
//!
//! On a single-core machine the pool is forced to two threads (see
//! `force_pool`) so the dispatch path is exercised rather than silently
//! reduced to the inline fallback; interpret the sweep medians there as an
//! upper bound on pool overhead, not as a speedup (the `meta` JSON record
//! carries both the pool size and the machine parallelism so baselines
//! stay comparable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_precision::Scalar;
use f3r_sparse::spmv::{spmv, spmv_seq};
use f3r_sparse::{blas1, CooMatrix, CsrMatrix};
use half::f16;
use std::hint::black_box;

/// Sizes of the mid-size sweep: 2^13 … 2^18 (the Figure 1/3/4 problem
/// range), plus 2^20 to guard the large-problem path against regressions.
const SWEEP: [usize; 7] = [1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 20];

/// Make sure the pool actually dispatches: on single-core machines (and
/// single-core CI runners) default configuration resolves to one thread and
/// every helper runs inline, which would turn the dispatch benches into
/// no-ops.  Multi-core machines keep their natural size.
fn force_pool() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    if hw < 2 {
        f3r_parallel::set_num_threads(2)
    } else {
        f3r_parallel::current_num_threads()
    }
}

fn meta(_c: &mut Criterion) {
    force_pool();
    f3r_bench::emit_parallel_meta();
}

fn bench_dispatch(c: &mut Criterion) {
    let threads = force_pool();
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(20);

    // One full pool round trip with nothing to compute: enqueue the batch,
    // run the caller's chunk, park until workers drain the rest.
    group.bench_function(BenchmarkId::new("pool", "empty"), |b| {
        b.iter(|| {
            let parts = f3r_parallel::par_map_ranges(black_box(threads), 1, |r| r.len());
            black_box(parts.into_iter().sum::<usize>())
        })
    });

    // What the previous scoped-thread layer paid on every above-threshold
    // call: spawn `threads - 1` OS threads, join them in the scope.
    group.bench_function(BenchmarkId::new("scoped_spawn", "empty"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            std::thread::scope(|s| {
                let handles: Vec<_> =
                    (0..threads - 1).map(|i| s.spawn(move || black_box(i))).collect();
                total += handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>();
            });
            black_box(total)
        })
    });
    group.finish();
}

fn sweep_vectors<T: Scalar>(n: usize) -> (Vec<T>, Vec<T>) {
    let x: Vec<T> = (0..n).map(|i| T::from_f64(((i % 17) as f64 - 8.0) / 17.0)).collect();
    let y: Vec<T> = (0..n).map(|i| T::from_f64(((i % 13) as f64 - 6.0) / 13.0)).collect();
    (x, y)
}

fn bench_dot_sweep<T: Scalar>(c: &mut Criterion, precision: &str) {
    force_pool();
    let mut group = c.benchmark_group("dot_sweep");
    group.sample_size(12);
    for n in SWEEP {
        let (x, y) = sweep_vectors::<T>(n);
        group.bench_function(BenchmarkId::new(format!("pool_{precision}"), n), |b| {
            b.iter(|| black_box(blas1::dot(black_box(&x), black_box(&y))))
        });
        group.bench_function(BenchmarkId::new(format!("seq_{precision}"), n), |b| {
            b.iter(|| black_box(blas1::dot_seq(black_box(&x), black_box(&y))))
        });
    }
    group.finish();
}

fn bench_axpy_sweep<T: Scalar>(c: &mut Criterion, precision: &str) {
    force_pool();
    let mut group = c.benchmark_group("axpy_sweep");
    group.sample_size(12);
    for n in SWEEP {
        let (x, y) = sweep_vectors::<T>(n);
        let mut z = y.clone();
        group.bench_function(BenchmarkId::new(format!("pool_{precision}"), n), |b| {
            b.iter(|| blas1::axpy(black_box(0.5), black_box(&x), black_box(&mut z)))
        });
        let mut zs = y.clone();
        group.bench_function(BenchmarkId::new(format!("seq_{precision}"), n), |b| {
            b.iter(|| blas1::axpy_seq(black_box(0.5), black_box(&x), black_box(&mut zs)))
        });
    }
    group.finish();
}

/// Tridiagonal test matrix (the 1-D Laplacian): ~3 nnz/row at any size, so
/// the sweep isolates row-count scaling from fill-in effects.
fn tridiag(n: usize) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
    }
    coo.to_csr()
}

fn bench_spmv_sweep<TA: Scalar>(c: &mut Criterion, precision: &str) {
    force_pool();
    let mut group = c.benchmark_group("spmv_sweep");
    group.sample_size(12);
    for n in SWEEP {
        let a: CsrMatrix<TA> = tridiag(n).to_precision();
        let x: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) / 17.0).collect();
        let mut y = vec![0.0f32; n];
        group.bench_function(BenchmarkId::new(format!("pool_{precision}"), n), |b| {
            b.iter(|| spmv(black_box(&a), black_box(&x), black_box(&mut y)))
        });
        let mut ys = vec![0.0f32; n];
        group.bench_function(BenchmarkId::new(format!("seq_{precision}"), n), |b| {
            b.iter(|| spmv_seq(black_box(&a), black_box(&x), black_box(&mut ys)))
        });
    }
    group.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    bench_dot_sweep::<f32>(c, "fp32");
    bench_dot_sweep::<f16>(c, "fp16");
    bench_axpy_sweep::<f32>(c, "fp32");
    bench_axpy_sweep::<f16>(c, "fp16");
    bench_spmv_sweep::<f32>(c, "fp32");
    bench_spmv_sweep::<f16>(c, "fp16");
}

criterion_group!(benches, meta, bench_dispatch, bench_sweeps);
criterion_main!(benches);
