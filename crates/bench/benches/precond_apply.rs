//! Preconditioner application benchmark: block-Jacobi ILU(0)/IC(0) and the
//! SD-AINV approximate inverse, per storage precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_bench::BenchProblem;
use f3r_precision::Precision;
use f3r_precond::{build_preconditioner, PrecondKind};
use half::f16;
use std::hint::black_box;

fn bench_precond(c: &mut Criterion) {
    let p = BenchProblem::hpcg();
    let a = &p.matrix_csr;
    let n = a.n_rows();
    let kinds = [
        ("bj-ic0", PrecondKind::BlockJacobiIc0 { blocks: 8, alpha: 1.0 }),
        ("sd-ainv", PrecondKind::SdAinv { alpha: 1.0, order: 2 }),
    ];
    let mut group = c.benchmark_group("precond_apply");
    group.sample_size(30);
    for (label, kind) in kinds {
        for prec in [Precision::Fp64, Precision::Fp32, Precision::Fp16] {
            let id = BenchmarkId::new(label, prec.name());
            match prec {
                Precision::Fp64 => {
                    let m = build_preconditioner::<f64>(a, &kind);
                    let r = vec![1.0f64; n];
                    let mut z = vec![0.0f64; n];
                    group.bench_function(id, |b| b.iter(|| m.apply(black_box(&r), black_box(&mut z))));
                }
                Precision::Fp32 => {
                    let m = build_preconditioner::<f32>(a, &kind);
                    let r = vec![1.0f32; n];
                    let mut z = vec![0.0f32; n];
                    group.bench_function(id, |b| b.iter(|| m.apply(black_box(&r), black_box(&mut z))));
                }
                Precision::Fp16 => {
                    let m = build_preconditioner::<f16>(a, &kind);
                    let r = vec![f16::from_f32(1.0); n];
                    let mut z = vec![f16::from_f32(0.0); n];
                    group.bench_function(id, |b| b.iter(|| m.apply(black_box(&r), black_box(&mut z))));
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_precond);
criterion_main!(benches);
