//! Batched multi-RHS solving benchmark: wall-clock and matrix-stream
//! amortization of `SolveSession::solve_batch` on HPCG 16³.
//!
//! The tentpole claim of the batched path is that the SpMVs of all
//! still-running right-hand sides fuse into ONE pass over the matrix per
//! FGMRES iteration on every level, so the dominant matrix-stream traffic
//! per right-hand side falls like 1/k while each system computes bitwise
//! the same iterates as a sequential solve.  Rows:
//!
//! * `solve_batch/k{1,2,4,8}` — steady-state batched solve of k random
//!   right-hand sides on a warmed session (per-iteration cost; divide by k
//!   for the per-RHS cost),
//! * the per-RHS matrix bytes at each k, counter-measured with the scaled
//!   fp16 inner stream, are recorded in `BENCH_pr7.json` (acceptance:
//!   bytes/RHS at k = 8 at most 25% of k = 1).
//!
//! Recorded baseline: `BENCH_pr7.json` at the repo root (see
//! `crates/bench/README.md` for the how-to).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_core::prelude::*;
use f3r_precision::Precision;
use f3r_sparse::gen::{hpcg_matrix, random_rhs};
use f3r_sparse::scaling::jacobi_scale;
use std::hint::black_box;
use std::sync::Arc;

/// Fixed at HPCG 16³ so recorded baselines stay comparable (the usual
/// `F3R_BENCH_GRID` knob is deliberately not used).
const GRID: usize = 16;

/// FGMRES-only two-level chain over the row-scaled fp16 matrix stream: the
/// configuration whose per-RHS traffic the batching amortizes hardest, and
/// one whose batched columns are bitwise equal to sequential solves.
fn prepared_fp16_stream(matrix: &Arc<ProblemMatrix>) -> Arc<PreparedSolver> {
    SolverBuilder::new(Arc::clone(matrix))
        .levels(vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp16),
        ])
        .matrix_storage(MatrixStorage::Scaled(Precision::Fp16))
        .build()
}

fn bench_solver_batch(c: &mut Criterion) {
    f3r_bench::emit_parallel_meta();
    let a = jacobi_scale(&hpcg_matrix(GRID, GRID, GRID));
    let n = a.n_rows();
    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let prepared = prepared_fp16_stream(&matrix);
    let problem = format!("hpcg_{GRID}^3");

    let mut group = c.benchmark_group("solver_batch");
    group.sample_size(10);

    for k in [1usize, 2, 4, 8] {
        let bs: Vec<Vec<f64>> = (0..k as u64).map(|s| random_rhs(n, 77 + s)).collect();
        let mut xs = vec![Vec::new(); k];
        let mut session = prepared.session();
        // Warm the session so the rows time pure solve work, not workspace
        // allocation, and pin the amortization the row claims.
        let warm = session.solve_batch(&bs, &mut xs);
        assert!(warm.iter().all(|r| r.converged));
        let per_rhs = warm[0].counters.matrix_bytes_total() / k as u64;
        eprintln!("solver_batch/{problem}: k={k} matrix bytes/RHS = {per_rhs}");
        group.bench_function(BenchmarkId::new(format!("solve_batch_k{k}"), &problem), |bch| {
            bch.iter(|| {
                let results = session.solve_batch(&bs, &mut xs);
                assert!(results.iter().all(|r| r.converged));
                black_box(results.len())
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_solver_batch);
criterion_main!(benches);
