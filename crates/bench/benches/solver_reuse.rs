//! Solver-reuse benchmark: the setup-vs-solve split of the prepared-solver
//! session API on HPCG 16³.
//!
//! The serving question behind the session API is amortisation: how much of
//! a "solve" is really per-matrix setup (precision copies of `A`, the
//! block-Jacobi IC(0) factorisation) that a `PreparedSolver` pays once, and
//! how fast is the amortized steady-state solve once a `SolveSession` has
//! its workspaces?  Four rows:
//!
//! * `setup/matrix_copies` — building the fp64/fp32/fp16 copies of `A`
//!   (`ProblemMatrix::from_csr`),
//! * `setup/prepare` — `SolverBuilder::build()`: spec validation plus the
//!   preconditioner factorisation over an existing matrix handle,
//! * `solve/first` — a fresh session's first solve (includes allocating the
//!   level workspaces),
//! * `solve/amortized_10th` — a steady-state solve on a session warmed by
//!   nine earlier solves (workspace generation pinned at 1, so the row times
//!   pure solve work).
//!
//! Recorded baseline: `BENCH_pr4.json` at the repo root (see
//! `crates/bench/README.md` for the how-to).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_core::prelude::*;
use f3r_precond::PrecondKind;
use f3r_sparse::gen::{hpcg_matrix, random_rhs};
use f3r_sparse::scaling::jacobi_scale;
use std::hint::black_box;
use std::sync::Arc;

/// The satellite workload is fixed at HPCG 16³ so recorded baselines stay
/// comparable (the usual `F3R_BENCH_GRID` knob is deliberately not used).
const GRID: usize = 16;

fn builder(matrix: &Arc<ProblemMatrix>) -> SolverBuilder {
    SolverBuilder::new(Arc::clone(matrix))
        .scheme(F3rScheme::Fp16)
        .precond(PrecondKind::BlockJacobiIc0 { blocks: 8, alpha: 1.0 })
}

fn bench_solver_reuse(c: &mut Criterion) {
    f3r_bench::emit_parallel_meta();
    let a = jacobi_scale(&hpcg_matrix(GRID, GRID, GRID));
    let n = a.n_rows();
    let b = random_rhs(n, 42);
    let matrix = Arc::new(ProblemMatrix::from_csr(a.clone()));
    let problem = format!("hpcg_{GRID}^3");

    let mut group = c.benchmark_group("solver_reuse");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("setup_matrix_copies", &problem), |bch| {
        bch.iter(|| black_box(ProblemMatrix::from_csr(a.clone())))
    });

    group.bench_function(BenchmarkId::new("setup_prepare", &problem), |bch| {
        bch.iter(|| black_box(builder(&matrix).build()))
    });

    let prepared = builder(&matrix).build();
    group.bench_function(BenchmarkId::new("solve_first", &problem), |bch| {
        bch.iter(|| {
            let mut session = prepared.session();
            let mut x = vec![0.0; n];
            let r = session.solve(&b, &mut x);
            assert!(r.converged, "{r}");
            r.outer_iterations
        })
    });

    let mut warm = prepared.session();
    let mut x = vec![0.0; n];
    for _ in 0..9 {
        assert!(warm.solve(&b, &mut x).converged);
    }
    assert_eq!(warm.workspace_generation(), 1);
    group.bench_function(BenchmarkId::new("solve_amortized_10th", &problem), |bch| {
        bch.iter(|| {
            let r = warm.solve(&b, &mut x);
            assert!(r.converged, "{r}");
            r.outer_iterations
        })
    });
    assert_eq!(warm.workspace_generation(), 1, "steady state must not reallocate");

    group.finish();
}

criterion_group!(benches, bench_solver_reuse);
criterion_main!(benches);
