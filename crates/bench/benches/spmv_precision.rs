//! SpMV micro-benchmark across matrix storage precisions and backends —
//! the bandwidth effect that Section 4 of the paper builds on.
//!
//! Every storage precision is timed with both the production direct-widening
//! kernel (`spmv_seq`) and the pre-widening naive kernel preserved in
//! `f3r_sparse::reference` (`naive_csr` rows: per-element `f64` round trip +
//! scalar `mul_add`).  The fused SpMV+dot kernel used by the adaptive
//! Richardson weight is timed against the unfused SpMV-then-two-dots
//! sequence it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use f3r_bench::BenchProblem;
use f3r_precision::{f16, Precision};
use f3r_sparse::spmv::{spmv_dot2, spmv_seq, spmv_sell_seq};
use f3r_sparse::{blas1, reference, SellMatrix};
use std::hint::black_box;

fn meta(_c: &mut Criterion) {
    f3r_bench::emit_parallel_meta();
}

fn bench_spmv(c: &mut Criterion) {
    let p = BenchProblem::hpcg();
    let a64 = &p.matrix_csr;
    let a32 = a64.to_precision::<f32>();
    let a16 = a64.to_precision::<f16>();
    let n = a64.n_rows();
    let x64: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) / 11.0).collect();
    let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();

    let mut group = c.benchmark_group("spmv");
    group.sample_size(30);
    group.throughput(Throughput::Bytes(
        f3r_precision::traffic::TrafficModel::spmv_bytes(a64.nnz(), n, Precision::Fp64, Precision::Fp64),
    ));
    let mut y64 = vec![0.0f64; n];
    group.bench_function(BenchmarkId::new("csr", "A fp64 / x fp64"), |b| {
        b.iter(|| spmv_seq(black_box(a64), black_box(&x64), black_box(&mut y64)))
    });
    let mut y32 = vec![0.0f32; n];
    group.bench_function(BenchmarkId::new("csr", "A fp32 / x fp32"), |b| {
        b.iter(|| spmv_seq(black_box(&a32), black_box(&x32), black_box(&mut y32)))
    });
    group.bench_function(BenchmarkId::new("csr", "A fp16 / x fp32"), |b| {
        b.iter(|| spmv_seq(black_box(&a16), black_box(&x32), black_box(&mut y32)))
    });

    // Pre-widening baselines (the seed kernels this layer replaced).
    group.bench_function(BenchmarkId::new("naive_csr", "A fp64 / x fp64"), |b| {
        b.iter(|| reference::spmv_seq_naive(black_box(a64), black_box(&x64), black_box(&mut y64)))
    });
    group.bench_function(BenchmarkId::new("naive_csr", "A fp32 / x fp32"), |b| {
        b.iter(|| reference::spmv_seq_naive(black_box(&a32), black_box(&x32), black_box(&mut y32)))
    });
    group.bench_function(BenchmarkId::new("naive_csr", "A fp16 / x fp32"), |b| {
        b.iter(|| reference::spmv_seq_naive(black_box(&a16), black_box(&x32), black_box(&mut y32)))
    });

    // Fused SpMV + dual dot (adaptive Richardson weight) vs. the unfused
    // three-kernel sequence it replaces.
    let u32v: Vec<f32> = (0..n).map(|i| ((i % 7) as f32) / 7.0).collect();
    group.bench_function(BenchmarkId::new("spmv_dot2", "A fp16 / x fp32"), |b| {
        b.iter(|| {
            black_box(spmv_dot2(
                black_box(&a16),
                black_box(&x32),
                black_box(&u32v),
                black_box(&mut y32),
            ))
        })
    });
    group.bench_function(BenchmarkId::new("spmv_then_dots", "A fp16 / x fp32"), |b| {
        b.iter(|| {
            spmv_seq(black_box(&a16), black_box(&x32), black_box(&mut y32));
            let num = blas1::dot(black_box(&u32v), black_box(&y32));
            let den = blas1::dot(black_box(&y32), black_box(&y32));
            black_box((num, den))
        })
    });

    let sell16 = SellMatrix::from_csr(&a16, 32);
    group.bench_function(BenchmarkId::new("sell32", "A fp16 / x fp32"), |b| {
        b.iter(|| spmv_sell_seq(black_box(&sell16), black_box(&x32), black_box(&mut y32)))
    });
    group.finish();
}

criterion_group!(benches, meta, bench_spmv);
criterion_main!(benches);
