//! Table 2 benchmark: building (and computing statistics of) the test-matrix
//! suite generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_experiments::{symmetric_suite, SuiteScale};
use f3r_sparse::gen::{elasticity_like_3d, hpcg_matrix, hpgmp_matrix};
use f3r_sparse::MatrixStats;
use std::hint::black_box;

fn bench_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_suite_build");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("generator", "hpcg_16^3"), |b| {
        b.iter(|| black_box(hpcg_matrix(16, 16, 16)))
    });
    group.bench_function(BenchmarkId::new("generator", "hpgmp_16^3"), |b| {
        b.iter(|| black_box(hpgmp_matrix(16, 16, 16, 0.5)))
    });
    group.bench_function(BenchmarkId::new("generator", "elasticity_6^3"), |b| {
        b.iter(|| black_box(elasticity_like_3d(6, 6, 6, 0.3)))
    });
    group.bench_function(BenchmarkId::new("suite", "symmetric_tiny_with_stats"), |b| {
        b.iter(|| {
            let probs = symmetric_suite(SuiteScale::Tiny);
            let total: usize = probs.iter().map(|p| MatrixStats::compute(&p.matrix).nnz).sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
