//! Table 3 benchmark: time per preconditioner application for each solver
//! family (the table itself counts M invocations; this bench measures the
//! cost of producing those counts end to end and prints them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f3r_bench::BenchProblem;
use f3r_core::prelude::*;
use f3r_precision::Precision;

fn bench_table3(c: &mut Criterion) {
    let problem = BenchProblem::hpcg();
    // Print the Table 3 row once so the bench log records the counts.
    {
        let mut f3r16 = problem.f3r(F3rScheme::Fp16, false);
        let r = problem.solve_checked(&mut f3r16);
        let mut cg = problem.krylov_baseline(Precision::Fp64);
        let rc = problem.solve_checked(cg.as_mut());
        eprintln!(
            "table3 counts on {}: fp16-F3R = {} M applications, fp64-CG = {}",
            problem.name, r.precond_applications, rc.precond_applications
        );
    }
    let mut group = c.benchmark_group("table3_precond_counts");
    group.sample_size(10);
    for scheme in [F3rScheme::Fp64, F3rScheme::Fp16] {
        let mut solver = problem.f3r(scheme, false);
        group.bench_function(BenchmarkId::new("per_precond_apply", solver.name()), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let start = std::time::Instant::now();
                    let r = problem.solve_checked(&mut solver);
                    total += start.elapsed().div_f64(r.precond_applications.max(1) as f64);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
