//! Shared fixtures for the Criterion benchmark harness.
//!
//! Every bench target regenerates (a scaled-down version of) one table or
//! figure of the paper; the fixtures here provide the problems and solver
//! builders so the individual bench files stay small.  Benchmark problem
//! sizes are deliberately modest so a full `cargo bench` run finishes in
//! minutes; pass `F3R_BENCH_GRID=<n>` to enlarge them.

use std::sync::Arc;

use f3r_core::prelude::*;
use f3r_precision::Precision;
use f3r_precond::PrecondKind;
use f3r_sparse::gen::{hpcg_matrix, hpgmp_matrix, random_rhs};
use f3r_sparse::scaling::jacobi_scale;
use f3r_sparse::CsrMatrix;

/// Grid edge length used by the benchmark problems (override with
/// `F3R_BENCH_GRID`).
#[must_use]
pub fn bench_grid() -> usize {
    std::env::var("F3R_BENCH_GRID")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// Record the execution environment a bench run executed in: the effective
/// worker-pool size ([`f3r_parallel::current_num_threads`]), the machine's
/// available parallelism, the detected CPU features relevant to kernel
/// dispatch, and the kernel backend the run latched
/// ([`f3r_simd::kernel_backend`] — calling it here latches the backend
/// before the first measurement, so a whole bench run uses one backend).
///
/// Printed to stdout and, when `F3R_BENCH_JSON` names a file, appended to it
/// as a `{"group":"meta","bench":"parallel_pool",…}` record — kernel medians
/// depend directly on the pool size and the kernel backend, so
/// `BENCH_*.json` baselines carry both to stay comparable across machines
/// and backend overrides.  Kernel bench targets call this once, before
/// their measurements.
pub fn emit_parallel_meta() {
    let threads = f3r_parallel::current_num_threads();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let features = f3r_simd::detect_features().summary();
    let backend = f3r_simd::kernel_backend().name();
    println!(
        "bench-meta: worker-pool threads = {threads}, available parallelism = {hw}, \
         cpu features = {features}, kernel backend = {backend}"
    );
    if let Ok(path) = std::env::var("F3R_BENCH_JSON") {
        use std::io::Write as _;
        let line = format!(
            "{{\"group\":\"meta\",\"bench\":\"parallel_pool\",\"threads\":{threads},\"available_parallelism\":{hw},\"cpu_features\":\"{features}\",\"kernel_backend\":\"{backend}\"}}"
        );
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// A benchmark problem: scaled matrix, shared multi-precision handle, rhs.
pub struct BenchProblem {
    /// Problem label.
    pub name: String,
    /// Whether the matrix is symmetric.
    pub symmetric: bool,
    /// The diagonally scaled matrix.
    pub matrix_csr: CsrMatrix<f64>,
    /// Multi-precision handle (CSR backend).
    pub matrix: Arc<ProblemMatrix>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
}

impl BenchProblem {
    fn new(name: &str, symmetric: bool, a: CsrMatrix<f64>, backend: SpmvBackend) -> Self {
        let scaled = jacobi_scale(&a);
        let rhs = random_rhs(scaled.n_rows(), 42);
        let matrix = Arc::new(ProblemMatrix::new(scaled.clone(), backend));
        Self {
            name: name.to_string(),
            symmetric,
            matrix_csr: scaled,
            matrix,
            rhs,
        }
    }

    /// The HPCG (symmetric) benchmark problem with the CSR backend.
    #[must_use]
    pub fn hpcg() -> Self {
        let g = bench_grid();
        Self::new(&format!("hpcg_{g}^3"), true, hpcg_matrix(g, g, g), SpmvBackend::Csr)
    }

    /// The HPGMP (nonsymmetric) benchmark problem with the CSR backend.
    #[must_use]
    pub fn hpgmp() -> Self {
        let g = bench_grid();
        Self::new(
            &format!("hpgmp_{g}^3"),
            false,
            hpgmp_matrix(g, g, g, 0.5),
            SpmvBackend::Csr,
        )
    }

    /// The HPCG problem with the GPU-node (sliced ELLPACK) backend.
    #[must_use]
    pub fn hpcg_sell() -> Self {
        let g = bench_grid();
        Self::new(
            &format!("hpcg_{g}^3_sell"),
            true,
            hpcg_matrix(g, g, g),
            SpmvBackend::Sell { chunk: 32 },
        )
    }

    /// The primary preconditioner of the paper's CPU node for this problem.
    #[must_use]
    pub fn cpu_precond(&self) -> PrecondKind {
        if self.symmetric {
            PrecondKind::BlockJacobiIc0 { blocks: 8, alpha: 1.0 }
        } else {
            PrecondKind::BlockJacobiIlu0 { blocks: 8, alpha: 1.0 }
        }
    }

    /// The primary preconditioner of the paper's GPU node.
    #[must_use]
    pub fn gpu_precond(&self) -> PrecondKind {
        PrecondKind::SdAinv { alpha: 1.0, order: 2 }
    }

    /// Solver settings for this problem on the given node.
    #[must_use]
    pub fn settings(&self, gpu_node: bool) -> SolverSettings {
        SolverSettings {
            precond: if gpu_node { self.gpu_precond() } else { self.cpu_precond() },
            tol: 1e-8,
            max_outer_cycles: 3,
        }
    }

    /// Prepare a solver (setup: precision copies + factorisation) for an
    /// arbitrary spec on this problem's matrix.
    #[must_use]
    pub fn prepare(&self, spec: NestedSpec) -> Arc<PreparedSolver> {
        SolverBuilder::new(Arc::clone(&self.matrix)).spec(spec).build()
    }

    /// Build an F3R solve session of the given scheme on this problem.
    #[must_use]
    pub fn f3r(&self, scheme: F3rScheme, gpu_node: bool) -> SolveSession {
        self.prepare(f3r_spec(F3rParams::default(), scheme, &self.settings(gpu_node)))
            .session()
    }

    /// Build an F3R solve session with explicit parameters.
    #[must_use]
    pub fn f3r_with(&self, params: F3rParams, scheme: F3rScheme) -> SolveSession {
        self.prepare(f3r_spec(params, scheme, &self.settings(false)))
            .session()
    }

    /// Build the matching fp64 Krylov baseline (CG for symmetric problems,
    /// BiCGStab otherwise) with a preconditioner stored in `prec`.
    #[must_use]
    pub fn krylov_baseline(&self, prec: Precision) -> Box<dyn SparseSolver> {
        let cfg = BaselineConfig {
            precond: self.cpu_precond(),
            precond_prec: prec,
            tol: 1e-8,
            max_iterations: 10_000,
        };
        if self.symmetric {
            Box::new(CgSolver::new(Arc::clone(&self.matrix), cfg))
        } else {
            Box::new(BiCgStabSolver::new(Arc::clone(&self.matrix), cfg))
        }
    }

    /// Build the restarted FGMRES(64) baseline.
    #[must_use]
    pub fn fgmres64(&self, prec: Precision) -> RestartedFgmresSolver {
        RestartedFgmresSolver::new(
            Arc::clone(&self.matrix),
            64,
            BaselineConfig {
                precond: self.cpu_precond(),
                precond_prec: prec,
                tol: 1e-8,
                max_iterations: 10_000,
            },
        )
    }

    /// Solve with the given solver and assert convergence (benchmarks should
    /// never silently time a diverging run).
    pub fn solve_checked(&self, solver: &mut dyn SparseSolver) -> SolveResult {
        let mut x = vec![0.0; self.matrix.dim()];
        let result = solver.solve(&self.rhs, &mut x);
        assert!(
            result.converged,
            "benchmark solver {} failed to converge (residual {})",
            solver.name(),
            result.final_relative_residual
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_solve() {
        let p = BenchProblem::hpcg();
        let mut solver = p.f3r(F3rScheme::Fp16, false);
        let r = p.solve_checked(&mut solver);
        assert!(r.converged);
        let q = BenchProblem::hpgmp();
        assert!(!q.symmetric);
        assert!(matches!(q.cpu_precond(), PrecondKind::BlockJacobiIlu0 { .. }));
    }
}
