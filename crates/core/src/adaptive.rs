//! Adaptive runtime precision: stall detection, the escalation ladder and
//! the cost-model spec autotuner.
//!
//! The nested schemes of the paper fix one (matrix, basis, vector) precision
//! stack per level at build time, and the scaled-fp16 matrix stream has a
//! documented failure mode: on matrices whose entry dynamic range exceeds
//! what per-row scaling can absorb, the fp16 inner levels stall — the outer
//! residual plateaus while a fp32 stream of the same chain sails.  Following
//! the adaptive mixed-precision PCG of Guo, de Sturler and Warburton, this
//! module turns that failure mode into a runtime decision:
//!
//! * [`StallDetector`] watches the per-iteration residual estimates the
//!   outermost FGMRES cycle already produces and classifies the trajectory
//!   as progressing, stalling, diverging or broken down
//!   ([`StallSignal`]).  The detection rule is scale-invariant (it only
//!   looks at residual *ratios* over a sliding window), so it works on
//!   relative or absolute residuals alike.
//! * [`escalation_ladder`] derives, from a spec's level list, the sequence
//!   of progressively wider level lists a solve can climb mid-flight:
//!   each rung widens the narrowest inner matrix storage by one precision
//!   step (`Scaled(Fp16) → Scaled(Fp32) → Plain(Fp64)`), dragging the
//!   affected vector and basis precisions along, and a final rung widens
//!   any remaining compressed bases.  Every rung satisfies the
//!   [`NestedSpec::check`] invariants whenever the input does.
//! * [`AdaptivePolicy`] bundles the detector configuration with the
//!   escalation/de-escalation behaviour of a
//!   [`SolveSession`](crate::session::SolveSession): how many rungs a solve
//!   may climb, and after how many healthy cycles it may step back down.
//! * [`auto_spec_for_matrix`] is the spec autotuner: it ranks the paper's
//!   F3R candidates (fp64, fp32, plain fp16 and row-scaled fp16) by the
//!   Section 4.1 traffic model ([`crate::cost_model`]) and keeps only the
//!   candidates admissible for the matrix's measured
//!   [`EntryRangeStats`], so `SolverBuilder::auto_spec()` picks the
//!   cheapest stack the matrix can actually support.
//!
//! The session wiring — rebuilding the inner chain against the wider
//! variants the lazy [`MatrixStore`](crate::operator::ProblemMatrix)
//! materializes on demand, while the outer Krylov state survives — lives in
//! [`crate::session`]; this module is pure policy and is independently
//! testable on synthetic residual traces.

use f3r_precision::Precision;
use f3r_sparse::EntryRangeStats;

use crate::cost_model::{cheapest_spec, spec_traffic_per_outer_iteration};
use crate::f3r::{f3r_spec, F3rParams, F3rScheme, SolverSettings};
use crate::nested::{LevelSpec, NestedSpec};
use crate::operator::{MatrixStorage, ProblemMatrix};

// ---------------------------------------------------------------------------
// Stall detection
// ---------------------------------------------------------------------------

/// Classification of a residual trajectory by the [`StallDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallSignal {
    /// The residual is shrinking at an acceptable rate (or the window is not
    /// full yet).
    Progressing,
    /// The window-averaged reduction rate is worse than
    /// [`StallConfig::min_rate`]: the solve is treading water.
    Stalling,
    /// The latest residual exceeds the window minimum by more than
    /// [`StallConfig::divergence_ratio`]: the solve is actively losing
    /// ground.
    Diverging,
    /// A non-finite residual was observed.
    Breakdown,
}

/// Tuning knobs of the [`StallDetector`].
///
/// The defaults are calibrated against measured outer-residual traces of the
/// two-level scaled-fp16 chain: healthy solves (including their early
/// plateaus, before the Krylov space is rich enough to bite) show
/// per-iteration reduction rates of ≤ ~0.989 over any 10-iteration window,
/// while a truly stalled fp16 stream sits at ≥ ~0.998.  `min_rate = 0.995`
/// separates the two regimes with margin on both sides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallConfig {
    /// Sliding-window length (in observations) over which the geometric-mean
    /// reduction rate is measured.  A signal is only raised once the window
    /// is full, so the first `window` observations can never flag.
    pub window: usize,
    /// Largest acceptable geometric-mean reduction rate per observation.
    /// A trace decaying like `r_k = ρ^k` with `ρ ≤ min_rate` is *never*
    /// flagged as stalling (the window rate of an exact geometric decay is
    /// exactly `ρ`).
    pub min_rate: f64,
    /// Divergence threshold: flag when the latest residual exceeds the
    /// smallest residual currently in the window by this factor.
    pub divergence_ratio: f64,
}

impl Default for StallConfig {
    fn default() -> Self {
        Self {
            window: 10,
            min_rate: 0.995,
            divergence_ratio: 100.0,
        }
    }
}

/// Sliding-window residual-trajectory classifier.
///
/// Feed it one residual (estimate) per iteration via
/// [`observe`](Self::observe); it answers with a [`StallSignal`].  The
/// detector is deliberately memoryless beyond its window: [`reset`](Self::reset)
/// clears it, which the session layer does after every precision switch so a
/// freshly escalated chain gets a clean slate.
///
/// ```
/// use f3r_core::adaptive::{StallConfig, StallDetector, StallSignal};
/// let mut d = StallDetector::new(StallConfig::default());
/// // Healthy geometric decay never flags…
/// let mut r = 1.0;
/// for _ in 0..50 {
///     assert_eq!(d.observe(r), StallSignal::Progressing);
///     r *= 0.5;
/// }
/// // …while a plateau does, once the window fills.
/// d.reset();
/// let flagged = (0..20).map(|_| d.observe(0.5)).any(|s| s == StallSignal::Stalling);
/// assert!(flagged);
/// ```
#[derive(Debug, Clone)]
pub struct StallDetector {
    config: StallConfig,
    /// Last `window + 1` observed residuals, oldest first.
    history: Vec<f64>,
}

impl StallDetector {
    /// Create a detector with the given configuration.
    ///
    /// # Panics
    /// Panics if `window` is zero or the rate/ratio knobs are not positive.
    #[must_use]
    pub fn new(config: StallConfig) -> Self {
        assert!(config.window >= 1, "stall window must be at least 1");
        assert!(
            config.min_rate > 0.0 && config.min_rate.is_finite(),
            "min_rate must be positive and finite"
        );
        assert!(
            config.divergence_ratio > 1.0,
            "divergence_ratio must exceed 1"
        );
        Self {
            config,
            history: Vec::with_capacity(config.window + 1),
        }
    }

    /// The configuration this detector runs with.
    #[must_use]
    pub fn config(&self) -> &StallConfig {
        &self.config
    }

    /// Forget all history (used after a precision switch).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// Feed one residual observation and classify the trajectory so far.
    pub fn observe(&mut self, residual: f64) -> StallSignal {
        if !residual.is_finite() {
            return StallSignal::Breakdown;
        }
        if self.history.len() > self.config.window {
            self.history.remove(0);
        }
        self.history.push(residual);
        let oldest = self.history[0];
        if self.history.len() >= 2 {
            let window_min = self.history.iter().copied().fold(f64::INFINITY, f64::min);
            if window_min > 0.0 && residual > self.config.divergence_ratio * window_min {
                return StallSignal::Diverging;
            }
        }
        if self.history.len() == self.config.window + 1 && oldest > 0.0 && residual > 0.0 {
            let rate = (residual / oldest).powf(1.0 / self.config.window as f64);
            if rate > self.config.min_rate {
                return StallSignal::Stalling;
            }
        }
        StallSignal::Progressing
    }
}

// ---------------------------------------------------------------------------
// Adaptive policy
// ---------------------------------------------------------------------------

/// How a [`SolveSession`](crate::session::SolveSession) reacts to the
/// detector's signals: the state machine is
/// `stable → stalling → escalated → cooling` (see `docs/ARCHITECTURE.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Stall-detector configuration applied to the outer residual estimates.
    pub stall: StallConfig,
    /// Minimum factor by which the true residual must shrink over one full
    /// outer restart cycle for the cycle to count as healthy; a cycle below
    /// this reduction triggers escalation even if the per-iteration detector
    /// stayed quiet.
    pub cycle_reduction: f64,
    /// Maximum number of escalation steps a single solve may take (a
    /// safeguard against pathological flapping; the ladder length bounds it
    /// anyway).
    pub max_escalations: usize,
    /// De-escalate one rung after this many consecutive healthy cycles
    /// (`None` disables de-escalation: once widened, a session stays wide).
    /// The first de-escalation at each rung is *probational*: if the solve
    /// stalls again before the same number of healthy cycles confirms the
    /// narrow rung, the session re-escalates and pins its floor there, so an
    /// ill-conditioned matrix cannot oscillate between rungs.
    pub deescalate_after: Option<usize>,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self {
            stall: StallConfig::default(),
            cycle_reduction: 2.0,
            max_escalations: 4,
            deescalate_after: Some(3),
        }
    }
}

// ---------------------------------------------------------------------------
// Escalation ladder
// ---------------------------------------------------------------------------

/// One-step-wider precision, saturating at fp64.
fn wider(p: Precision) -> Precision {
    match p {
        Precision::Fp16 => Precision::Fp32,
        Precision::Fp32 | Precision::Fp64 => Precision::Fp64,
    }
}

/// Widen `levels` by one escalation step, or `None` at the fixpoint.
///
/// The outermost level (`levels[0]`) is never touched: it is pinned to fp64
/// by the spec invariants and drives convergence.  A step widens the matrix
/// storage of every inner level currently at the *narrowest* matrix
/// precision (preserving the plain/scaled flag except at fp64, where scaling
/// buys nothing), dragging each touched level's vector and basis precisions
/// up with it so the `matrix ≤ vector` and `basis ≤ vector` invariants keep
/// holding.  Once every matrix streams in fp64, a final step widens any
/// remaining compressed (below-vector-precision) bases; after that the
/// ladder ends.
fn escalate_once(levels: &[LevelSpec]) -> Option<Vec<LevelSpec>> {
    if levels.len() <= 1 {
        return None;
    }
    let narrowest = levels[1..]
        .iter()
        .map(LevelSpec::matrix_precision)
        .min()
        .expect("at least one inner level");
    let mut out = levels.to_vec();
    let mut changed = false;
    if narrowest < Precision::Fp64 {
        let target = wider(narrowest);
        for level in out.iter_mut().skip(1) {
            if level.matrix_precision() != narrowest {
                continue;
            }
            let scaled = level.matrix_storage().is_scaled() && target < Precision::Fp64;
            let storage = if scaled {
                MatrixStorage::Scaled(target)
            } else {
                MatrixStorage::Plain(target)
            };
            match level {
                LevelSpec::Fgmres {
                    matrix,
                    vector_prec,
                    basis_prec,
                    ..
                } => {
                    *matrix = storage;
                    *vector_prec = (*vector_prec).max(target);
                    *basis_prec = (*basis_prec).max(target).min(*vector_prec);
                }
                LevelSpec::Richardson {
                    matrix,
                    vector_prec,
                    ..
                } => {
                    *matrix = storage;
                    *vector_prec = (*vector_prec).max(target);
                }
            }
            changed = true;
        }
    } else {
        // All matrices already stream fp64; the last lever is basis storage.
        for level in out.iter_mut().skip(1) {
            if let LevelSpec::Fgmres {
                vector_prec,
                basis_prec,
                ..
            } = level
            {
                if basis_prec < vector_prec {
                    *basis_prec = wider(*basis_prec).min(*vector_prec);
                    changed = true;
                }
            }
        }
    }
    changed.then_some(out)
}

/// The full escalation ladder for a level list: rung 0 is the input, each
/// later rung is one widening step wider (all inner levels at the narrowest
/// matrix precision move up together, then compressed bases widen), and the
/// last rung is the fixpoint (all matrices fp64, all bases uncompressed).
///
/// ```
/// use f3r_core::adaptive::escalation_ladder;
/// use f3r_core::nested::LevelSpec;
/// use f3r_core::operator::MatrixStorage;
/// use f3r_precision::Precision;
/// let levels = vec![
///     LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
///     LevelSpec::fgmres_stored(10, MatrixStorage::Scaled(Precision::Fp16), Precision::Fp64),
/// ];
/// let ladder = escalation_ladder(&levels);
/// let streams: Vec<_> = ladder.iter().map(|l| l[1].matrix_storage()).collect();
/// assert_eq!(streams, vec![
///     MatrixStorage::Scaled(Precision::Fp16),
///     MatrixStorage::Scaled(Precision::Fp32),
///     MatrixStorage::Plain(Precision::Fp64),
/// ]);
/// ```
#[must_use]
pub fn escalation_ladder(levels: &[LevelSpec]) -> Vec<Vec<LevelSpec>> {
    let mut ladder = vec![levels.to_vec()];
    while let Some(next) = escalate_once(ladder.last().expect("ladder never empty")) {
        ladder.push(next);
    }
    ladder
}

// ---------------------------------------------------------------------------
// Spec autotuner
// ---------------------------------------------------------------------------

/// Configuration of the [`auto_spec_for_matrix`] autotuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoTuneConfig {
    /// Iteration counts of the F3R candidates.
    pub params: F3rParams,
    /// Largest entry dynamic range for which the *row-scaled* fp16 matrix
    /// stream is considered admissible.  Per-row power-of-two scaling
    /// absorbs the inter-row amplitude spread, but the fp16 mantissa still
    /// caps the within-row range a stream can resolve; measured on the DAD
    /// Laplacian family, scaled fp16 converges at ~1e10 range and stalls at
    /// ~1e16, so the default gate sits between the two regimes.
    pub scaled_fp16_max_range: f64,
}

impl Default for AutoTuneConfig {
    fn default() -> Self {
        Self {
            params: F3rParams::default(),
            scaled_fp16_max_range: 1e12,
        }
    }
}

/// One autotuner candidate: a spec, its modeled traffic per outermost
/// iteration (Section 4.1 words per row), and whether the matrix's entry
/// statistics admit it.
#[derive(Debug, Clone)]
pub struct SpecCandidate {
    /// The candidate spec.
    pub spec: NestedSpec,
    /// Modeled traffic of one outermost iteration, in double-precision-
    /// equivalent words per matrix row.
    pub modeled_traffic: f64,
    /// Whether the matrix's [`EntryRangeStats`] admit this candidate.
    pub admissible: bool,
}

/// Build and rank the autotuner's candidate specs for a matrix with the given
/// entry statistics and density (mean nonzeros per row).
///
/// Candidates, in the order returned:
/// 1. fp64-F3R — always admissible (the safe fallback),
/// 2. fp32-F3R — always admissible,
/// 3. fp16-F3R with plain fp16 storage — admissible only when every entry
///    survives an unscaled fp16 copy ([`EntryRangeStats::fp16_representable`]),
/// 4. fp16-F3R with *row-scaled* fp16 storage on its fp16 levels —
///    admissible while the dynamic range stays within
///    [`AutoTuneConfig::scaled_fp16_max_range`]; its preconditioner storage
///    is widened to fp32 when the raw entries are not fp16-representable
///    (the factors inherit the entry range, and `M` has no scaled variant).
#[must_use]
pub fn candidate_specs(
    stats: &EntryRangeStats,
    nnz_per_row: f64,
    config: &AutoTuneConfig,
) -> Vec<SpecCandidate> {
    let settings = SolverSettings::default();
    let fp16_plain_ok = stats.fp16_representable();
    let fp16_scaled_ok = stats.dynamic_range <= config.scaled_fp16_max_range;

    let mut scaled16 = f3r_spec(config.params, F3rScheme::Fp16, &settings);
    for level in scaled16.levels.iter_mut().skip(1) {
        if level.matrix_precision() == Precision::Fp16 {
            let (LevelSpec::Fgmres { matrix, .. } | LevelSpec::Richardson { matrix, .. }) = level;
            *matrix = MatrixStorage::Scaled(Precision::Fp16);
        }
    }
    if !fp16_plain_ok {
        scaled16.precond_prec = Precision::Fp32;
    }
    scaled16.name = "fp16-F3R-scaled".to_string();

    let raw = [
        (f3r_spec(config.params, F3rScheme::Fp64, &settings), true),
        (f3r_spec(config.params, F3rScheme::Fp32, &settings), true),
        (
            f3r_spec(config.params, F3rScheme::Fp16, &settings),
            fp16_plain_ok,
        ),
        (scaled16, fp16_scaled_ok),
    ];
    raw.into_iter()
        .map(|(spec, admissible)| {
            let modeled_traffic = spec_traffic_per_outer_iteration(&spec, nnz_per_row, nnz_per_row);
            SpecCandidate {
                spec,
                modeled_traffic,
                admissible,
            }
        })
        .collect()
}

/// Pick the cheapest admissible candidate for the given stats and density.
///
/// The returned spec's name is prefixed with `auto:` so results stay
/// attributable.  The fp64-F3R candidate is always admissible, so this never
/// fails.
#[must_use]
pub fn auto_spec(stats: &EntryRangeStats, nnz_per_row: f64, config: &AutoTuneConfig) -> NestedSpec {
    let candidates = candidate_specs(stats, nnz_per_row, config);
    let admissible: Vec<&NestedSpec> = candidates
        .iter()
        .filter(|c| c.admissible)
        .map(|c| &c.spec)
        .collect();
    let (best, _) = cheapest_spec(admissible.iter().copied(), nnz_per_row, nnz_per_row)
        .expect("the fp64 candidate is always admissible");
    let mut spec = admissible[best].clone();
    spec.name = format!("auto:{}", spec.name);
    spec
}

/// Measure a matrix and pick the cheapest admissible spec for it (the
/// engine behind `SolverBuilder::auto_spec()`).
///
/// The measurement is one pass over the stored fp64 entries
/// ([`EntryRangeStats::compute`]) plus the mean row density — both cheap
/// relative to a preconditioner factorisation.
#[must_use]
pub fn auto_spec_for_matrix(matrix: &ProblemMatrix, config: &AutoTuneConfig) -> NestedSpec {
    let stats = EntryRangeStats::compute(matrix.csr_f64());
    let nnz_per_row = matrix.nnz() as f64 / matrix.dim().max(1) as f64;
    auto_spec(&stats, nnz_per_row, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precond::PrecondKind;

    fn detector() -> StallDetector {
        StallDetector::new(StallConfig::default())
    }

    #[test]
    fn geometric_decay_never_flags_at_any_rate_at_or_below_threshold() {
        // The no-false-positive property: exact geometric convergence at
        // rate ρ ≤ min_rate is never flagged, for any ρ and any scale.
        for rho in [0.1, 0.5, 0.9, 0.98, 0.995] {
            for scale in [1.0, 1e-6, 1e8] {
                let mut d = detector();
                let mut r = scale;
                for k in 0..200 {
                    assert_eq!(
                        d.observe(r),
                        StallSignal::Progressing,
                        "rho={rho} scale={scale} k={k}"
                    );
                    r *= rho;
                }
            }
        }
    }

    #[test]
    fn plateau_flags_exactly_when_the_window_fills() {
        let mut d = detector();
        let window = d.config().window;
        for k in 0..window {
            assert_eq!(d.observe(0.5), StallSignal::Progressing, "k={k}");
        }
        assert_eq!(d.observe(0.5), StallSignal::Stalling);
        // Reset gives a clean slate.
        d.reset();
        assert_eq!(d.observe(0.5), StallSignal::Progressing);
    }

    #[test]
    fn slow_decay_above_threshold_flags() {
        let mut d = detector();
        let mut r = 1.0;
        let mut flagged = false;
        for _ in 0..100 {
            if d.observe(r) == StallSignal::Stalling {
                flagged = true;
                break;
            }
            r *= 0.999; // slower than min_rate = 0.995
        }
        assert!(flagged);
    }

    #[test]
    fn oscillating_but_decaying_trace_does_not_flag() {
        // r_k = 0.8^k · (1 ± 0.3): noisy, non-monotone, but clearly
        // converging — must never flag as stalling or diverging.
        let mut d = detector();
        for k in 0..100u32 {
            let r = 0.8f64.powi(k as i32) * if k % 2 == 0 { 1.3 } else { 0.7 };
            assert_eq!(d.observe(r), StallSignal::Progressing, "k={k}");
        }
    }

    #[test]
    fn divergence_flags_before_the_window_fills() {
        let mut d = detector();
        assert_eq!(d.observe(1.0), StallSignal::Progressing);
        assert_eq!(d.observe(0.5), StallSignal::Progressing);
        assert_eq!(d.observe(200.0), StallSignal::Diverging);
    }

    #[test]
    fn non_finite_residual_is_breakdown() {
        let mut d = detector();
        assert_eq!(d.observe(f64::NAN), StallSignal::Breakdown);
        assert_eq!(d.observe(f64::INFINITY), StallSignal::Breakdown);
        // Breakdown observations are not recorded; the trace continues.
        assert_eq!(d.observe(1.0), StallSignal::Progressing);
    }

    #[test]
    fn zero_residual_is_progress() {
        let mut d = detector();
        for _ in 0..30 {
            assert_eq!(d.observe(0.0), StallSignal::Progressing);
        }
    }

    fn check_ladder(levels: Vec<LevelSpec>) -> Vec<Vec<LevelSpec>> {
        let ladder = escalation_ladder(&levels);
        for (r, rung) in ladder.iter().enumerate() {
            let spec = NestedSpec {
                levels: rung.clone(),
                precond: PrecondKind::Jacobi,
                precond_prec: Precision::Fp64,
                tol: 1e-8,
                max_outer_cycles: 3,
                name: format!("rung{r}"),
            };
            spec.check().unwrap_or_else(|e| panic!("rung {r}: {e}"));
        }
        ladder
    }

    #[test]
    fn two_level_scaled_fp16_ladder_climbs_to_plain_fp64() {
        let ladder = check_ladder(vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres_stored(10, MatrixStorage::Scaled(Precision::Fp16), Precision::Fp64),
        ]);
        assert_eq!(ladder.len(), 3);
        assert_eq!(
            ladder[1][1].matrix_storage(),
            MatrixStorage::Scaled(Precision::Fp32)
        );
        assert_eq!(
            ladder[2][1].matrix_storage(),
            MatrixStorage::Plain(Precision::Fp64)
        );
        // The outermost level never changes.
        for rung in &ladder {
            assert_eq!(rung[0], ladder[0][0]);
        }
    }

    #[test]
    fn fp16_f3r_ladder_ends_at_the_all_fp64_fixpoint() {
        let spec = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &SolverSettings::default());
        let ladder = check_ladder(spec.levels);
        let last = ladder.last().unwrap();
        for level in &last[1..] {
            assert_eq!(level.matrix_precision(), Precision::Fp64);
            assert_eq!(level.vector_precision(), Precision::Fp64);
            if let Some(b) = level.basis_precision() {
                assert_eq!(b, Precision::Fp64);
            }
        }
        // The fixpoint really is a fixpoint.
        assert!(escalate_once(last).is_none());
    }

    #[test]
    fn escalation_drags_vector_and_basis_precisions_along() {
        // fp16 matrix + fp16 vectors + fp16 basis: widening the matrix to
        // fp32 must widen the vectors (matrix ≤ vector) and may widen the
        // basis, keeping basis ≤ vector.
        let ladder = check_ladder(vec![
            LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(4, Precision::Fp16, Precision::Fp16),
        ]);
        assert_eq!(ladder[1][1].matrix_precision(), Precision::Fp32);
        assert_eq!(ladder[1][1].vector_precision(), Precision::Fp32);
    }

    #[test]
    fn fp64_matrices_with_compressed_basis_get_a_basis_rung() {
        let levels = vec![
            LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
            LevelSpec::Fgmres {
                m: 5,
                matrix: MatrixStorage::Plain(Precision::Fp64),
                vector_prec: Precision::Fp64,
                basis_prec: Precision::Fp16,
            },
        ];
        let ladder = check_ladder(levels);
        let bases: Vec<_> = ladder
            .iter()
            .map(|rung| rung[1].basis_precision().unwrap())
            .collect();
        assert_eq!(bases, vec![Precision::Fp16, Precision::Fp32, Precision::Fp64]);
    }

    #[test]
    fn single_level_spec_has_a_one_rung_ladder() {
        let ladder =
            escalation_ladder(&[LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64)]);
        assert_eq!(ladder.len(), 1);
    }

    fn stats(range: f64, representable: bool) -> EntryRangeStats {
        EntryRangeStats {
            max_abs: 1.0,
            min_abs_nonzero: 1.0 / range,
            dynamic_range: range,
            fp16_overflow: usize::from(!representable),
            fp16_underflow: 0,
        }
    }

    #[test]
    fn autotuner_picks_plain_fp16_on_benign_entries() {
        let spec = auto_spec(&stats(1e3, true), 27.0, &AutoTuneConfig::default());
        assert_eq!(spec.name, "auto:fp16-F3R");
    }

    #[test]
    fn autotuner_picks_scaled_fp16_on_moderate_range() {
        // Entries overflow plain fp16 but the range fits the scaled gate.
        let spec = auto_spec(&stats(1e10, false), 27.0, &AutoTuneConfig::default());
        assert_eq!(spec.name, "auto:fp16-F3R-scaled");
        // The fp16-precision levels stream the row-scaled variant…
        assert!(spec
            .levels
            .iter()
            .any(|l| l.matrix_storage() == MatrixStorage::Scaled(Precision::Fp16)));
        // …and the preconditioner was widened past the unrepresentable range.
        assert_eq!(spec.precond_prec, Precision::Fp32);
    }

    #[test]
    fn autotuner_falls_back_to_fp32_on_extreme_range() {
        let spec = auto_spec(&stats(1e16, false), 27.0, &AutoTuneConfig::default());
        assert_eq!(spec.name, "auto:fp32-F3R");
    }

    #[test]
    fn candidates_are_ranked_by_the_cost_model() {
        let cands = candidate_specs(&stats(10.0, true), 27.0, &AutoTuneConfig::default());
        assert_eq!(cands.len(), 4);
        // fp64 is the most expensive model, plain fp16 the cheapest.
        let by_name = |n: &str| {
            cands
                .iter()
                .find(|c| c.spec.name.contains(n))
                .unwrap()
                .modeled_traffic
        };
        assert!(by_name("fp64-F3R") > by_name("fp32-F3R"));
        assert!(by_name("fp32-F3R") > by_name("fp16-F3R-scaled"));
        assert!(by_name("fp16-F3R-scaled") > cands[2].modeled_traffic);
        assert!(cands.iter().all(|c| c.admissible));
    }
}
