//! Preconditioned BiCGStab (the paper's `fpXX-BiCGStab` baselines for
//! nonsymmetric systems).

use std::sync::Arc;
use std::time::Instant;

use f3r_precision::traffic::TrafficModel;
use f3r_precision::{KernelCounters, Precision};
use f3r_sparse::blas1;

use crate::baseline::BaselineConfig;
use crate::convergence::{SolveResult, SparseSolver, StopReason};
use crate::operator::{MatrixStorage, ProblemMatrix};
use crate::precond_any::AnyPrecond;

/// Right-preconditioned BiCGStab in fp64 with a mixed-precision-stored
/// preconditioner.
pub struct BiCgStabSolver {
    matrix: Arc<ProblemMatrix>,
    precond: Arc<AnyPrecond>,
    counters: Arc<KernelCounters>,
    config: BaselineConfig,
}

impl BiCgStabSolver {
    /// Build the solver for `matrix` with the given configuration.
    #[must_use]
    pub fn new(matrix: Arc<ProblemMatrix>, config: BaselineConfig) -> Self {
        let counters = KernelCounters::new_shared();
        let precond = Arc::new(AnyPrecond::for_matrix(
            &matrix,
            &config.precond,
            config.precond_prec,
        ));
        Self {
            matrix,
            precond,
            counters,
            config,
        }
    }

    fn record_blas1(&self, n: usize, reads: usize, writes: usize) {
        self.counters.record_blas1(
            Precision::Fp64,
            TrafficModel::blas1_bytes(n, reads, writes, Precision::Fp64),
        );
    }
}

impl SparseSolver for BiCgStabSolver {
    #[allow(clippy::too_many_lines)]
    fn solve(&mut self, b: &[f64], x: &mut [f64]) -> SolveResult {
        let n = self.matrix.dim();
        assert_eq!(b.len(), n, "bicgstab: b length mismatch");
        assert_eq!(x.len(), n, "bicgstab: x length mismatch");
        let start = Instant::now();
        self.counters.reset();
        for xi in x.iter_mut() {
            *xi = 0.0;
        }
        let bnorm = blas1::norm2(b);
        let mut history = Vec::new();
        let mut converged = bnorm == 0.0;
        let mut stop_reason = if converged {
            StopReason::Converged
        } else {
            StopReason::MaxIterations
        };
        let mut iterations = 0usize;

        if !converged {
            let mut r = b.to_vec(); // r0 = b - A*0
            let r_hat = r.clone();
            let mut rho = 1.0f64;
            let mut alpha = 1.0f64;
            let mut omega = 1.0f64;
            let mut v = vec![0.0f64; n];
            let mut p = vec![0.0f64; n];
            let mut p_hat = vec![0.0f64; n];
            let mut s = vec![0.0f64; n];
            let mut s_hat = vec![0.0f64; n];
            let mut t = vec![0.0f64; n];

            for it in 1..=self.config.max_iterations {
                iterations = it;
                let rho_new = blas1::dot(&r_hat, &r);
                self.record_blas1(n, 2, 0);
                if rho_new.abs() < f64::MIN_POSITIVE || !rho_new.is_finite() {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                let beta = (rho_new / rho) * (alpha / omega);
                rho = rho_new;
                // p = r + beta * (p - omega * v)
                for i in 0..n {
                    p[i] = r[i] + beta * (p[i] - omega * v[i]);
                }
                self.record_blas1(n, 3, 1);
                // p_hat = M p ; v = A p_hat with (r̂, v) fused into the SpMV.
                self.precond.apply_to(&p, &mut p_hat, &self.counters);
                let (rhat_v, _) =
                    self.matrix.apply_dot2(MatrixStorage::Plain(Precision::Fp64), &p_hat, &r_hat, &mut v, &self.counters);
                if rhat_v.abs() < f64::MIN_POSITIVE || !rhat_v.is_finite() {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                alpha = rho / rhat_v;
                // s = r - alpha v fused with ‖s‖² for the early-exit check:
                // three sweeps (read r, read v, write s) instead of four.
                let snorm = blas1::waxpby_norm2(1.0, &r, -alpha, &v, &mut s).sqrt();
                self.record_blas1(n, 2, 1);
                if snorm / bnorm < self.config.tol {
                    // early exit: x += alpha * p_hat
                    blas1::axpy(alpha, &p_hat, x);
                    self.record_blas1(n, 2, 1);
                    history.push(snorm / bnorm);
                    converged = true;
                    stop_reason = StopReason::Converged;
                    break;
                }
                // s_hat = M s ; t = A s_hat with (t, s) and (t, t) fused into
                // the SpMV sweep — t is never re-read for the ω reductions.
                self.precond.apply_to(&s, &mut s_hat, &self.counters);
                let (ts, tt) =
                    self.matrix.apply_dot2(MatrixStorage::Plain(Precision::Fp64), &s_hat, &s, &mut t, &self.counters);
                if tt.abs() < f64::MIN_POSITIVE || !tt.is_finite() {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                omega = ts / tt;
                // x += alpha * p_hat + omega * s_hat
                blas1::axpy(alpha, &p_hat, x);
                blas1::axpy(omega, &s_hat, x);
                // r = s - omega t
                blas1::waxpby(1.0, &s, -omega, &t, &mut r);
                self.record_blas1(n, 6, 3);
                let rel = blas1::norm2(&r) / bnorm;
                self.record_blas1(n, 1, 0);
                history.push(rel);
                if rel < self.config.tol {
                    converged = true;
                    stop_reason = StopReason::Converged;
                    break;
                }
                if !rel.is_finite() {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                if omega.abs() < f64::MIN_POSITIVE {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
            }
        }

        let final_rel = self.matrix.true_relative_residual(x, b);
        let converged = converged && final_rel < self.config.tol * 10.0;
        SolveResult {
            converged,
            stop_reason,
            outer_iterations: iterations,
            precond_applications: self.counters.snapshot().precond_applies,
            final_relative_residual: final_rel,
            seconds: start.elapsed().as_secs_f64(),
            residual_history: history,
            counters: self.counters.snapshot(),
            solver_name: self.name(),
            fingerprint: None,
        }
    }

    fn name(&self) -> String {
        format!("{}-BiCGStab", self.config.prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precond::PrecondKind;
    use f3r_sparse::gen::hpgmp::hpgmp_matrix;
    use f3r_sparse::gen::rhs::random_rhs;
    use f3r_sparse::scaling::jacobi_scale;

    fn solve_with(precond_prec: Precision) -> SolveResult {
        let a = jacobi_scale(&hpgmp_matrix(8, 8, 4, 0.5));
        let n = a.n_rows();
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let mut solver = BiCgStabSolver::new(
            pm,
            BaselineConfig {
                precond: PrecondKind::Ilu0 { alpha: 1.0 },
                precond_prec,
                tol: 1e-8,
                max_iterations: 2000,
            },
        );
        let b = random_rhs(n, 23);
        let mut x = vec![0.0; n];
        solver.solve(&b, &mut x)
    }

    #[test]
    fn converges_on_nonsymmetric_hpgmp() {
        let res = solve_with(Precision::Fp64);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        assert!(res.final_relative_residual < 1e-7);
        // BiCGStab applies M twice per iteration.
        assert!(res.precond_applications >= 2 * (res.outer_iterations as u64 - 1));
    }

    #[test]
    fn fp16_preconditioner_storage_still_converges() {
        let res = solve_with(Precision::Fp16);
        assert!(res.converged, "residual {}", res.final_relative_residual);
    }

    #[test]
    fn name_reflects_preconditioner_precision() {
        let a = jacobi_scale(&hpgmp_matrix(3, 3, 3, 0.5));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let solver = BiCgStabSolver::new(
            pm,
            BaselineConfig {
                precond_prec: Precision::Fp32,
                ..BaselineConfig::default()
            },
        );
        assert_eq!(solver.name(), "fp32-BiCGStab");
    }
}
