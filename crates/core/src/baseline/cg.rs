//! Preconditioned Conjugate Gradient (the paper's `fpXX-CG` baselines).

use std::sync::Arc;
use std::time::Instant;

use f3r_precision::traffic::TrafficModel;
use f3r_precision::{KernelCounters, Precision};
use f3r_sparse::blas1;

use crate::baseline::BaselineConfig;
use crate::convergence::{SolveResult, SparseSolver, StopReason};
use crate::operator::{MatrixStorage, ProblemMatrix};
use crate::precond_any::AnyPrecond;

/// Preconditioned CG in fp64 with a mixed-precision-stored preconditioner.
pub struct CgSolver {
    matrix: Arc<ProblemMatrix>,
    precond: Arc<AnyPrecond>,
    counters: Arc<KernelCounters>,
    config: BaselineConfig,
}

impl CgSolver {
    /// Build the solver for `matrix` with the given configuration.
    #[must_use]
    pub fn new(matrix: Arc<ProblemMatrix>, config: BaselineConfig) -> Self {
        let counters = KernelCounters::new_shared();
        let precond = Arc::new(AnyPrecond::for_matrix(
            &matrix,
            &config.precond,
            config.precond_prec,
        ));
        Self {
            matrix,
            precond,
            counters,
            config,
        }
    }

    fn record_blas1(&self, n: usize, reads: usize, writes: usize) {
        self.counters.record_blas1(
            Precision::Fp64,
            TrafficModel::blas1_bytes(n, reads, writes, Precision::Fp64),
        );
    }
}

impl SparseSolver for CgSolver {
    fn solve(&mut self, b: &[f64], x: &mut [f64]) -> SolveResult {
        let n = self.matrix.dim();
        assert_eq!(b.len(), n, "cg: b length mismatch");
        assert_eq!(x.len(), n, "cg: x length mismatch");
        let start = Instant::now();
        self.counters.reset();
        for xi in x.iter_mut() {
            *xi = 0.0;
        }
        let bnorm = blas1::norm2(b);
        let mut history = Vec::new();
        let mut converged = bnorm == 0.0;
        let mut stop_reason = if converged {
            StopReason::Converged
        } else {
            StopReason::MaxIterations
        };
        let mut iterations = 0usize;

        if !converged {
            // r = b (x = 0), z = M r, p = z
            let mut r = b.to_vec();
            let mut z = vec![0.0f64; n];
            self.precond.apply_to(&r, &mut z, &self.counters);
            let mut p = z.clone();
            let mut q = vec![0.0f64; n];
            let mut rz = blas1::dot(&r, &z);
            self.record_blas1(n, 2, 0);

            for it in 1..=self.config.max_iterations {
                iterations = it;
                // q = A p with (p, q) folded into the SpMV sweep.
                let (pq, _qq) =
                    self.matrix.apply_dot2(MatrixStorage::Plain(Precision::Fp64), &p, &p, &mut q, &self.counters);
                if !pq.is_finite() || pq.abs() < f64::MIN_POSITIVE {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                let alpha = rz / pq;
                blas1::axpy(alpha, &p, x);
                self.record_blas1(n, 2, 1);
                // r ← r − α q fused with ‖r‖² for the convergence check.
                let rel = blas1::axpy_norm2(-alpha, &q, &mut r).sqrt() / bnorm;
                self.record_blas1(n, 2, 1);
                history.push(rel);
                if rel < self.config.tol {
                    converged = true;
                    stop_reason = StopReason::Converged;
                    break;
                }
                if !rel.is_finite() {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                self.precond.apply_to(&r, &mut z, &self.counters);
                let rz_new = blas1::dot(&r, &z);
                self.record_blas1(n, 2, 0);
                if !rz_new.is_finite() || rz.abs() < f64::MIN_POSITIVE {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                let beta = rz_new / rz;
                rz = rz_new;
                // p = z + beta p
                blas1::axpby(1.0, &z, beta, &mut p);
                self.record_blas1(n, 2, 1);
            }
        }

        // The recursive residual can drift; report the true residual.
        let final_rel = self.matrix.true_relative_residual(x, b);
        let converged = converged && final_rel < self.config.tol * 10.0;
        SolveResult {
            converged,
            stop_reason,
            outer_iterations: iterations,
            precond_applications: self.counters.snapshot().precond_applies,
            final_relative_residual: final_rel,
            seconds: start.elapsed().as_secs_f64(),
            residual_history: history,
            counters: self.counters.snapshot(),
            solver_name: self.name(),
            fingerprint: None,
        }
    }

    fn name(&self) -> String {
        format!("{}-CG", self.config.prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precond::PrecondKind;
    use f3r_sparse::gen::hpcg::hpcg_matrix;
    use f3r_sparse::gen::rhs::random_rhs;
    use f3r_sparse::scaling::jacobi_scale;

    fn solve_with(precond_prec: Precision) -> SolveResult {
        let a = jacobi_scale(&hpcg_matrix(8, 8, 4));
        let n = a.n_rows();
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let mut solver = CgSolver::new(
            pm,
            BaselineConfig {
                precond: PrecondKind::Ic0 { alpha: 1.0 },
                precond_prec,
                tol: 1e-8,
                max_iterations: 2000,
            },
        );
        let b = random_rhs(n, 17);
        let mut x = vec![0.0; n];
        solver.solve(&b, &mut x)
    }

    #[test]
    fn fp64_cg_converges_on_hpcg() {
        let res = solve_with(Precision::Fp64);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        assert!(res.final_relative_residual < 1e-7);
        // one application before the loop plus one per non-final iteration
        assert_eq!(res.precond_applications as usize, res.outer_iterations);
    }

    #[test]
    fn fp16_preconditioner_storage_still_converges() {
        let res64 = solve_with(Precision::Fp64);
        let res16 = solve_with(Precision::Fp16);
        assert!(res16.converged);
        // fp16 preconditioner storage may cost some iterations but not an
        // order of magnitude (the paper observes near-identical counts).
        assert!(
            (res16.outer_iterations as f64) < 3.0 * res64.outer_iterations as f64,
            "{} vs {}",
            res16.outer_iterations,
            res64.outer_iterations
        );
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = jacobi_scale(&hpcg_matrix(4, 4, 4));
        let n = a.n_rows();
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let mut solver = CgSolver::new(pm, BaselineConfig::default());
        let b = vec![0.0; n];
        let mut x = vec![1.0; n];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn name_reflects_preconditioner_precision() {
        let a = jacobi_scale(&hpcg_matrix(3, 3, 3));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let solver = CgSolver::new(
            pm,
            BaselineConfig {
                precond_prec: Precision::Fp16,
                ..BaselineConfig::default()
            },
        );
        assert_eq!(solver.name(), "fp16-CG");
    }
}
