//! Conventional preconditioned Krylov baselines used in Section 5 of the
//! paper: CG, BiCGStab and restarted FGMRES(64).
//!
//! All three are fp64 solvers whose primary preconditioner `M` is stored in a
//! configurable precision (fp64/fp32/fp16), exactly matching the paper's
//! `fp64-CG` / `fp32-CG` / `fp16-CG` (etc.) nomenclature.

pub mod bicgstab;
pub mod cg;
pub mod restarted_fgmres;

use f3r_precision::Precision;
use f3r_precond::PrecondKind;

pub use bicgstab::BiCgStabSolver;
pub use cg::CgSolver;
pub use restarted_fgmres::RestartedFgmresSolver;

/// Configuration shared by the baseline solvers.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Primary preconditioner kind.
    pub precond: PrecondKind,
    /// Storage precision of the preconditioner (the fp64/fp32/fp16 prefix of
    /// the solver name in the paper).
    pub precond_prec: Precision,
    /// Convergence tolerance on ‖b − A x‖₂ / ‖b‖₂ (paper: 1e-8).
    pub tol: f64,
    /// Maximum iterations (paper: 19 200; scale down for laptop-size runs).
    pub max_iterations: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            precond: PrecondKind::Ilu0 { alpha: 1.0 },
            precond_prec: Precision::Fp64,
            tol: 1e-8,
            max_iterations: 19_200,
        }
    }
}

impl BaselineConfig {
    /// Name prefix derived from the preconditioner storage precision.
    #[must_use]
    pub fn prefix(&self) -> &'static str {
        self.precond_prec.name()
    }
}
