//! Restarted FGMRES — the paper's `FGMRES(64)` baseline.
//!
//! A single level of FGMRES with restart cycle `m` (default 64), flexible
//! preconditioning directly by the primary preconditioner `M`, restarted
//! until convergence or until the iteration budget (19 200 in the paper) is
//! exhausted.

use std::sync::Arc;
use std::time::Instant;

use f3r_precision::{KernelCounters, Precision};
use f3r_sparse::blas1;

use crate::baseline::BaselineConfig;
use crate::convergence::{SolveResult, SparseSolver, StopReason};
use crate::fgmres::{fgmres_cycle, CycleParams, FgmresWorkspace};
use crate::inner::PrecondInner;
use crate::operator::{MatrixStorage, ProblemMatrix};
use crate::precond_any::AnyPrecond;

/// Restarted FGMRES(m) in fp64 with a mixed-precision-stored preconditioner.
pub struct RestartedFgmresSolver {
    matrix: Arc<ProblemMatrix>,
    precond: Arc<AnyPrecond>,
    counters: Arc<KernelCounters>,
    config: BaselineConfig,
    restart: usize,
    ws: FgmresWorkspace<f64>,
}

impl RestartedFgmresSolver {
    /// Build the solver for `matrix` with restart cycle `restart` (the paper
    /// uses 64).
    #[must_use]
    pub fn new(matrix: Arc<ProblemMatrix>, restart: usize, config: BaselineConfig) -> Self {
        let counters = KernelCounters::new_shared();
        let precond = Arc::new(AnyPrecond::for_matrix(
            &matrix,
            &config.precond,
            config.precond_prec,
        ));
        let n = matrix.dim();
        Self {
            matrix,
            precond,
            counters,
            config,
            restart,
            ws: FgmresWorkspace::new(n, restart),
        }
    }

    /// The restart cycle length.
    #[must_use]
    pub fn restart(&self) -> usize {
        self.restart
    }
}

impl SparseSolver for RestartedFgmresSolver {
    fn solve(&mut self, b: &[f64], x: &mut [f64]) -> SolveResult {
        let n = self.matrix.dim();
        assert_eq!(b.len(), n, "fgmres(m): b length mismatch");
        assert_eq!(x.len(), n, "fgmres(m): x length mismatch");
        let start = Instant::now();
        self.counters.reset();
        for xi in x.iter_mut() {
            *xi = 0.0;
        }
        let bnorm = blas1::norm2(b);
        let mut history = Vec::new();
        let mut converged = bnorm == 0.0;
        let mut stop_reason = if converged {
            StopReason::Converged
        } else {
            StopReason::MaxIterations
        };
        let mut total_iterations = 0usize;

        if !converged {
            let abs_tol = self.config.tol * bnorm;
            let mut inner =
                PrecondInner::<f64>::new(Arc::clone(&self.precond), Arc::clone(&self.counters), 2);
            let max_cycles = self.config.max_iterations.div_ceil(self.restart);
            for cycle in 0..max_cycles {
                let outcome = fgmres_cycle(
                    CycleParams {
                        matrix: &self.matrix,
                        mat_storage: MatrixStorage::Plain(Precision::Fp64),
                        inner: &mut inner,
                        abs_tol: Some(abs_tol),
                        x_nonzero: cycle > 0,
                        depth: 1,
                        counters: &self.counters,
                        progress: None,
                    },
                    x,
                    b,
                    &mut self.ws,
                );
                total_iterations += outcome.iterations;
                let true_rel = self.matrix.true_relative_residual(x, b);
                history.push(true_rel);
                if !true_rel.is_finite() {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                if true_rel < self.config.tol {
                    converged = true;
                    stop_reason = StopReason::Converged;
                    break;
                }
                if outcome.breakdown && outcome.iterations == 0 {
                    stop_reason = StopReason::Breakdown;
                    break;
                }
                if total_iterations >= self.config.max_iterations {
                    break;
                }
            }
        }

        let final_rel = self.matrix.true_relative_residual(x, b);
        SolveResult {
            converged,
            stop_reason,
            outer_iterations: total_iterations,
            precond_applications: self.counters.snapshot().precond_applies,
            final_relative_residual: final_rel,
            seconds: start.elapsed().as_secs_f64(),
            residual_history: history,
            counters: self.counters.snapshot(),
            solver_name: self.name(),
            fingerprint: None,
        }
    }

    fn name(&self) -> String {
        format!("{}-FGMRES({})", self.config.prefix(), self.restart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precond::PrecondKind;
    use f3r_sparse::gen::hpgmp::hpgmp_matrix;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::gen::rhs::random_rhs;
    use f3r_sparse::scaling::jacobi_scale;

    #[test]
    fn converges_on_spd_problem() {
        let a = jacobi_scale(&poisson2d_5pt(16, 16));
        let n = a.n_rows();
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let mut solver = RestartedFgmresSolver::new(
            pm,
            64,
            BaselineConfig {
                precond: PrecondKind::Ic0 { alpha: 1.0 },
                max_iterations: 2000,
                ..BaselineConfig::default()
            },
        );
        let b = random_rhs(n, 9);
        let mut x = vec![0.0; n];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        assert_eq!(solver.restart(), 64);
        assert_eq!(solver.name(), "fp64-FGMRES(64)");
    }

    #[test]
    fn converges_on_nonsymmetric_problem_with_fp16_preconditioner() {
        let a = jacobi_scale(&hpgmp_matrix(6, 6, 6, 0.5));
        let n = a.n_rows();
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let mut solver = RestartedFgmresSolver::new(
            pm,
            64,
            BaselineConfig {
                precond: PrecondKind::Ilu0 { alpha: 1.0 },
                precond_prec: Precision::Fp16,
                max_iterations: 2000,
                ..BaselineConfig::default()
            },
        );
        let b = random_rhs(n, 31);
        let mut x = vec![0.0; n];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        assert_eq!(solver.name(), "fp16-FGMRES(64)");
        // Every FGMRES iteration applies M exactly once.
        assert_eq!(res.precond_applications as usize, res.outer_iterations);
    }

    #[test]
    fn iteration_budget_is_respected() {
        // An unpreconditioned, harder problem with a tiny budget must stop at
        // the budget without claiming convergence.
        let a = jacobi_scale(&poisson2d_5pt(24, 24));
        let n = a.n_rows();
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let mut solver = RestartedFgmresSolver::new(
            pm,
            8,
            BaselineConfig {
                precond: PrecondKind::Identity,
                max_iterations: 16,
                tol: 1e-12,
                ..BaselineConfig::default()
            },
        );
        let b = random_rhs(n, 3);
        let mut x = vec![0.0; n];
        let res = solver.solve(&b, &mut x);
        assert!(!res.converged);
        assert_eq!(res.outer_iterations, 16);
        assert_eq!(res.stop_reason, StopReason::MaxIterations);
    }
}
