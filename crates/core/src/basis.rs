//! Compressed storage for Krylov and flexible (preconditioned) bases.
//!
//! The FGMRES levels of a nested solver keep two sets of `m`-ish vectors
//! alive per cycle: the Arnoldi basis `v_1 … v_{m+1}` and the flexible basis
//! `z_1 … z_m`.  Re-streaming those vectors — classical Gram–Schmidt reads
//! the whole Arnoldi basis every iteration — is the dominant BLAS-1 memory
//! traffic of a cycle (the `(5/2)·m²` term of the paper's Section 4.1
//! model).  Because the solver is *flexible*, the bases can be stored below
//! the working precision at negligible convergence cost (the compressed-basis
//! GMRES of Aliaga et al.): this module provides that storage layer.
//!
//! A [`CompressedBasis<S>`] holds each vector as elements in the storage
//! precision `S` plus one `f64` amplitude scale per vector; the represented
//! vector is `scale * stored`.  When `S` is narrower than the working
//! precision, the scale is a power of two chosen so `|stored| <= 1` (see
//! [`f3r_sparse::blas1::narrow_scaled_into`]), which keeps fp16 storage
//! inside its narrow exponent range — vectors whose amplitude is far
//! outside `[2^-14, 2^15]` survive compression, which is what makes fp16
//! storage usable at all for Krylov vectors.  Same-precision storage
//! (`S` = working precision) stores the values verbatim with the
//! coefficient carried in the scale: lossless, and free of the amplitude
//! reduction pass, so a solver configured without compression is
//! numerically and nearly cost-wise unchanged.
//!
//! The solver never decompresses a whole basis: the mixed-precision kernels
//! in [`f3r_sparse::blas1`] (`dot2_compressed`, `axpy_scaled_from`, …)
//! operate on the stored form directly, widening each element exactly once
//! into the working accumulator, so basis sweeps run at the *storage*
//! precision's memory bandwidth.
//!
//! # Example
//!
//! Compress a double-precision vector into fp16 storage and bound the
//! round-trip error by fp16's unit roundoff relative to the amplitude:
//!
//! ```
//! use f3r_core::basis::CompressedBasis;
//! use f3r_precision::{f16, Precision};
//!
//! // A vector whose entries sit far below fp16's subnormal floor (~6e-8):
//! // the per-vector amplitude scale keeps them alive.
//! let x: Vec<f64> = (0..64).map(|i| (i as f64 - 31.5) * 1.0e-12).collect();
//!
//! let mut basis = CompressedBasis::<f16>::new(64, 1);
//! basis.compress_scaled(0, 1.0, &x);
//! assert_eq!(CompressedBasis::<f16>::storage_precision(), Precision::Fp16);
//!
//! let mut back = vec![0.0f64; 64];
//! basis.decompress_into(0, &mut back);
//!
//! let amax = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
//! for (&orig, &rt) in x.iter().zip(back.iter()) {
//!     // One fp16 rounding on values scaled into [-1, 1]: the element-wise
//!     // error is at most eps_fp16 = 2^-10 times the vector amplitude.
//!     assert!((orig - rt).abs() <= amax * 2.0f64.powi(-10));
//! }
//! ```

use f3r_precision::{Precision, Scalar};
use f3r_sparse::blas1;

/// A set of basis vectors stored in precision `S` with one `f64` amplitude
/// scale per vector (represented vector = `scale * stored`).
///
/// See the [module documentation](self) for the storage scheme and the
/// crate-level docs for how FGMRES uses it.
pub struct CompressedBasis<S> {
    n: usize,
    scales: Vec<f64>,
    vecs: Vec<Vec<S>>,
}

impl<S: Scalar> CompressedBasis<S> {
    /// Allocate storage for `count` vectors of length `n` (all zero, scale 0).
    #[must_use]
    pub fn new(n: usize, count: usize) -> Self {
        Self {
            n,
            scales: vec![0.0; count],
            vecs: (0..count).map(|_| vec![S::zero(); n]).collect(),
        }
    }

    /// Vector length.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of vector slots.
    #[must_use]
    pub fn count(&self) -> usize {
        self.vecs.len()
    }

    /// The storage precision `S` as a runtime tag.
    #[must_use]
    pub fn storage_precision() -> Precision {
        S::PRECISION
    }

    /// Bytes occupied by one stored vector (the traffic one basis sweep
    /// moves; the per-vector scale is a scalar and is not counted).
    #[must_use]
    pub fn vector_bytes(&self) -> u64 {
        (self.n as u64) * S::bytes() as u64
    }

    /// Total heap bytes held by the basis: every stored vector plus the
    /// per-vector amplitude scales (the resident footprint, as opposed to
    /// the per-sweep traffic of [`vector_bytes`](Self::vector_bytes)).
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        self.vecs
            .iter()
            .map(|v| v.len() as u64 * S::bytes() as u64)
            .sum::<u64>()
            + self.scales.len() as u64 * 8
    }

    /// Compress `alpha * src` into slot `j` (one amplitude-scale reduction
    /// plus one narrowing sweep; see
    /// [`f3r_sparse::blas1::narrow_scaled_into`]).
    pub fn compress_scaled<T: Scalar>(&mut self, j: usize, alpha: f64, src: &[T]) {
        self.scales[j] = blas1::narrow_scaled_into(alpha, src, &mut self.vecs[j]);
    }

    /// Decompress slot `j` into a working-precision vector.
    pub fn decompress_into<T: Scalar>(&self, j: usize, dst: &mut [T]) {
        blas1::widen_scaled_into(self.scales[j], &self.vecs[j], dst);
    }

    /// Borrow the stored form of slot `j`: `(stored elements, scale)`.
    #[must_use]
    pub fn vector(&self, j: usize) -> (&[S], f64) {
        (&self.vecs[j], self.scales[j])
    }

    /// Euclidean norm of the represented vector in slot `j`.
    #[must_use]
    pub fn norm2(&self, j: usize) -> f64 {
        blas1::norm2_compressed(&self.vecs[j], self.scales[j])
    }

    /// Compress the `alphas.len()` columns of a column-major panel into the
    /// consecutive slots `first .. first + alphas.len()` (column `c` of the
    /// panel is `src[c*n .. (c+1)*n]`, scaled by `alphas[c]`).
    ///
    /// Each column is an independent vector with its own amplitude scale, so
    /// this is a per-column loop over [`compress_scaled`](Self::compress_scaled):
    /// there is no shared operand to amortize (every column is read and
    /// written exactly once either way), and keeping the per-column kernels
    /// makes the results bitwise identical to individual calls — the
    /// invariant the batched FGMRES parity rests on.
    ///
    /// # Panics
    /// Panics if `src` is not `dim() * alphas.len()` elements long or a slot
    /// index is out of range.
    pub fn compress_panel<T: Scalar>(&mut self, first: usize, alphas: &[f64], src: &[T]) {
        let k = alphas.len();
        assert_eq!(src.len(), self.n * k, "compress_panel: panel length mismatch");
        for (c, &alpha) in alphas.iter().enumerate() {
            self.compress_scaled(first + c, alpha, &src[c * self.n..(c + 1) * self.n]);
        }
    }

    /// Decompress the consecutive slots `first .. first + k` into the columns
    /// of a column-major panel (bitwise equal to per-slot
    /// [`decompress_into`](Self::decompress_into) calls; see
    /// [`compress_panel`](Self::compress_panel) for why the per-column form
    /// is kept).
    ///
    /// # Panics
    /// Panics if `dst` is not `dim() * k` elements long or a slot index is
    /// out of range.
    pub fn decompress_panel<T: Scalar>(&self, first: usize, k: usize, dst: &mut [T]) {
        assert_eq!(dst.len(), self.n * k, "decompress_panel: panel length mismatch");
        for c in 0..k {
            self.decompress_into(first + c, &mut dst[c * self.n..(c + 1) * self.n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precision::f16;

    #[test]
    fn same_precision_round_trip_is_lossless() {
        let x: Vec<f64> = (0..100).map(|i| ((i * 13) % 37) as f64 - 18.0).collect();
        let mut basis = CompressedBasis::<f64>::new(100, 2);
        basis.compress_scaled(0, 1.0, &x);
        let mut back = vec![0.0f64; 100];
        basis.decompress_into(0, &mut back);
        assert_eq!(x, back);
        // Slot 1 untouched: zero vector, zero scale.
        assert_eq!(basis.norm2(1), 0.0);
        assert_eq!(basis.vector(1).1, 0.0);
    }

    #[test]
    fn fp16_storage_preserves_direction_to_storage_eps() {
        let n = 500;
        let x: Vec<f64> = (0..n).map(|i| (((i * 7) % 113) as f64 - 56.0) * 1e5).collect();
        let mut basis = CompressedBasis::<f16>::new(n, 1);
        basis.compress_scaled(0, 1.0, &x);
        let mut back = vec![0.0f64; n];
        basis.decompress_into(0, &mut back);
        let amax = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (&a, &b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() <= amax * 2.0f64.powi(-10));
        }
        let nrm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((basis.norm2(0) - nrm).abs() < 2e-3 * nrm);
    }

    #[test]
    fn panel_round_trip_matches_per_slot_calls() {
        let n = 64;
        let k = 3;
        let src: Vec<f64> = (0..n * k).map(|i| ((i as f64) * 0.37 - 20.0).cos() * 1e-6).collect();
        let alphas = [1.0, 0.5, -2.0];

        let mut panel = CompressedBasis::<f16>::new(n, 2 + k);
        panel.compress_panel(2, &alphas, &src);
        let mut slots = CompressedBasis::<f16>::new(n, 2 + k);
        for (c, &alpha) in alphas.iter().enumerate() {
            slots.compress_scaled(2 + c, alpha, &src[c * n..(c + 1) * n]);
        }
        for c in 0..k {
            assert_eq!(panel.vector(2 + c).0, slots.vector(2 + c).0, "column {c}");
            assert_eq!(panel.vector(2 + c).1, slots.vector(2 + c).1, "column {c}");
        }

        let mut back_panel = vec![0.0f64; n * k];
        panel.decompress_panel(2, k, &mut back_panel);
        for c in 0..k {
            let mut back = vec![0.0f64; n];
            slots.decompress_into(2 + c, &mut back);
            assert_eq!(&back_panel[c * n..(c + 1) * n], &back[..], "column {c}");
        }
    }

    #[test]
    #[should_panic(expected = "compress_panel: panel length mismatch")]
    fn panel_length_mismatch_panics() {
        let mut b = CompressedBasis::<f32>::new(8, 4);
        b.compress_panel(0, &[1.0, 1.0], &[0.0f64; 8]);
    }

    #[test]
    fn geometry_accessors() {
        let b = CompressedBasis::<f16>::new(64, 5);
        assert_eq!(b.dim(), 64);
        assert_eq!(b.count(), 5);
        assert_eq!(b.vector_bytes(), 128);
        assert_eq!(CompressedBasis::<f16>::storage_precision(), Precision::Fp16);
        assert_eq!(CompressedBasis::<f32>::storage_precision(), Precision::Fp32);
    }
}
