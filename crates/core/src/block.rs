//! Block (multi-right-hand-side) FGMRES cycles: `k` independent Arnoldi
//! recurrences sharing one pass over the matrix per iteration.
//!
//! The F3R solvers are memory-bound and their traffic is dominated by the
//! matrix stream of the inner levels (Section 4.1): every Arnoldi iteration
//! of every level re-reads the values, column indices and row pointers of
//! `A`.  When `k` right-hand sides are solved together, that stream can be
//! amortized — one [`ProblemMatrix::apply_multi`] pass multiplies all `k`
//! iteration vectors while `A` crosses memory once, cutting the per-RHS
//! matrix traffic to `1/k` of the single-RHS cost.
//!
//! # Not a block Krylov method
//!
//! This module deliberately does **not** implement block GMRES with a shared
//! Krylov space: each column runs its own FGMRES recurrence (own Arnoldi
//! basis, own Hessenberg/Givens factorisation, own convergence state) and
//! the columns only meet at the shared kernel calls.  The payoff is exact
//! reproducibility: because the batched SpMM produces each column bitwise
//! equal to the single-vector SpMV (see [`f3r_sparse::spmv`]) and all panel
//! BLAS-1 work is a documented per-column loop over the single-vector
//! kernels, a batched solve computes, per column, the *same floating-point
//! sequence* as `k` sequential solves — convergence behaviour, iteration
//! counts and results are identical, only the memory traffic changes.  (The
//! one exception is the adaptive-weight Richardson level, whose weight state
//! evolves across applications in application order; see
//! [`InnerSolver::apply_panel`].)
//!
//! # Deflation
//!
//! Columns converge (or break down) at different iterations.  A column that
//! finishes mid-cycle leaves the *active set*: the panels handed to the
//! inner solver and the SpMM are packed over the still-active columns, so a
//! batch never pays matrix or preconditioner work for columns that are done.
//! Cross-iteration state (basis slots, Hessenberg columns) stays keyed by
//! the original column index, so deflation does not disturb the surviving
//! recurrences.
//!
//! The driving use sites are [`SolveSession::solve_batch`] (outermost level)
//! and [`FgmresLevel::apply_panel`] (inner levels), which chain block cycles
//! through the whole nesting hierarchy.
//!
//! [`SolveSession::solve_batch`]: crate::session::SolveSession::solve_batch
//! [`FgmresLevel::apply_panel`]: crate::fgmres::FgmresLevel

use f3r_precision::traffic::TrafficModel;
use f3r_precision::{KernelCounters, Precision, Scalar};
use f3r_sparse::blas1;

use crate::basis::CompressedBasis;
use crate::fgmres::{givens, CycleOutcome};
use crate::inner::InnerSolver;
use crate::operator::{MatrixStorage, ProblemMatrix};

/// Workspace for block FGMRES cycles of up to `m` iterations on up to `k`
/// simultaneous right-hand sides, working in precision `T` with bases stored
/// in precision `S` (default uncompressed, `S = T`).
///
/// Layout: the Arnoldi slot of basis vector `j` of column `c` is
/// `j * max_columns() + c` (and likewise for the flexible basis), so the
/// per-column recurrences stay addressable after mid-cycle deflation packs
/// the working panels.
pub struct BlockFgmresWorkspace<T, S = T> {
    n: usize,
    m: usize,
    k: usize,
    /// Arnoldi bases, `(m + 1) * k` slots (slot of `v_j` of column `c` is
    /// `j * k + c`).
    basis: CompressedBasis<S>,
    /// Flexible bases, `m * k` slots with the same keying.
    zbasis: CompressedBasis<S>,
    /// Per-column Hessenberg columns after Givens rotations;
    /// `h[c][j]` has length `j + 2`.
    h: Vec<Vec<Vec<f64>>>,
    cs: Vec<Vec<f64>>,
    sn: Vec<Vec<f64>>,
    g: Vec<Vec<f64>>,
    y: Vec<Vec<f64>>,
    /// Column-major panel of the vectors being orthogonalised.
    w: Vec<T>,
    /// Working-precision panel of decompressed `v_j` columns (packed over the
    /// active set), handed to the flexible preconditioner.
    vj: Vec<T>,
    /// Working-precision panel of preconditioner results (the SpMM input).
    zj: Vec<T>,
}

impl<T: Scalar, S: Scalar> BlockFgmresWorkspace<T, S> {
    /// Allocate workspace for cycles of up to `m` iterations on up to `k`
    /// columns of length `n`.
    #[must_use]
    pub fn new(n: usize, m: usize, k: usize) -> Self {
        Self {
            n,
            m,
            k,
            basis: CompressedBasis::new(n, (m + 1) * k),
            zbasis: CompressedBasis::new(n, m * k),
            h: (0..k)
                .map(|_| (0..m).map(|j| vec![0.0; j + 2]).collect())
                .collect(),
            cs: vec![vec![0.0; m]; k],
            sn: vec![vec![0.0; m]; k],
            g: vec![vec![0.0; m + 1]; k],
            y: vec![vec![0.0; m]; k],
            w: vec![T::zero(); n * k],
            vj: vec![T::zero(); n * k],
            zj: vec![T::zero(); n * k],
        }
    }

    /// Vector length.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Maximum cycle length.
    #[must_use]
    pub fn cycle_length(&self) -> usize {
        self.m
    }

    /// Maximum number of simultaneous right-hand sides.
    #[must_use]
    pub fn max_columns(&self) -> usize {
        self.k
    }

    /// Storage precision of the Arnoldi and flexible bases.
    #[must_use]
    pub fn basis_precision(&self) -> Precision {
        S::PRECISION
    }

    /// Total heap bytes of the block workspace: both compressed bases, the
    /// per-column Hessenberg/rotation/solution arrays and the three
    /// working-precision panels.
    #[must_use]
    pub fn workspace_bytes(&self) -> u64 {
        let dense: usize = self
            .h
            .iter()
            .flat_map(|cols| cols.iter().map(Vec::len))
            .sum::<usize>()
            + self.cs.iter().map(Vec::len).sum::<usize>()
            + self.sn.iter().map(Vec::len).sum::<usize>()
            + self.g.iter().map(Vec::len).sum::<usize>()
            + self.y.iter().map(Vec::len).sum::<usize>();
        let panels = (self.w.len() + self.vj.len() + self.zj.len()) as u64;
        self.basis.storage_bytes()
            + self.zbasis.storage_bytes()
            + dense as u64 * 8
            + panels * T::bytes() as u64
    }
}

/// Parameters of one block FGMRES cycle (the batched twin of
/// [`CycleParams`](crate::fgmres::CycleParams); there is no progress hook —
/// batched solves report per-cycle, not per-iteration).
pub struct BlockCycleParams<'a, T: Scalar> {
    /// Multi-precision coefficient matrix.
    pub matrix: &'a ProblemMatrix,
    /// Storage of the matrix variant streamed by the SpMM in this cycle.
    pub mat_storage: MatrixStorage,
    /// Flexible preconditioner (the next nesting level), applied panel-wise.
    pub inner: &'a mut dyn InnerSolver<T>,
    /// Per-column absolute tolerances on the residual estimate; `None` runs
    /// all `m` iterations on every column (inner levels never check
    /// convergence, Section 4.2).
    pub abs_tols: Option<&'a [f64]>,
    /// Whether the incoming solution panel is nonzero (true only for
    /// outermost restarts).
    pub x_nonzero: bool,
    /// Nesting depth for the iteration counters (1 = outermost).
    pub depth: usize,
    /// Shared kernel counters.
    pub counters: &'a KernelCounters,
}

/// Per-column bookkeeping of a running block cycle.
struct ColState {
    iters: usize,
    res_est: f64,
    converged: bool,
    breakdown: bool,
    beta: f64,
    done: bool,
}

/// Run one block FGMRES cycle of at most `ws.cycle_length()` iterations on
/// the `k` systems `A x_c = b_c` (column `c` of the column-major panels `xs`
/// and `bs`), updating `xs` in place and returning one
/// [`CycleOutcome`] per column.
///
/// Each column executes exactly the floating-point sequence of
/// [`fgmres_cycle`](crate::fgmres::fgmres_cycle) on its own system — same
/// Gram–Schmidt pairing, same Givens updates, same breakdown and tolerance
/// checks — while the SpMVs of all active columns fuse into one
/// [`ProblemMatrix::apply_multi`] pass and the flexible preconditioner is
/// applied panel-wise.  Kernel-counter records are replicated per column
/// (basis and BLAS-1 traffic really is per-column work; only the matrix
/// stream is shared, which [`KernelCounters::record_spmm`] attributes once
/// per batched pass).
///
/// # Panics
/// Panics if `k` exceeds `ws.max_columns()`, a panel is not `dim() * k`
/// elements long, or `abs_tols` is given with a length other than `k`.
pub fn block_fgmres_cycle<T: Scalar, S: Scalar>(
    params: BlockCycleParams<'_, T>,
    xs: &mut [T],
    bs: &[T],
    ws: &mut BlockFgmresWorkspace<T, S>,
    k: usize,
) -> Vec<CycleOutcome> {
    let BlockCycleParams {
        matrix,
        mat_storage,
        inner,
        abs_tols,
        x_nonzero,
        depth,
        counters,
    } = params;
    let n = ws.n;
    let m = ws.m;
    // Basis slots are strided by the workspace's column capacity, not the
    // call's column count, so a cycle on fewer columns reuses the workspace.
    let kw = ws.k;
    assert!(k <= kw, "block fgmres: more columns than the workspace holds");
    assert_eq!(xs.len(), n * k, "block fgmres: xs panel length mismatch");
    assert_eq!(bs.len(), n * k, "block fgmres: bs panel length mismatch");
    if let Some(tols) = abs_tols {
        assert_eq!(tols.len(), k, "block fgmres: one tolerance per column");
    }
    if k == 0 {
        return Vec::new();
    }
    let sp = S::PRECISION;
    let one_vec = TrafficModel::basis_bytes(n, 1, sp);
    // See `fgmres_cycle`: narrowing compression reads the source twice.
    let compress_reads = if sp == T::PRECISION { 1 } else { 2 };

    // r0 = b - A x per column (the residual SpMV is fused per column, as in
    // the single-RHS cycle; with a zero panel the copy suffices).
    if x_nonzero {
        for c in 0..k {
            matrix.residual(
                mat_storage,
                &xs[c * n..(c + 1) * n],
                &bs[c * n..(c + 1) * n],
                &mut ws.w[c * n..(c + 1) * n],
                counters,
            );
        }
    } else {
        ws.w[..n * k].copy_from_slice(bs);
    }
    let betas = blas1::norm2_panel(&ws.w[..n * k], k);
    for _ in 0..k {
        counters.record_blas1(T::PRECISION, TrafficModel::blas1_bytes(n, 1, 0, T::PRECISION));
    }

    let mut state: Vec<ColState> = Vec::with_capacity(k);
    for (c, &beta) in betas.iter().enumerate() {
        let mut st = ColState {
            iters: 0,
            res_est: beta,
            converged: false,
            breakdown: false,
            beta,
            done: false,
        };
        if !beta.is_finite() {
            st.res_est = f64::NAN;
            st.breakdown = true;
            st.done = true;
        } else if beta == 0.0 {
            // x_c already solves its system (or v_c = 0 for an inner level).
            st.converged = true;
            st.done = true;
        } else {
            // v_1 = r0 / beta, compressed on write; slot of (j = 0, c) is c.
            ws.basis.compress_scaled(c, 1.0 / beta, &ws.w[c * n..(c + 1) * n]);
            counters.record_blas1(
                T::PRECISION,
                TrafficModel::blas1_bytes(n, compress_reads, 0, T::PRECISION),
            );
            counters.record_basis_traffic(sp, 0, one_vec);
            ws.g[c].iter_mut().for_each(|v| *v = 0.0);
            ws.g[c][0] = beta;
        }
        state.push(st);
    }

    let mut active: Vec<usize> = Vec::with_capacity(k);
    for j in 0..m {
        active.clear();
        active.extend(
            state
                .iter()
                .enumerate()
                .filter(|(_, st)| !st.done)
                .map(|(c, _)| c),
        );
        let ka = active.len();
        if ka == 0 {
            break;
        }

        // Flexible preconditioning z_j = S^{(d+1)}(v_j) for every active
        // column, then ONE pass over A multiplies the whole panel.
        for (p, &c) in active.iter().enumerate() {
            ws.basis.decompress_into(j * kw + c, &mut ws.vj[p * n..(p + 1) * n]);
            counters.record_basis_traffic(sp, one_vec, 0);
            counters.record_blas1(T::PRECISION, TrafficModel::blas1_bytes(n, 0, 1, T::PRECISION));
        }
        inner.apply_panel(&ws.vj[..ka * n], &mut ws.zj[..ka * n], ka);
        matrix.apply_multi(mat_storage, &ws.zj[..ka * n], &mut ws.w[..ka * n], ka, counters);
        for (p, &c) in active.iter().enumerate() {
            ws.zbasis.compress_scaled(j * kw + c, 1.0, &ws.zj[p * n..(p + 1) * n]);
            counters.record_basis_traffic(sp, 0, one_vec);
            counters.record_blas1(
                T::PRECISION,
                TrafficModel::blas1_bytes(n, compress_reads, 0, T::PRECISION),
            );
        }

        // The rest of the iteration is per-column state; each column repeats
        // the single-RHS cycle verbatim against its own basis slots.
        for (p, &c) in active.iter().enumerate() {
            let st = &mut state[c];
            let wcol = &mut ws.w[p * n..(p + 1) * n];
            let hcol = &mut ws.h[c][j];

            // Classical Gram–Schmidt coefficients, paired exactly like the
            // single-RHS cycle (two stored basis vectors per fused sweep).
            let mut i = 0;
            while i < j {
                let (vi, si) = ws.basis.vector(i * kw + c);
                let (vi1, si1) = ws.basis.vector((i + 1) * kw + c);
                let (hi, hi1) = blas1::dot2_compressed(wcol, vi, si, vi1, si1);
                hcol[i] = hi;
                hcol[i + 1] = hi1;
                i += 2;
            }
            if i <= j {
                let (vi, si) = ws.basis.vector(i * kw + c);
                hcol[i] = blas1::dot_compressed(wcol, vi, si);
            }
            counters.record_blas1(
                T::PRECISION,
                TrafficModel::blas1_bytes(n, j + 1, 0, T::PRECISION),
            );
            counters.record_basis_traffic(sp, TrafficModel::basis_bytes(n, j + 1, sp), 0);
            // Orthogonalisation; the last update is fused with the norm.
            for (i, &hi) in hcol.iter().enumerate().take(j) {
                let (vi, si) = ws.basis.vector(i * kw + c);
                blas1::axpy_scaled_from(-hi, vi, si, wcol);
            }
            let hnext = {
                let (vjs, sj) = ws.basis.vector(j * kw + c);
                blas1::axpy_scaled_norm2(-hcol[j], vjs, sj, wcol).sqrt()
            };
            counters.record_blas1(
                T::PRECISION,
                TrafficModel::blas1_bytes(n, j + 1, j + 1, T::PRECISION),
            );
            counters.record_basis_traffic(sp, TrafficModel::basis_bytes(n, j + 1, sp), 0);
            hcol[j + 1] = hnext;

            // Givens update of this column's Hessenberg factorisation.
            for i in 0..j {
                let (cr, sr) = (ws.cs[c][i], ws.sn[c][i]);
                let tmp = cr * hcol[i] + sr * hcol[i + 1];
                hcol[i + 1] = -sr * hcol[i] + cr * hcol[i + 1];
                hcol[i] = tmp;
            }
            let (cr, sr) = givens(hcol[j], hcol[j + 1]);
            ws.cs[c][j] = cr;
            ws.sn[c][j] = sr;
            hcol[j] = cr * hcol[j] + sr * hcol[j + 1];
            hcol[j + 1] = 0.0;
            ws.g[c][j + 1] = -sr * ws.g[c][j];
            ws.g[c][j] *= cr;
            st.res_est = ws.g[c][j + 1].abs();
            st.iters = j + 1;

            if !st.res_est.is_finite() || !hnext.is_finite() {
                st.breakdown = true;
                st.done = true;
                continue;
            }
            if hnext <= f64::EPSILON * st.beta {
                // Lucky breakdown: this column's Krylov space is invariant.
                st.breakdown = true;
                st.converged = abs_tols.is_none_or(|t| st.res_est <= t[c]);
                st.done = true;
                continue;
            }
            ws.basis
                .compress_scaled((j + 1) * kw + c, 1.0 / hnext, wcol);
            counters.record_blas1(
                T::PRECISION,
                TrafficModel::blas1_bytes(n, compress_reads, 0, T::PRECISION),
            );
            counters.record_basis_traffic(sp, 0, one_vec);

            if let Some(tols) = abs_tols {
                if st.res_est <= tols[c] {
                    st.converged = true;
                    st.done = true;
                }
            }
        }
    }
    for st in &state {
        counters.record_level_iterations(depth, st.iters as u64);
    }

    // Per-column solution update x_c += Z_c y_c over the iterations that
    // column actually completed.
    for (c, st) in state.iter().enumerate() {
        let iters = st.iters;
        if iters == 0 {
            continue;
        }
        {
            let y = &mut ws.y[c][..iters];
            for i in (0..iters).rev() {
                let mut sum = ws.g[c][i];
                for (hk, &yk) in ws.h[c][(i + 1)..iters].iter().zip(y[(i + 1)..iters].iter()) {
                    sum -= hk[i] * yk;
                }
                let rii = ws.h[c][i][i];
                y[i] = if rii.abs() > 0.0 { sum / rii } else { 0.0 };
            }
        }
        let xcol = &mut xs[c * n..(c + 1) * n];
        for (i, &yi) in ws.y[c][..iters].iter().enumerate() {
            let (zi, si) = ws.zbasis.vector(i * kw + c);
            blas1::axpy_scaled_from(yi, zi, si, xcol);
        }
        counters.record_blas1(
            T::PRECISION,
            TrafficModel::blas1_bytes(n, iters, iters, T::PRECISION),
        );
        counters.record_basis_traffic(sp, TrafficModel::basis_bytes(n, iters, sp), 0);
    }

    state
        .into_iter()
        .map(|st| CycleOutcome {
            iterations: st.iters,
            residual_estimate: st.res_est,
            converged: st.converged,
            breakdown: st.breakdown,
            stopped: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgmres::{fgmres_cycle, CycleParams, FgmresWorkspace};
    use crate::inner::PrecondInner;
    use crate::precond_any::AnyPrecond;
    use f3r_precision::f16;
    use f3r_precond::PrecondKind;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::gen::rhs::random_rhs;
    use f3r_sparse::scaling::jacobi_scale;
    use std::sync::Arc;

    fn setup(nx: usize) -> (Arc<ProblemMatrix>, Arc<AnyPrecond>) {
        let a = jacobi_scale(&poisson2d_5pt(nx, nx));
        let m = Arc::new(AnyPrecond::build(
            &a,
            &PrecondKind::Ilu0 { alpha: 1.0 },
            Precision::Fp64,
        ));
        (Arc::new(ProblemMatrix::from_csr(a)), m)
    }

    fn block_vs_sequential<S: Scalar>(nx: usize, m: usize, k: usize, abs_tol: Option<f64>) {
        let (pm, mp) = setup(nx);
        let n = pm.dim();
        let storage = MatrixStorage::Plain(Precision::Fp64);
        let bs: Vec<Vec<f64>> = (0..k).map(|c| random_rhs(n, 31 + c as u64)).collect();

        // Sequential reference: one fresh single-RHS cycle per column.
        let mut refs = Vec::new();
        let mut ref_outcomes = Vec::new();
        for b in &bs {
            let counters = KernelCounters::new_shared();
            let mut inner = PrecondInner::<f64>::new(Arc::clone(&mp), Arc::clone(&counters), 2);
            let mut ws = FgmresWorkspace::<f64, S>::new(n, m);
            let mut x = vec![0.0f64; n];
            let out = fgmres_cycle(
                CycleParams {
                    matrix: &pm,
                    mat_storage: storage,
                    inner: &mut inner,
                    abs_tol,
                    x_nonzero: false,
                    depth: 1,
                    counters: &counters,
                    progress: None,
                },
                &mut x,
                b,
                &mut ws,
            );
            refs.push(x);
            ref_outcomes.push(out);
        }

        // Block run over the packed panel.
        let counters = KernelCounters::new_shared();
        let mut inner = PrecondInner::<f64>::new(Arc::clone(&mp), Arc::clone(&counters), 2);
        let mut bws = BlockFgmresWorkspace::<f64, S>::new(n, m, k);
        let mut bp = vec![0.0f64; n * k];
        for (c, b) in bs.iter().enumerate() {
            bp[c * n..(c + 1) * n].copy_from_slice(b);
        }
        let mut xp = vec![0.0f64; n * k];
        let tols = abs_tol.map(|t| vec![t; k]);
        let outcomes = block_fgmres_cycle(
            BlockCycleParams {
                matrix: &pm,
                mat_storage: storage,
                inner: &mut inner,
                abs_tols: tols.as_deref(),
                x_nonzero: false,
                depth: 1,
                counters: &counters,
            },
            &mut xp,
            &bp,
            &mut bws,
            k,
        );

        assert_eq!(outcomes.len(), k);
        for c in 0..k {
            assert_eq!(outcomes[c], ref_outcomes[c], "outcome of column {c}");
            assert_eq!(
                &xp[c * n..(c + 1) * n],
                &refs[c][..],
                "solution column {c} must be bitwise equal to the sequential cycle"
            );
        }
    }

    #[test]
    fn block_cycle_columns_are_bitwise_equal_to_sequential_cycles() {
        block_vs_sequential::<f64>(10, 12, 3, None);
        block_vs_sequential::<f64>(8, 20, 5, Some(1e-8));
    }

    #[test]
    fn block_cycle_with_compressed_basis_matches_sequential() {
        block_vs_sequential::<f16>(9, 10, 4, None);
        block_vs_sequential::<f32>(7, 15, 2, Some(1e-6));
    }

    #[test]
    fn mid_cycle_deflation_leaves_survivors_untouched() {
        // Column 0 gets a zero RHS (converges at init), the others run: the
        // survivors must still match their sequential references exactly.
        let (pm, mp) = setup(9);
        let n = pm.dim();
        let storage = MatrixStorage::Plain(Precision::Fp64);
        let k = 3;
        let m = 10;
        let mut bs: Vec<Vec<f64>> = (0..k).map(|c| random_rhs(n, 71 + c as u64)).collect();
        bs[0].iter_mut().for_each(|v| *v = 0.0);

        let counters = KernelCounters::new_shared();
        let mut inner = PrecondInner::<f64>::new(Arc::clone(&mp), Arc::clone(&counters), 2);
        let mut bws = BlockFgmresWorkspace::<f64>::new(n, m, k);
        let mut bp = vec![0.0f64; n * k];
        for (c, b) in bs.iter().enumerate() {
            bp[c * n..(c + 1) * n].copy_from_slice(b);
        }
        let mut xp = vec![0.0f64; n * k];
        let outcomes = block_fgmres_cycle(
            BlockCycleParams {
                matrix: &pm,
                mat_storage: storage,
                inner: &mut inner,
                abs_tols: None,
                x_nonzero: false,
                depth: 1,
                counters: &counters,
            },
            &mut xp,
            &bp,
            &mut bws,
            k,
        );
        assert!(outcomes[0].converged);
        assert_eq!(outcomes[0].iterations, 0);
        assert!(xp[..n].iter().all(|&v| v == 0.0));
        for c in 1..k {
            let ref_counters = KernelCounters::new_shared();
            let mut ref_inner =
                PrecondInner::<f64>::new(Arc::clone(&mp), Arc::clone(&ref_counters), 2);
            let mut ws = FgmresWorkspace::<f64>::new(n, m);
            let mut x = vec![0.0f64; n];
            let out = fgmres_cycle(
                CycleParams {
                    matrix: &pm,
                    mat_storage: storage,
                    inner: &mut ref_inner,
                    abs_tol: None,
                    x_nonzero: false,
                    depth: 1,
                    counters: &ref_counters,
                    progress: None,
                },
                &mut x,
                &bs[c],
                &mut ws,
            );
            assert_eq!(outcomes[c], out, "column {c}");
            assert_eq!(&xp[c * n..(c + 1) * n], &x[..], "column {c}");
        }
    }

    #[test]
    fn one_spmm_per_iteration_amortizes_the_matrix_stream() {
        let (pm, mp) = setup(8);
        let n = pm.dim();
        let k = 4;
        let m = 6;
        let counters = KernelCounters::new_shared();
        let mut inner = PrecondInner::<f64>::new(mp, Arc::clone(&counters), 2);
        let mut bws = BlockFgmresWorkspace::<f64>::new(n, m, k);
        let mut bp = vec![0.0f64; n * k];
        for c in 0..k {
            bp[c * n..(c + 1) * n].copy_from_slice(&random_rhs(n, 5 + c as u64));
        }
        let mut xp = vec![0.0f64; n * k];
        let _ = block_fgmres_cycle(
            BlockCycleParams {
                matrix: &pm,
                mat_storage: MatrixStorage::Plain(Precision::Fp64),
                inner: &mut inner,
                abs_tols: None,
                x_nonzero: false,
                depth: 1,
                counters: &counters,
            },
            &mut xp,
            &bp,
            &mut bws,
            k,
        );
        let snap = counters.snapshot();
        // All m iterations ran with the full panel: m SpMM passes, each
        // streaming the matrix once for k columns.
        assert_eq!(snap.total_spmm(), m as u64);
        assert_eq!(snap.spmm_columns_total(), (m * k) as u64);
    }

    #[test]
    fn workspace_geometry_accessors() {
        let ws = BlockFgmresWorkspace::<f32, f16>::new(12, 5, 3);
        assert_eq!(ws.dim(), 12);
        assert_eq!(ws.cycle_length(), 5);
        assert_eq!(ws.max_columns(), 3);
        assert_eq!(ws.basis_precision(), Precision::Fp16);
    }

    #[test]
    #[should_panic(expected = "block fgmres: more columns than the workspace holds")]
    fn too_many_columns_panics() {
        let (pm, mp) = setup(4);
        let n = pm.dim();
        let counters = KernelCounters::new_shared();
        let mut inner = PrecondInner::<f64>::new(mp, Arc::clone(&counters), 2);
        let mut bws = BlockFgmresWorkspace::<f64>::new(n, 3, 2);
        let mut xp = vec![0.0f64; n * 3];
        let bp = vec![0.0f64; n * 3];
        let _ = block_fgmres_cycle(
            BlockCycleParams {
                matrix: &pm,
                mat_storage: MatrixStorage::Plain(Precision::Fp64),
                inner: &mut inner,
                abs_tols: None,
                x_nonzero: false,
                depth: 1,
                counters: &counters,
            },
            &mut xp,
            &bp,
            &mut bws,
            3,
        );
    }
}
