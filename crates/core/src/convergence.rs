//! Solve results, convergence histories and the common solver interface.

use std::fmt;

use f3r_precision::CounterSnapshot;

/// Why a solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The true relative residual dropped below the tolerance.
    Converged,
    /// The iteration/restart budget was exhausted before convergence.
    MaxIterations,
    /// The iteration broke down (division by a vanishing quantity) or
    /// produced non-finite values.
    Breakdown,
    /// A [`SolveObserver`](crate::session::SolveObserver) requested an early
    /// stop before the solve converged.
    Stopped,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::Converged => "converged",
            StopReason::MaxIterations => "iteration budget exhausted",
            StopReason::Breakdown => "breakdown",
            StopReason::Stopped => "stopped by observer",
        })
    }
}

/// Outcome of one linear solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Whether the convergence criterion ‖b − A x‖₂/‖b‖₂ < tol was met.
    pub converged: bool,
    /// Why the solver stopped.
    pub stop_reason: StopReason,
    /// Outermost iterations executed (for nested solvers: iterations of the
    /// outermost FGMRES across all restarts; for CG/BiCGStab: iterations).
    pub outer_iterations: usize,
    /// Invocations of the primary preconditioner `M` — the Table 3 metric.
    pub precond_applications: u64,
    /// Final true relative residual ‖b − A x‖₂ / ‖b‖₂ (fp64 evaluation).
    pub final_relative_residual: f64,
    /// Wall-clock seconds spent in `solve`.
    pub seconds: f64,
    /// Residual history: the true relative residual after each outermost
    /// iteration (nested solvers) or each iteration (baselines); sampled at
    /// the same granularity the solver checks convergence.
    pub residual_history: Vec<f64>,
    /// Kernel counter snapshot accumulated during the solve.
    pub counters: CounterSnapshot,
    /// Name of the solver configuration that produced this result.
    pub solver_name: String,
    /// Fingerprint of the prepared solver that answered
    /// ([`PreparedSolver::fingerprint`](crate::session::PreparedSolver::fingerprint)),
    /// so serve-layer logs identify which cached solver produced a result.
    /// `None` for the baselines, which have no prepared-solver identity.
    pub fingerprint: Option<u64>,
}

impl SolveResult {
    /// Modeled memory traffic of the solve in bytes (all precisions).
    #[must_use]
    pub fn modeled_bytes(&self) -> u64 {
        self.counters.total_bytes()
    }

    /// Convergence rate estimate: mean log10 residual reduction per
    /// preconditioner application (`None` if not enough history).
    #[must_use]
    pub fn log_reduction_per_precond(&self) -> Option<f64> {
        if self.precond_applications == 0 || self.residual_history.len() < 2 {
            return None;
        }
        let first = self.residual_history.first().copied()?;
        let last = self.final_relative_residual;
        if first <= 0.0 || last <= 0.0 {
            return None;
        }
        Some((first.log10() - last.log10()) / self.precond_applications as f64)
    }
}

impl fmt::Display for SolveResult {
    /// One-line human-readable summary, e.g.
    /// `fp16-F3R[a1b2c3d4]: converged after 34 outer iterations (2176 M applications), relative residual 5.31e-9 in 0.123 s`
    /// — the bracketed token is the leading 8 hex digits of the prepared
    /// solver's fingerprint (omitted for baseline results, which carry none).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.solver_name)?;
        if let Some(fp) = self.fingerprint {
            write!(f, "[{:08x}]", fp >> 32)?;
        }
        write!(
            f,
            ": {} after {} outer iterations ({} M applications), relative residual {:.2e} in {:.3} s",
            self.stop_reason,
            self.outer_iterations,
            self.precond_applications,
            self.final_relative_residual,
            self.seconds
        )
    }
}

/// Common interface implemented by every solver in the workspace (F3R and its
/// variants, CG, BiCGStab, restarted FGMRES), used by the experiment harness.
///
/// New code should prefer the prepared-solver session API
/// ([`crate::session::SolverBuilder`] → [`crate::session::PreparedSolver`] →
/// [`crate::session::SolveSession`]); `SolveSession` implements this trait,
/// so sessions drop into the harness directly.
pub trait SparseSolver {
    /// Solve `A x = b`, starting from the zero initial guess, overwriting `x`.
    fn solve(&mut self, b: &[f64], x: &mut [f64]) -> SolveResult;

    /// Descriptive configuration name (e.g. `"fp16-F3R"`, `"fp64-CG"`).
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(history: Vec<f64>, final_res: f64, preconds: u64) -> SolveResult {
        SolveResult {
            converged: true,
            stop_reason: StopReason::Converged,
            outer_iterations: history.len(),
            precond_applications: preconds,
            final_relative_residual: final_res,
            seconds: 0.1,
            residual_history: history,
            counters: CounterSnapshot::default(),
            solver_name: "dummy".into(),
            fingerprint: None,
        }
    }

    #[test]
    fn log_reduction_per_precond() {
        let r = dummy(vec![1.0, 1e-4, 1e-8], 1e-8, 80);
        let rate = r.log_reduction_per_precond().unwrap();
        assert!((rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_is_a_one_line_summary() {
        let r = dummy(vec![1.0, 1e-8], 5.31e-9, 2176);
        let line = r.to_string();
        assert!(line.starts_with("dummy: converged after 2 outer iterations"));
        assert!(line.contains("2176 M applications"));
        assert!(line.contains("5.31e-9"));
        assert!(!line.contains('\n'));

        // With a fingerprint the solver name gains an 8-hex-digit prefix tag.
        let mut tagged = dummy(vec![1.0, 1e-8], 5.31e-9, 2176);
        tagged.fingerprint = Some(0xa1b2_c3d4_0000_0001);
        let line = tagged.to_string();
        assert!(line.starts_with("dummy[a1b2c3d4]: converged"), "{line}");
        assert_eq!(StopReason::Stopped.to_string(), "stopped by observer");
        assert_eq!(StopReason::MaxIterations.to_string(), "iteration budget exhausted");
    }

    #[test]
    fn log_reduction_requires_history() {
        assert!(dummy(vec![], 1e-8, 10).log_reduction_per_precond().is_none());
        assert!(dummy(vec![1.0, 0.1], 1e-8, 0).log_reduction_per_precond().is_none());
    }
}
