//! Solver-level memory-access cost model (Section 4.1 of the paper).
//!
//! The per-kernel model lives in [`f3r_precision::traffic`]; this module
//! lifts it to whole solver configurations: given a [`NestedSpec`] and the
//! per-row costs of `A` and `M`, estimate the traffic of one outermost
//! iteration, so the experiment harness can reproduce the Eq. 1–3 worked
//! example and compare nesting strategies analytically.

use f3r_precision::traffic::{
    best_two_level_split, fgmres_traffic, nested_fgmres_fgmres_traffic,
    nested_fgmres_richardson_traffic, richardson_traffic, words_per_row, BestSplit,
};
use f3r_precision::Precision;

use crate::nested::{LevelSpec, NestedSpec};

/// Per-row storage costs (in double-precision-equivalent words) of the
/// coefficient matrix and the primary preconditioner, the `cA` and `cM`
/// constants of the paper's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowCosts {
    /// `cA`: words per row of the coefficient matrix.
    pub c_a: f64,
    /// `cM`: words per row of the primary preconditioner.
    pub c_m: f64,
}

impl RowCosts {
    /// The paper's worked example: 30 nonzeros/row stored in fp64 with 32-bit
    /// indices gives `cA = 45`; the preconditioner is assumed equally dense.
    #[must_use]
    pub fn paper_example() -> Self {
        Self { c_a: 45.0, c_m: 45.0 }
    }

    /// Derive the costs from a matrix density and storage precisions.
    #[must_use]
    pub fn from_density(nnz_per_row: f64, a_prec: Precision, m_prec: Precision) -> Self {
        Self {
            c_a: words_per_row(nnz_per_row, a_prec),
            c_m: words_per_row(nnz_per_row, m_prec),
        }
    }
}

/// Estimated traffic (words per row of the problem) of one invocation of the
/// *inner* part of a nested solver — i.e. everything below the outermost
/// level, which is what Eq. 2/3 compare.
///
/// The estimate recursively applies Eq. 1: an FGMRES level of `m` iterations
/// preconditioned by an inner part with traffic `t_inner` costs
/// `cA·m + t_inner·m + (5/2)m²`; a Richardson level costs Eq. 1b.  Precision
/// is accounted for by scaling `cA` with the level's matrix-storage precision
/// (plus one word per row for the `f64` amplitude scales of *scaled*
/// storage).
#[must_use]
pub fn spec_inner_traffic(spec: &NestedSpec, nnz_per_row: f64, m_nnz_per_row: f64) -> f64 {
    fn level_traffic(levels: &[LevelSpec], nnz_per_row: f64, c_m: f64) -> f64 {
        let level = levels[0];
        let c_a = level_matrix_words(&level, nnz_per_row);
        let m = level.iterations() as f64;
        match level {
            LevelSpec::Richardson { .. } => richardson_traffic(c_a, c_m, m),
            LevelSpec::Fgmres { .. } => {
                let inner = if levels.len() == 1 {
                    c_m // terminal FGMRES applies M directly, cost cM per call
                } else {
                    level_traffic(&levels[1..], nnz_per_row, c_m)
                };
                c_a * m + inner * m + 2.5 * m * m
            }
        }
    }
    let c_m = words_per_row(m_nnz_per_row, spec.precond_prec);
    if spec.levels.len() <= 1 {
        c_m
    } else {
        level_traffic(&spec.levels[1..], nnz_per_row, c_m)
    }
}

/// Per-row words of one SpMV stream of a level's matrix variant: the
/// precision-scaled `cA`, plus one 8-byte word per row for the amplitude
/// scales when the variant is row-scaled.
#[must_use]
pub fn level_matrix_words(level: &LevelSpec, nnz_per_row: f64) -> f64 {
    let scale_words = if level.matrix_storage().is_scaled() {
        1.0
    } else {
        0.0
    };
    words_per_row(nnz_per_row, level.matrix_precision()) + scale_words
}

/// Total modeled traffic per outermost iteration of a nested solver: the
/// outermost FGMRES term plus one invocation of the inner part.
#[must_use]
pub fn spec_traffic_per_outer_iteration(
    spec: &NestedSpec,
    nnz_per_row: f64,
    m_nnz_per_row: f64,
) -> f64 {
    let outer = &spec.levels[0];
    let c_a = level_matrix_words(outer, nnz_per_row);
    let m1 = outer.iterations() as f64;
    // One outermost iteration: one SpMV (cA), one inner invocation, and the
    // amortised Arnoldi term 2.5·m1 (from (5/2)m1² spread over m1 iterations).
    c_a + spec_inner_traffic(spec, nnz_per_row, m_nnz_per_row) + 2.5 * m1
}

/// Rank candidate specs by [`spec_traffic_per_outer_iteration`] and return
/// the index and modeled traffic of the cheapest, or `None` for an empty
/// candidate set.  Ties resolve to the earliest candidate, so callers can
/// order their lists safest-first.
#[must_use]
pub fn cheapest_spec<'a>(
    specs: impl IntoIterator<Item = &'a NestedSpec>,
    nnz_per_row: f64,
    m_nnz_per_row: f64,
) -> Option<(usize, f64)> {
    specs
        .into_iter()
        .map(|spec| spec_traffic_per_outer_iteration(spec, nnz_per_row, m_nnz_per_row))
        .enumerate()
        .reduce(|best, cur| if cur.1 < best.1 { cur } else { best })
}

/// Re-export of the Eq. 2 split optimisation for convenience of the
/// experiment harness.
#[must_use]
pub fn best_split(costs: RowCosts, m: usize) -> BestSplit {
    best_two_level_split(costs.c_a, costs.c_m, m)
}

/// The four traffic quantities the paper compares in Section 4.1, evaluated
/// for a given reference iteration count `m` and split `(m̄, m̿)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq123Comparison {
    /// `O(F^m, M)` — single-level FGMRES of `m` iterations.
    pub reference_fgmres: f64,
    /// `O(R^m, M)` — Richardson of `m` sweeps.
    pub reference_richardson: f64,
    /// `O(F^m̄, F^m̿, M)` — two-level nested FGMRES.
    pub nested_fgmres: f64,
    /// `O(F^m̄, R^m̿, M)` — FGMRES preconditioned by Richardson.
    pub nested_richardson: f64,
}

/// Evaluate the Eq. 1–3 quantities for the split `m = m_outer · m_inner`.
#[must_use]
pub fn eq123(costs: RowCosts, m_outer: usize, m_inner: usize) -> Eq123Comparison {
    let m = (m_outer * m_inner) as f64;
    Eq123Comparison {
        reference_fgmres: fgmres_traffic(costs.c_a, costs.c_m, m),
        reference_richardson: richardson_traffic(costs.c_a, costs.c_m, m),
        nested_fgmres: nested_fgmres_fgmres_traffic(
            costs.c_a,
            costs.c_m,
            m_outer as f64,
            m_inner as f64,
        ),
        nested_richardson: nested_fgmres_richardson_traffic(
            costs.c_a,
            costs.c_m,
            m_outer as f64,
            m_inner as f64,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f3r::{f3r_spec, F3rParams, F3rScheme, SolverSettings};

    #[test]
    fn paper_example_best_split() {
        let best = best_split(RowCosts::paper_example(), 64);
        assert_eq!(best.m_outer, 10);
    }

    #[test]
    fn fp16_f3r_moves_less_than_fp64_f3r_per_outer_iteration() {
        let settings = SolverSettings::default();
        let s16 = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings);
        let s64 = f3r_spec(F3rParams::default(), F3rScheme::Fp64, &settings);
        let t16 = spec_traffic_per_outer_iteration(&s16, 27.0, 27.0);
        let t64 = spec_traffic_per_outer_iteration(&s64, 27.0, 27.0);
        assert!(
            t16 < 0.75 * t64,
            "fp16-F3R should clearly reduce the modeled traffic: {t16} vs {t64}"
        );
    }

    #[test]
    fn f3r_inner_part_moves_less_than_fgmres64_inner_part() {
        // The development argument of Section 4.2: F3R's nested inner part
        // replaces a 64-iteration FGMRES cycle at lower traffic.
        let settings = SolverSettings::default();
        let f3r = f3r_spec(F3rParams::default(), F3rScheme::Fp64, &settings);
        let inner = spec_inner_traffic(&f3r, 30.0, 30.0);
        let reference = fgmres_traffic(45.0, 45.0, 64.0);
        assert!(inner < reference, "{inner} vs {reference}");
    }

    #[test]
    fn eq123_relationships() {
        let c = RowCosts::paper_example();
        let cmp = eq123(c, 4, 2);
        // Small m: nesting FGMRES in FGMRES costs more than plain FGMRES(8)...
        assert!(cmp.nested_fgmres > cmp.reference_fgmres);
        // ...but Richardson-in-FGMRES costs less (the Eq. 3 argument).
        assert!(cmp.nested_richardson < cmp.reference_fgmres);
        // Richardson alone is the cheapest of all.
        assert!(cmp.reference_richardson < cmp.nested_richardson);
    }

    #[test]
    fn cheapest_spec_ranks_schemes_and_breaks_ties_earliest() {
        let settings = SolverSettings::default();
        let specs: Vec<NestedSpec> = [F3rScheme::Fp64, F3rScheme::Fp32, F3rScheme::Fp16]
            .into_iter()
            .map(|s| f3r_spec(F3rParams::default(), s, &settings))
            .collect();
        let (idx, traffic) = cheapest_spec(specs.iter(), 27.0, 27.0).unwrap();
        assert_eq!(idx, 2, "fp16-F3R models cheapest");
        assert!(traffic > 0.0);
        // Duplicates tie to the earliest index.
        let dup = [specs[2].clone(), specs[2].clone()];
        assert_eq!(cheapest_spec(dup.iter(), 27.0, 27.0).unwrap().0, 0);
        assert!(cheapest_spec(std::iter::empty(), 27.0, 27.0).is_none());
    }

    #[test]
    fn row_costs_from_density() {
        let c = RowCosts::from_density(30.0, Precision::Fp64, Precision::Fp16);
        assert_eq!(c.c_a, 45.0);
        assert_eq!(c.c_m, 22.5);
    }
}
