//! Preset solver configurations: F3R (Section 4.2, Table 1) and the
//! nesting-depth reference solvers F2 / fp16-F2 / F3 / fp16-F3 / F4
//! (Section 6.2, Table 4).
//!
//! Every preset returns a [`NestedSpec`]; build it with
//! [`crate::nested::NestedSolver::new`] for a given
//! [`ProblemMatrix`](crate::operator::ProblemMatrix).

use f3r_precision::Precision;
use f3r_precond::PrecondKind;

use crate::nested::{LevelSpec, NestedSpec};
use crate::operator::MatrixStorage;
use crate::richardson::WeightStrategy;

/// Iteration counts and weight-update cycle of F3R.
///
/// The paper's default is `(m1, m2, m3, m4) = (100, 8, 4, 2)` and `c = 64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F3rParams {
    /// Outermost FGMRES iterations per cycle (`m1`).
    pub m1: usize,
    /// Middle FGMRES iterations per invocation (`m2`).
    pub m2: usize,
    /// Inner FGMRES iterations per invocation (`m3`).
    pub m3: usize,
    /// Innermost Richardson sweeps per invocation (`m4`).
    pub m4: usize,
    /// Adaptive-weight update cycle (`c`).
    pub weight_cycle: usize,
}

impl Default for F3rParams {
    fn default() -> Self {
        Self {
            m1: 100,
            m2: 8,
            m3: 4,
            m4: 2,
            weight_cycle: 64,
        }
    }
}

impl F3rParams {
    /// Default parameters with a different `(m2, m3, m4)` triple — the format
    /// used for the `fp16-F3R-best` rows of Figures 1 and 2.
    #[must_use]
    pub fn with_inner(m2: usize, m3: usize, m4: usize) -> Self {
        Self {
            m2,
            m3,
            m4,
            ..Self::default()
        }
    }
}

/// Shared experiment-level settings (preconditioner, tolerance, restarts).
#[derive(Debug, Clone)]
pub struct SolverSettings {
    /// Primary preconditioner kind.
    pub precond: PrecondKind,
    /// Convergence tolerance (paper: 1e-8).
    pub tol: f64,
    /// Maximum outermost cycles for nested solvers (paper: 3 × m1 = 300).
    pub max_outer_cycles: usize,
}

impl Default for SolverSettings {
    fn default() -> Self {
        Self {
            precond: PrecondKind::Ilu0 { alpha: 1.0 },
            tol: 1e-8,
            max_outer_cycles: 3,
        }
    }
}

/// The three precision schemes of F3R evaluated in Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F3rScheme {
    /// fp64-F3R: every level in double precision.
    Fp64,
    /// fp32-F3R: fp64 outermost, fp32 for all inner solvers and `M`.
    Fp32,
    /// fp16-F3R: the Table 1 mixed fp64/fp32/fp16 configuration.
    Fp16,
}

impl F3rScheme {
    /// Prefix used in solver names (`"fp64"`, `"fp32"`, `"fp16"`).
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            F3rScheme::Fp64 => "fp64",
            F3rScheme::Fp32 => "fp32",
            F3rScheme::Fp16 => "fp16",
        }
    }
}

/// Build the `NestedSpec` of F3R for the given parameters, precision scheme
/// and experiment settings (Table 1 of the paper).
#[must_use]
pub fn f3r_spec(params: F3rParams, scheme: F3rScheme, settings: &SolverSettings) -> NestedSpec {
    let (l2_mat, l2_vec, l3_mat, l3_vec, l4_prec, m_prec) = match scheme {
        F3rScheme::Fp64 => (
            Precision::Fp64,
            Precision::Fp64,
            Precision::Fp64,
            Precision::Fp64,
            Precision::Fp64,
            Precision::Fp64,
        ),
        F3rScheme::Fp32 => (
            Precision::Fp32,
            Precision::Fp32,
            Precision::Fp32,
            Precision::Fp32,
            Precision::Fp32,
            Precision::Fp32,
        ),
        F3rScheme::Fp16 => (
            Precision::Fp32,
            Precision::Fp32,
            Precision::Fp16,
            Precision::Fp32,
            Precision::Fp16,
            Precision::Fp16,
        ),
    };
    NestedSpec {
        levels: vec![
            LevelSpec::fgmres(params.m1, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(params.m2, l2_mat, l2_vec),
            LevelSpec::fgmres(params.m3, l3_mat, l3_vec),
            LevelSpec::Richardson {
                m: params.m4,
                matrix: MatrixStorage::Plain(l4_prec),
                vector_prec: l4_prec,
                weight: WeightStrategy::Adaptive {
                    cycle: params.weight_cycle,
                },
            },
        ],
        precond: settings.precond,
        precond_prec: m_prec,
        tol: settings.tol,
        max_outer_cycles: settings.max_outer_cycles,
        name: format!("{}-F3R", scheme.prefix()),
    }
}

/// F3R with a fixed (non-adaptive) Richardson weight — the static comparison
/// of Figure 6.
#[must_use]
pub fn f3r_spec_fixed_weight(
    params: F3rParams,
    scheme: F3rScheme,
    settings: &SolverSettings,
    omega: f64,
) -> NestedSpec {
    let mut spec = f3r_spec(params, scheme, settings);
    let last = spec.levels.len() - 1;
    if let LevelSpec::Richardson { weight, .. } = &mut spec.levels[last] {
        *weight = WeightStrategy::Fixed(omega);
    }
    spec.name = format!("{}-F3R(ω={omega})", scheme.prefix());
    spec
}

/// Table 4: `F2 = (F100, F64, M)` — two-level nested FGMRES, inner level in
/// fp32 with an fp16 preconditioner.
#[must_use]
pub fn f2_spec(settings: &SolverSettings) -> NestedSpec {
    two_level_spec("F2", Precision::Fp32, Precision::Fp32, settings)
}

/// Table 4: `fp16-F2` — like [`f2_spec`] but with the inner level entirely in
/// fp16.
#[must_use]
pub fn fp16_f2_spec(settings: &SolverSettings) -> NestedSpec {
    two_level_spec("fp16-F2", Precision::Fp16, Precision::Fp16, settings)
}

fn two_level_spec(
    name: &str,
    inner_mat: Precision,
    inner_vec: Precision,
    settings: &SolverSettings,
) -> NestedSpec {
    NestedSpec {
        levels: vec![
            LevelSpec::fgmres(100, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(64, inner_mat, inner_vec),
        ],
        precond: settings.precond,
        precond_prec: Precision::Fp16,
        tol: settings.tol,
        max_outer_cycles: settings.max_outer_cycles,
        name: name.to_string(),
    }
}

/// Table 4: `F3 = (F100, F8, F8, M)` — three-level nested FGMRES; the inner
/// `F8` stores the matrix in fp16 but keeps fp32 vectors.
#[must_use]
pub fn f3_spec(settings: &SolverSettings) -> NestedSpec {
    three_level_spec("F3", Precision::Fp32, settings)
}

/// Table 4: `fp16-F3` — like [`f3_spec`] but the inner `F8` uses fp16 vectors
/// as well.
#[must_use]
pub fn fp16_f3_spec(settings: &SolverSettings) -> NestedSpec {
    three_level_spec("fp16-F3", Precision::Fp16, settings)
}

fn three_level_spec(name: &str, inner_vec: Precision, settings: &SolverSettings) -> NestedSpec {
    NestedSpec {
        levels: vec![
            LevelSpec::fgmres(100, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp32),
            LevelSpec::fgmres(8, Precision::Fp16, inner_vec),
        ],
        precond: settings.precond,
        precond_prec: Precision::Fp16,
        tol: settings.tol,
        max_outer_cycles: settings.max_outer_cycles,
        name: name.to_string(),
    }
}

/// Table 4: `F4 = (F100, F8, F4, F2, M)` — identical to fp16-F3R except that
/// the innermost Richardson is replaced by a two-iteration FGMRES.
#[must_use]
pub fn f4_spec(settings: &SolverSettings) -> NestedSpec {
    NestedSpec {
        levels: vec![
            LevelSpec::fgmres(100, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp32),
            LevelSpec::fgmres(4, Precision::Fp16, Precision::Fp32),
            LevelSpec::fgmres(2, Precision::Fp16, Precision::Fp16),
        ],
        precond: settings.precond,
        precond_prec: Precision::Fp16,
        tol: settings.tol,
        max_outer_cycles: settings.max_outer_cycles,
        name: "F4".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = F3rParams::default();
        assert_eq!((p.m1, p.m2, p.m3, p.m4, p.weight_cycle), (100, 8, 4, 2, 64));
    }

    #[test]
    fn fp16_f3r_matches_table1() {
        let spec = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &SolverSettings::default());
        assert_eq!(spec.name, "fp16-F3R");
        assert_eq!(spec.tuple_notation(), "(F100, F8, F4, R2, M)");
        assert_eq!(spec.depth(), 4);
        // Table 1 precisions
        assert_eq!(spec.levels[0].matrix_precision(), Precision::Fp64);
        assert_eq!(spec.levels[0].vector_precision(), Precision::Fp64);
        assert_eq!(spec.levels[1].matrix_precision(), Precision::Fp32);
        assert_eq!(spec.levels[1].vector_precision(), Precision::Fp32);
        assert_eq!(spec.levels[2].matrix_precision(), Precision::Fp16);
        assert_eq!(spec.levels[2].vector_precision(), Precision::Fp32);
        assert_eq!(spec.levels[3].matrix_precision(), Precision::Fp16);
        assert_eq!(spec.levels[3].vector_precision(), Precision::Fp16);
        assert_eq!(spec.precond_prec, Precision::Fp16);
        spec.validate();
    }

    #[test]
    fn fp64_and_fp32_schemes_are_uniform_below_the_top() {
        let s64 = f3r_spec(F3rParams::default(), F3rScheme::Fp64, &SolverSettings::default());
        assert!(s64
            .levels
            .iter()
            .all(|l| l.matrix_precision() == Precision::Fp64 && l.vector_precision() == Precision::Fp64));
        let s32 = f3r_spec(F3rParams::default(), F3rScheme::Fp32, &SolverSettings::default());
        assert_eq!(s32.levels[1].vector_precision(), Precision::Fp32);
        assert_eq!(s32.levels[3].vector_precision(), Precision::Fp32);
        assert_eq!(s32.precond_prec, Precision::Fp32);
        assert_eq!(s32.name, "fp32-F3R");
    }

    #[test]
    fn table4_variants_have_expected_shapes() {
        let st = SolverSettings::default();
        assert_eq!(f2_spec(&st).tuple_notation(), "(F100, F64, M)");
        assert_eq!(fp16_f2_spec(&st).levels[1].vector_precision(), Precision::Fp16);
        assert_eq!(f3_spec(&st).tuple_notation(), "(F100, F8, F8, M)");
        assert_eq!(fp16_f3_spec(&st).levels[2].vector_precision(), Precision::Fp16);
        let f4 = f4_spec(&st);
        assert_eq!(f4.tuple_notation(), "(F100, F8, F4, F2, M)");
        assert_eq!(f4.levels[3].vector_precision(), Precision::Fp16);
        for spec in [f2_spec(&st), fp16_f2_spec(&st), f3_spec(&st), fp16_f3_spec(&st), f4_spec(&st)] {
            spec.validate();
        }
    }

    #[test]
    fn fixed_weight_variant_replaces_strategy() {
        let spec = f3r_spec_fixed_weight(
            F3rParams::default(),
            F3rScheme::Fp16,
            &SolverSettings::default(),
            1.1,
        );
        if let LevelSpec::Richardson { weight, .. } = spec.levels[3] {
            assert_eq!(weight, crate::richardson::WeightStrategy::Fixed(1.1));
        } else {
            panic!("innermost level should be Richardson");
        }
        assert!(spec.name.contains("ω=1.1"));
    }

    #[test]
    fn best_params_constructor() {
        let p = F3rParams::with_inner(9, 4, 2);
        assert_eq!((p.m1, p.m2, p.m3, p.m4), (100, 9, 4, 2));
    }

    #[test]
    fn presets_default_to_uncompressed_basis_storage() {
        for spec in [
            f3r_spec(F3rParams::default(), F3rScheme::Fp16, &SolverSettings::default()),
            f2_spec(&SolverSettings::default()),
            f4_spec(&SolverSettings::default()),
        ] {
            for level in &spec.levels {
                if let Some(basis) = level.basis_precision() {
                    assert_eq!(basis, level.vector_precision(), "{}", spec.name);
                }
            }
        }
    }

    #[test]
    fn basis_storage_axis_composes_with_presets() {
        let spec = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &SolverSettings::default())
            .with_basis_storage(Precision::Fp16);
        // Outermost stays uncompressed; fp32-vector inner levels compress to
        // fp16; the fp16-vector Richardson level has no basis.
        assert_eq!(spec.levels[0].basis_precision(), Some(Precision::Fp64));
        assert_eq!(spec.levels[1].basis_precision(), Some(Precision::Fp16));
        assert_eq!(spec.levels[2].basis_precision(), Some(Precision::Fp16));
        assert_eq!(spec.levels[3].basis_precision(), None);
        spec.validate();
    }
}
