//! Flexible GMRES (FGMRES) cycles and the FGMRES inner-solver level.
//!
//! Every FGMRES appearing in the paper — the outermost fp64 `F^m1`, the
//! middle fp32 `F^m2`, the fp16-matrix `F^m3`, the restarted FGMRES(64)
//! baseline and the `F2`/`F3`/`F4` reference solvers of Table 4 — is a cycle
//! of the same algorithm: `m` steps of the Arnoldi process with classical
//! Gram–Schmidt orthogonalisation, flexible (per-iteration) preconditioning
//! by an [`InnerSolver`], and a QR update of the Hessenberg matrix by Givens
//! rotations (Section 4.2).  This module provides that cycle once, generic
//! over the working precision `T` **and** the basis *storage* precision `S`,
//! plus the [`FgmresLevel`] adapter that lets a cycle act as the inner
//! solver of its parent level.
//!
//! # Basis storage precision
//!
//! The Arnoldi basis `v_1 … v_{m+1}` and the flexible basis `z_1 … z_m` live
//! in a [`CompressedBasis<S>`]: elements in `S` plus one power-of-two
//! amplitude scale per vector.  `S` defaults to the working precision `T`
//! (lossless, numerically identical to uncompressed storage); choosing a
//! narrower `S` (fp16 under fp32/fp64 working precision) streams the
//! `O(m²)` Gram–Schmidt basis sweeps at the storage width through the
//! compressed kernels in [`f3r_sparse::blas1`] — the basis is never
//! decompressed wholesale, each stored element is widened exactly once per
//! sweep.  The one exception is the handoff to the flexible preconditioner,
//! which receives a working-precision copy of `v_j` (one decompression per
//! iteration).
//!
//! # Why swapping the inner chain mid-solve is legal
//!
//! Flexible preconditioning is also what makes the *adaptive* runtime
//! precision of [`crate::adaptive`] sound: FGMRES stores every
//! preconditioned direction `z_j` explicitly and builds the solution update
//! from those stored vectors, so the preconditioner may be a *different*
//! operator at every iteration — including one whose matrix/basis precisions
//! were rebuilt between cycles.  An adaptive session therefore replaces the
//! whole inner chain at a cycle boundary (or abandons a broken-down cycle
//! and restarts it on the wider chain) without invalidating any outer Krylov
//! state; the outer level only ever sees "some operator produced `z_j`".
//! The per-iteration residual estimates that drive the stall detector reach
//! it through [`CycleParams::progress`] ([`CycleProgress`]).
//!
//! # Example
//!
//! Run one explicitly-typed cycle with an fp16-compressed basis under an
//! fp64 working precision:
//!
//! ```
//! use std::sync::Arc;
//! use f3r_core::fgmres::{fgmres_cycle, CycleParams, FgmresWorkspace};
//! use f3r_core::inner::PrecondInner;
//! use f3r_core::operator::{MatrixStorage, ProblemMatrix};
//! use f3r_core::precond_any::AnyPrecond;
//! use f3r_precision::{f16, KernelCounters, Precision};
//! use f3r_precond::PrecondKind;
//! use f3r_sparse::gen::laplacian::poisson2d_5pt;
//! use f3r_sparse::gen::rhs::random_rhs;
//! use f3r_sparse::scaling::jacobi_scale;
//!
//! let a = jacobi_scale(&poisson2d_5pt(10, 10));
//! let counters = KernelCounters::new_shared();
//! let precond = Arc::new(AnyPrecond::build(&a, &PrecondKind::Ilu0 { alpha: 1.0 }, Precision::Fp64));
//! let pm = Arc::new(ProblemMatrix::from_csr(a));
//! let n = pm.dim();
//! let b = random_rhs(n, 1);
//! let mut x = vec![0.0f64; n];
//! let mut inner = PrecondInner::<f64>::new(precond, Arc::clone(&counters), 2);
//!
//! // f64 working precision, fp16 basis storage: the second type parameter.
//! let mut ws = FgmresWorkspace::<f64, f16>::new(n, 40);
//! let out = fgmres_cycle(
//!     CycleParams {
//!         matrix: &pm,
//!         mat_storage: MatrixStorage::Plain(Precision::Fp64),
//!         inner: &mut inner,
//!         abs_tol: Some(1e-8),
//!         x_nonzero: false,
//!         depth: 1,
//!         counters: &counters,
//!         progress: None,
//!     },
//!     &mut x,
//!     &b,
//!     &mut ws,
//! );
//! assert!(out.iterations > 0);
//! // All basis traffic was attributed to fp16 storage.
//! assert!(counters.snapshot().basis_bytes_in(Precision::Fp16) > 0);
//! assert_eq!(counters.snapshot().basis_bytes_in(Precision::Fp64), 0);
//! ```

use std::sync::Arc;

use f3r_precision::traffic::TrafficModel;
use f3r_precision::{KernelCounters, Precision, Scalar};
use f3r_sparse::blas1;

use crate::basis::CompressedBasis;
use crate::block::{block_fgmres_cycle, BlockCycleParams, BlockFgmresWorkspace};
use crate::inner::InnerSolver;
use crate::operator::{MatrixStorage, ProblemMatrix};

/// Workspace (Krylov basis, flexible basis, Hessenberg factorisation) reused
/// across FGMRES cycles of fixed maximum length `m`, working in precision
/// `T` with bases stored in precision `S` (default: uncompressed, `S = T`).
pub struct FgmresWorkspace<T, S = T> {
    n: usize,
    m: usize,
    /// Arnoldi basis `v_1 … v_{m+1}` in compressed storage.
    basis: CompressedBasis<S>,
    /// Flexible (preconditioned) basis `z_1 … z_m` in compressed storage.
    zbasis: CompressedBasis<S>,
    /// Hessenberg columns after Givens rotations; `h[j]` has length `j + 2`.
    h: Vec<Vec<f64>>,
    cs: Vec<f64>,
    sn: Vec<f64>,
    g: Vec<f64>,
    /// The vector being orthogonalised (`A z_j`, then `w ⊥ v_1..v_j`).
    w: Vec<T>,
    /// Working-precision copy of `v_j` handed to the flexible preconditioner.
    vj: Vec<T>,
    /// Working-precision result of the flexible preconditioner (`z_j` before
    /// compression; also the SpMV input).
    zj: Vec<T>,
    /// Solution of the least-squares system `R y = g` (reused so a cycle
    /// allocates nothing in steady state).
    y: Vec<f64>,
}

impl<T: Scalar, S: Scalar> FgmresWorkspace<T, S> {
    /// Allocate workspace for cycles of up to `m` iterations on vectors of
    /// length `n`.
    #[must_use]
    pub fn new(n: usize, m: usize) -> Self {
        Self {
            n,
            m,
            basis: CompressedBasis::new(n, m + 1),
            zbasis: CompressedBasis::new(n, m),
            h: (0..m).map(|j| vec![0.0; j + 2]).collect(),
            cs: vec![0.0; m],
            sn: vec![0.0; m],
            g: vec![0.0; m + 1],
            w: vec![T::zero(); n],
            vj: vec![T::zero(); n],
            zj: vec![T::zero(); n],
            y: vec![0.0; m],
        }
    }

    /// Maximum cycle length.
    #[must_use]
    pub fn cycle_length(&self) -> usize {
        self.m
    }

    /// Storage precision of the Arnoldi and flexible bases.
    #[must_use]
    pub fn basis_precision(&self) -> Precision {
        S::PRECISION
    }

    /// Total heap bytes of the workspace: both compressed bases, the
    /// Hessenberg/rotation/solution arrays and the three working-precision
    /// scratch vectors.
    #[must_use]
    pub fn workspace_bytes(&self) -> u64 {
        let dense = self.h.iter().map(Vec::len).sum::<usize>()
            + self.cs.len()
            + self.sn.len()
            + self.g.len()
            + self.y.len();
        let scratch = (self.w.len() + self.vj.len() + self.zj.len()) as u64;
        self.basis.storage_bytes()
            + self.zbasis.storage_bytes()
            + dense as u64 * 8
            + scratch * T::bytes() as u64
    }
}

/// Outcome of one FGMRES cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleOutcome {
    /// Arnoldi iterations actually performed.
    pub iterations: usize,
    /// Estimated residual norm `|g_{j+1}|` at exit (absolute, not relative).
    pub residual_estimate: f64,
    /// Whether the cycle exited because the estimate fell below the supplied
    /// absolute tolerance.
    pub converged: bool,
    /// Whether a (lucky or unlucky) breakdown occurred.
    pub breakdown: bool,
    /// Whether the [`CycleProgress`] hook requested an early stop.
    pub stopped: bool,
}

/// Per-iteration progress hook of a cycle.
///
/// The outermost level of a nested solve installs one (the session layer
/// bridges it to [`SolveObserver`](crate::session::SolveObserver)); inner
/// levels and baselines pass `None`.
pub trait CycleProgress {
    /// Called after each completed Arnoldi iteration with the 0-based
    /// iteration index within this cycle and the absolute residual-norm
    /// estimate `|g_{j+1}|`.  Return `false` to stop the cycle early; the
    /// partial solution update `x += Z y` over the completed iterations is
    /// still applied.
    fn on_iteration(&mut self, iteration_in_cycle: usize, residual_estimate: f64) -> bool;
}

/// Parameters of one FGMRES cycle.
pub struct CycleParams<'a, T: Scalar> {
    /// Multi-precision coefficient matrix.
    pub matrix: &'a ProblemMatrix,
    /// Storage of the matrix variant streamed by the SpMV in this cycle.
    pub mat_storage: MatrixStorage,
    /// Flexible preconditioner (the next nesting level).
    pub inner: &'a mut dyn InnerSolver<T>,
    /// Absolute tolerance on the residual estimate; `None` runs all `m`
    /// iterations (inner levels never check convergence, Section 4.2).
    pub abs_tol: Option<f64>,
    /// Whether the incoming `x` is nonzero (true only for outermost restarts).
    pub x_nonzero: bool,
    /// Nesting depth for the iteration counters (1 = outermost).
    pub depth: usize,
    /// Shared kernel counters.
    pub counters: &'a KernelCounters,
    /// Optional per-iteration progress hook (outermost level only; inner
    /// levels pass `None`).
    pub progress: Option<&'a mut dyn CycleProgress>,
}

/// Run one FGMRES cycle of at most `ws.cycle_length()` iterations on
/// `A x = b`, updating `x` in place.
///
/// The basis storage precision `S` comes from the workspace; all basis
/// sweeps run on the compressed form (see the [module docs](self)) and
/// their traffic is attributed to `S` through
/// [`KernelCounters::record_basis_traffic`].
pub fn fgmres_cycle<T: Scalar, S: Scalar>(
    params: CycleParams<'_, T>,
    x: &mut [T],
    b: &[T],
    ws: &mut FgmresWorkspace<T, S>,
) -> CycleOutcome {
    let CycleParams {
        matrix,
        mat_storage,
        inner,
        abs_tol,
        x_nonzero,
        depth,
        counters,
        mut progress,
    } = params;
    let n = ws.n;
    let m = ws.m;
    assert_eq!(x.len(), n, "fgmres: x length mismatch");
    assert_eq!(b.len(), n, "fgmres: b length mismatch");
    let sp = S::PRECISION;
    let one_vec = TrafficModel::basis_bytes(n, 1, sp);
    // Compressing into a narrower storage reads the source twice (amplitude
    // reduction + narrowing sweep); the same-precision fast path reads it
    // once.  See `blas1::narrow_scaled_into`.
    let compress_reads = if sp == T::PRECISION { 1 } else { 2 };

    // r0 = b - A x (skip the SpMV when the initial guess is zero).
    if x_nonzero {
        matrix.residual(mat_storage, x, b, &mut ws.w, counters);
    } else {
        ws.w.copy_from_slice(b);
    }
    let beta = blas1::norm2(&ws.w);
    counters.record_blas1(T::PRECISION, TrafficModel::blas1_bytes(n, 1, 0, T::PRECISION));
    if !(beta.is_finite()) {
        return CycleOutcome {
            iterations: 0,
            residual_estimate: f64::NAN,
            converged: false,
            breakdown: true,
            stopped: false,
        };
    }
    if beta == 0.0 {
        // x already solves the system (or v = 0 for an inner level).
        return CycleOutcome {
            iterations: 0,
            residual_estimate: 0.0,
            converged: true,
            breakdown: false,
            stopped: false,
        };
    }
    // v_1 = r0 / beta, compressed on write (the normalisation folds into the
    // amplitude scale).
    ws.basis.compress_scaled(0, 1.0 / beta, &ws.w);
    counters.record_blas1(
        T::PRECISION,
        TrafficModel::blas1_bytes(n, compress_reads, 0, T::PRECISION),
    );
    counters.record_basis_traffic(sp, 0, one_vec);
    ws.g.iter_mut().for_each(|v| *v = 0.0);
    ws.g[0] = beta;

    let mut iters = 0usize;
    let mut breakdown = false;
    let mut converged = false;
    let mut stopped = false;
    let mut res_est = beta;

    for j in 0..m {
        // Flexible preconditioning: z_j = S^{(d+1)}(v_j).  The inner solver
        // works in the working precision, so v_j is decompressed into the
        // scratch vector once per iteration and the result is compressed
        // into the flexible basis after the SpMV consumed it.
        ws.basis.decompress_into(j, &mut ws.vj);
        counters.record_basis_traffic(sp, one_vec, 0);
        counters.record_blas1(T::PRECISION, TrafficModel::blas1_bytes(n, 0, 1, T::PRECISION));
        inner.apply(&ws.vj, &mut ws.zj);
        // w = A z_j
        matrix.apply(mat_storage, &ws.zj, &mut ws.w, counters);
        ws.zbasis.compress_scaled(j, 1.0, &ws.zj);
        counters.record_basis_traffic(sp, 0, one_vec);
        counters.record_blas1(
            T::PRECISION,
            TrafficModel::blas1_bytes(n, compress_reads, 0, T::PRECISION),
        );

        // Classical Gram–Schmidt against v_0..v_j (paper: "we employ
        // classical Gram-Schmidt ... all associated computations are
        // performed only with vectors and scalars stored in fp32" for the
        // inner levels — the dots below accumulate in T::Accum, widening
        // each stored basis element once).
        let hcol = &mut ws.h[j];
        // Projection coefficients, two stored basis vectors per fused sweep.
        let mut i = 0;
        while i < j {
            let (vi, si) = ws.basis.vector(i);
            let (vi1, si1) = ws.basis.vector(i + 1);
            let (hi, hi1) = blas1::dot2_compressed(&ws.w, vi, si, vi1, si1);
            hcol[i] = hi;
            hcol[i + 1] = hi1;
            i += 2;
        }
        if i <= j {
            let (vi, si) = ws.basis.vector(i);
            hcol[i] = blas1::dot_compressed(&ws.w, vi, si);
        }
        counters.record_blas1(
            T::PRECISION,
            TrafficModel::blas1_bytes(n, j + 1, 0, T::PRECISION),
        );
        counters.record_basis_traffic(sp, TrafficModel::basis_bytes(n, j + 1, sp), 0);
        // Orthogonalisation updates; the last one is fused with the norm of
        // the orthogonalised vector so w is not swept again for h_{j+1,j}.
        for (i, &hi) in hcol.iter().enumerate().take(j) {
            let (vi, si) = ws.basis.vector(i);
            blas1::axpy_scaled_from(-hi, vi, si, &mut ws.w);
        }
        let hnext = {
            let (vjs, sj) = ws.basis.vector(j);
            blas1::axpy_scaled_norm2(-hcol[j], vjs, sj, &mut ws.w).sqrt()
        };
        counters.record_blas1(
            T::PRECISION,
            TrafficModel::blas1_bytes(n, j + 1, j + 1, T::PRECISION),
        );
        counters.record_basis_traffic(sp, TrafficModel::basis_bytes(n, j + 1, sp), 0);
        hcol[j + 1] = hnext;

        // Apply the accumulated Givens rotations to the new column.
        for i in 0..j {
            let (c, s) = (ws.cs[i], ws.sn[i]);
            let tmp = c * hcol[i] + s * hcol[i + 1];
            hcol[i + 1] = -s * hcol[i] + c * hcol[i + 1];
            hcol[i] = tmp;
        }
        // New rotation eliminating h[j+1][j].
        let (c, s) = givens(hcol[j], hcol[j + 1]);
        ws.cs[j] = c;
        ws.sn[j] = s;
        hcol[j] = c * hcol[j] + s * hcol[j + 1];
        hcol[j + 1] = 0.0;
        ws.g[j + 1] = -s * ws.g[j];
        ws.g[j] *= c;
        res_est = ws.g[j + 1].abs();
        iters = j + 1;

        if !res_est.is_finite() || !hnext.is_finite() {
            // Breakdown pre-empts the progress hook: observers never see a
            // non-finite estimate and cannot mask the breakdown flag.
            breakdown = true;
            break;
        }
        if let Some(hook) = progress.as_mut() {
            if !hook.on_iteration(j, res_est) {
                stopped = true;
                break;
            }
        }
        if hnext <= f64::EPSILON * beta {
            // Lucky breakdown: the Krylov space is invariant.
            breakdown = true;
            converged = abs_tol.is_none_or(|t| res_est <= t);
            break;
        }
        // Normalise v_{j+1}: the 1/hnext scaling folds into the amplitude
        // scale of the compressed write (one sweep).
        ws.basis.compress_scaled(j + 1, 1.0 / hnext, &ws.w);
        counters.record_blas1(
            T::PRECISION,
            TrafficModel::blas1_bytes(n, compress_reads, 0, T::PRECISION),
        );
        counters.record_basis_traffic(sp, 0, one_vec);

        if let Some(tol) = abs_tol {
            if res_est <= tol {
                converged = true;
                break;
            }
        }
    }
    counters.record_level_iterations(depth, iters as u64);

    if iters > 0 {
        // Solve the upper-triangular system R y = g into the reused buffer.
        let y = &mut ws.y[..iters];
        for i in (0..iters).rev() {
            let mut sum = ws.g[i];
            for (hk, &yk) in ws.h[(i + 1)..iters].iter().zip(y[(i + 1)..iters].iter()) {
                sum -= hk[i] * yk;
            }
            let rii = ws.h[i][i];
            y[i] = if rii.abs() > 0.0 { sum / rii } else { 0.0 };
        }
        // x += Z y (the flexible update) straight from the stored form.
        for (k, &yk) in y.iter().enumerate() {
            let (zk, sk) = ws.zbasis.vector(k);
            blas1::axpy_scaled_from(yk, zk, sk, x);
        }
        counters.record_blas1(
            T::PRECISION,
            TrafficModel::blas1_bytes(n, iters, iters, T::PRECISION),
        );
        counters.record_basis_traffic(sp, TrafficModel::basis_bytes(n, iters, sp), 0);
    }

    CycleOutcome {
        iterations: iters,
        residual_estimate: res_est,
        converged,
        breakdown,
        stopped,
    }
}

/// Compute a Givens rotation (c, s) such that `[c s; -s c] [a; b] = [r; 0]`.
/// Shared with the block cycle ([`crate::block`]) so both paths rotate
/// bitwise identically.
pub(crate) fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a == 0.0 {
        (0.0, 1.0)
    } else {
        let r = a.hypot(b);
        (a / r, b / r)
    }
}

/// An FGMRES level of a nested solver: runs a fixed number of iterations per
/// invocation (never checks convergence) and acts as the flexible
/// preconditioner of its parent level.
///
/// `T` is the level's working (vector) precision; `S` is the storage
/// precision of its Arnoldi/flexible bases (default uncompressed, `S = T`).
pub struct FgmresLevel<T: Scalar, S: Scalar = T> {
    matrix: Arc<ProblemMatrix>,
    mat_storage: MatrixStorage,
    inner: Box<dyn InnerSolver<T>>,
    ws: FgmresWorkspace<T, S>,
    /// Block-cycle workspace for the batched path, allocated lazily on the
    /// first [`InnerSolver::apply_panel`] call (single-RHS solves never pay
    /// for it) and regrown only when a wider panel arrives.
    block_ws: Option<BlockFgmresWorkspace<T, S>>,
    depth: usize,
    counters: Arc<KernelCounters>,
}

impl<T: Scalar, S: Scalar> FgmresLevel<T, S> {
    /// Create an FGMRES level performing `m` iterations per invocation,
    /// streaming the matrix variant in `mat_storage` and preconditioned by
    /// `inner`.
    #[must_use]
    pub fn new(
        matrix: Arc<ProblemMatrix>,
        mat_storage: MatrixStorage,
        m: usize,
        inner: Box<dyn InnerSolver<T>>,
        depth: usize,
        counters: Arc<KernelCounters>,
    ) -> Self {
        let n = matrix.dim();
        Self {
            matrix,
            mat_storage,
            inner,
            ws: FgmresWorkspace::new(n, m),
            block_ws: None,
            depth,
            counters,
        }
    }
}

impl<T: Scalar, S: Scalar> InnerSolver<T> for FgmresLevel<T, S> {
    fn apply(&mut self, v: &[T], z: &mut [T]) {
        for zi in z.iter_mut() {
            *zi = T::zero();
        }
        let params = CycleParams {
            matrix: &self.matrix,
            mat_storage: self.mat_storage,
            inner: self.inner.as_mut(),
            abs_tol: None,
            x_nonzero: false,
            depth: self.depth,
            counters: &self.counters,
            progress: None,
        };
        let _ = fgmres_cycle(params, z, v, &mut self.ws);
    }

    fn apply_panel(&mut self, v: &[T], z: &mut [T], k: usize) {
        if k <= 1 {
            if k == 1 {
                self.apply(v, z);
            } else {
                assert!(v.is_empty(), "apply_panel: zero-column panel must be empty");
            }
            return;
        }
        assert_eq!(v.len(), z.len(), "apply_panel: panel length mismatch");
        let n = self.matrix.dim();
        assert_eq!(v.len(), n * k, "apply_panel: panel length not a multiple of k");
        for zi in z.iter_mut() {
            *zi = T::zero();
        }
        if self.block_ws.as_ref().is_none_or(|b| b.max_columns() < k) {
            self.block_ws = Some(BlockFgmresWorkspace::new(n, self.ws.cycle_length(), k));
        }
        let bws = self.block_ws.as_mut().expect("block workspace just ensured");
        let _ = block_fgmres_cycle(
            BlockCycleParams {
                matrix: &self.matrix,
                mat_storage: self.mat_storage,
                inner: self.inner.as_mut(),
                abs_tols: None,
                x_nonzero: false,
                depth: self.depth,
                counters: &self.counters,
            },
            z,
            v,
            bws,
            k,
        );
    }

    fn name(&self) -> String {
        let basis = if S::PRECISION == T::PRECISION {
            String::new()
        } else {
            format!(", basis:{}", S::name())
        };
        format!(
            "F{}(A:{}, v:{}{}) -> {}",
            self.ws.cycle_length(),
            self.mat_storage,
            T::name(),
            basis,
            self.inner.name()
        )
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn workspace_bytes(&self) -> u64 {
        self.ws.workspace_bytes()
            + self
                .block_ws
                .as_ref()
                .map_or(0, BlockFgmresWorkspace::workspace_bytes)
            + self.inner.workspace_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inner::PrecondInner;
    use crate::precond_any::AnyPrecond;
    use f3r_precond::PrecondKind;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::gen::rhs::random_rhs;
    use f3r_sparse::scaling::jacobi_scale;

    fn setup(nx: usize) -> (Arc<ProblemMatrix>, Arc<AnyPrecond>, Arc<KernelCounters>) {
        let a = jacobi_scale(&poisson2d_5pt(nx, nx));
        let counters = KernelCounters::new_shared();
        let m = Arc::new(AnyPrecond::build(
            &a,
            &PrecondKind::Ilu0 { alpha: 1.0 },
            Precision::Fp64,
        ));
        (Arc::new(ProblemMatrix::from_csr(a)), m, counters)
    }

    #[test]
    fn single_cycle_converges_on_small_spd_problem() {
        let (pm, m, counters) = setup(10);
        let n = pm.dim();
        let b = random_rhs(n, 3);
        let mut x = vec![0.0f64; n];
        let mut inner = PrecondInner::<f64>::new(m, Arc::clone(&counters), 2);
        let mut ws = FgmresWorkspace::<f64>::new(n, 60);
        let bnorm = blas1::norm2(&b);
        let out = fgmres_cycle(
            CycleParams {
                matrix: &pm,
                mat_storage: MatrixStorage::Plain(Precision::Fp64),
                inner: &mut inner,
                abs_tol: Some(1e-10 * bnorm),
                x_nonzero: false,
                depth: 1,
                counters: &counters,
                progress: None,
            },
            &mut x,
            &b,
            &mut ws,
        );
        assert!(out.converged, "estimate {}", out.residual_estimate);
        assert!(out.iterations < 60);
        let true_res = pm.true_relative_residual(&x, &b);
        assert!(true_res < 1e-8, "true residual {true_res}");
    }

    #[test]
    fn residual_estimate_tracks_true_residual() {
        let (pm, m, counters) = setup(8);
        let n = pm.dim();
        let b = random_rhs(n, 7);
        let mut x = vec![0.0f64; n];
        let mut inner = PrecondInner::<f64>::new(m, Arc::clone(&counters), 2);
        let mut ws = FgmresWorkspace::<f64>::new(n, 12);
        let out = fgmres_cycle(
            CycleParams {
                matrix: &pm,
                mat_storage: MatrixStorage::Plain(Precision::Fp64),
                inner: &mut inner,
                abs_tol: None,
                x_nonzero: false,
                depth: 1,
                counters: &counters,
                progress: None,
            },
            &mut x,
            &b,
            &mut ws,
        );
        let true_abs = pm.true_relative_residual(&x, &b) * blas1::norm2(&b);
        assert!(
            (out.residual_estimate - true_abs).abs() <= 1e-6 * true_abs.max(1e-12),
            "estimate {} vs true {}",
            out.residual_estimate,
            true_abs
        );
    }

    #[test]
    fn restarted_cycles_with_nonzero_guess_keep_improving() {
        let (pm, m, counters) = setup(12);
        let n = pm.dim();
        let b = random_rhs(n, 11);
        let mut x = vec![0.0f64; n];
        let mut inner = PrecondInner::<f64>::new(m, Arc::clone(&counters), 2);
        let mut ws = FgmresWorkspace::<f64>::new(n, 5);
        let mut last = f64::INFINITY;
        for cycle in 0..6 {
            let out = fgmres_cycle(
                CycleParams {
                    matrix: &pm,
                    mat_storage: MatrixStorage::Plain(Precision::Fp64),
                    inner: &mut inner,
                    abs_tol: None,
                    x_nonzero: cycle > 0,
                    depth: 1,
                    counters: &counters,
                    progress: None,
                },
                &mut x,
                &b,
                &mut ws,
            );
            assert_eq!(out.iterations, 5);
            let res = pm.true_relative_residual(&x, &b);
            assert!(res < last, "cycle {cycle}: {res} !< {last}");
            last = res;
        }
        assert!(last < 1e-3);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let (pm, m, counters) = setup(6);
        let n = pm.dim();
        let b = vec![0.0f64; n];
        let mut x = vec![0.0f64; n];
        let mut inner = PrecondInner::<f64>::new(m, Arc::clone(&counters), 2);
        let mut ws = FgmresWorkspace::<f64>::new(n, 8);
        let out = fgmres_cycle(
            CycleParams {
                matrix: &pm,
                mat_storage: MatrixStorage::Plain(Precision::Fp64),
                inner: &mut inner,
                abs_tol: Some(1e-10),
                x_nonzero: false,
                depth: 1,
                counters: &counters,
                progress: None,
            },
            &mut x,
            &b,
            &mut ws,
        );
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fgmres_level_acts_as_inner_solver_in_fp32() {
        let (pm, m, counters) = setup(8);
        let n = pm.dim();
        let inner_m = PrecondInner::<f32>::new(m, Arc::clone(&counters), 3);
        let mut level = FgmresLevel::<f32>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp32),
            8,
            Box::new(inner_m),
            2,
            Arc::clone(&counters),
        );
        let v: Vec<f32> = (0..n).map(|i| ((i % 11) as f32 - 5.0) / 11.0).collect();
        let mut z = vec![0.0f32; n];
        level.apply(&v, &mut z);
        // z should approximately solve A z = v: check the residual dropped.
        let v64: Vec<f64> = v.iter().map(|&x| f64::from(x)).collect();
        let z64: Vec<f64> = z.iter().map(|&x| f64::from(x)).collect();
        let res = pm.true_relative_residual(&z64, &v64);
        assert!(res < 0.2, "inner FGMRES(8) should reduce the residual, got {res}");
        assert!(level.name().contains("F8"));
    }

    #[test]
    fn level_apply_panel_matches_per_column_applies() {
        let (pm, m, counters) = setup(8);
        let n = pm.dim();
        let k = 3;
        let v: Vec<f32> = (0..n * k)
            .map(|i| ((i % 13) as f32 - 6.0) / 13.0)
            .collect();

        let mut panel_level = FgmresLevel::<f32>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp32),
            6,
            Box::new(PrecondInner::<f32>::new(Arc::clone(&m), Arc::clone(&counters), 3)),
            2,
            Arc::clone(&counters),
        );
        let mut zp = vec![0.0f32; n * k];
        panel_level.apply_panel(&v, &mut zp, k);

        let mut seq_level = FgmresLevel::<f32>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp32),
            6,
            Box::new(PrecondInner::<f32>::new(Arc::clone(&m), Arc::clone(&counters), 3)),
            2,
            Arc::clone(&counters),
        );
        for c in 0..k {
            let mut z = vec![0.0f32; n];
            seq_level.apply(&v[c * n..(c + 1) * n], &mut z);
            assert_eq!(
                &zp[c * n..(c + 1) * n],
                &z[..],
                "batched level output column {c} must be bitwise equal"
            );
        }
    }

    fn run_cycle<S: Scalar>(nx: usize, m: usize) -> (CycleOutcome, f64, u64, u64) {
        let (pm, mp, counters) = setup(nx);
        let n = pm.dim();
        let b = random_rhs(n, 17);
        let mut x = vec![0.0f64; n];
        let mut inner = PrecondInner::<f64>::new(mp, Arc::clone(&counters), 2);
        let mut ws = FgmresWorkspace::<f64, S>::new(n, m);
        let out = fgmres_cycle(
            CycleParams {
                matrix: &pm,
                mat_storage: MatrixStorage::Plain(Precision::Fp64),
                inner: &mut inner,
                abs_tol: None,
                x_nonzero: false,
                depth: 1,
                counters: &counters,
                progress: None,
            },
            &mut x,
            &b,
            &mut ws,
        );
        let true_res = pm.true_relative_residual(&x, &b);
        let snap = counters.snapshot();
        (out, true_res, snap.basis_bytes_total(), snap.basis_bytes_in(S::PRECISION))
    }

    #[test]
    fn compressed_basis_cycle_tracks_full_precision() {
        use f3r_precision::f16;
        let (out64, res64, bytes64, _) = run_cycle::<f64>(12, 20);
        let (out16, res16, bytes16, own16) = run_cycle::<f16>(12, 20);
        assert_eq!(out64.iterations, out16.iterations);
        // A single cycle with an fp16-compressed *outer* basis is limited by
        // the storage roundoff (~eps_fp16 relative to the update), not by
        // the Krylov process: it must still reduce the residual by better
        // than two orders of magnitude (restarts then close the remaining
        // gap — see the end-to-end tests).
        assert!(res64 < 1e-9, "fp64 basis residual {res64}");
        assert!(res16 < 1e-2, "fp16 basis residual {res16}");
        // All basis traffic is attributed to the storage precision and is a
        // quarter of the fp64-basis bytes.
        assert_eq!(bytes16, own16);
        assert_eq!(bytes16 * 4, bytes64);
    }

    #[test]
    fn same_precision_storage_matches_legacy_layout_numerics() {
        // With S = T the compression is a pure relabelling (power-of-two
        // scales); a cycle must converge exactly like the uncompressed
        // workspace used to.
        let (out, true_res, basis_bytes, _) = run_cycle::<f64>(10, 60);
        assert!(out.iterations <= 60);
        assert!(true_res < 1e-8, "true residual {true_res}");
        assert!(basis_bytes > 0);
    }

    #[test]
    fn workspace_reports_basis_precision() {
        use f3r_precision::f16;
        let ws = FgmresWorkspace::<f32, f16>::new(8, 4);
        assert_eq!(ws.basis_precision(), Precision::Fp16);
        assert_eq!(ws.cycle_length(), 4);
        let ws2 = FgmresWorkspace::<f32>::new(8, 4);
        assert_eq!(ws2.basis_precision(), Precision::Fp32);
    }

    #[test]
    fn fgmres_level_with_compressed_basis_names_the_storage() {
        let (pm, m, counters) = setup(8);
        let inner_m = PrecondInner::<f32>::new(m, Arc::clone(&counters), 3);
        let mut level = FgmresLevel::<f32, f3r_precision::f16>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp32),
            8,
            Box::new(inner_m),
            2,
            Arc::clone(&counters),
        );
        let n = pm.dim();
        let v: Vec<f32> = (0..n).map(|i| ((i % 11) as f32 - 5.0) / 11.0).collect();
        let mut z = vec![0.0f32; n];
        level.apply(&v, &mut z);
        let v64: Vec<f64> = v.iter().map(|&x| f64::from(x)).collect();
        let z64: Vec<f64> = z.iter().map(|&x| f64::from(x)).collect();
        let res = pm.true_relative_residual(&z64, &v64);
        assert!(res < 0.3, "compressed inner FGMRES(8) should reduce the residual, got {res}");
        assert!(level.name().contains("basis:fp16"));
    }
}
