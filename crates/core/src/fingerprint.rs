//! Stable content fingerprints for cached prepared solvers.
//!
//! A serving layer that caches [`PreparedSolver`](crate::session::PreparedSolver)s
//! needs a key that identifies *what the solver computes*: the coefficient
//! matrix (down to the value bits of the fp64 CSR base, plus the SpMV
//! backend, which fixes the streamed format and therefore the floating-point
//! summation order) and the structural fields of the validated
//! [`NestedSpec`].  Two solvers with equal
//! fingerprints produce bitwise-identical FGMRES-only solves, so a cache may
//! substitute one for the other.
//!
//! The hash is FNV-1a over an explicit, stable field serialization — *not*
//! `std::hash::Hash`, whose output is allowed to change between Rust
//! releases and which is not implemented for the `f64` fields carried by
//! specs.  Cosmetic fields (the spec `name`) are excluded: renaming a
//! configuration must still hit the cache.

use f3r_precision::Precision;
use f3r_precond::PrecondKind;

use crate::nested::{LevelSpec, NestedSpec};
use crate::operator::{MatrixStorage, ProblemMatrix, SpmvBackend};
use crate::richardson::WeightStrategy;

/// Incremental 64-bit FNV-1a hasher over little-endian field bytes.
///
/// FNV-1a is not cryptographic; the fingerprint distinguishes cache entries,
/// it does not defend against adversarial collisions.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Start a fresh hash at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.state = h;
    }

    /// Absorb a single tag byte (enum discriminants, field separators).
    pub fn write_tag(&mut self, tag: u8) {
        self.write(&[tag]);
    }

    /// Absorb a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `usize` widened to `u64` (stable across pointer widths).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by its IEEE bit pattern (`-0.0` and `0.0` therefore
    /// hash differently, as do distinct NaN payloads — exact bits, no
    /// numeric equivalence).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

fn precision_tag(p: Precision) -> u8 {
    match p {
        Precision::Fp16 => 0,
        Precision::Fp32 => 1,
        Precision::Fp64 => 2,
    }
}

fn write_storage(h: &mut Fnv64, s: MatrixStorage) {
    match s {
        MatrixStorage::Plain(p) => {
            h.write_tag(0);
            h.write_tag(precision_tag(p));
        }
        MatrixStorage::Scaled(p) => {
            h.write_tag(1);
            h.write_tag(precision_tag(p));
        }
    }
}

fn write_level(h: &mut Fnv64, level: &LevelSpec) {
    match *level {
        LevelSpec::Fgmres {
            m,
            matrix,
            vector_prec,
            basis_prec,
        } => {
            h.write_tag(0);
            h.write_usize(m);
            write_storage(h, matrix);
            h.write_tag(precision_tag(vector_prec));
            h.write_tag(precision_tag(basis_prec));
        }
        LevelSpec::Richardson {
            m,
            matrix,
            vector_prec,
            weight,
        } => {
            h.write_tag(1);
            h.write_usize(m);
            write_storage(h, matrix);
            h.write_tag(precision_tag(vector_prec));
            match weight {
                WeightStrategy::Adaptive { cycle } => {
                    h.write_tag(0);
                    h.write_usize(cycle);
                }
                WeightStrategy::Fixed(w) => {
                    h.write_tag(1);
                    h.write_f64(w);
                }
            }
        }
    }
}

fn write_precond(h: &mut Fnv64, kind: &PrecondKind) {
    match *kind {
        PrecondKind::Identity => h.write_tag(0),
        PrecondKind::Jacobi => h.write_tag(1),
        PrecondKind::Ilu0 { alpha } => {
            h.write_tag(2);
            h.write_f64(alpha);
        }
        PrecondKind::Ic0 { alpha } => {
            h.write_tag(3);
            h.write_f64(alpha);
        }
        PrecondKind::BlockJacobiIlu0 { blocks, alpha } => {
            h.write_tag(4);
            h.write_usize(blocks);
            h.write_f64(alpha);
        }
        PrecondKind::BlockJacobiIc0 { blocks, alpha } => {
            h.write_tag(5);
            h.write_usize(blocks);
            h.write_f64(alpha);
        }
        PrecondKind::SdAinv { alpha, order } => {
            h.write_tag(6);
            h.write_f64(alpha);
            h.write_usize(order);
        }
    }
}

/// Hash the structural fields of a spec: levels, preconditioner (kind and
/// storage precision), tolerance bits and the outer-cycle cap.
///
/// The cosmetic `name` is deliberately excluded — two specs that differ only
/// in their label prepare bitwise-identical solvers and must share a cache
/// entry.
#[must_use]
pub fn spec_fingerprint(spec: &NestedSpec) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(spec.levels.len());
    for level in &spec.levels {
        write_level(&mut h, level);
    }
    write_precond(&mut h, &spec.precond);
    h.write_tag(precision_tag(spec.precond_prec));
    h.write_f64(spec.tol);
    h.write_usize(spec.max_outer_cycles);
    h.finish()
}

/// Hash the SpMV backend (part of the matrix identity: CSR and SELL stream
/// rows in different orders, so equal values under different backends are
/// *not* interchangeable bitwise).
pub(crate) fn write_backend(h: &mut Fnv64, backend: SpmvBackend) {
    match backend {
        SpmvBackend::Csr => h.write_tag(0),
        SpmvBackend::Sell { chunk } => {
            h.write_tag(1);
            h.write_usize(chunk);
        }
    }
}

/// Combined solver fingerprint: matrix content hash (cached on the
/// [`ProblemMatrix`]) mixed with [`spec_fingerprint`].
///
/// This is exactly the value a prepared solver built from `(matrix, spec)`
/// reports as [`fingerprint()`](crate::session::PreparedSolver::fingerprint),
/// so a registry can compute the cache key *before* paying for construction.
#[must_use]
pub fn solver_fingerprint(matrix: &ProblemMatrix, spec: &NestedSpec) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(matrix.content_hash());
    h.write_u64(spec_fingerprint(spec));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f3r::{f3r_spec, F3rParams, F3rScheme, SolverSettings};
    use f3r_sparse::gen::laplacian::poisson2d_5pt;

    fn spec() -> NestedSpec {
        f3r_spec(
            F3rParams::default(),
            F3rScheme::Fp16,
            &SolverSettings::default(),
        )
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a test vector: the empty string hashes to the offset basis,
        // "a" to 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn name_is_cosmetic() {
        let a = spec();
        let mut b = spec();
        b.name = "renamed".to_string();
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn structural_fields_change_the_fingerprint() {
        let base = spec();
        let mut tol = spec();
        tol.tol = 1e-6;
        assert_ne!(spec_fingerprint(&base), spec_fingerprint(&tol));
        let mut cycles = spec();
        cycles.max_outer_cycles += 1;
        assert_ne!(spec_fingerprint(&base), spec_fingerprint(&cycles));
        // Compressing the bases (default storage = vector precision) changes
        // the level structure and therefore the fingerprint.
        let compressed = base.clone().with_basis_storage(Precision::Fp16);
        assert_ne!(spec_fingerprint(&base), spec_fingerprint(&compressed));
    }

    #[test]
    fn matrix_values_and_backend_feed_the_hash() {
        let a = poisson2d_5pt(8, 8);
        let m1 = ProblemMatrix::from_csr(a.clone());
        let m2 = ProblemMatrix::from_csr(a.clone());
        assert_eq!(m1.content_hash(), m2.content_hash());

        let mut perturbed = a.clone();
        // Flip the last mantissa bit of one entry: same shape, different bits.
        let v = perturbed.values()[0];
        perturbed.values_mut()[0] = f64::from_bits(v.to_bits() ^ 1);
        let m3 = ProblemMatrix::from_csr(perturbed);
        assert_ne!(m1.content_hash(), m3.content_hash());

        let sell = ProblemMatrix::new(a, SpmvBackend::Sell { chunk: 32 });
        assert_ne!(m1.content_hash(), sell.content_hash());
    }

    #[test]
    fn solver_fingerprint_mixes_both_parts() {
        let m = ProblemMatrix::from_csr(poisson2d_5pt(8, 8));
        let s = spec();
        let fp = solver_fingerprint(&m, &s);
        assert_eq!(fp, solver_fingerprint(&m, &s), "deterministic");
        let mut other = s.clone();
        other.tol = 1e-4;
        assert_ne!(fp, solver_fingerprint(&m, &other));
    }
}
