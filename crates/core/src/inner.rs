//! The [`InnerSolver`] abstraction and the precision bridge between levels.
//!
//! In the tuple notation of Section 3, a nested solver
//! `(S⁽¹⁾, S⁽²⁾, …, S⁽ᴰ⁾, M)` treats each inner solver `S⁽ᵈ⁾` as the
//! preconditioning operator of its parent `S⁽ᵈ⁻¹⁾`: the parent hands it a
//! vector `v` and receives an approximate solution of `A z = v`.
//! [`InnerSolver`] is exactly that interface.  Because adjacent levels run in
//! different precisions (fp64 → fp32 → fp16), the [`PrecisionBridge`] adapter
//! converts vectors at the boundary, and [`PrecondInner`] adapts the primary
//! preconditioner `M` itself so it can terminate a nesting chain (as in the
//! two- and three-level reference solvers of Table 4).
//!
//! Inner-solver chains are *per-session* state: each
//! [`SolveSession`](crate::session::SolveSession) builds its own chain (the
//! workspaces and the Richardson weights are mutable), while the matrix
//! copies and the factorized `M` the chain borrows live in the shared,
//! immutable [`PreparedSolver`](crate::session::PreparedSolver).  That
//! per-session ownership is what lets an *adaptive* session
//! ([`crate::adaptive`]) discard and rebuild its chain against wider matrix
//! variants mid-solve: the swap touches only session-local state (plus
//! demand-materialization of shared variants, which is append-only), and the
//! outer FGMRES level tolerates the operator change because its
//! preconditioning is flexible (see the module docs of [`crate::fgmres`]).

use std::sync::Arc;

use f3r_precision::{KernelCounters, Scalar};

use crate::precond_any::AnyPrecond;

/// An operator that, given `v`, produces an approximate solution `z` of
/// `A z = v`.  Stateful: Richardson's adaptive weight persists across calls
/// (Algorithm 1), and FGMRES levels reuse workspace.
pub trait InnerSolver<T: Scalar>: Send {
    /// Approximately solve `A z = v`, overwriting `z` (the initial guess is
    /// always the zero vector, as assumed by the paper's traffic model).
    fn apply(&mut self, v: &[T], z: &mut [T]);

    /// Apply this solver to every column of a column-major panel of `k`
    /// right-hand sides (column `c` of the `n × k` panel `v` is
    /// `v[c*n .. (c+1)*n]`), overwriting the corresponding columns of `z`.
    ///
    /// The default implementation is a column loop over
    /// [`apply`](Self::apply), and every override must match its output
    /// column for column: batching is a memory-traffic optimisation, not a
    /// semantic change.  [`FgmresLevel`](crate::fgmres::FgmresLevel)
    /// overrides it with a block cycle whose SpMVs fuse into one pass over
    /// the matrix ([`crate::operator::ProblemMatrix::apply_multi`]), and
    /// [`PrecisionBridge`] converts the whole panel so the batching reaches
    /// the narrow inner levels where the matrix stream dominates.  Levels
    /// with cross-apply state (the adaptive-weight Richardson sweep) keep
    /// the default: their state evolves per application in either form.
    ///
    /// # Panics
    /// Panics if `v` and `z` differ in length or their length is not a
    /// multiple of `k`.
    fn apply_panel(&mut self, v: &[T], z: &mut [T], k: usize) {
        assert_eq!(v.len(), z.len(), "apply_panel: panel length mismatch");
        if k == 0 {
            assert!(v.is_empty(), "apply_panel: zero-column panel must be empty");
            return;
        }
        assert_eq!(v.len() % k, 0, "apply_panel: panel length not a multiple of k");
        let n = v.len() / k;
        if n == 0 {
            return;
        }
        for (vc, zc) in v.chunks_exact(n).zip(z.chunks_exact_mut(n)) {
            self.apply(vc, zc);
        }
    }

    /// Descriptive name, e.g. `"F8(fp32)"` or `"R2(fp16, adaptive)"`.
    fn name(&self) -> String;

    /// Nesting depth of this solver (1 = outermost).
    fn depth(&self) -> usize;

    /// Heap bytes of this solver's own workspaces plus (recursively) its
    /// child chain's.  Shared state merely borrowed from the
    /// [`PreparedSolver`](crate::session::PreparedSolver) — matrix variants,
    /// the factorized `M` — is *not* counted; see
    /// [`SolveSession::workspace_bytes`](crate::session::SolveSession::workspace_bytes)
    /// for the split.  The default of 0 fits stateless adapters like
    /// [`PrecondInner`].
    fn workspace_bytes(&self) -> u64 {
        0
    }
}

/// Adapter exposing the primary preconditioner `M` as an [`InnerSolver`], for
/// nesting chains that end directly in `M` (e.g. `(F¹⁰⁰, F⁶⁴, M)`).
pub struct PrecondInner<T> {
    precond: Arc<AnyPrecond>,
    counters: Arc<KernelCounters>,
    depth: usize,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Scalar> PrecondInner<T> {
    /// Wrap the primary preconditioner at nesting depth `depth`.
    #[must_use]
    pub fn new(precond: Arc<AnyPrecond>, counters: Arc<KernelCounters>, depth: usize) -> Self {
        Self {
            precond,
            counters,
            depth,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Scalar> InnerSolver<T> for PrecondInner<T> {
    fn apply(&mut self, v: &[T], z: &mut [T]) {
        self.precond.apply_to(v, z, &self.counters);
    }

    fn name(&self) -> String {
        format!("M[{}]", self.precond.name())
    }

    fn depth(&self) -> usize {
        self.depth
    }
}

/// Converts vectors between a parent level running in precision `TP` and a
/// child level running in precision `TC`.
///
/// The conversion applies the same infinity-norm scaling safeguard as the
/// preconditioner boundary (see [`crate::precond_any`]): parent-side vectors
/// whose entries fall below the fp16 normal range are scaled into range before
/// rounding and the child's correction is scaled back, so nothing silently
/// flushes to zero.
pub struct PrecisionBridge<TP, TC> {
    child: Box<dyn InnerSolver<TC>>,
    v_lo: Vec<TC>,
    z_lo: Vec<TC>,
    /// Per-column infinity-norm scales of the last panel conversion (grown on
    /// the first batched apply; empty on the single-vector path).
    scales: Vec<f64>,
    _marker: std::marker::PhantomData<fn(TP)>,
}

impl<TP: Scalar, TC: Scalar> PrecisionBridge<TP, TC> {
    /// Wrap `child` (working in `TC`) for use by a parent working in `TP`.
    #[must_use]
    pub fn new(child: Box<dyn InnerSolver<TC>>, n: usize) -> Self {
        Self {
            child,
            v_lo: vec![TC::zero(); n],
            z_lo: vec![TC::zero(); n],
            scales: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<TP: Scalar, TC: Scalar> InnerSolver<TP> for PrecisionBridge<TP, TC> {
    fn apply(&mut self, v: &[TP], z: &mut [TP]) {
        let scale = v.iter().map(|x| x.to_f64().abs()).fold(0.0f64, f64::max);
        if scale == 0.0 {
            for zi in z.iter_mut() {
                *zi = TP::zero();
            }
            return;
        }
        // Slice to the vector length: the buffers may have grown to hold a
        // whole panel (`apply_panel`), and the child sees only one column.
        let n = v.len();
        let inv = 1.0 / scale;
        for (lo, hi) in self.v_lo[..n].iter_mut().zip(v.iter()) {
            *lo = TC::from_f64(hi.to_f64() * inv);
        }
        self.child.apply(&self.v_lo[..n], &mut self.z_lo[..n]);
        for (hi, lo) in z.iter_mut().zip(self.z_lo[..n].iter()) {
            *hi = TP::from_f64(lo.to_f64() * scale);
        }
    }

    fn apply_panel(&mut self, v: &[TP], z: &mut [TP], k: usize) {
        assert_eq!(v.len(), z.len(), "apply_panel: panel length mismatch");
        if k <= 1 {
            if k == 1 {
                self.apply(v, z);
            } else {
                assert!(v.is_empty(), "apply_panel: zero-column panel must be empty");
            }
            return;
        }
        assert_eq!(v.len() % k, 0, "apply_panel: panel length not a multiple of k");
        let n = v.len() / k;
        if self.v_lo.len() < n * k {
            self.v_lo.resize(n * k, TC::zero());
            self.z_lo.resize(n * k, TC::zero());
        }
        // Per-column infinity-norm scaling, exactly as the single-vector
        // path: a zero column skips the scaling and pins its output column
        // to zero, so each output column is what `apply` would produce.
        self.scales.clear();
        for c in 0..k {
            let col = &v[c * n..(c + 1) * n];
            let scale = col.iter().map(|x| x.to_f64().abs()).fold(0.0f64, f64::max);
            let dst = &mut self.v_lo[c * n..(c + 1) * n];
            if scale == 0.0 {
                for lo in dst.iter_mut() {
                    *lo = TC::zero();
                }
            } else {
                let inv = 1.0 / scale;
                for (lo, hi) in dst.iter_mut().zip(col.iter()) {
                    *lo = TC::from_f64(hi.to_f64() * inv);
                }
            }
            self.scales.push(scale);
        }
        self.child
            .apply_panel(&self.v_lo[..n * k], &mut self.z_lo[..n * k], k);
        for (c, &scale) in self.scales.iter().enumerate() {
            let zc = &mut z[c * n..(c + 1) * n];
            if scale == 0.0 {
                for hi in zc.iter_mut() {
                    *hi = TP::zero();
                }
            } else {
                for (hi, lo) in zc.iter_mut().zip(self.z_lo[c * n..(c + 1) * n].iter()) {
                    *hi = TP::from_f64(lo.to_f64() * scale);
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("{}→{} {}", TP::name(), TC::name(), self.child.name())
    }

    fn depth(&self) -> usize {
        self.child.depth()
    }

    fn workspace_bytes(&self) -> u64 {
        (self.v_lo.len() + self.z_lo.len()) as u64 * TC::bytes() as u64
            + self.scales.len() as u64 * 8
            + self.child.workspace_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precision::{f16, Precision};
    use f3r_precond::PrecondKind;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::scaling::jacobi_scale;

    /// A trivial inner solver that doubles its input (in the child precision).
    struct Doubler {
        depth: usize,
    }
    impl<T: Scalar> InnerSolver<T> for Doubler {
        fn apply(&mut self, v: &[T], z: &mut [T]) {
            for (zi, &vi) in z.iter_mut().zip(v.iter()) {
                *zi = vi + vi;
            }
        }
        fn name(&self) -> String {
            "doubler".into()
        }
        fn depth(&self) -> usize {
            self.depth
        }
    }

    #[test]
    fn precond_inner_applies_m() {
        let a = jacobi_scale(&poisson2d_5pt(6, 6));
        let n = a.n_rows();
        let counters = KernelCounters::new_shared();
        let m = Arc::new(AnyPrecond::build(&a, &PrecondKind::Jacobi, Precision::Fp32));
        let mut inner = PrecondInner::<f64>::new(m, Arc::clone(&counters), 3);
        let v = vec![2.0f64; n];
        let mut z = vec![0.0f64; n];
        inner.apply(&v, &mut z);
        // Jacobi on a unit-diagonal matrix is the identity.
        for &zi in &z {
            assert!((zi - 2.0).abs() < 1e-3);
        }
        assert_eq!(counters.snapshot().precond_applies, 1);
        assert_eq!(InnerSolver::<f64>::depth(&inner), 3);
    }

    #[test]
    fn bridge_converts_and_scales() {
        let mut bridge = PrecisionBridge::<f64, f16>::new(Box::new(Doubler { depth: 2 }), 4);
        // Entries below the fp16 subnormal range still survive thanks to the
        // norm scaling.
        let v = vec![1e-9, 2e-9, -3e-9, 4e-9];
        let mut z = vec![0.0f64; 4];
        bridge.apply(&v, &mut z);
        for i in 0..4 {
            assert!((z[i] - 2.0 * v[i]).abs() < 1e-12 + 2e-3 * v[i].abs());
        }
        assert!(bridge.name().contains("fp64→fp16"));
    }

    #[test]
    fn default_apply_panel_matches_per_column_applies() {
        let n = 9;
        let k = 4;
        let v: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut panel = vec![0.0f64; n * k];
        let mut d = Doubler { depth: 2 };
        d.apply_panel(&v, &mut panel, k);
        for c in 0..k {
            let mut z = vec![0.0f64; n];
            d.apply(&v[c * n..(c + 1) * n], &mut z);
            assert_eq!(&panel[c * n..(c + 1) * n], &z[..], "column {c}");
        }
        // k = 0 on an empty panel is a no-op.
        InnerSolver::<f64>::apply_panel(&mut d, &[], &mut [], 0);
    }

    #[test]
    fn bridge_apply_panel_matches_per_column_bridge_applies() {
        let n = 6;
        let k = 3;
        // Column 1 is identically zero: the bridge must pin its output to
        // zero exactly as the single-vector path does.
        let mut v = vec![0.0f64; n * k];
        for (i, vi) in v.iter_mut().enumerate() {
            let c = i / n;
            *vi = if c == 1 { 0.0 } else { ((i as f64) * 0.23 - 1.0) * 1e-9 };
        }
        let mut panel = vec![7.0f64; n * k];
        let mut bridged = PrecisionBridge::<f64, f16>::new(Box::new(Doubler { depth: 2 }), n);
        bridged.apply_panel(&v, &mut panel, k);
        let mut reference = PrecisionBridge::<f64, f16>::new(Box::new(Doubler { depth: 2 }), n);
        for c in 0..k {
            let mut z = vec![7.0f64; n];
            reference.apply(&v[c * n..(c + 1) * n], &mut z);
            assert_eq!(&panel[c * n..(c + 1) * n], &z[..], "column {c}");
        }
    }

    #[test]
    #[should_panic(expected = "apply_panel: panel length not a multiple of k")]
    fn apply_panel_length_mismatch_panics() {
        let mut d = Doubler { depth: 2 };
        let v = vec![0.0f64; 7];
        let mut z = vec![0.0f64; 7];
        d.apply_panel(&v, &mut z, 2);
    }

    #[test]
    fn bridge_zero_input_gives_zero_output() {
        let mut bridge = PrecisionBridge::<f32, f16>::new(Box::new(Doubler { depth: 2 }), 3);
        let v = vec![0.0f32; 3];
        let mut z = vec![5.0f32; 3];
        bridge.apply(&v, &mut z);
        assert_eq!(z, vec![0.0f32; 3]);
    }
}
