//! # f3r-core — the nested mixed-precision Krylov solver of the paper
//! *"A Nested Krylov Method Using Half-Precision Arithmetic"*
//! (Suzuki & Iwashita, 2025).
//!
//! The crate provides:
//!
//! * the prepared-solver session API ([`session`]): a fluent
//!   [`SolverBuilder`] compiles problem + spec + preconditioner into an
//!   immutable, `Arc`-shareable [`PreparedSolver`]; concurrent
//!   [`SolveSession`]s own the mutable workspaces (warm starts, per-solve
//!   overrides, `solve_many`/`solve_batch`, observers),
//! * batched multi-RHS solving ([`block`]): `k` independent FGMRES
//!   recurrences share one matrix pass per iteration
//!   (`ProblemMatrix::apply_multi`), cutting the dominant per-RHS matrix
//!   traffic to `1/k` while staying bitwise equal, per column, to `k`
//!   sequential solves,
//! * the nested-solver framework ([`nested`]): declarative [`NestedSpec`]s
//!   built from FGMRES and Richardson levels with per-level matrix/vector
//!   precisions (the legacy [`NestedSolver`] remains as a deprecated shim),
//! * the demand-driven matrix store ([`operator`]): [`ProblemMatrix`] is a
//!   lazy per-(storage, format) variant table — plain *and* row-scaled
//!   fp64/fp32/fp16 copies in CSR or sliced-ELLPACK, materialized only when
//!   a level streams them; pick the axis per level via the `matrix` field of
//!   [`LevelSpec`] or spec-wide via [`NestedSpec::with_matrix_storage`]
//!   (scaled fp16 keeps half-precision matrix streaming robust on any entry
//!   dynamic range),
//! * compressed Krylov-basis storage ([`basis`]): the Arnoldi and flexible
//!   bases of every FGMRES level can be stored below the level's working
//!   precision (one amplitude scale per vector, see
//!   [`basis::CompressedBasis`]); pick the storage axis per level via the
//!   `basis_prec` field of [`LevelSpec`] or spec-wide via
//!   [`NestedSpec::with_basis_storage`],
//! * adaptive runtime precision ([`adaptive`]): a stall detector over the
//!   outer residual trace escalates stalled inner levels to wider
//!   matrix/basis variants mid-solve and de-escalates after sustained
//!   progress ([`SolverBuilder::adaptive`](session::SolverBuilder::adaptive)),
//!   plus a cost-model autotuner that picks the initial spec per matrix
//!   ([`SolverBuilder::auto_spec`](session::SolverBuilder::auto_spec)),
//! * the paper's solver presets ([`f3r`]): fp64-/fp32-/fp16-F3R (Table 1) and
//!   the nesting-depth references F2, fp16-F2, F3, fp16-F3, F4 (Table 4),
//! * the innermost Richardson solver with adaptive weight updating
//!   ([`richardson`], Algorithm 1),
//! * the baselines of Section 5 ([`baseline`]): preconditioned CG, BiCGStab
//!   and restarted FGMRES(64) with fp64/fp32/fp16 preconditioner storage,
//! * the memory-access cost model of Section 4.1 ([`cost_model`]),
//! * instrumentation (preconditioner counts for Table 3, modeled traffic).
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use f3r_core::prelude::*;
//! use f3r_precond::PrecondKind;
//! use f3r_sparse::gen::hpcg::hpcg_matrix;
//! use f3r_sparse::gen::rhs::random_rhs;
//! use f3r_sparse::scaling::jacobi_scale;
//!
//! // HPCG-like SPD problem, diagonally scaled as in the paper.
//! let a = jacobi_scale(&hpcg_matrix(8, 8, 8));
//! let n = a.n_rows();
//! let matrix = Arc::new(ProblemMatrix::from_csr(a));
//!
//! // fp16-F3R with the default (100, 8, 4, 2) parameters and IC(0):
//! // setup (precision copies + factorisation) once …
//! let prepared = SolverBuilder::new(matrix)
//!     .scheme(F3rScheme::Fp16)
//!     .precond(PrecondKind::Ic0 { alpha: 1.0 })
//!     .build();
//!
//! // … then any number of (possibly concurrent) solve sessions.
//! let mut session = prepared.session();
//! let b = random_rhs(n, 1);
//! let mut x = vec![0.0; n];
//! let result = session.solve(&b, &mut x);
//! assert!(result.converged);
//! assert!(result.final_relative_residual < 1e-8);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod baseline;
pub mod basis;
pub mod block;
pub mod convergence;
pub mod cost_model;
pub mod f3r;
pub mod fgmres;
pub mod fingerprint;
pub mod inner;
pub mod nested;
pub mod operator;
pub mod precond_any;
pub mod richardson;
pub mod session;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::adaptive::{
        AdaptivePolicy, AutoTuneConfig, StallConfig, StallDetector, StallSignal,
    };
    pub use crate::baseline::{BaselineConfig, BiCgStabSolver, CgSolver, RestartedFgmresSolver};
    pub use crate::basis::CompressedBasis;
    pub use crate::block::BlockFgmresWorkspace;
    pub use crate::convergence::{SolveResult, SparseSolver, StopReason};
    pub use crate::f3r::{
        f2_spec, f3_spec, f3r_spec, f3r_spec_fixed_weight, f4_spec, fp16_f2_spec, fp16_f3_spec,
        F3rParams, F3rScheme, SolverSettings,
    };
    pub use crate::nested::{LevelSpec, NestedSolver, NestedSpec, SpecError};
    pub use crate::operator::{MatrixFormat, MatrixStorage, ProblemMatrix, SpmvBackend, VariantInfo};
    pub use crate::richardson::WeightStrategy;
    pub use crate::session::{
        CycleEvent, OuterEvent, PrecisionSwitchEvent, PreparedSolver, SolveControl, SolveObserver,
        SolveOptions, SolveSession, SolverBuilder,
    };
}

pub use convergence::{SolveResult, SparseSolver, StopReason};
pub use nested::{LevelSpec, NestedSolver, NestedSpec, SpecError};
pub use operator::{MatrixFormat, MatrixStorage, ProblemMatrix, SpmvBackend, VariantInfo};
pub use session::{PreparedSolver, SolveObserver, SolveOptions, SolveSession, SolverBuilder};
