//! Declarative description of nested Krylov solvers.
//!
//! A nested solver `(S⁽¹⁾, …, S⁽ᴰ⁾, M)` is described by a [`NestedSpec`]: an
//! ordered list of [`LevelSpec`]s (outermost first), the primary
//! preconditioner kind and its storage precision, the convergence tolerance
//! and the restart budget.  Specs are compiled by the session layer
//! ([`crate::session`]): a [`SolverBuilder`] turns one into an immutable,
//! `Arc`-shareable [`PreparedSolver`], and each [`SolveSession`] builds its
//! private chain of [`InnerSolver`](crate::inner::InnerSolver)s with
//! precision bridges inserted wherever the vector precision changes.
//!
//! [`NestedSolver`] remains as a thin deprecated shim over the session API
//! for callers of the historical `NestedSolver::new(matrix, spec)` +
//! `solve(&mut self, …)` two-step.

use std::fmt;
use std::sync::Arc;

use f3r_precision::{KernelCounters, Precision};
use f3r_precond::PrecondKind;

use crate::convergence::{SolveResult, SparseSolver};
use crate::operator::{MatrixStorage, ProblemMatrix};
use crate::richardson::WeightStrategy;
use crate::session::{PreparedSolver, SolveSession, SolverBuilder};

/// One level of a nested solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LevelSpec {
    /// An FGMRES level `F^m`.
    Fgmres {
        /// Iterations per invocation.
        m: usize,
        /// How the matrix variant streamed by this level's SpMV is stored:
        /// precision plus plain/row-scaled (see [`MatrixStorage`]).
        matrix: MatrixStorage,
        /// Working (vector) precision of this level.
        vector_prec: Precision,
        /// Storage precision of the Arnoldi/flexible bases (compressed with
        /// one amplitude scale per vector when below `vector_prec`; equal to
        /// `vector_prec` for classic uncompressed storage).  Build specs
        /// with [`LevelSpec::fgmres`] for the uncompressed default.
        basis_prec: Precision,
    },
    /// A Richardson level `R^m` (always the innermost iterative level).
    Richardson {
        /// Sweeps per invocation.
        m: usize,
        /// How the matrix variant streamed by this level's SpMV is stored.
        matrix: MatrixStorage,
        /// Working (vector) precision of this level.
        vector_prec: Precision,
        /// Weight strategy (adaptive Algorithm 1 or fixed).
        weight: WeightStrategy,
    },
}

impl LevelSpec {
    /// An FGMRES level with unscaled matrix storage in `matrix_prec` and
    /// classic uncompressed basis storage (`basis_prec = vector_prec`).
    #[must_use]
    pub fn fgmres(m: usize, matrix_prec: Precision, vector_prec: Precision) -> Self {
        Self::fgmres_stored(m, MatrixStorage::Plain(matrix_prec), vector_prec)
    }

    /// An FGMRES level with an explicit [`MatrixStorage`] (uncompressed
    /// basis storage).
    #[must_use]
    pub fn fgmres_stored(m: usize, matrix: MatrixStorage, vector_prec: Precision) -> Self {
        LevelSpec::Fgmres {
            m,
            matrix,
            vector_prec,
            basis_prec: vector_prec,
        }
    }

    /// The basis storage precision (`None` for Richardson levels, which keep
    /// no basis).
    #[must_use]
    pub fn basis_precision(&self) -> Option<Precision> {
        match *self {
            LevelSpec::Fgmres { basis_prec, .. } => Some(basis_prec),
            LevelSpec::Richardson { .. } => None,
        }
    }

    /// The working (vector) precision of the level.
    #[must_use]
    pub fn vector_precision(&self) -> Precision {
        match *self {
            LevelSpec::Fgmres { vector_prec, .. } | LevelSpec::Richardson { vector_prec, .. } => {
                vector_prec
            }
        }
    }

    /// The matrix storage configuration of the level (precision plus
    /// plain/scaled).
    #[must_use]
    pub fn matrix_storage(&self) -> MatrixStorage {
        match *self {
            LevelSpec::Fgmres { matrix, .. } | LevelSpec::Richardson { matrix, .. } => matrix,
        }
    }

    /// The matrix-storage precision of the level.
    #[must_use]
    pub fn matrix_precision(&self) -> Precision {
        self.matrix_storage().precision()
    }

    /// Iterations per invocation.
    #[must_use]
    pub fn iterations(&self) -> usize {
        match *self {
            LevelSpec::Fgmres { m, .. } | LevelSpec::Richardson { m, .. } => m,
        }
    }

    /// Compact label such as `F8` or `R2`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            LevelSpec::Fgmres { m, .. } => format!("F{m}"),
            LevelSpec::Richardson { m, .. } => format!("R{m}"),
        }
    }
}

/// A structural problem in a [`NestedSpec`] or a [`SolverBuilder`]
/// configuration, reported by [`NestedSpec::check`] and
/// [`SolverBuilder::try_build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl SpecError {
    /// Wrap a description of what is wrong with the spec.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        SpecError(message.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

/// Complete description of a nested Krylov solver.
#[derive(Debug, Clone)]
pub struct NestedSpec {
    /// Solver levels, outermost first.  The first level must be FGMRES with
    /// fp64 vectors (it drives the solve and checks convergence).
    pub levels: Vec<LevelSpec>,
    /// Primary preconditioner kind.
    pub precond: PrecondKind,
    /// Storage precision of the primary preconditioner.
    pub precond_prec: Precision,
    /// Convergence tolerance on ‖b − A x‖₂ / ‖b‖₂ (the paper uses 1e-8).
    pub tol: f64,
    /// Maximum number of outermost cycles (the paper terminates F3R after 300
    /// outermost iterations = 3 cycles of `m1 = 100`).
    pub max_outer_cycles: usize,
    /// Human-readable configuration name, e.g. `"fp16-F3R"`.
    pub name: String,
}

impl NestedSpec {
    /// Check the structural invariants, returning a descriptive error if the
    /// spec cannot be built.
    ///
    /// # Errors
    /// Returns a [`SpecError`] naming the first violated invariant.
    pub fn check(&self) -> Result<(), SpecError> {
        if self.levels.is_empty() {
            return Err(SpecError::new("nested spec needs at least one level"));
        }
        match self.levels[0] {
            LevelSpec::Fgmres { vector_prec, .. } => {
                if vector_prec != Precision::Fp64 {
                    return Err(SpecError::new(
                        "the outermost level must work in fp64 (it checks convergence)",
                    ));
                }
            }
            LevelSpec::Richardson { .. } => {
                return Err(SpecError::new("the outermost level must be FGMRES"));
            }
        }
        for (d, level) in self.levels.iter().enumerate() {
            if let LevelSpec::Richardson { .. } = level {
                if d != self.levels.len() - 1 {
                    return Err(SpecError::new(
                        "Richardson may only appear as the innermost level",
                    ));
                }
            }
            if let LevelSpec::Fgmres {
                vector_prec,
                basis_prec,
                ..
            } = level
            {
                if basis_prec > vector_prec {
                    return Err(SpecError::new(
                        "basis storage precision must not exceed the working precision",
                    ));
                }
            }
            if level.matrix_precision() > level.vector_precision() {
                // A matrix stored wider than the vectors it multiplies buys
                // no accuracy (products round to the working precision) while
                // paying the wide storage's bandwidth — reject it like a
                // too-wide basis.
                return Err(SpecError::new(
                    "matrix storage precision must not exceed the working precision",
                ));
            }
            if level.iterations() < 1 {
                return Err(SpecError::new("every level needs at least one iteration"));
            }
        }
        if self.tol.is_nan() || self.tol <= 0.0 {
            return Err(SpecError::new("tolerance must be positive"));
        }
        if self.max_outer_cycles < 1 {
            return Err(SpecError::new("need at least one outer cycle"));
        }
        Ok(())
    }

    /// Validate structural invariants, panicking with a descriptive message
    /// if the spec cannot be built (the fallible form is [`check`](Self::check)).
    ///
    /// # Panics
    /// Panics with the [`SpecError`] message on the first violated invariant.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Depth `D` of the nesting (number of iterative levels).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Tuple notation string, e.g. `(F100, F8, F4, R2, M)`.
    #[must_use]
    pub fn tuple_notation(&self) -> String {
        let mut parts: Vec<String> = self.levels.iter().map(LevelSpec::label).collect();
        parts.push("M".to_string());
        format!("({})", parts.join(", "))
    }

    /// Store the Arnoldi/flexible bases of every *inner* FGMRES level in
    /// precision `p` (clamped per level so storage never exceeds the level's
    /// working precision), making storage precision an axis independent of
    /// the per-level working precisions.
    ///
    /// The outermost level keeps uncompressed storage: it drives convergence
    /// to the final tolerance, and its solution update `x += Z y` must not
    /// be limited by the storage roundoff.  Inner levels run a fixed number
    /// of iterations as *flexible preconditioners* of their parent, so a
    /// slightly perturbed basis only perturbs the preconditioner — the
    /// regime in which compressed-basis GMRES (Aliaga et al.) shows
    /// low-precision storage costs next to nothing in iterations.  Callers
    /// who want a compressed outermost basis can set the `basis_prec` field
    /// of [`LevelSpec::Fgmres`] directly.
    #[must_use]
    pub fn with_basis_storage(mut self, p: Precision) -> Self {
        for level in self.levels.iter_mut().skip(1) {
            if let LevelSpec::Fgmres {
                vector_prec,
                basis_prec,
                ..
            } = level
            {
                *basis_prec = p.min(*vector_prec);
            }
        }
        self
    }

    /// Store the matrix variant streamed by every *inner* level as `storage`
    /// (clamped per level so the storage precision never exceeds the level's
    /// working precision, preserving the plain/scaled flag), making matrix
    /// storage the same first-class axis the basis already is.
    ///
    /// The outermost level keeps its own storage (fp64 by default): its SpMV
    /// feeds the convergence-driving residual, so narrowing it would cap the
    /// attainable accuracy at the storage roundoff.  Inner levels act as
    /// flexible preconditioners — a perturbed matrix only perturbs the
    /// preconditioner.  Callers who want a reduced outermost matrix can set
    /// the `matrix` field of [`LevelSpec::Fgmres`] directly.
    #[must_use]
    pub fn with_matrix_storage(mut self, storage: MatrixStorage) -> Self {
        for level in self.levels.iter_mut().skip(1) {
            let (LevelSpec::Fgmres {
                matrix,
                vector_prec,
                ..
            }
            | LevelSpec::Richardson {
                matrix,
                vector_prec,
                ..
            }) = level;
            let p = storage.precision().min(*vector_prec);
            *matrix = if storage.is_scaled() {
                MatrixStorage::Scaled(p)
            } else {
                MatrixStorage::Plain(p)
            };
        }
        self
    }
}

/// A fully constructed nested Krylov solver (the paper's F3R and all of its
/// F2/F3/F4 relatives) behind the historical one-struct interface.
///
/// This is now a thin shim over the session API: internally it is exactly an
/// `Arc<PreparedSolver>` plus one [`SolveSession`].  New code should use
/// those types directly — they add shared setup across threads, warm starts,
/// per-solve overrides, `solve_many` and observers.
pub struct NestedSolver {
    session: SolveSession,
}

impl NestedSolver {
    /// Build the solver described by `spec` for the matrix `matrix`.
    ///
    /// # Panics
    /// Panics if the spec fails [`NestedSpec::check`].
    #[deprecated(
        note = "use SolverBuilder (e.g. `SolverBuilder::new(matrix).spec(spec).build()`) and open SolveSessions from the shared PreparedSolver"
    )]
    #[must_use]
    pub fn new(matrix: Arc<ProblemMatrix>, spec: NestedSpec) -> Self {
        Self::from_prepared(&SolverBuilder::new(matrix).spec(spec).build())
    }

    /// Wrap a prepared solver as a legacy [`SparseSolver`] (one private
    /// session over the shared setup).
    #[must_use]
    pub fn from_prepared(prepared: &Arc<PreparedSolver>) -> Self {
        Self {
            session: prepared.session(),
        }
    }

    /// The spec this solver was built from.
    #[must_use]
    pub fn spec(&self) -> &NestedSpec {
        self.session.prepared().spec()
    }

    /// Shared kernel counters (reset at the start of every `solve`).
    #[must_use]
    pub fn counters(&self) -> &Arc<KernelCounters> {
        self.session.counters()
    }

    /// The underlying solve session.
    #[must_use]
    pub fn session_mut(&mut self) -> &mut SolveSession {
        &mut self.session
    }
}

impl SparseSolver for NestedSolver {
    fn solve(&mut self, b: &[f64], x: &mut [f64]) -> SolveResult {
        self.session.solve(b, x)
    }

    fn name(&self) -> String {
        self.spec().name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::hpcg::hpcg_matrix;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::gen::rhs::random_rhs;
    use f3r_sparse::scaling::jacobi_scale;

    fn simple_spec(name: &str, levels: Vec<LevelSpec>) -> NestedSpec {
        NestedSpec {
            levels,
            precond: PrecondKind::Ilu0 { alpha: 1.0 },
            precond_prec: Precision::Fp64,
            tol: 1e-8,
            max_outer_cycles: 3,
            name: name.to_string(),
        }
    }

    #[test]
    fn two_level_fp64_solver_converges() {
        let a = jacobi_scale(&poisson2d_5pt(16, 16));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "F(30)-F(5)",
            vec![
                LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(5, Precision::Fp64, Precision::Fp64),
            ],
        );
        let prepared = SolverBuilder::new(pm).spec(spec).build();
        let mut session = prepared.session();
        let n = 256;
        let b = random_rhs(n, 42);
        let mut x = vec![0.0; n];
        let res = session.solve(&b, &mut x);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        assert!(res.final_relative_residual < 1e-8);
        assert!(res.precond_applications > 0);
        assert!(!res.residual_history.is_empty());
    }

    #[test]
    fn four_level_mixed_precision_solver_converges() {
        // A miniature fp16-F3R: (F40, F8, F4, R2, M) with Table 1 precisions.
        let a = jacobi_scale(&hpcg_matrix(8, 8, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = NestedSpec {
            levels: vec![
                LevelSpec::fgmres(40, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp32),
                LevelSpec::fgmres(4, Precision::Fp16, Precision::Fp32),
                LevelSpec::Richardson {
                    m: 2,
                    matrix: MatrixStorage::Plain(Precision::Fp16),
                    vector_prec: Precision::Fp16,
                    weight: WeightStrategy::Adaptive { cycle: 64 },
                },
            ],
            precond: PrecondKind::Ic0 { alpha: 1.0 },
            precond_prec: Precision::Fp16,
            tol: 1e-8,
            max_outer_cycles: 3,
            name: "mini-fp16-F3R".into(),
        };
        assert_eq!(spec.tuple_notation(), "(F40, F8, F4, R2, M)");
        let n = 8 * 8 * 4;
        let prepared = SolverBuilder::new(pm).spec(spec).build();
        let mut session = prepared.session();
        let b = random_rhs(n, 5);
        let mut x = vec![0.0; n];
        let res = session.solve(&b, &mut x);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        // fp16 work must actually have happened
        assert!(res.counters.bytes_in(Precision::Fp16) > 0);
        assert!(res.counters.spmv_in(Precision::Fp16) > 0);
    }

    #[test]
    fn with_basis_storage_compresses_inner_levels_only() {
        let spec = simple_spec(
            "storage",
            vec![
                LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(20, Precision::Fp32, Precision::Fp32),
            ],
        )
        .with_basis_storage(Precision::Fp16);
        assert_eq!(spec.levels[0].basis_precision(), Some(Precision::Fp64));
        assert_eq!(spec.levels[1].basis_precision(), Some(Precision::Fp16));
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "basis storage precision must not exceed")]
    fn basis_wider_than_vectors_is_rejected() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "bad-basis",
            vec![
                LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
                LevelSpec::Fgmres {
                    m: 4,
                    matrix: MatrixStorage::Plain(Precision::Fp16),
                    vector_prec: Precision::Fp16,
                    basis_prec: Precision::Fp32,
                },
            ],
        );
        let _ = SolverBuilder::new(pm).spec(spec).build();
    }

    #[test]
    fn compressed_inner_basis_attributes_traffic_to_fp16_storage() {
        // A solver with fp16-compressed inner bases must converge to the
        // same tolerance and report its inner basis traffic at the fp16
        // storage width, with only the (uncompressed) outermost level left
        // in fp64 basis bytes.  The quantitative acceptance thresholds —
        // outer iterations within 10% of full storage, ≥ 40% basis byte
        // cut — live in the end-to-end suite (tests/compressed_basis.rs).
        let a = jacobi_scale(&poisson2d_5pt(32, 32));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = NestedSpec {
            levels: vec![
                LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(20, Precision::Fp32, Precision::Fp32),
            ],
            precond: PrecondKind::Jacobi,
            precond_prec: Precision::Fp64,
            tol: 1e-8,
            max_outer_cycles: 5,
            name: "fp16-basis".to_string(),
        }
        .with_basis_storage(Precision::Fp16);
        let n = pm.dim();
        let b = random_rhs(n, 23);
        let prepared = SolverBuilder::new(pm).spec(spec).build();
        let mut session = prepared.session();
        let mut x = vec![0.0; n];
        let r = session.solve(&b, &mut x);
        assert!(r.converged, "residual {}", r.final_relative_residual);
        // Inner bases stream in fp16; no fp32 basis bytes remain; the
        // outer fp64 basis is the only other contributor and the inner
        // (5/2)m² term dominates it.
        let fp16 = r.counters.basis_bytes_in(Precision::Fp16);
        let fp32 = r.counters.basis_bytes_in(Precision::Fp32);
        let fp64 = r.counters.basis_bytes_in(Precision::Fp64);
        assert!(fp16 > 0);
        assert_eq!(fp32, 0);
        assert!(fp64 > 0);
        assert!(fp16 > fp64, "inner basis traffic should dominate: {fp16} vs {fp64}");
        assert_eq!(r.counters.basis_bytes_total(), fp16 + fp64);
    }

    #[test]
    fn with_matrix_storage_rewrites_inner_levels_only() {
        let spec = NestedSpec {
            levels: vec![
                LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(20, Precision::Fp32, Precision::Fp32),
                LevelSpec::Richardson {
                    m: 2,
                    matrix: MatrixStorage::Plain(Precision::Fp16),
                    vector_prec: Precision::Fp16,
                    weight: WeightStrategy::Fixed(1.0),
                },
            ],
            precond: PrecondKind::Jacobi,
            precond_prec: Precision::Fp64,
            tol: 1e-8,
            max_outer_cycles: 3,
            name: "storage".to_string(),
        }
        .with_matrix_storage(MatrixStorage::Scaled(Precision::Fp16));
        // Outermost keeps its fp64 stream; inner levels get scaled fp16,
        // clamped to each level's working precision (no clamping needed
        // here: fp16 ≤ fp32 and fp16 ≤ fp16).
        assert_eq!(
            spec.levels[0].matrix_storage(),
            MatrixStorage::Plain(Precision::Fp64)
        );
        assert_eq!(
            spec.levels[1].matrix_storage(),
            MatrixStorage::Scaled(Precision::Fp16)
        );
        assert_eq!(
            spec.levels[2].matrix_storage(),
            MatrixStorage::Scaled(Precision::Fp16)
        );
        spec.validate();

        // Clamping: requesting scaled fp32 on an fp16-vector level yields
        // scaled fp16, never a storage wider than the working precision.
        let clamped = NestedSpec {
            levels: vec![
                LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(4, Precision::Fp16, Precision::Fp16),
            ],
            precond: PrecondKind::Jacobi,
            precond_prec: Precision::Fp64,
            tol: 1e-8,
            max_outer_cycles: 3,
            name: "clamp".to_string(),
        }
        .with_matrix_storage(MatrixStorage::Scaled(Precision::Fp32));
        assert_eq!(
            clamped.levels[1].matrix_storage(),
            MatrixStorage::Scaled(Precision::Fp16)
        );
        clamped.validate();
    }

    #[test]
    #[should_panic(expected = "matrix storage precision must not exceed")]
    fn matrix_wider_than_vectors_is_rejected() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "bad-matrix",
            vec![
                LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(4, Precision::Fp64, Precision::Fp32),
            ],
        );
        let _ = SolverBuilder::new(pm).spec(spec).build();
    }

    #[test]
    fn prepared_solver_materializes_only_the_spec_variants() {
        use crate::operator::MatrixFormat;
        let a = jacobi_scale(&poisson2d_5pt(8, 8));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        // f64 + f32 levels: no fp16 variant may be materialized.
        let spec = simple_spec(
            "no-fp16",
            vec![
                LevelSpec::fgmres(20, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(5, Precision::Fp32, Precision::Fp32),
            ],
        );
        let prepared = SolverBuilder::new(Arc::clone(&pm)).spec(spec).build();
        let n = pm.dim();
        let b = random_rhs(n, 3);
        let mut x = vec![0.0; n];
        assert!(prepared.session().solve(&b, &mut x).converged);
        let variants = pm.materialized_variants();
        assert!(
            variants
                .iter()
                .all(|v| v.storage.precision() != Precision::Fp16),
            "no level streams fp16, so the store must hold no fp16 variant: {variants:?}"
        );
        assert!(pm.is_materialized(MatrixStorage::Plain(Precision::Fp32), MatrixFormat::Csr));
        assert_eq!(variants.len(), 2);
    }

    #[test]
    fn zero_rhs_is_trivially_converged() {
        let a = jacobi_scale(&poisson2d_5pt(8, 8));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "trivial",
            vec![LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64)],
        );
        let prepared = SolverBuilder::new(pm).spec(spec).build();
        let mut session = prepared.session();
        let b = vec![0.0; 64];
        let mut x = vec![1.0; 64];
        let res = session.solve(&b, &mut x);
        assert!(res.converged);
        assert_eq!(res.outer_iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_solves_and_exposes_spec() {
        let a = jacobi_scale(&poisson2d_5pt(12, 12));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "shim",
            vec![
                LevelSpec::fgmres(20, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(5, Precision::Fp32, Precision::Fp32),
            ],
        );
        let mut solver = NestedSolver::new(pm, spec);
        assert_eq!(solver.name(), "shim");
        assert_eq!(solver.spec().depth(), 2);
        let n = 144;
        let b = random_rhs(n, 8);
        let mut x = vec![0.0; n];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        assert!(solver.counters().snapshot().precond_applies > 0);
        assert_eq!(solver.session_mut().workspace_generation(), 1);
    }

    #[test]
    fn check_reports_errors_without_panicking() {
        let bad = simple_spec(
            "bad",
            vec![LevelSpec::fgmres(10, Precision::Fp32, Precision::Fp32)],
        );
        let err = bad.check().unwrap_err();
        assert!(err.to_string().contains("outermost level must work in fp64"));
        let empty = simple_spec("empty", vec![]);
        assert!(empty.check().is_err());
    }

    #[test]
    #[should_panic(expected = "outermost level must work in fp64")]
    fn outermost_must_be_fp64() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "bad",
            vec![LevelSpec::fgmres(10, Precision::Fp32, Precision::Fp32)],
        );
        let _ = SolverBuilder::new(pm).spec(spec).build();
    }

    #[test]
    #[should_panic(expected = "Richardson may only appear as the innermost level")]
    fn richardson_must_be_innermost() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "bad",
            vec![
                LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
                LevelSpec::Richardson {
                    m: 2,
                    matrix: MatrixStorage::Plain(Precision::Fp64),
                    vector_prec: Precision::Fp64,
                    weight: WeightStrategy::Fixed(1.0),
                },
                LevelSpec::fgmres(4, Precision::Fp64, Precision::Fp64),
            ],
        );
        let _ = SolverBuilder::new(pm).spec(spec).build();
    }
}
