//! Declarative description and construction of nested Krylov solvers.
//!
//! A nested solver `(S⁽¹⁾, …, S⁽ᴰ⁾, M)` is described by a [`NestedSpec`]: an
//! ordered list of [`LevelSpec`]s (outermost first), the primary
//! preconditioner kind and its storage precision, the convergence tolerance
//! and the restart budget.  [`NestedSolver::new`] turns a spec into a running
//! solver: the outermost FGMRES level is driven directly (it is the only
//! place convergence is checked, Section 4.2), the remaining levels are built
//! recursively as a chain of [`InnerSolver`]s with [`PrecisionBridge`]s
//! inserted wherever the vector precision changes.

use std::sync::Arc;
use std::time::Instant;

use f3r_precision::{f16, KernelCounters, Precision, Scalar};
use f3r_sparse::blas1;
use f3r_precond::PrecondKind;

use crate::convergence::{SolveResult, SparseSolver, StopReason};
use crate::fgmres::{fgmres_cycle, CycleParams, FgmresLevel, FgmresWorkspace};
use crate::inner::{InnerSolver, PrecisionBridge, PrecondInner};
use crate::operator::ProblemMatrix;
use crate::precond_any::AnyPrecond;
use crate::richardson::{RichardsonLevel, WeightStrategy};

/// One level of a nested solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LevelSpec {
    /// An FGMRES level `F^m`.
    Fgmres {
        /// Iterations per invocation.
        m: usize,
        /// Precision of the matrix copy used by this level's SpMV.
        matrix_prec: Precision,
        /// Working (vector) precision of this level.
        vector_prec: Precision,
        /// Storage precision of the Arnoldi/flexible bases (compressed with
        /// one amplitude scale per vector when below `vector_prec`; equal to
        /// `vector_prec` for classic uncompressed storage).  Build specs
        /// with [`LevelSpec::fgmres`] for the uncompressed default.
        basis_prec: Precision,
    },
    /// A Richardson level `R^m` (always the innermost iterative level).
    Richardson {
        /// Sweeps per invocation.
        m: usize,
        /// Precision of the matrix copy used by this level's SpMV.
        matrix_prec: Precision,
        /// Working (vector) precision of this level.
        vector_prec: Precision,
        /// Weight strategy (adaptive Algorithm 1 or fixed).
        weight: WeightStrategy,
    },
}

impl LevelSpec {
    /// An FGMRES level with classic uncompressed basis storage
    /// (`basis_prec = vector_prec`).
    #[must_use]
    pub fn fgmres(m: usize, matrix_prec: Precision, vector_prec: Precision) -> Self {
        LevelSpec::Fgmres {
            m,
            matrix_prec,
            vector_prec,
            basis_prec: vector_prec,
        }
    }

    /// The basis storage precision (`None` for Richardson levels, which keep
    /// no basis).
    #[must_use]
    pub fn basis_precision(&self) -> Option<Precision> {
        match *self {
            LevelSpec::Fgmres { basis_prec, .. } => Some(basis_prec),
            LevelSpec::Richardson { .. } => None,
        }
    }

    /// The working (vector) precision of the level.
    #[must_use]
    pub fn vector_precision(&self) -> Precision {
        match *self {
            LevelSpec::Fgmres { vector_prec, .. } | LevelSpec::Richardson { vector_prec, .. } => {
                vector_prec
            }
        }
    }

    /// The matrix-storage precision of the level.
    #[must_use]
    pub fn matrix_precision(&self) -> Precision {
        match *self {
            LevelSpec::Fgmres { matrix_prec, .. } | LevelSpec::Richardson { matrix_prec, .. } => {
                matrix_prec
            }
        }
    }

    /// Iterations per invocation.
    #[must_use]
    pub fn iterations(&self) -> usize {
        match *self {
            LevelSpec::Fgmres { m, .. } | LevelSpec::Richardson { m, .. } => m,
        }
    }

    /// Compact label such as `F8` or `R2`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            LevelSpec::Fgmres { m, .. } => format!("F{m}"),
            LevelSpec::Richardson { m, .. } => format!("R{m}"),
        }
    }
}

/// Complete description of a nested Krylov solver.
#[derive(Debug, Clone)]
pub struct NestedSpec {
    /// Solver levels, outermost first.  The first level must be FGMRES with
    /// fp64 vectors (it drives the solve and checks convergence).
    pub levels: Vec<LevelSpec>,
    /// Primary preconditioner kind.
    pub precond: PrecondKind,
    /// Storage precision of the primary preconditioner.
    pub precond_prec: Precision,
    /// Convergence tolerance on ‖b − A x‖₂ / ‖b‖₂ (the paper uses 1e-8).
    pub tol: f64,
    /// Maximum number of outermost cycles (the paper terminates F3R after 300
    /// outermost iterations = 3 cycles of `m1 = 100`).
    pub max_outer_cycles: usize,
    /// Human-readable configuration name, e.g. `"fp16-F3R"`.
    pub name: String,
}

impl NestedSpec {
    /// Validate structural invariants, panicking with a descriptive message
    /// if the spec cannot be built.
    pub fn validate(&self) {
        assert!(!self.levels.is_empty(), "nested spec needs at least one level");
        match self.levels[0] {
            LevelSpec::Fgmres { vector_prec, .. } => {
                assert_eq!(
                    vector_prec,
                    Precision::Fp64,
                    "the outermost level must work in fp64 (it checks convergence)"
                );
            }
            LevelSpec::Richardson { .. } => {
                panic!("the outermost level must be FGMRES");
            }
        }
        for (d, level) in self.levels.iter().enumerate() {
            if let LevelSpec::Richardson { .. } = level {
                assert_eq!(
                    d,
                    self.levels.len() - 1,
                    "Richardson may only appear as the innermost level"
                );
            }
            if let LevelSpec::Fgmres {
                vector_prec,
                basis_prec,
                ..
            } = level
            {
                assert!(
                    basis_prec <= vector_prec,
                    "basis storage precision must not exceed the working precision"
                );
            }
            assert!(level.iterations() >= 1, "every level needs at least one iteration");
        }
        assert!(self.tol > 0.0, "tolerance must be positive");
        assert!(self.max_outer_cycles >= 1, "need at least one outer cycle");
    }

    /// Depth `D` of the nesting (number of iterative levels).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Tuple notation string, e.g. `(F100, F8, F4, R2, M)`.
    #[must_use]
    pub fn tuple_notation(&self) -> String {
        let mut parts: Vec<String> = self.levels.iter().map(LevelSpec::label).collect();
        parts.push("M".to_string());
        format!("({})", parts.join(", "))
    }

    /// Store the Arnoldi/flexible bases of every *inner* FGMRES level in
    /// precision `p` (clamped per level so storage never exceeds the level's
    /// working precision), making storage precision an axis independent of
    /// the per-level working precisions.
    ///
    /// The outermost level keeps uncompressed storage: it drives convergence
    /// to the final tolerance, and its solution update `x += Z y` must not
    /// be limited by the storage roundoff.  Inner levels run a fixed number
    /// of iterations as *flexible preconditioners* of their parent, so a
    /// slightly perturbed basis only perturbs the preconditioner — the
    /// regime in which compressed-basis GMRES (Aliaga et al.) shows
    /// low-precision storage costs next to nothing in iterations.  Callers
    /// who want a compressed outermost basis can set the `basis_prec` field
    /// of [`LevelSpec::Fgmres`] directly.
    #[must_use]
    pub fn with_basis_storage(mut self, p: Precision) -> Self {
        for level in self.levels.iter_mut().skip(1) {
            if let LevelSpec::Fgmres {
                vector_prec,
                basis_prec,
                ..
            } = level
            {
                *basis_prec = p.min(*vector_prec);
            }
        }
        self
    }
}

/// Build the inner-solver chain for `levels` (outermost of the *chain* first,
/// i.e. the level at nesting depth `depth`), working in vector precision `T`.
///
/// The caller guarantees `T` matches `levels[0].vector_precision()`.
fn build_chain<T: Scalar>(
    levels: &[LevelSpec],
    depth: usize,
    matrix: &Arc<ProblemMatrix>,
    precond: &Arc<AnyPrecond>,
    counters: &Arc<KernelCounters>,
) -> Box<dyn InnerSolver<T>> {
    let level = levels[0];
    debug_assert_eq!(level.vector_precision(), T::PRECISION);
    match level {
        LevelSpec::Richardson {
            m,
            matrix_prec,
            weight,
            ..
        } => Box::new(RichardsonLevel::<T>::new(
            Arc::clone(matrix),
            matrix_prec,
            m,
            Arc::clone(precond),
            weight,
            depth,
            Arc::clone(counters),
        )),
        LevelSpec::Fgmres {
            m,
            matrix_prec,
            basis_prec,
            ..
        } => {
            let inner: Box<dyn InnerSolver<T>> = if levels.len() == 1 {
                // This FGMRES level is the innermost iterative level: its
                // flexible preconditioner is the primary preconditioner M.
                Box::new(PrecondInner::<T>::new(
                    Arc::clone(precond),
                    Arc::clone(counters),
                    depth + 1,
                ))
            } else {
                build_child::<T>(&levels[1..], depth + 1, matrix, precond, counters)
            };
            // Instantiate the level for the requested basis *storage*
            // precision — the second type parameter of `FgmresLevel`.
            match basis_prec {
                Precision::Fp64 => Box::new(FgmresLevel::<T, f64>::new(
                    Arc::clone(matrix),
                    matrix_prec,
                    m,
                    inner,
                    depth,
                    Arc::clone(counters),
                )),
                Precision::Fp32 => Box::new(FgmresLevel::<T, f32>::new(
                    Arc::clone(matrix),
                    matrix_prec,
                    m,
                    inner,
                    depth,
                    Arc::clone(counters),
                )),
                Precision::Fp16 => Box::new(FgmresLevel::<T, f16>::new(
                    Arc::clone(matrix),
                    matrix_prec,
                    m,
                    inner,
                    depth,
                    Arc::clone(counters),
                )),
            }
        }
    }
}

/// Build the child chain starting at `levels[0]`, bridging from the parent's
/// vector precision `TP` to the child's vector precision if they differ.
fn build_child<TP: Scalar>(
    levels: &[LevelSpec],
    depth: usize,
    matrix: &Arc<ProblemMatrix>,
    precond: &Arc<AnyPrecond>,
    counters: &Arc<KernelCounters>,
) -> Box<dyn InnerSolver<TP>> {
    let child_prec = levels[0].vector_precision();
    let n = matrix.dim();
    if child_prec == TP::PRECISION {
        return build_chain::<TP>(levels, depth, matrix, precond, counters);
    }
    match child_prec {
        Precision::Fp64 => Box::new(PrecisionBridge::<TP, f64>::new(
            build_chain::<f64>(levels, depth, matrix, precond, counters),
            n,
        )),
        Precision::Fp32 => Box::new(PrecisionBridge::<TP, f32>::new(
            build_chain::<f32>(levels, depth, matrix, precond, counters),
            n,
        )),
        Precision::Fp16 => Box::new(PrecisionBridge::<TP, f16>::new(
            build_chain::<f16>(levels, depth, matrix, precond, counters),
            n,
        )),
    }
}

/// Outermost FGMRES workspace, instantiated for the spec's basis storage
/// precision (the working precision is always fp64 at depth 1).
enum OuterWorkspace {
    /// Uncompressed fp64 basis storage.
    F64(FgmresWorkspace<f64, f64>),
    /// fp32-compressed basis storage.
    F32(FgmresWorkspace<f64, f32>),
    /// fp16-compressed basis storage.
    F16(FgmresWorkspace<f64, f16>),
}

impl OuterWorkspace {
    fn new(basis_prec: Precision, n: usize, m: usize) -> Self {
        match basis_prec {
            Precision::Fp64 => OuterWorkspace::F64(FgmresWorkspace::new(n, m)),
            Precision::Fp32 => OuterWorkspace::F32(FgmresWorkspace::new(n, m)),
            Precision::Fp16 => OuterWorkspace::F16(FgmresWorkspace::new(n, m)),
        }
    }

    fn run_cycle(
        &mut self,
        params: CycleParams<'_, f64>,
        x: &mut [f64],
        b: &[f64],
    ) -> crate::fgmres::CycleOutcome {
        match self {
            OuterWorkspace::F64(ws) => fgmres_cycle(params, x, b, ws),
            OuterWorkspace::F32(ws) => fgmres_cycle(params, x, b, ws),
            OuterWorkspace::F16(ws) => fgmres_cycle(params, x, b, ws),
        }
    }
}

/// A fully constructed nested Krylov solver (the paper's F3R and all of its
/// F2/F3/F4 relatives), driven by an outermost fp64 FGMRES with restarting.
pub struct NestedSolver {
    matrix: Arc<ProblemMatrix>,
    #[allow(dead_code)]
    precond: Arc<AnyPrecond>,
    counters: Arc<KernelCounters>,
    spec: NestedSpec,
    inner: Box<dyn InnerSolver<f64>>,
    ws: OuterWorkspace,
}

impl NestedSolver {
    /// Build the solver described by `spec` for the matrix `matrix`.
    ///
    /// # Panics
    /// Panics if the spec fails [`NestedSpec::validate`].
    #[must_use]
    pub fn new(matrix: Arc<ProblemMatrix>, spec: NestedSpec) -> Self {
        spec.validate();
        let counters = KernelCounters::new_shared();
        let precond = Arc::new(AnyPrecond::build(
            matrix.csr_f64(),
            &spec.precond,
            spec.precond_prec,
        ));
        let m1 = spec.levels[0].iterations();
        let inner: Box<dyn InnerSolver<f64>> = if spec.levels.len() == 1 {
            Box::new(PrecondInner::<f64>::new(
                Arc::clone(&precond),
                Arc::clone(&counters),
                2,
            ))
        } else {
            build_child::<f64>(&spec.levels[1..], 2, &matrix, &precond, &counters)
        };
        let n = matrix.dim();
        let outer_basis = spec.levels[0]
            .basis_precision()
            .unwrap_or(Precision::Fp64);
        Self {
            matrix,
            precond,
            counters,
            spec,
            inner,
            ws: OuterWorkspace::new(outer_basis, n, m1),
        }
    }

    /// The spec this solver was built from.
    #[must_use]
    pub fn spec(&self) -> &NestedSpec {
        &self.spec
    }

    /// Shared kernel counters (reset at the start of every `solve`).
    #[must_use]
    pub fn counters(&self) -> &Arc<KernelCounters> {
        &self.counters
    }
}

impl SparseSolver for NestedSolver {
    fn solve(&mut self, b: &[f64], x: &mut [f64]) -> SolveResult {
        let n = self.matrix.dim();
        assert_eq!(b.len(), n, "solve: b length mismatch");
        assert_eq!(x.len(), n, "solve: x length mismatch");
        let start = Instant::now();
        self.counters.reset();
        for xi in x.iter_mut() {
            *xi = 0.0;
        }
        let bnorm = blas1::norm2(b);
        let mut history = Vec::new();
        let mut outer_iterations = 0usize;
        let mut stop_reason = StopReason::MaxIterations;
        let mut converged = false;

        if bnorm == 0.0 {
            // x = 0 is the exact solution.
            converged = true;
            stop_reason = StopReason::Converged;
        } else {
            let abs_tol = self.spec.tol * bnorm;
            'outer: for cycle in 0..self.spec.max_outer_cycles {
                let outcome = self.ws.run_cycle(
                    CycleParams {
                        matrix: &self.matrix,
                        mat_prec: self.spec.levels[0].matrix_precision(),
                        inner: self.inner.as_mut(),
                        abs_tol: Some(abs_tol),
                        x_nonzero: cycle > 0,
                        depth: 1,
                        counters: &self.counters,
                    },
                    x,
                    b,
                );
                outer_iterations += outcome.iterations;
                let true_rel = self.matrix.true_relative_residual(x, b);
                history.push(true_rel);
                if !true_rel.is_finite() {
                    stop_reason = StopReason::Breakdown;
                    break 'outer;
                }
                if true_rel < self.spec.tol {
                    converged = true;
                    stop_reason = StopReason::Converged;
                    break 'outer;
                }
                if outcome.breakdown && outcome.iterations == 0 {
                    stop_reason = StopReason::Breakdown;
                    break 'outer;
                }
            }
        }

        let final_rel = self.matrix.true_relative_residual(x, b);
        SolveResult {
            converged,
            stop_reason,
            outer_iterations,
            precond_applications: self.counters.snapshot().precond_applies,
            final_relative_residual: final_rel,
            seconds: start.elapsed().as_secs_f64(),
            residual_history: history,
            counters: self.counters.snapshot(),
            solver_name: self.spec.name.clone(),
        }
    }

    fn name(&self) -> String {
        self.spec.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::hpcg::hpcg_matrix;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::gen::rhs::random_rhs;
    use f3r_sparse::scaling::jacobi_scale;

    fn simple_spec(name: &str, levels: Vec<LevelSpec>) -> NestedSpec {
        NestedSpec {
            levels,
            precond: PrecondKind::Ilu0 { alpha: 1.0 },
            precond_prec: Precision::Fp64,
            tol: 1e-8,
            max_outer_cycles: 3,
            name: name.to_string(),
        }
    }

    #[test]
    fn two_level_fp64_solver_converges() {
        let a = jacobi_scale(&poisson2d_5pt(16, 16));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "F(30)-F(5)",
            vec![
                LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(5, Precision::Fp64, Precision::Fp64),
            ],
        );
        let mut solver = NestedSolver::new(pm, spec);
        let n = 256;
        let b = random_rhs(n, 42);
        let mut x = vec![0.0; n];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        assert!(res.final_relative_residual < 1e-8);
        assert!(res.precond_applications > 0);
        assert!(!res.residual_history.is_empty());
    }

    #[test]
    fn four_level_mixed_precision_solver_converges() {
        // A miniature fp16-F3R: (F40, F8, F4, R2, M) with Table 1 precisions.
        let a = jacobi_scale(&hpcg_matrix(8, 8, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = NestedSpec {
            levels: vec![
                LevelSpec::fgmres(40, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(8, Precision::Fp32, Precision::Fp32),
                LevelSpec::fgmres(4, Precision::Fp16, Precision::Fp32),
                LevelSpec::Richardson {
                    m: 2,
                    matrix_prec: Precision::Fp16,
                    vector_prec: Precision::Fp16,
                    weight: WeightStrategy::Adaptive { cycle: 64 },
                },
            ],
            precond: PrecondKind::Ic0 { alpha: 1.0 },
            precond_prec: Precision::Fp16,
            tol: 1e-8,
            max_outer_cycles: 3,
            name: "mini-fp16-F3R".into(),
        };
        assert_eq!(spec.tuple_notation(), "(F40, F8, F4, R2, M)");
        let n = 8 * 8 * 4;
        let mut solver = NestedSolver::new(pm, spec);
        let b = random_rhs(n, 5);
        let mut x = vec![0.0; n];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "residual {}", res.final_relative_residual);
        // fp16 work must actually have happened
        assert!(res.counters.bytes_in(Precision::Fp16) > 0);
        assert!(res.counters.spmv_in(Precision::Fp16) > 0);
    }

    #[test]
    fn with_basis_storage_compresses_inner_levels_only() {
        let spec = simple_spec(
            "storage",
            vec![
                LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(20, Precision::Fp32, Precision::Fp32),
            ],
        )
        .with_basis_storage(Precision::Fp16);
        assert_eq!(spec.levels[0].basis_precision(), Some(Precision::Fp64));
        assert_eq!(spec.levels[1].basis_precision(), Some(Precision::Fp16));
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "basis storage precision must not exceed")]
    fn basis_wider_than_vectors_is_rejected() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "bad-basis",
            vec![
                LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
                LevelSpec::Fgmres {
                    m: 4,
                    matrix_prec: Precision::Fp16,
                    vector_prec: Precision::Fp16,
                    basis_prec: Precision::Fp32,
                },
            ],
        );
        let _ = NestedSolver::new(pm, spec);
    }

    #[test]
    fn compressed_inner_basis_attributes_traffic_to_fp16_storage() {
        // A solver with fp16-compressed inner bases must converge to the
        // same tolerance and report its inner basis traffic at the fp16
        // storage width, with only the (uncompressed) outermost level left
        // in fp64 basis bytes.  The quantitative acceptance thresholds —
        // outer iterations within 10% of full storage, ≥ 40% basis byte
        // cut — live in the end-to-end suite (tests/compressed_basis.rs).
        let a = jacobi_scale(&poisson2d_5pt(32, 32));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = NestedSpec {
            levels: vec![
                LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(20, Precision::Fp32, Precision::Fp32),
            ],
            precond: PrecondKind::Jacobi,
            precond_prec: Precision::Fp64,
            tol: 1e-8,
            max_outer_cycles: 5,
            name: "fp16-basis".to_string(),
        }
        .with_basis_storage(Precision::Fp16);
        let n = pm.dim();
        let b = random_rhs(n, 23);
        let mut solver = NestedSolver::new(pm, spec);
        let mut x = vec![0.0; n];
        let r = solver.solve(&b, &mut x);
        assert!(r.converged, "residual {}", r.final_relative_residual);
        // Inner bases stream in fp16; no fp32 basis bytes remain; the
        // outer fp64 basis is the only other contributor and the inner
        // (5/2)m² term dominates it.
        let fp16 = r.counters.basis_bytes_in(Precision::Fp16);
        let fp32 = r.counters.basis_bytes_in(Precision::Fp32);
        let fp64 = r.counters.basis_bytes_in(Precision::Fp64);
        assert!(fp16 > 0);
        assert_eq!(fp32, 0);
        assert!(fp64 > 0);
        assert!(fp16 > fp64, "inner basis traffic should dominate: {fp16} vs {fp64}");
        assert_eq!(r.counters.basis_bytes_total(), fp16 + fp64);
    }

    #[test]
    fn zero_rhs_is_trivially_converged() {
        let a = jacobi_scale(&poisson2d_5pt(8, 8));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "trivial",
            vec![LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64)],
        );
        let mut solver = NestedSolver::new(pm, spec);
        let b = vec![0.0; 64];
        let mut x = vec![1.0; 64];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged);
        assert_eq!(res.outer_iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "outermost level must work in fp64")]
    fn outermost_must_be_fp64() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "bad",
            vec![LevelSpec::fgmres(10, Precision::Fp32, Precision::Fp32)],
        );
        let _ = NestedSolver::new(pm, spec);
    }

    #[test]
    #[should_panic(expected = "Richardson may only appear as the innermost level")]
    fn richardson_must_be_innermost() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let spec = simple_spec(
            "bad",
            vec![
                LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
                LevelSpec::Richardson {
                    m: 2,
                    matrix_prec: Precision::Fp64,
                    vector_prec: Precision::Fp64,
                    weight: WeightStrategy::Fixed(1.0),
                },
                LevelSpec::fgmres(4, Precision::Fp64, Precision::Fp64),
            ],
        );
        let _ = NestedSolver::new(pm, spec);
    }
}
