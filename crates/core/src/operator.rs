//! The multi-precision coefficient-matrix handle shared by all solver levels.
//!
//! F3R stores the coefficient matrix `A` in up to three precisions at once
//! (Table 1: fp64 for the outermost FGMRES, fp32 for `F^m2`, fp16 for `F^m3`
//! and the Richardson part).  [`ProblemMatrix`] owns those copies, knows which
//! SpMV backend to use (CSR for the CPU-node configuration, sliced ELLPACK
//! for the GPU-node configuration of Section 5.2) and records every product
//! in the shared [`KernelCounters`].

use std::sync::Arc;

use f3r_precision::{f16, KernelCounters, Precision, Scalar};
use f3r_precision::traffic::TrafficModel;
use f3r_sparse::blas1;
use f3r_sparse::spmv::{spmv, spmv_dot2, spmv_residual, spmv_sell};
use f3r_sparse::{CsrMatrix, SellMatrix};

/// Which sparse matrix–vector kernel the solvers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum SpmvBackend {
    /// Compressed sparse row (the paper's CPU-node configuration).
    #[default]
    Csr,
    /// Sliced ELLPACK with the given chunk size (the paper's GPU-node
    /// configuration uses a chunk of 32).
    Sell {
        /// Rows per slice.
        chunk: usize,
    },
}


/// Multi-precision copies of the coefficient matrix plus the SpMV backend.
pub struct ProblemMatrix {
    csr64: Arc<CsrMatrix<f64>>,
    csr32: Arc<CsrMatrix<f32>>,
    csr16: Arc<CsrMatrix<f16>>,
    sell64: Option<Arc<SellMatrix<f64>>>,
    sell32: Option<Arc<SellMatrix<f32>>>,
    sell16: Option<Arc<SellMatrix<f16>>>,
    backend: SpmvBackend,
    n: usize,
    nnz: usize,
}

impl ProblemMatrix {
    /// Build all precision copies of `a` for the given backend.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    #[must_use]
    pub fn new(a: CsrMatrix<f64>, backend: SpmvBackend) -> Self {
        assert!(a.is_square(), "solvers require a square matrix");
        let n = a.n_rows();
        let nnz = a.nnz();
        let csr32 = Arc::new(a.to_precision::<f32>());
        let csr16 = Arc::new(a.to_precision::<f16>());
        let csr64 = Arc::new(a);
        let (sell64, sell32, sell16) = match backend {
            SpmvBackend::Csr => (None, None, None),
            SpmvBackend::Sell { chunk } => (
                Some(Arc::new(SellMatrix::from_csr(&csr64, chunk))),
                Some(Arc::new(SellMatrix::from_csr(&csr32, chunk))),
                Some(Arc::new(SellMatrix::from_csr(&csr16, chunk))),
            ),
        };
        Self {
            csr64,
            csr32,
            csr16,
            sell64,
            sell32,
            sell16,
            backend,
            n,
            nnz,
        }
    }

    /// Convenience constructor for the CSR backend.
    #[must_use]
    pub fn from_csr(a: CsrMatrix<f64>) -> Self {
        Self::new(a, SpmvBackend::Csr)
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The configured SpMV backend.
    #[must_use]
    pub fn backend(&self) -> SpmvBackend {
        self.backend
    }

    /// The fp64 CSR copy (used by result verification and the baselines).
    #[must_use]
    pub fn csr_f64(&self) -> &Arc<CsrMatrix<f64>> {
        &self.csr64
    }

    /// Total bytes of matrix storage across all precision copies.
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        self.csr64.storage_bytes() + self.csr32.storage_bytes() + self.csr16.storage_bytes()
    }

    /// Compute `y = A x` using the copy of `A` stored in `mat_prec`, with
    /// vectors in precision `TV`, recording the product in `counters`.
    pub fn apply<TV: Scalar>(
        &self,
        mat_prec: Precision,
        x: &[TV],
        y: &mut [TV],
        counters: &KernelCounters,
    ) {
        counters.record_spmv(
            mat_prec,
            TrafficModel::spmv_bytes(self.nnz, self.n, mat_prec, TV::PRECISION),
        );
        match (self.backend, mat_prec) {
            (SpmvBackend::Csr, Precision::Fp64) => spmv(&self.csr64, x, y),
            (SpmvBackend::Csr, Precision::Fp32) => spmv(&self.csr32, x, y),
            (SpmvBackend::Csr, Precision::Fp16) => spmv(&self.csr16, x, y),
            (SpmvBackend::Sell { .. }, Precision::Fp64) => {
                spmv_sell(self.sell64.as_ref().expect("sell64 built"), x, y);
            }
            (SpmvBackend::Sell { .. }, Precision::Fp32) => {
                spmv_sell(self.sell32.as_ref().expect("sell32 built"), x, y);
            }
            (SpmvBackend::Sell { .. }, Precision::Fp16) => {
                spmv_sell(self.sell16.as_ref().expect("sell16 built"), x, y);
            }
        }
    }

    /// Compute `y = A x` and, in the same sweep, the two dot products
    /// `(uᵀ y, yᵀ y)` — the reduction pair behind CG's `(p, Ap)`, BiCGStab's
    /// `(t, s)/(t, t)` and the adaptive Richardson weight.
    ///
    /// With the CSR backend the dots are fused into the SpMV kernel
    /// ([`spmv_dot2`]); the SELL backend falls back to the SpMV followed by
    /// the one-pass [`blas1::dot_with_sqnorm`].
    pub fn apply_dot2<TV: Scalar>(
        &self,
        mat_prec: Precision,
        x: &[TV],
        u: &[TV],
        y: &mut [TV],
        counters: &KernelCounters,
    ) -> (f64, f64) {
        counters.record_spmv(
            mat_prec,
            TrafficModel::spmv_bytes(self.nnz, self.n, mat_prec, TV::PRECISION),
        );
        match (self.backend, mat_prec) {
            (SpmvBackend::Csr, Precision::Fp64) | (SpmvBackend::Csr, Precision::Fp32)
            | (SpmvBackend::Csr, Precision::Fp16) => {
                // The fused sweep reads `u` once on top of the SpMV traffic.
                counters.record_blas1(
                    TV::PRECISION,
                    TrafficModel::blas1_bytes(self.n, 1, 0, TV::PRECISION),
                );
            }
            (SpmvBackend::Sell { .. }, _) => {
                // The SELL fallback runs a second pass reading y and u.
                counters.record_blas1(
                    TV::PRECISION,
                    TrafficModel::blas1_bytes(self.n, 2, 0, TV::PRECISION),
                );
            }
        }
        match (self.backend, mat_prec) {
            (SpmvBackend::Csr, Precision::Fp64) => spmv_dot2(&self.csr64, x, u, y),
            (SpmvBackend::Csr, Precision::Fp32) => spmv_dot2(&self.csr32, x, u, y),
            (SpmvBackend::Csr, Precision::Fp16) => spmv_dot2(&self.csr16, x, u, y),
            (SpmvBackend::Sell { .. }, _) => {
                match mat_prec {
                    Precision::Fp64 => {
                        spmv_sell(self.sell64.as_ref().expect("sell64 built"), x, y);
                    }
                    Precision::Fp32 => {
                        spmv_sell(self.sell32.as_ref().expect("sell32 built"), x, y);
                    }
                    Precision::Fp16 => {
                        spmv_sell(self.sell16.as_ref().expect("sell16 built"), x, y);
                    }
                }
                let (uy, yy) = blas1::dot_with_sqnorm(y, u);
                (uy, yy)
            }
        }
    }

    /// Compute the residual `r = b - A x` with the matrix copy in `mat_prec`
    /// and vectors in `TV`.
    ///
    /// With the CSR backend this runs the fused [`spmv_residual`] kernel
    /// (subtraction in the accumulation precision, one sweep); the SELL
    /// backend subtracts in a second widening pass.
    pub fn residual<TV: Scalar>(
        &self,
        mat_prec: Precision,
        x: &[TV],
        b: &[TV],
        r: &mut [TV],
        counters: &KernelCounters,
    ) {
        match self.backend {
            // Fused kernel: reads b once, writes r once on top of the SpMV.
            SpmvBackend::Csr => counters.record_blas1(
                TV::PRECISION,
                TrafficModel::blas1_bytes(self.n, 1, 1, TV::PRECISION),
            ),
            // SELL subtracts in a second pass: reads b and r, writes r.
            SpmvBackend::Sell { .. } => counters.record_blas1(
                TV::PRECISION,
                TrafficModel::blas1_bytes(self.n, 2, 1, TV::PRECISION),
            ),
        }
        match (self.backend, mat_prec) {
            (SpmvBackend::Csr, Precision::Fp64) => {
                counters.record_spmv(
                    mat_prec,
                    TrafficModel::spmv_bytes(self.nnz, self.n, mat_prec, TV::PRECISION),
                );
                spmv_residual(&self.csr64, x, b, r);
            }
            (SpmvBackend::Csr, Precision::Fp32) => {
                counters.record_spmv(
                    mat_prec,
                    TrafficModel::spmv_bytes(self.nnz, self.n, mat_prec, TV::PRECISION),
                );
                spmv_residual(&self.csr32, x, b, r);
            }
            (SpmvBackend::Csr, Precision::Fp16) => {
                counters.record_spmv(
                    mat_prec,
                    TrafficModel::spmv_bytes(self.nnz, self.n, mat_prec, TV::PRECISION),
                );
                spmv_residual(&self.csr16, x, b, r);
            }
            (SpmvBackend::Sell { .. }, _) => {
                self.apply(mat_prec, x, r, counters);
                for i in 0..self.n {
                    r[i] = TV::narrow(b[i].widen() - r[i].widen());
                }
            }
        }
    }

    /// True relative residual `‖b − A x‖₂ / ‖b‖₂`, always evaluated in fp64
    /// with the fp64 matrix copy (the paper's convergence criterion,
    /// Section 5).
    #[must_use]
    pub fn true_relative_residual(&self, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0f64; self.n];
        self.true_relative_residual_with(x, b, &mut r)
    }

    /// [`true_relative_residual`](Self::true_relative_residual) into a
    /// caller-provided scratch buffer `r` (overwritten with `b − A x`), so
    /// repeated convergence checks allocate nothing.
    ///
    /// # Panics
    /// Panics if `r` is not of the matrix dimension.
    #[must_use]
    pub fn true_relative_residual_with(&self, x: &[f64], b: &[f64], r: &mut [f64]) -> f64 {
        assert_eq!(r.len(), self.n, "residual scratch length mismatch");
        spmv(&self.csr64, x, r);
        for i in 0..self.n {
            r[i] = b[i] - r[i];
        }
        let bnorm = blas1::norm2(b);
        if bnorm == 0.0 {
            blas1::norm2(r)
        } else {
            blas1::norm2(r) / bnorm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::hpcg::hpcg_matrix;

    #[test]
    fn all_precision_copies_agree_on_easy_vectors() {
        let a = hpcg_matrix(4, 4, 4);
        let pm = ProblemMatrix::from_csr(a);
        let counters = KernelCounters::new_shared();
        let n = pm.dim();
        let x = vec![1.0f64; n];
        let mut y64 = vec![0.0f64; n];
        pm.apply(Precision::Fp64, &x, &mut y64, &counters);
        let x32 = vec![1.0f32; n];
        let mut y32 = vec![0.0f32; n];
        pm.apply(Precision::Fp32, &x32, &mut y32, &counters);
        let x16 = vec![f16::from_f32(1.0); n];
        let mut y16 = vec![f16::from_f32(0.0); n];
        pm.apply(Precision::Fp16, &x16, &mut y16, &counters);
        for i in 0..n {
            // integer-valued results are exact in every precision
            assert_eq!(y64[i], f64::from(y32[i]));
            assert_eq!(y64[i], y16[i].to_f64());
        }
        let snap = counters.snapshot();
        assert_eq!(snap.total_spmv(), 3);
        assert!(snap.bytes_in(Precision::Fp16) < snap.bytes_in(Precision::Fp64));
    }

    #[test]
    fn sell_backend_matches_csr_backend() {
        let a = hpcg_matrix(4, 4, 4);
        let counters = KernelCounters::new_shared();
        let pm_csr = ProblemMatrix::from_csr(a.clone());
        let pm_sell = ProblemMatrix::new(a, SpmvBackend::Sell { chunk: 32 });
        let n = pm_csr.dim();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        pm_csr.apply(Precision::Fp64, &x, &mut y1, &counters);
        pm_sell.apply(Precision::Fp64, &x, &mut y2, &counters);
        for i in 0..n {
            assert!((y1[i] - y2[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn residual_and_true_residual() {
        let a = hpcg_matrix(3, 3, 3);
        let pm = ProblemMatrix::from_csr(a);
        let counters = KernelCounters::new_shared();
        let n = pm.dim();
        let x = vec![0.0f64; n];
        let b = vec![2.0f64; n];
        let mut r = vec![0.0f64; n];
        pm.residual(Precision::Fp64, &x, &b, &mut r, &counters);
        assert_eq!(r, b);
        assert!((pm.true_relative_residual(&x, &b) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn storage_includes_three_copies() {
        let a = hpcg_matrix(3, 3, 3);
        let nnz = a.nnz();
        let n = a.n_rows();
        let pm = ProblemMatrix::from_csr(a);
        let expected = (nnz as u64) * (12 + 8 + 6) + 3 * 4 * (n as u64 + 1);
        assert_eq!(pm.storage_bytes(), expected);
    }
}
