//! The demand-driven multi-precision coefficient-matrix store shared by all
//! solver levels.
//!
//! F3R consumes the coefficient matrix `A` in up to three precisions at once
//! (Table 1: fp64 for the outermost FGMRES, fp32 for `F^m2`, fp16 for `F^m3`
//! and the Richardson part).  Historically [`ProblemMatrix`] eagerly built
//! every precision copy (and, on the SELL backend, every SELL copy) whether
//! or not any level used them.  It is now a **lazy variant table**: the fp64
//! CSR base is the only copy built up front, and every other
//! ([`MatrixStorage`], [`MatrixFormat`]) variant is materialized behind a
//! `OnceLock` the first time a level applies it — `PreparedSolver` setup
//! faults in exactly the variants its validated spec names, and anything
//! else (a per-solve override, a diagnostic) can still fault in later.
//!
//! Besides the plain precision copies, the table holds **scaled** variants
//! ([`f3r_sparse::ScaledCsr`] / [`f3r_sparse::ScaledSell`]): row-normalised
//! values with one power-of-two `f64` amplitude scale per row, mirroring the
//! compressed Krylov basis convention.  Scaled fp16 storage survives any
//! entry dynamic range, where an unscaled fp16 copy of a general Matrix
//! Market input silently overflows to ±∞ (see
//! [`f3r_sparse::EntryRangeStats`]).
//!
//! Every product records its traffic in the shared [`KernelCounters`],
//! including the per-storage-precision matrix-stream attribution
//! ([`KernelCounters::record_matrix_traffic`]).

use std::fmt;
use std::sync::{Arc, OnceLock};

use f3r_precision::{f16, KernelCounters, Precision, Scalar};
use f3r_precision::traffic::TrafficModel;
use f3r_sparse::blas1;
use f3r_sparse::spmv::{
    spmv, spmv_dot2, spmv_multi, spmv_residual, spmv_scaled, spmv_scaled_dot2, spmv_scaled_multi,
    spmv_scaled_residual, spmv_scaled_sell, spmv_scaled_sell_multi, spmv_sell, spmv_sell_multi,
};
use f3r_sparse::{CsrMatrix, ScaledCsr, ScaledSell, SellMatrix};

/// Which sparse matrix–vector kernel the solvers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum SpmvBackend {
    /// Compressed sparse row (the paper's CPU-node configuration).
    #[default]
    Csr,
    /// Sliced ELLPACK with the given chunk size (the paper's GPU-node
    /// configuration uses a chunk of 32).
    Sell {
        /// Rows per slice.
        chunk: usize,
    },
}

/// How a solver level stores (and streams) the coefficient matrix: the
/// storage *precision* plus whether the values are kept under per-row
/// power-of-two amplitude scales.
///
/// This is the matrix-side sibling of the basis storage precision axis:
/// `Plain(p)` is the classic direct conversion of every entry into `p`
/// (identical to the historical precision copies), `Scaled(p)` stores
/// row-normalised values (`|stored| ≤ 1`) plus one `f64` scale per row —
/// bit-lossless when `p` is fp64, and robust to any entry dynamic range when
/// `p` is narrower.  Validation rejects storage wider than a level's working
/// precision, exactly like the basis axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixStorage {
    /// Directly converted values in the given precision (unscaled).
    Plain(Precision),
    /// Row-scaled values in the given precision plus per-row `f64`
    /// power-of-two amplitude scales.
    Scaled(Precision),
}

impl MatrixStorage {
    /// The precision the matrix values are stored in.
    #[must_use]
    pub fn precision(self) -> Precision {
        match self {
            MatrixStorage::Plain(p) | MatrixStorage::Scaled(p) => p,
        }
    }

    /// Whether the values are kept under per-row amplitude scales.
    #[must_use]
    pub fn is_scaled(self) -> bool {
        matches!(self, MatrixStorage::Scaled(_))
    }

    /// All six storage configurations (used by accounting and benches).
    #[must_use]
    pub fn all() -> [MatrixStorage; 6] {
        [
            MatrixStorage::Plain(Precision::Fp16),
            MatrixStorage::Plain(Precision::Fp32),
            MatrixStorage::Plain(Precision::Fp64),
            MatrixStorage::Scaled(Precision::Fp16),
            MatrixStorage::Scaled(Precision::Fp32),
            MatrixStorage::Scaled(Precision::Fp64),
        ]
    }

    fn index(self) -> usize {
        let p = match self.precision() {
            Precision::Fp16 => 0,
            Precision::Fp32 => 1,
            Precision::Fp64 => 2,
        };
        p + if self.is_scaled() { 3 } else { 0 }
    }
}

impl fmt::Display for MatrixStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixStorage::Plain(p) => write!(f, "{p}"),
            MatrixStorage::Scaled(p) => write!(f, "scaled-{p}"),
        }
    }
}

/// The sparse layout of one stored matrix variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixFormat {
    /// Compressed sparse row.
    Csr,
    /// Sliced ELLPACK (the chunk size is fixed per [`ProblemMatrix`] by its
    /// [`SpmvBackend`]).
    Sell,
}

impl fmt::Display for MatrixFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixFormat::Csr => f.write_str("csr"),
            MatrixFormat::Sell => f.write_str("sell"),
        }
    }
}

/// One materialized matrix variant, reported by
/// [`ProblemMatrix::materialized_variants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantInfo {
    /// The storage configuration of the variant.
    pub storage: MatrixStorage,
    /// The sparse layout of the variant.
    pub format: MatrixFormat,
    /// Bytes held by the variant (values + indices + bookkeeping + row
    /// scales for scaled storage).
    pub bytes: u64,
}

/// One entry of the lazy variant table.
enum MatrixVariant {
    Csr64(Arc<CsrMatrix<f64>>),
    Csr32(Arc<CsrMatrix<f32>>),
    Csr16(Arc<CsrMatrix<f16>>),
    Sell64(Arc<SellMatrix<f64>>),
    Sell32(Arc<SellMatrix<f32>>),
    Sell16(Arc<SellMatrix<f16>>),
    ScaledCsr64(Arc<ScaledCsr<f64>>),
    ScaledCsr32(Arc<ScaledCsr<f32>>),
    ScaledCsr16(Arc<ScaledCsr<f16>>),
    ScaledSell64(Arc<ScaledSell<f64>>),
    ScaledSell32(Arc<ScaledSell<f32>>),
    ScaledSell16(Arc<ScaledSell<f16>>),
}

/// Dispatch over the four kernel families of a [`MatrixVariant`]; each arm
/// is written once, generically over the value precision.
macro_rules! with_variant {
    ($variant:expr,
     |$c:ident| $csr:expr,
     |$s:ident| $sell:expr,
     |$sc:ident| $scaled_csr:expr,
     |$ss:ident| $scaled_sell:expr $(,)?) => {
        match $variant {
            MatrixVariant::Csr64($c) => $csr,
            MatrixVariant::Csr32($c) => $csr,
            MatrixVariant::Csr16($c) => $csr,
            MatrixVariant::Sell64($s) => $sell,
            MatrixVariant::Sell32($s) => $sell,
            MatrixVariant::Sell16($s) => $sell,
            MatrixVariant::ScaledCsr64($sc) => $scaled_csr,
            MatrixVariant::ScaledCsr32($sc) => $scaled_csr,
            MatrixVariant::ScaledCsr16($sc) => $scaled_csr,
            MatrixVariant::ScaledSell64($ss) => $scaled_sell,
            MatrixVariant::ScaledSell32($ss) => $scaled_sell,
            MatrixVariant::ScaledSell16($ss) => $scaled_sell,
        }
    };
}

impl MatrixVariant {
    fn bytes(&self) -> u64 {
        with_variant!(self,
            |c| c.storage_bytes(),
            |s| s.storage_bytes(),
            |sc| sc.storage_bytes(),
            |ss| ss.storage_bytes(),
        )
    }
}

/// Number of ([`MatrixStorage`], [`MatrixFormat`]) slots in the table.
const VARIANT_SLOTS: usize = 12;

fn slot(storage: MatrixStorage, format: MatrixFormat) -> usize {
    storage.index() * 2
        + match format {
            MatrixFormat::Csr => 0,
            MatrixFormat::Sell => 1,
        }
}

/// Demand-driven multi-precision/multi-format store of the coefficient
/// matrix plus the SpMV backend.
///
/// The fp64 CSR base (used by result verification, the baselines and
/// preconditioner construction) is always materialized; every other variant
/// is built on first use — see the [module docs](self).
pub struct ProblemMatrix {
    base: Arc<CsrMatrix<f64>>,
    variants: [OnceLock<MatrixVariant>; VARIANT_SLOTS],
    backend: SpmvBackend,
    n: usize,
    nnz: usize,
    /// Lazily computed content hash (see [`content_hash`](Self::content_hash));
    /// every narrower variant is derived from the base, so hashing the base
    /// plus the backend identifies the whole store.
    content_hash: OnceLock<u64>,
}

impl ProblemMatrix {
    /// Wrap `a` as the store's fp64 base for the given backend.  No other
    /// precision or format variant is built here; they materialize on first
    /// use (or through [`materialize`](Self::materialize) at solver setup).
    ///
    /// # Panics
    /// Panics if `a` is not square.
    #[must_use]
    pub fn new(a: CsrMatrix<f64>, backend: SpmvBackend) -> Self {
        assert!(a.is_square(), "solvers require a square matrix");
        let n = a.n_rows();
        let nnz = a.nnz();
        let base = Arc::new(a);
        let variants: [OnceLock<MatrixVariant>; VARIANT_SLOTS] = Default::default();
        // The base is a table entry like any other, pre-seeded so accounting
        // always reports it.
        variants[slot(MatrixStorage::Plain(Precision::Fp64), MatrixFormat::Csr)]
            .set(MatrixVariant::Csr64(Arc::clone(&base)))
            .unwrap_or_else(|_| unreachable!("fresh table"));
        Self {
            base,
            variants,
            backend,
            n,
            nnz,
            content_hash: OnceLock::new(),
        }
    }

    /// Convenience constructor for the CSR backend.
    #[must_use]
    pub fn from_csr(a: CsrMatrix<f64>) -> Self {
        Self::new(a, SpmvBackend::Csr)
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The configured SpMV backend.
    #[must_use]
    pub fn backend(&self) -> SpmvBackend {
        self.backend
    }

    /// The sparse format the backend streams for solver-level products.
    #[must_use]
    pub fn backend_format(&self) -> MatrixFormat {
        match self.backend {
            SpmvBackend::Csr => MatrixFormat::Csr,
            SpmvBackend::Sell { .. } => MatrixFormat::Sell,
        }
    }

    /// The fp64 CSR base (used by result verification, the baselines and
    /// preconditioner construction).
    #[must_use]
    pub fn csr_f64(&self) -> &Arc<CsrMatrix<f64>> {
        &self.base
    }

    /// Stable 64-bit content hash of the store: dimensions, row pointers,
    /// column indices and the exact value bits of the fp64 CSR base, plus
    /// the SpMV backend (which fixes the streamed format and therefore the
    /// floating-point summation order).  Computed on first use and cached —
    /// the base is immutable behind the `Arc`, so the hash never goes stale.
    ///
    /// This is the matrix half of
    /// [`solver_fingerprint`](crate::fingerprint::solver_fingerprint); the
    /// serving layer keys its prepared-solver cache on it.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        *self.content_hash.get_or_init(|| {
            let mut h = crate::fingerprint::Fnv64::new();
            h.write_usize(self.base.n_rows());
            h.write_usize(self.base.n_cols());
            for &p in self.base.row_ptr() {
                h.write_usize(p);
            }
            for &c in self.base.col_idx() {
                h.write_u64(u64::from(c));
            }
            for &v in self.base.values() {
                h.write_f64(v);
            }
            crate::fingerprint::write_backend(&mut h, self.backend);
            h.finish()
        })
    }

    /// Build (or fetch) the variant for `storage` in the backend's format.
    fn variant(&self, storage: MatrixStorage) -> &MatrixVariant {
        let format = self.backend_format();
        self.variants[slot(storage, format)].get_or_init(|| self.build_variant(storage, format))
    }

    fn build_variant(&self, storage: MatrixStorage, format: MatrixFormat) -> MatrixVariant {
        let chunk = match self.backend {
            SpmvBackend::Csr => 0,
            SpmvBackend::Sell { chunk } => chunk,
        };
        match (format, storage) {
            (MatrixFormat::Csr, MatrixStorage::Plain(p)) => match p {
                // The fp64 CSR slot is pre-seeded with the base; this arm only
                // runs for a table rebuilt without it (which cannot happen),
                // so cloning the Arc keeps it cheap regardless.
                Precision::Fp64 => MatrixVariant::Csr64(Arc::clone(&self.base)),
                Precision::Fp32 => MatrixVariant::Csr32(Arc::new(self.base.to_precision())),
                Precision::Fp16 => MatrixVariant::Csr16(Arc::new(self.base.to_precision())),
            },
            (MatrixFormat::Csr, MatrixStorage::Scaled(p)) => match p {
                Precision::Fp64 => MatrixVariant::ScaledCsr64(Arc::new(ScaledCsr::from_f64(&self.base))),
                Precision::Fp32 => MatrixVariant::ScaledCsr32(Arc::new(ScaledCsr::from_f64(&self.base))),
                Precision::Fp16 => MatrixVariant::ScaledCsr16(Arc::new(ScaledCsr::from_f64(&self.base))),
            },
            (MatrixFormat::Sell, MatrixStorage::Plain(p)) => match p {
                // The narrowed CSR copy is a transient: only the SELL layout
                // is kept.
                Precision::Fp64 => {
                    MatrixVariant::Sell64(Arc::new(SellMatrix::from_csr(&self.base, chunk)))
                }
                Precision::Fp32 => MatrixVariant::Sell32(Arc::new(SellMatrix::from_csr(
                    &self.base.to_precision::<f32>(),
                    chunk,
                ))),
                Precision::Fp16 => MatrixVariant::Sell16(Arc::new(SellMatrix::from_csr(
                    &self.base.to_precision::<f16>(),
                    chunk,
                ))),
            },
            (MatrixFormat::Sell, MatrixStorage::Scaled(p)) => match p {
                Precision::Fp64 => {
                    MatrixVariant::ScaledSell64(Arc::new(ScaledSell::from_csr_f64(&self.base, chunk)))
                }
                Precision::Fp32 => {
                    MatrixVariant::ScaledSell32(Arc::new(ScaledSell::from_csr_f64(&self.base, chunk)))
                }
                Precision::Fp16 => {
                    MatrixVariant::ScaledSell16(Arc::new(ScaledSell::from_csr_f64(&self.base, chunk)))
                }
            },
        }
    }

    /// Eagerly materialize the variant a level with this storage would use
    /// (called by `PreparedSolver` setup for every level of a validated
    /// spec, so sessions never pay conversion cost mid-solve).
    pub fn materialize(&self, storage: MatrixStorage) {
        let _ = self.variant(storage);
    }

    /// Whether the variant for `storage` (in the given format) has been
    /// materialized.
    #[must_use]
    pub fn is_materialized(&self, storage: MatrixStorage, format: MatrixFormat) -> bool {
        self.variants[slot(storage, format)].get().is_some()
    }

    /// Every materialized variant with its storage key and byte footprint —
    /// the store's accounting, always including the fp64 CSR base.
    #[must_use]
    pub fn materialized_variants(&self) -> Vec<VariantInfo> {
        let mut out = Vec::new();
        for storage in MatrixStorage::all() {
            for format in [MatrixFormat::Csr, MatrixFormat::Sell] {
                if let Some(v) = self.variants[slot(storage, format)].get() {
                    out.push(VariantInfo {
                        storage,
                        format,
                        bytes: v.bytes(),
                    });
                }
            }
        }
        out
    }

    /// Total bytes of *actually materialized* matrix storage.
    ///
    /// Under the lazy store this reflects what the spec's level chain faulted
    /// in — a fresh matrix reports only the fp64 base, and a solver whose
    /// levels use fp64+fp32 pays for no fp16 copy (historically this reported
    /// the eager worst case of all three CSR precisions regardless of use).
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        self.materialized_variants().iter().map(|v| v.bytes).sum()
    }

    /// Record the SpMV traffic of one product against `storage` with vectors
    /// in `v`, including the per-storage-precision matrix-stream attribution.
    fn record_apply_traffic(&self, storage: MatrixStorage, v: Precision, counters: &KernelCounters) {
        let p = storage.precision();
        let (total, matrix_stream) = if storage.is_scaled() {
            (
                TrafficModel::spmv_scaled_bytes(self.nnz, self.n, p, v),
                TrafficModel::scaled_matrix_stream_bytes(self.nnz, self.n, p),
            )
        } else {
            (
                TrafficModel::spmv_bytes(self.nnz, self.n, p, v),
                TrafficModel::matrix_stream_bytes(self.nnz, self.n, p),
            )
        };
        counters.record_spmv(p, total);
        counters.record_matrix_traffic(p, matrix_stream);
    }

    /// Compute `y = A x` streaming the variant selected by `storage`, with
    /// vectors in precision `TV`, recording the product in `counters`.
    pub fn apply<TV: Scalar>(
        &self,
        storage: MatrixStorage,
        x: &[TV],
        y: &mut [TV],
        counters: &KernelCounters,
    ) {
        self.record_apply_traffic(storage, TV::PRECISION, counters);
        with_variant!(self.variant(storage),
            |c| spmv(c, x, y),
            |s| spmv_sell(s, x, y),
            |sc| spmv_scaled(sc, x, y),
            |ss| spmv_scaled_sell(ss, x, y),
        );
    }

    /// Compute `Y = A X` on a column-major panel of `k` vectors, streaming
    /// the variant selected by `storage` **once** for the whole panel.
    ///
    /// Column `c` of the result is bitwise identical to
    /// [`apply`](Self::apply) on column `c` of `xs` — the batched solver's
    /// per-column parity rests on this.  The traffic is recorded through
    /// [`KernelCounters::record_spmm`]: the shared matrix stream once (that
    /// is the physical truth and the whole point of batching) plus `k`
    /// vector sweeps, with the panel width tracked so experiments can
    /// amortize the stream per batch column.
    ///
    /// # Panics
    /// Panics if the panel lengths are not `k` times the matrix dimension.
    pub fn apply_multi<TV: Scalar>(
        &self,
        storage: MatrixStorage,
        xs: &[TV],
        ys: &mut [TV],
        k: usize,
        counters: &KernelCounters,
    ) {
        let p = storage.precision();
        let v = TV::PRECISION;
        let (total, matrix_stream) = if storage.is_scaled() {
            (
                TrafficModel::spmm_scaled_bytes(self.nnz, self.n, p, v, k),
                TrafficModel::scaled_matrix_stream_bytes(self.nnz, self.n, p),
            )
        } else {
            (
                TrafficModel::spmm_bytes(self.nnz, self.n, p, v, k),
                TrafficModel::matrix_stream_bytes(self.nnz, self.n, p),
            )
        };
        counters.record_spmm(p, total, k as u64);
        counters.record_matrix_traffic(p, matrix_stream);
        with_variant!(self.variant(storage),
            |c| spmv_multi(c, xs, ys, k),
            |s| spmv_sell_multi(s, xs, ys, k),
            |sc| spmv_scaled_multi(sc, xs, ys, k),
            |ss| spmv_scaled_sell_multi(ss, xs, ys, k),
        );
    }

    /// Compute `y = A x` and, in the same sweep, the two dot products
    /// `(uᵀ y, yᵀ y)` — the reduction pair behind CG's `(p, Ap)`, BiCGStab's
    /// `(t, s)/(t, t)` and the adaptive Richardson weight.
    ///
    /// With the CSR backend the dots are fused into the SpMV kernel
    /// ([`spmv_dot2`] / [`spmv_scaled_dot2`]); the SELL backend falls back to
    /// the SpMV followed by the one-pass [`blas1::dot_with_sqnorm`].
    pub fn apply_dot2<TV: Scalar>(
        &self,
        storage: MatrixStorage,
        x: &[TV],
        u: &[TV],
        y: &mut [TV],
        counters: &KernelCounters,
    ) -> (f64, f64) {
        self.record_apply_traffic(storage, TV::PRECISION, counters);
        match self.backend {
            // The fused sweep reads `u` once on top of the SpMV traffic.
            SpmvBackend::Csr => counters.record_blas1(
                TV::PRECISION,
                TrafficModel::blas1_bytes(self.n, 1, 0, TV::PRECISION),
            ),
            // The SELL fallback runs a second pass reading y and u.
            SpmvBackend::Sell { .. } => counters.record_blas1(
                TV::PRECISION,
                TrafficModel::blas1_bytes(self.n, 2, 0, TV::PRECISION),
            ),
        }
        with_variant!(self.variant(storage),
            |c| spmv_dot2(c, x, u, y),
            |s| {
                spmv_sell(s, x, y);
                blas1::dot_with_sqnorm(y, u)
            },
            |sc| spmv_scaled_dot2(sc, x, u, y),
            |ss| {
                spmv_scaled_sell(ss, x, y);
                blas1::dot_with_sqnorm(y, u)
            },
        )
    }

    /// Compute the residual `r = b - A x` with the matrix variant selected by
    /// `storage` and vectors in `TV`.
    ///
    /// With the CSR backend this runs the fused [`spmv_residual`] /
    /// [`spmv_scaled_residual`] kernel (subtraction in the accumulation
    /// precision, one sweep); the SELL backend subtracts in a second widening
    /// pass.
    pub fn residual<TV: Scalar>(
        &self,
        storage: MatrixStorage,
        x: &[TV],
        b: &[TV],
        r: &mut [TV],
        counters: &KernelCounters,
    ) {
        self.record_apply_traffic(storage, TV::PRECISION, counters);
        match self.backend {
            // Fused kernel: reads b once, writes r once on top of the SpMV.
            SpmvBackend::Csr => counters.record_blas1(
                TV::PRECISION,
                TrafficModel::blas1_bytes(self.n, 1, 1, TV::PRECISION),
            ),
            // SELL subtracts in a second pass: reads b and r, writes r.
            SpmvBackend::Sell { .. } => counters.record_blas1(
                TV::PRECISION,
                TrafficModel::blas1_bytes(self.n, 2, 1, TV::PRECISION),
            ),
        }
        with_variant!(self.variant(storage),
            |c| spmv_residual(c, x, b, r),
            |s| {
                spmv_sell(s, x, r);
                for i in 0..self.n {
                    r[i] = TV::narrow(b[i].widen() - r[i].widen());
                }
            },
            |sc| spmv_scaled_residual(sc, x, b, r),
            |ss| {
                spmv_scaled_sell(ss, x, r);
                for i in 0..self.n {
                    r[i] = TV::narrow(b[i].widen() - r[i].widen());
                }
            },
        );
    }

    /// True relative residual `‖b − A x‖₂ / ‖b‖₂`, always evaluated in fp64
    /// with the fp64 base copy (the paper's convergence criterion,
    /// Section 5).
    #[must_use]
    pub fn true_relative_residual(&self, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0f64; self.n];
        self.true_relative_residual_with(x, b, &mut r)
    }

    /// [`true_relative_residual`](Self::true_relative_residual) into a
    /// caller-provided scratch buffer `r` (overwritten with `b − A x`), so
    /// repeated convergence checks allocate nothing.
    ///
    /// # Panics
    /// Panics if `r` is not of the matrix dimension.
    #[must_use]
    pub fn true_relative_residual_with(&self, x: &[f64], b: &[f64], r: &mut [f64]) -> f64 {
        assert_eq!(r.len(), self.n, "residual scratch length mismatch");
        spmv(&self.base, x, r);
        for i in 0..self.n {
            r[i] = b[i] - r[i];
        }
        let bnorm = blas1::norm2(b);
        if bnorm == 0.0 {
            blas1::norm2(r)
        } else {
            blas1::norm2(r) / bnorm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::hpcg::hpcg_matrix;

    #[test]
    fn all_precision_copies_agree_on_easy_vectors() {
        let a = hpcg_matrix(4, 4, 4);
        let pm = ProblemMatrix::from_csr(a);
        let counters = KernelCounters::new_shared();
        let n = pm.dim();
        let x = vec![1.0f64; n];
        let mut y64 = vec![0.0f64; n];
        pm.apply(MatrixStorage::Plain(Precision::Fp64), &x, &mut y64, &counters);
        let x32 = vec![1.0f32; n];
        let mut y32 = vec![0.0f32; n];
        pm.apply(MatrixStorage::Plain(Precision::Fp32), &x32, &mut y32, &counters);
        let x16 = vec![f16::from_f32(1.0); n];
        let mut y16 = vec![f16::from_f32(0.0); n];
        pm.apply(MatrixStorage::Plain(Precision::Fp16), &x16, &mut y16, &counters);
        for i in 0..n {
            // integer-valued results are exact in every precision
            assert_eq!(y64[i], f64::from(y32[i]));
            assert_eq!(y64[i], y16[i].to_f64());
        }
        let snap = counters.snapshot();
        assert_eq!(snap.total_spmv(), 3);
        assert!(snap.bytes_in(Precision::Fp16) < snap.bytes_in(Precision::Fp64));
        // The matrix stream is attributed per storage precision.
        assert!(snap.matrix_bytes_in(Precision::Fp16) > 0);
        assert!(snap.matrix_bytes_in(Precision::Fp16) < snap.matrix_bytes_in(Precision::Fp64));
    }

    #[test]
    fn scaled_storage_matches_plain_on_benign_matrix() {
        let a = hpcg_matrix(4, 4, 4);
        let pm = ProblemMatrix::from_csr(a);
        let counters = KernelCounters::new_shared();
        let n = pm.dim();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y_plain = vec![0.0f64; n];
        let mut y_scaled = vec![0.0f64; n];
        pm.apply(MatrixStorage::Plain(Precision::Fp64), &x, &mut y_plain, &counters);
        pm.apply(MatrixStorage::Scaled(Precision::Fp64), &x, &mut y_scaled, &counters);
        // fp64 scaled storage is the verbatim fast path: bit-identical.
        assert_eq!(y_plain, y_scaled);
        let mut y16 = vec![0.0f64; n];
        pm.apply(MatrixStorage::Scaled(Precision::Fp16), &x, &mut y16, &counters);
        for i in 0..n {
            assert!((y16[i] - y_plain[i]).abs() < 2e-2 * y_plain[i].abs().max(1.0));
        }
        // Scaled SpMVs stream the row scales on top of the plain estimate.
        let snap = counters.snapshot();
        assert_eq!(
            snap.matrix_bytes_in(Precision::Fp64),
            TrafficModel::matrix_stream_bytes(pm.nnz(), n, Precision::Fp64)
                + TrafficModel::scaled_matrix_stream_bytes(pm.nnz(), n, Precision::Fp64)
        );
    }

    #[test]
    fn sell_backend_matches_csr_backend() {
        let a = hpcg_matrix(4, 4, 4);
        let counters = KernelCounters::new_shared();
        let pm_csr = ProblemMatrix::from_csr(a.clone());
        let pm_sell = ProblemMatrix::new(a, SpmvBackend::Sell { chunk: 32 });
        let n = pm_csr.dim();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        let mut y3 = vec![0.0; n];
        pm_csr.apply(MatrixStorage::Plain(Precision::Fp64), &x, &mut y1, &counters);
        pm_sell.apply(MatrixStorage::Plain(Precision::Fp64), &x, &mut y2, &counters);
        pm_sell.apply(MatrixStorage::Scaled(Precision::Fp64), &x, &mut y3, &counters);
        for i in 0..n {
            assert!((y1[i] - y2[i]).abs() < 1e-13);
            assert!((y1[i] - y3[i]).abs() < 1e-13);
        }
        assert!(pm_sell.is_materialized(
            MatrixStorage::Scaled(Precision::Fp64),
            MatrixFormat::Sell
        ));
    }

    #[test]
    fn residual_and_true_residual() {
        let a = hpcg_matrix(3, 3, 3);
        let pm = ProblemMatrix::from_csr(a);
        let counters = KernelCounters::new_shared();
        let n = pm.dim();
        let x = vec![0.0f64; n];
        let b = vec![2.0f64; n];
        let mut r = vec![0.0f64; n];
        pm.residual(MatrixStorage::Plain(Precision::Fp64), &x, &b, &mut r, &counters);
        assert_eq!(r, b);
        let mut r2 = vec![0.0f64; n];
        pm.residual(MatrixStorage::Scaled(Precision::Fp32), &x, &b, &mut r2, &counters);
        assert_eq!(r2, b);
        assert!((pm.true_relative_residual(&x, &b) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn store_is_lazy_and_accounts_only_materialized_variants() {
        let a = hpcg_matrix(3, 3, 3);
        let nnz = a.nnz();
        let n = a.n_rows();
        let base_bytes = a.storage_bytes();
        let pm = ProblemMatrix::from_csr(a);
        // Fresh store: only the fp64 CSR base.
        let vs = pm.materialized_variants();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].storage, MatrixStorage::Plain(Precision::Fp64));
        assert_eq!(vs[0].format, MatrixFormat::Csr);
        assert_eq!(pm.storage_bytes(), base_bytes);
        assert_eq!(base_bytes, (nnz as u64) * 12 + 4 * (n as u64 + 1));

        // Applying a variant faults exactly that variant in.
        let counters = KernelCounters::new_shared();
        let x = vec![1.0f64; n];
        let mut y = vec![0.0f64; n];
        pm.apply(MatrixStorage::Scaled(Precision::Fp16), &x, &mut y, &counters);
        assert!(pm.is_materialized(MatrixStorage::Scaled(Precision::Fp16), MatrixFormat::Csr));
        assert!(!pm.is_materialized(MatrixStorage::Plain(Precision::Fp16), MatrixFormat::Csr));
        assert!(!pm.is_materialized(MatrixStorage::Plain(Precision::Fp32), MatrixFormat::Csr));
        let expected_scaled = (nnz as u64) * 6 + 4 * (n as u64 + 1) + 8 * n as u64;
        assert_eq!(pm.storage_bytes(), base_bytes + expected_scaled);

        // materialize() is idempotent and covers explicit prefetch.
        pm.materialize(MatrixStorage::Scaled(Precision::Fp16));
        pm.materialize(MatrixStorage::Plain(Precision::Fp32));
        assert_eq!(pm.materialized_variants().len(), 3);
    }

    #[test]
    fn apply_multi_columns_match_apply_and_amortize_matrix_stream() {
        let a = hpcg_matrix(4, 4, 4);
        let n = a.n_rows();
        let nnz = a.nnz();
        for pm in [
            ProblemMatrix::from_csr(a.clone()),
            ProblemMatrix::new(a.clone(), SpmvBackend::Sell { chunk: 32 }),
        ] {
            for storage in [
                MatrixStorage::Plain(Precision::Fp64),
                MatrixStorage::Scaled(Precision::Fp16),
            ] {
                let k = 4;
                let xs: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.013).sin()).collect();
                let counters = KernelCounters::new_shared();
                let mut ys = vec![0.0f64; n * k];
                pm.apply_multi(storage, &xs, &mut ys, k, &counters);
                for c in 0..k {
                    let mut y1 = vec![0.0f64; n];
                    pm.apply(storage, &xs[c * n..(c + 1) * n], &mut y1, &counters);
                    assert_eq!(&ys[c * n..(c + 1) * n], &y1[..], "{storage} col {c}");
                }
                let snap = counters.snapshot();
                // One SpMM (k columns) + k parity SpMVs; the matrix stream
                // was attributed once for the panel and once per SpMV.
                assert_eq!(snap.total_spmm(), 1);
                assert_eq!(snap.spmm_columns_total(), k as u64);
                assert_eq!(snap.total_spmv(), k as u64);
                let stream = if storage.is_scaled() {
                    TrafficModel::scaled_matrix_stream_bytes(nnz, n, storage.precision())
                } else {
                    TrafficModel::matrix_stream_bytes(nnz, n, storage.precision())
                };
                assert_eq!(
                    snap.matrix_bytes_in(storage.precision()),
                    stream * (k as u64 + 1),
                    "{storage}"
                );
            }
        }
    }

    #[test]
    fn storage_display_names() {
        assert_eq!(MatrixStorage::Plain(Precision::Fp16).to_string(), "fp16");
        assert_eq!(
            MatrixStorage::Scaled(Precision::Fp16).to_string(),
            "scaled-fp16"
        );
        assert_eq!(MatrixFormat::Sell.to_string(), "sell");
        assert!(!MatrixStorage::Plain(Precision::Fp32).is_scaled());
        assert!(MatrixStorage::Scaled(Precision::Fp32).is_scaled());
        assert_eq!(MatrixStorage::Scaled(Precision::Fp32).precision(), Precision::Fp32);
    }
}
