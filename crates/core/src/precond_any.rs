//! Precision-erased handle to the primary preconditioner `M`.
//!
//! The primary preconditioner is constructed in fp64 and *stored* in a
//! configurable precision (Section 5: fp64/fp32/fp16 variants of every
//! baseline solver differ only in this storage precision; in F3R the storage
//! precision follows the innermost level, Table 1).  Solver levels, however,
//! run in their own vector precisions, so [`AnyPrecond`] erases the storage
//! precision behind an enum and converts vectors at the boundary, following
//! the paper's rule of using the higher precision when operand precisions
//! differ.
//!
//! To keep fp16 storage usable late in the convergence history (when residual
//! entries can drop below the fp16 normal range ≈ 6·10⁻⁵), the input vector is
//! normalised by its infinity norm before conversion and the result is scaled
//! back afterwards — the standard scaling safeguard of mixed-precision
//! iterative refinement.

use f3r_precision::{f16, KernelCounters, Precision, Scalar};
use f3r_precision::traffic::TrafficModel;
use f3r_sparse::blas1;
use f3r_sparse::CsrMatrix;
use f3r_precond::{build_preconditioner, PrecondKind, Preconditioner};

use crate::operator::ProblemMatrix;

/// A primary preconditioner stored in one of the three supported precisions.
pub enum AnyPrecond {
    /// Coefficients stored in fp64.
    F64(Box<dyn Preconditioner<f64>>),
    /// Coefficients stored in fp32.
    F32(Box<dyn Preconditioner<f32>>),
    /// Coefficients stored in fp16.
    F16(Box<dyn Preconditioner<f16>>),
}

impl AnyPrecond {
    /// Build the preconditioner `kind` for `a`, storing its coefficients in
    /// `storage` precision (construction always happens in fp64).
    #[must_use]
    pub fn build(a: &CsrMatrix<f64>, kind: &PrecondKind, storage: Precision) -> Self {
        match storage {
            Precision::Fp64 => AnyPrecond::F64(build_preconditioner::<f64>(a, kind)),
            Precision::Fp32 => AnyPrecond::F32(build_preconditioner::<f32>(a, kind)),
            Precision::Fp16 => AnyPrecond::F16(build_preconditioner::<f16>(a, kind)),
        }
    }

    /// Build the preconditioner `kind` for the matrix held in a
    /// [`ProblemMatrix`] store, consuming the store's fp64 base (the
    /// factorisation always happens in fp64 regardless of which precision
    /// variants the solver levels stream).
    #[must_use]
    pub fn for_matrix(matrix: &ProblemMatrix, kind: &PrecondKind, storage: Precision) -> Self {
        Self::build(matrix.csr_f64(), kind, storage)
    }

    /// Storage precision of the coefficients.
    #[must_use]
    pub fn storage_precision(&self) -> Precision {
        match self {
            AnyPrecond::F64(_) => Precision::Fp64,
            AnyPrecond::F32(_) => Precision::Fp32,
            AnyPrecond::F16(_) => Precision::Fp16,
        }
    }

    /// Dimension of the operator.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            AnyPrecond::F64(p) => p.dim(),
            AnyPrecond::F32(p) => p.dim(),
            AnyPrecond::F16(p) => p.dim(),
        }
    }

    /// Stored nonzeros (for the traffic model).
    #[must_use]
    pub fn nnz(&self) -> usize {
        match self {
            AnyPrecond::F64(p) => p.nnz(),
            AnyPrecond::F32(p) => p.nnz(),
            AnyPrecond::F16(p) => p.nnz(),
        }
    }

    /// Resident bytes of the stored factors
    /// ([`Preconditioner::storage_bytes`] of the underlying implementation).
    /// Together with [`ProblemMatrix::storage_bytes`] this prices everything
    /// a [`PreparedSolver`](crate::session::PreparedSolver) keeps alive.
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        match self {
            AnyPrecond::F64(p) => p.storage_bytes(),
            AnyPrecond::F32(p) => p.storage_bytes(),
            AnyPrecond::F16(p) => p.storage_bytes(),
        }
    }

    /// Human-readable name of the underlying preconditioner.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            AnyPrecond::F64(p) => p.name(),
            AnyPrecond::F32(p) => p.name(),
            AnyPrecond::F16(p) => p.name(),
        }
    }

    /// Apply `z = M r` with vectors in precision `TV`, recording the
    /// application in `counters` (this is the Table 3 metric).
    ///
    /// When `TV` differs from the storage precision the vectors are converted
    /// at the boundary with an infinity-norm scaling safeguard.
    pub fn apply_to<TV: Scalar>(&self, r: &[TV], z: &mut [TV], counters: &KernelCounters) {
        counters.record_precond_apply();
        counters.record_spmv(
            self.storage_precision(),
            TrafficModel::sparse_precond_bytes(self.nnz(), r.len(), self.storage_precision(), TV::PRECISION),
        );
        match self {
            AnyPrecond::F64(p) => apply_converted(p.as_ref(), r, z),
            AnyPrecond::F32(p) => apply_converted(p.as_ref(), r, z),
            AnyPrecond::F16(p) => apply_converted(p.as_ref(), r, z),
        }
    }
}

/// Apply a preconditioner stored in precision `TS` to vectors in precision
/// `TV`, converting (with norm scaling) at the boundary.
fn apply_converted<TS: Scalar, TV: Scalar>(p: &dyn Preconditioner<TS>, r: &[TV], z: &mut [TV]) {
    if TS::PRECISION == TV::PRECISION {
        // Same precision: converting through f64 is lossless; this branch only
        // pays a copy instead of the scaling safeguard.
        let r_s: Vec<TS> = r.iter().map(|v| TS::from_f64(v.to_f64())).collect();
        let mut z_s = vec![TS::zero(); z.len()];
        p.apply(&r_s, &mut z_s);
        for (zo, zi) in z.iter_mut().zip(z_s.iter()) {
            *zo = TV::from_f64(zi.to_f64());
        }
        return;
    }
    let scale = blas1::norm_inf(r);
    if scale == 0.0 {
        for zo in z.iter_mut() {
            *zo = TV::zero();
        }
        return;
    }
    let inv = 1.0 / scale;
    let r_s: Vec<TS> = r.iter().map(|v| TS::from_f64(v.to_f64() * inv)).collect();
    let mut z_s = vec![TS::zero(); z.len()];
    p.apply(&r_s, &mut z_s);
    for (zo, zi) in z.iter_mut().zip(z_s.iter()) {
        *zo = TV::from_f64(zi.to_f64() * scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::scaling::jacobi_scale;

    fn setup(storage: Precision) -> (CsrMatrix<f64>, AnyPrecond) {
        let a = jacobi_scale(&poisson2d_5pt(8, 8));
        let p = AnyPrecond::build(&a, &PrecondKind::Ilu0 { alpha: 1.0 }, storage);
        (a, p)
    }

    #[test]
    fn storage_precision_is_respected() {
        for prec in Precision::all() {
            let (_, p) = setup(prec);
            assert_eq!(p.storage_precision(), prec);
            assert_eq!(p.dim(), 64);
            assert!(p.nnz() > 0);
            assert!(p.name().contains("ILU"));
        }
    }

    #[test]
    fn fp16_storage_applied_to_f64_vectors_tracks_fp64_result() {
        let counters = KernelCounters::new_shared();
        let (_, p64) = setup(Precision::Fp64);
        let (_, p16) = setup(Precision::Fp16);
        let n = p64.dim();
        let r: Vec<f64> = (0..n).map(|i| ((i * 3) % 7) as f64 / 7.0).collect();
        let mut z64 = vec![0.0f64; n];
        let mut z16 = vec![0.0f64; n];
        p64.apply_to(&r, &mut z64, &counters);
        p16.apply_to(&r, &mut z16, &counters);
        for i in 0..n {
            assert!((z64[i] - z16[i]).abs() < 2e-2 * z64[i].abs().max(1.0));
        }
        assert_eq!(counters.snapshot().precond_applies, 2);
    }

    #[test]
    fn tiny_residuals_do_not_underflow_in_fp16_storage() {
        // Residual entries far below the fp16 normal range must still produce
        // a usefully scaled correction thanks to the norm safeguard.
        let counters = KernelCounters::new_shared();
        let (_, p16) = setup(Precision::Fp16);
        let n = p16.dim();
        let r: Vec<f64> = (0..n).map(|i| 1e-9 * (1.0 + (i % 5) as f64)).collect();
        let mut z = vec![0.0f64; n];
        p16.apply_to(&r, &mut z, &counters);
        let znorm = blas1::norm2(&z);
        assert!(znorm > 1e-10, "correction collapsed to {znorm}");
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let counters = KernelCounters::new_shared();
        let (_, p16) = setup(Precision::Fp16);
        let n = p16.dim();
        let r = vec![0.0f64; n];
        let mut z = vec![1.0f64; n];
        p16.apply_to(&r, &mut z, &counters);
        assert!(z.iter().all(|&v| v == 0.0));
    }
}
