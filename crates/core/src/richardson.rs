//! The innermost Richardson solver with adaptive weight updating
//! (Algorithm 1 of the paper).
//!
//! The Richardson level receives a vector `v` from its parent FGMRES level and
//! performs `m4` sweeps of
//!
//! ```text
//! z_k = z_{k-1} + ω_k · M (v − A z_{k-1})
//! ```
//!
//! starting from `z_0 = 0`, where `M` is the primary preconditioner.  The
//! weight ω_k is adapted across invocations: every `c` calls the locally
//! optimal weight `ω'_k = (r, AMr)/(AMr, AMr)` is computed (in fp32) and folded
//! into the running average of Eq. 5; other calls reuse the averaged weight.
//! The weights are global state that persists across invocations because the
//! optimal weight depends on the preconditioned operator, not on the
//! right-hand side (Section 4.3).  For the same reason they persist across
//! *solves* within one [`SolveSession`](crate::session::SolveSession): a
//! warmed session starts each new right-hand side with already-tuned
//! weights, which is part of the amortized-solve advantage recorded in
//! `BENCH_pr4.json`.

use std::sync::Arc;

use f3r_precision::traffic::TrafficModel;
use f3r_precision::{KernelCounters, Scalar};
use f3r_sparse::blas1;

use crate::inner::InnerSolver;
use crate::operator::{MatrixStorage, ProblemMatrix};
use crate::precond_any::AnyPrecond;

/// How the Richardson weight is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightStrategy {
    /// Adaptive updating (Algorithm 1) with update cycle `c` (the paper's
    /// default is `c = 64`).
    Adaptive {
        /// Number of Richardson invocations between ω′ recomputations.
        cycle: usize,
    },
    /// A fixed, manually chosen weight (the static comparison of Figure 6).
    Fixed(f64),
}

impl Default for WeightStrategy {
    fn default() -> Self {
        WeightStrategy::Adaptive { cycle: 64 }
    }
}

/// The Richardson inner solver (`R^{m4}` in the tuple notation), working in
/// precision `T` streaming the matrix variant in `mat_storage`.
pub struct RichardsonLevel<T: Scalar> {
    matrix: Arc<ProblemMatrix>,
    mat_storage: MatrixStorage,
    m: usize,
    precond: Arc<AnyPrecond>,
    strategy: WeightStrategy,
    /// Per-iteration weights ω_1 … ω_m (Algorithm 1 keeps one per k).
    weights: Vec<f64>,
    /// Invocation counter (`cntr` in Algorithm 1).
    call_count: u64,
    depth: usize,
    counters: Arc<KernelCounters>,
    // workspace
    r: Vec<T>,
    mr: Vec<T>,
    amr: Vec<T>,
}

impl<T: Scalar> RichardsonLevel<T> {
    /// Create a Richardson level of `m` sweeps per invocation.
    #[must_use]
    pub fn new(
        matrix: Arc<ProblemMatrix>,
        mat_storage: MatrixStorage,
        m: usize,
        precond: Arc<AnyPrecond>,
        strategy: WeightStrategy,
        depth: usize,
        counters: Arc<KernelCounters>,
    ) -> Self {
        let n = matrix.dim();
        assert!(m >= 1, "Richardson needs at least one sweep");
        Self {
            matrix,
            mat_storage,
            m,
            precond,
            strategy,
            weights: vec![1.0; m],
            call_count: 0,
            depth,
            counters,
            r: vec![T::zero(); n],
            mr: vec![T::zero(); n],
            amr: vec![T::zero(); n],
        }
    }

    /// The weights currently in use (exposed for tests and diagnostics).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of times this level has been invoked.
    #[must_use]
    pub fn call_count(&self) -> u64 {
        self.call_count
    }

    /// Whether this invocation recomputes ω′ (line 7 of Algorithm 1).
    fn is_update_call(&self) -> bool {
        match self.strategy {
            WeightStrategy::Adaptive { cycle } => {
                let c = cycle.max(1) as u64;
                self.call_count.is_multiple_of(c)
            }
            WeightStrategy::Fixed(_) => false,
        }
    }
}

impl<T: Scalar> InnerSolver<T> for RichardsonLevel<T> {
    fn apply(&mut self, v: &[T], z: &mut [T]) {
        let n = self.matrix.dim();
        assert_eq!(v.len(), n, "richardson: v length mismatch");
        assert_eq!(z.len(), n, "richardson: z length mismatch");
        let update_call = self.is_update_call();
        // l in Algorithm 1: the number of completed update cycles.
        let update_count = match self.strategy {
            WeightStrategy::Adaptive { cycle } => self.call_count / cycle.max(1) as u64,
            WeightStrategy::Fixed(_) => 0,
        };

        for zi in z.iter_mut() {
            *zi = T::zero();
        }
        for k in 0..self.m {
            // r_{k-1} = v - A z_{k-1}; for k = 0 this is just v (z = 0).
            if k == 0 {
                self.r.copy_from_slice(v);
            } else {
                let mut r = std::mem::take(&mut self.r);
                self.matrix.residual(self.mat_storage, z, v, &mut r, &self.counters);
                self.r = r;
            }
            // M r_{k-1}
            let mut mr = std::mem::take(&mut self.mr);
            self.precond.apply_to(&self.r, &mut mr, &self.counters);
            self.mr = mr;

            let omega = if update_call {
                // ω'_k = (r, AMr) / (AMr, AMr), computed in fp32 precision or
                // better (the fused kernel accumulates the dots in f64 from
                // T::Accum ≥ fp32 operands).  The SpMV and both reductions
                // run in one sweep: AMr is never re-read from memory.
                let mut amr = std::mem::take(&mut self.amr);
                let (num, den) =
                    self.matrix
                        .apply_dot2(self.mat_storage, &self.mr, &self.r, &mut amr, &self.counters);
                self.amr = amr;
                self.counters.record_weight_update();
                let omega_opt = if den > 0.0 { num / den } else { 1.0 };
                // Fold into the running average (Eq. 5); the step itself uses
                // ω′ because it minimises the residual at this step.
                let l = update_count as f64;
                if let WeightStrategy::Adaptive { .. } = self.strategy {
                    self.weights[k] = (l * self.weights[k] + omega_opt) / (l + 1.0);
                }
                omega_opt
            } else {
                match self.strategy {
                    WeightStrategy::Adaptive { .. } => self.weights[k],
                    WeightStrategy::Fixed(w) => w,
                }
            };

            // z_k = z_{k-1} + ω · M r_{k-1}
            blas1::axpy(omega, &self.mr, z);
            self.counters.record_blas1(
                T::PRECISION,
                TrafficModel::blas1_bytes(n, 2, 1, T::PRECISION),
            );
        }
        self.counters.record_level_iterations(self.depth, self.m as u64);
        self.call_count += 1;
    }

    fn name(&self) -> String {
        let strat = match self.strategy {
            WeightStrategy::Adaptive { cycle } => format!("adaptive c={cycle}"),
            WeightStrategy::Fixed(w) => format!("fixed ω={w}"),
        };
        format!("R{}(A:{}, v:{}, {})", self.m, self.mat_storage, T::name(), strat)
    }

    fn workspace_bytes(&self) -> u64 {
        self.weights.len() as u64 * 8
            + (self.r.len() + self.mr.len() + self.amr.len()) as u64 * T::bytes() as u64
    }

    fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precision::{f16, Precision};
    use f3r_precond::PrecondKind;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::scaling::jacobi_scale;

    fn setup(
        storage: Precision,
    ) -> (Arc<ProblemMatrix>, Arc<AnyPrecond>, Arc<KernelCounters>) {
        let a = jacobi_scale(&poisson2d_5pt(10, 10));
        let counters = KernelCounters::new_shared();
        let m = Arc::new(AnyPrecond::build(&a, &PrecondKind::Ilu0 { alpha: 1.0 }, storage));
        (Arc::new(ProblemMatrix::from_csr(a)), m, counters)
    }

    fn residual_after<T: Scalar>(level: &mut RichardsonLevel<T>, pm: &ProblemMatrix, v: &[f64]) -> f64 {
        let n = pm.dim();
        let vt: Vec<T> = v.iter().map(|&x| T::from_f64(x)).collect();
        let mut z = vec![T::zero(); n];
        level.apply(&vt, &mut z);
        let z64: Vec<f64> = z.iter().map(|x| x.to_f64()).collect();
        pm.true_relative_residual(&z64, v)
    }

    #[test]
    fn two_sweeps_reduce_the_residual() {
        let (pm, m, counters) = setup(Precision::Fp64);
        let n = pm.dim();
        let mut level = RichardsonLevel::<f64>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp64),
            2,
            m,
            WeightStrategy::Adaptive { cycle: 64 },
            4,
            counters,
        );
        let v: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) / 7.0).collect();
        let res = residual_after(&mut level, &pm, &v);
        assert!(res < 0.6, "Richardson(2) should clearly reduce the residual, got {res}");
    }

    #[test]
    fn first_call_computes_optimal_weight_and_updates_average() {
        let (pm, m, counters) = setup(Precision::Fp64);
        let n = pm.dim();
        let mut level = RichardsonLevel::<f64>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp64),
            2,
            m,
            WeightStrategy::Adaptive { cycle: 4 },
            4,
            Arc::clone(&counters),
        );
        assert_eq!(level.weights(), &[1.0, 1.0]);
        let v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut z = vec![0.0f64; n];
        level.apply(&v, &mut z);
        // call 0 is an update call: weights move away from the initial 1.0
        assert!(level.weights().iter().any(|&w| (w - 1.0).abs() > 1e-6));
        assert_eq!(level.call_count(), 1);
        assert_eq!(counters.snapshot().weight_updates, 2); // one per sweep
        // calls 1..3 are not update calls
        let before = level.weights().to_vec();
        level.apply(&v, &mut z);
        assert_eq!(level.weights(), &before[..]);
        assert_eq!(counters.snapshot().weight_updates, 2);
        // call 4 updates again
        level.apply(&v, &mut z);
        level.apply(&v, &mut z);
        level.apply(&v, &mut z);
        assert_eq!(counters.snapshot().weight_updates, 4);
    }

    #[test]
    fn fixed_weight_never_updates() {
        let (pm, m, counters) = setup(Precision::Fp64);
        let n = pm.dim();
        let mut level = RichardsonLevel::<f64>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp64),
            2,
            m,
            WeightStrategy::Fixed(0.9),
            4,
            Arc::clone(&counters),
        );
        let v = vec![1.0f64; n];
        let mut z = vec![0.0f64; n];
        for _ in 0..5 {
            level.apply(&v, &mut z);
        }
        assert_eq!(counters.snapshot().weight_updates, 0);
        assert_eq!(level.weights(), &[1.0, 1.0]); // untouched
    }

    #[test]
    fn adaptive_beats_badly_chosen_fixed_weight() {
        let (pm, m, counters) = setup(Precision::Fp64);
        let n = pm.dim();
        let v: Vec<f64> = (0..n).map(|i| ((i * 13 % 23) as f64) / 23.0).collect();
        let mut adaptive = RichardsonLevel::<f64>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp64),
            2,
            Arc::clone(&m),
            WeightStrategy::Adaptive { cycle: 1 },
            4,
            Arc::clone(&counters),
        );
        let mut bad_fixed = RichardsonLevel::<f64>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp64),
            2,
            m,
            WeightStrategy::Fixed(1.9),
            4,
            counters,
        );
        let res_adaptive = residual_after(&mut adaptive, &pm, &v);
        let res_fixed = residual_after(&mut bad_fixed, &pm, &v);
        assert!(res_adaptive < res_fixed, "{res_adaptive} !< {res_fixed}");
    }

    #[test]
    fn fp16_richardson_with_fp16_preconditioner_is_effective() {
        // The innermost configuration of fp16-F3R (Table 1, R^{m4} row).
        let (pm, _m64, counters) = setup(Precision::Fp64);
        let a16_precond = {
            let a = jacobi_scale(&poisson2d_5pt(10, 10));
            Arc::new(AnyPrecond::build(&a, &PrecondKind::Ilu0 { alpha: 1.0 }, Precision::Fp16))
        };
        let n = pm.dim();
        let mut level = RichardsonLevel::<f16>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp16),
            2,
            a16_precond,
            WeightStrategy::Adaptive { cycle: 64 },
            4,
            counters,
        );
        let v: Vec<f64> = (0..n).map(|i| ((i % 9) as f64 - 4.0) / 9.0).collect();
        let res = residual_after(&mut level, &pm, &v);
        assert!(res.is_finite());
        assert!(res < 0.7, "fp16 Richardson(2) residual {res}");
    }

    #[test]
    fn single_sweep_equals_weighted_preconditioner() {
        // m4 = 1 with weight 1.0 must coincide with a single M application
        // (the degenerate case discussed in Section 6.1).
        let (pm, m, counters) = setup(Precision::Fp64);
        let n = pm.dim();
        let mut level = RichardsonLevel::<f64>::new(
            Arc::clone(&pm),
            MatrixStorage::Plain(Precision::Fp64),
            1,
            Arc::clone(&m),
            WeightStrategy::Fixed(1.0),
            4,
            Arc::clone(&counters),
        );
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut z = vec![0.0f64; n];
        level.apply(&v, &mut z);
        let mut z_direct = vec![0.0f64; n];
        m.apply_to(&v, &mut z_direct, &counters);
        for i in 0..n {
            assert!((z[i] - z_direct[i]).abs() < 1e-14);
        }
    }
}
