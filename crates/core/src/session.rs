//! The prepared-solver session API: setup split from solve.
//!
//! The nested solvers of the paper pay a large one-time cost per matrix —
//! three precision copies of `A`, an IC(0)/ILU(0)/SD-AINV factorisation of
//! the primary preconditioner, a validated [`NestedSpec`] — before the first
//! right-hand side is ever seen.  This module splits that setup from the
//! per-solve state so one factorisation can serve many concurrent solve
//! streams:
//!
//! ```text
//! SolverBuilder ──build()──▶ Arc<PreparedSolver> ──session()──▶ SolveSession
//!  (fluent config:            (immutable, Sync:                 (mutable, per
//!   scheme/levels/spec,        matrix copies, factorized         solve stream:
//!   precond, tol, basis        preconditioner, validated         level workspaces,
//!   storage, …)                spec; shared across threads)      counters, weights)
//! ```
//!
//! * [`SolverBuilder`] replaces the `SolverSettings`-struct-literal +
//!   `f3r_spec` two-step with one fluent chain.
//! * [`PreparedSolver`] owns everything that depends only on the matrix and
//!   the spec.  It is immutable and `Send + Sync`; clone the `Arc` into as
//!   many threads as you like.
//! * [`SolveSession`] owns everything mutable: the outer FGMRES workspace,
//!   the inner-solver chain (including the adaptive Richardson weights,
//!   which persist across solves by design — the optimal weight depends on
//!   the preconditioned operator, not the right-hand side), and the kernel
//!   counters.  Workspaces are allocated on the first solve and reused
//!   verbatim afterwards ([`SolveSession::workspace_generation`] proves it):
//!   in steady state, repeated solves and [`SolveSession::solve_many`]
//!   allocate nothing proportional to the problem size — only the O(cycles)
//!   result bookkeeping (residual history, counter snapshot) per solve.
//!
//! Per-solve behaviour is controlled by [`SolveOptions`] (warm-start `x0`,
//! tolerance and cycle-budget overrides) and observed through
//! [`SolveObserver`] (per-outer-iteration residual events with early-stop
//! control).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use f3r_core::prelude::*;
//! use f3r_precond::PrecondKind;
//! use f3r_sparse::gen::hpcg::hpcg_matrix;
//! use f3r_sparse::gen::rhs::random_rhs;
//! use f3r_sparse::scaling::jacobi_scale;
//!
//! let a = jacobi_scale(&hpcg_matrix(6, 6, 6));
//! let n = a.n_rows();
//!
//! // Setup once: precision copies + IC(0) factorisation + validated spec.
//! let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
//!     .scheme(F3rScheme::Fp16)
//!     .precond(PrecondKind::Ic0 { alpha: 1.0 })
//!     .build();
//!
//! // Solve many right-hand sides through one session (workspaces reused).
//! let mut session = prepared.session();
//! let mut x = vec![0.0; n];
//! for seed in 0..3 {
//!     let b = random_rhs(n, seed);
//!     let result = session.solve(&b, &mut x);
//!     assert!(result.converged, "{result}");
//! }
//! assert_eq!(session.workspace_generation(), 1);
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use f3r_precision::{f16, KernelCounters, Precision, Scalar};
use f3r_precond::PrecondKind;
use f3r_sparse::blas1;

use crate::adaptive::{
    auto_spec_for_matrix, escalation_ladder, AdaptivePolicy, AutoTuneConfig, StallDetector,
    StallSignal,
};
use crate::block::{block_fgmres_cycle, BlockCycleParams, BlockFgmresWorkspace};
use crate::convergence::{SolveResult, SparseSolver, StopReason};
use crate::f3r::{f3r_spec, F3rParams, F3rScheme, SolverSettings};
use crate::fgmres::{fgmres_cycle, CycleOutcome, CycleParams, CycleProgress, FgmresLevel, FgmresWorkspace};
use crate::inner::{InnerSolver, PrecisionBridge, PrecondInner};
use crate::nested::{LevelSpec, NestedSpec, SpecError};
use crate::operator::{MatrixStorage, ProblemMatrix};
use crate::precond_any::AnyPrecond;
use crate::richardson::RichardsonLevel;

// ---------------------------------------------------------------------------
// Inner-solver chain construction (moved here from `nested`; sessions own the
// mutable chain, the prepared solver owns everything the chain borrows).
// ---------------------------------------------------------------------------

/// Build the inner-solver chain for `levels` (outermost of the *chain* first,
/// i.e. the level at nesting depth `depth`), working in vector precision `T`.
///
/// The caller guarantees `T` matches `levels[0].vector_precision()`.
fn build_chain<T: Scalar>(
    levels: &[LevelSpec],
    depth: usize,
    matrix: &Arc<ProblemMatrix>,
    precond: &Arc<AnyPrecond>,
    counters: &Arc<KernelCounters>,
) -> Box<dyn InnerSolver<T>> {
    let level = levels[0];
    debug_assert_eq!(level.vector_precision(), T::PRECISION);
    match level {
        LevelSpec::Richardson {
            m,
            matrix: mat_storage,
            weight,
            ..
        } => Box::new(RichardsonLevel::<T>::new(
            Arc::clone(matrix),
            mat_storage,
            m,
            Arc::clone(precond),
            weight,
            depth,
            Arc::clone(counters),
        )),
        LevelSpec::Fgmres {
            m,
            matrix: mat_storage,
            basis_prec,
            ..
        } => {
            let inner: Box<dyn InnerSolver<T>> = if levels.len() == 1 {
                // This FGMRES level is the innermost iterative level: its
                // flexible preconditioner is the primary preconditioner M.
                Box::new(PrecondInner::<T>::new(
                    Arc::clone(precond),
                    Arc::clone(counters),
                    depth + 1,
                ))
            } else {
                build_child::<T>(&levels[1..], depth + 1, matrix, precond, counters)
            };
            // Instantiate the level for the requested basis *storage*
            // precision — the second type parameter of `FgmresLevel`.
            match basis_prec {
                Precision::Fp64 => Box::new(FgmresLevel::<T, f64>::new(
                    Arc::clone(matrix),
                    mat_storage,
                    m,
                    inner,
                    depth,
                    Arc::clone(counters),
                )),
                Precision::Fp32 => Box::new(FgmresLevel::<T, f32>::new(
                    Arc::clone(matrix),
                    mat_storage,
                    m,
                    inner,
                    depth,
                    Arc::clone(counters),
                )),
                Precision::Fp16 => Box::new(FgmresLevel::<T, f16>::new(
                    Arc::clone(matrix),
                    mat_storage,
                    m,
                    inner,
                    depth,
                    Arc::clone(counters),
                )),
            }
        }
    }
}

/// Build the child chain starting at `levels[0]`, bridging from the parent's
/// vector precision `TP` to the child's vector precision if they differ.
fn build_child<TP: Scalar>(
    levels: &[LevelSpec],
    depth: usize,
    matrix: &Arc<ProblemMatrix>,
    precond: &Arc<AnyPrecond>,
    counters: &Arc<KernelCounters>,
) -> Box<dyn InnerSolver<TP>> {
    let child_prec = levels[0].vector_precision();
    let n = matrix.dim();
    if child_prec == TP::PRECISION {
        return build_chain::<TP>(levels, depth, matrix, precond, counters);
    }
    match child_prec {
        Precision::Fp64 => Box::new(PrecisionBridge::<TP, f64>::new(
            build_chain::<f64>(levels, depth, matrix, precond, counters),
            n,
        )),
        Precision::Fp32 => Box::new(PrecisionBridge::<TP, f32>::new(
            build_chain::<f32>(levels, depth, matrix, precond, counters),
            n,
        )),
        Precision::Fp16 => Box::new(PrecisionBridge::<TP, f16>::new(
            build_chain::<f16>(levels, depth, matrix, precond, counters),
            n,
        )),
    }
}

/// Outermost FGMRES workspace, instantiated for the spec's basis storage
/// precision (the working precision is always fp64 at depth 1).
enum OuterWorkspace {
    /// Uncompressed fp64 basis storage.
    F64(FgmresWorkspace<f64, f64>),
    /// fp32-compressed basis storage.
    F32(FgmresWorkspace<f64, f32>),
    /// fp16-compressed basis storage.
    F16(FgmresWorkspace<f64, f16>),
}

impl OuterWorkspace {
    fn new(basis_prec: Precision, n: usize, m: usize) -> Self {
        match basis_prec {
            Precision::Fp64 => OuterWorkspace::F64(FgmresWorkspace::new(n, m)),
            Precision::Fp32 => OuterWorkspace::F32(FgmresWorkspace::new(n, m)),
            Precision::Fp16 => OuterWorkspace::F16(FgmresWorkspace::new(n, m)),
        }
    }

    fn run_cycle(&mut self, params: CycleParams<'_, f64>, x: &mut [f64], b: &[f64]) -> CycleOutcome {
        match self {
            OuterWorkspace::F64(ws) => fgmres_cycle(params, x, b, ws),
            OuterWorkspace::F32(ws) => fgmres_cycle(params, x, b, ws),
            OuterWorkspace::F16(ws) => fgmres_cycle(params, x, b, ws),
        }
    }
}

/// Outermost block-FGMRES workspace for [`SolveSession::solve_batch`],
/// instantiated for the spec's basis storage precision like
/// [`OuterWorkspace`].
enum OuterBlockWorkspace {
    /// Uncompressed fp64 basis storage.
    F64(BlockFgmresWorkspace<f64, f64>),
    /// fp32-compressed basis storage.
    F32(BlockFgmresWorkspace<f64, f32>),
    /// fp16-compressed basis storage.
    F16(BlockFgmresWorkspace<f64, f16>),
}

impl OuterBlockWorkspace {
    fn new(basis_prec: Precision, n: usize, m: usize, k: usize) -> Self {
        match basis_prec {
            Precision::Fp64 => OuterBlockWorkspace::F64(BlockFgmresWorkspace::new(n, m, k)),
            Precision::Fp32 => OuterBlockWorkspace::F32(BlockFgmresWorkspace::new(n, m, k)),
            Precision::Fp16 => OuterBlockWorkspace::F16(BlockFgmresWorkspace::new(n, m, k)),
        }
    }

    fn max_columns(&self) -> usize {
        match self {
            OuterBlockWorkspace::F64(ws) => ws.max_columns(),
            OuterBlockWorkspace::F32(ws) => ws.max_columns(),
            OuterBlockWorkspace::F16(ws) => ws.max_columns(),
        }
    }

    fn run_cycle(
        &mut self,
        params: BlockCycleParams<'_, f64>,
        xs: &mut [f64],
        bs: &[f64],
        k: usize,
    ) -> Vec<CycleOutcome> {
        match self {
            OuterBlockWorkspace::F64(ws) => block_fgmres_cycle(params, xs, bs, ws, k),
            OuterBlockWorkspace::F32(ws) => block_fgmres_cycle(params, xs, bs, ws, k),
            OuterBlockWorkspace::F16(ws) => block_fgmres_cycle(params, xs, bs, ws, k),
        }
    }
}

// ---------------------------------------------------------------------------
// SolverBuilder
// ---------------------------------------------------------------------------

/// Where the builder gets its level structure from.
enum SpecSource {
    /// One of the paper's F3R precision schemes (Table 1).
    Scheme(F3rScheme),
    /// Hand-rolled levels, outermost first.
    Levels(Vec<LevelSpec>),
    /// A complete pre-built spec (explicit overrides still apply on top).
    Spec(NestedSpec),
    /// Cost-model autotuning: measure the matrix, pick the cheapest
    /// admissible F3R candidate (see [`crate::adaptive::auto_spec_for_matrix`]).
    Auto(AutoTuneConfig),
}

/// Fluent configuration of a nested solver: problem + level structure +
/// preconditioner + tolerances in one chain, replacing the
/// `SolverSettings`-struct-literal + [`f3r_spec`] two-step.
///
/// Terminate the chain with [`build`](SolverBuilder::build) (panics on an
/// invalid configuration, like `NestedSpec::validate`) or
/// [`try_build`](SolverBuilder::try_build) (returns a [`SpecError`]).
/// Both produce an [`Arc<PreparedSolver>`] ready to hand out
/// [`SolveSession`]s.
///
/// ```
/// use std::sync::Arc;
/// use f3r_core::prelude::*;
/// use f3r_precision::Precision;
/// use f3r_precond::PrecondKind;
/// use f3r_sparse::gen::laplacian::poisson2d_5pt;
/// use f3r_sparse::scaling::jacobi_scale;
///
/// let a = jacobi_scale(&poisson2d_5pt(8, 8));
/// let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
///     .levels(vec![
///         LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
///         LevelSpec::fgmres(5, Precision::Fp32, Precision::Fp32),
///     ])
///     .precond(PrecondKind::Jacobi)
///     .tol(1e-10)
///     .name("two-level")
///     .build();
/// assert_eq!(prepared.spec().tuple_notation(), "(F30, F5, M)");
/// ```
pub struct SolverBuilder {
    matrix: Arc<ProblemMatrix>,
    source: Option<SpecSource>,
    params: Option<F3rParams>,
    precond: Option<PrecondKind>,
    precond_prec: Option<Precision>,
    tol: Option<f64>,
    max_outer_cycles: Option<usize>,
    name: Option<String>,
    basis_storage: Option<Precision>,
    matrix_storage: Option<MatrixStorage>,
    policy: Option<AdaptivePolicy>,
}

impl SolverBuilder {
    /// Start configuring a solver for `matrix`.
    #[must_use]
    pub fn new(matrix: Arc<ProblemMatrix>) -> Self {
        Self {
            matrix,
            source: None,
            params: None,
            precond: None,
            precond_prec: None,
            tol: None,
            max_outer_cycles: None,
            name: None,
            basis_storage: None,
            matrix_storage: None,
            policy: None,
        }
    }

    /// Use one of the paper's F3R precision schemes (Table 1) as the level
    /// structure, with the iteration counts from [`params`](Self::params).
    #[must_use]
    pub fn scheme(mut self, scheme: F3rScheme) -> Self {
        self.source = Some(SpecSource::Scheme(scheme));
        self
    }

    /// Iteration counts `(m1, m2, m3, m4)` and weight cycle for the
    /// [`scheme`](Self::scheme) path (default: the paper's `(100, 8, 4, 2)`,
    /// `c = 64`).  Only meaningful with `scheme()`; combining it with
    /// `levels()` or `spec()` — which carry their own iteration counts — is
    /// rejected by `build`/`try_build` rather than silently ignored.
    #[must_use]
    pub fn params(mut self, params: F3rParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Use a hand-rolled level structure, outermost first.
    #[must_use]
    pub fn levels(mut self, levels: Vec<LevelSpec>) -> Self {
        self.source = Some(SpecSource::Levels(levels));
        self
    }

    /// Use a complete pre-built [`NestedSpec`] (e.g. from [`f3r_spec`] or one
    /// of the Table 4 preset functions).  Explicitly set builder fields
    /// (preconditioner, tolerance, …) still override the spec's values.
    #[must_use]
    pub fn spec(mut self, spec: NestedSpec) -> Self {
        self.source = Some(SpecSource::Spec(spec));
        self
    }

    /// Let the cost-model autotuner pick the level structure: the matrix's
    /// entry statistics gate which F3R precision stacks are admissible
    /// (plain fp16 needs every entry fp16-representable, row-scaled fp16
    /// tolerates a bounded dynamic range) and the Section 4.1 traffic model
    /// ranks the admissible candidates; the cheapest wins.  The chosen
    /// spec's name is prefixed `auto:` so results stay attributable.
    ///
    /// Replaces a `scheme(...)` call you would otherwise have to hand-pick
    /// per matrix; explicitly set builder fields (preconditioner, tolerance,
    /// …) still override the chosen spec's values.  Like `levels()`/`spec()`,
    /// this path rejects [`params`](Self::params) — pass iteration counts
    /// through [`auto_spec_with`](Self::auto_spec_with) instead.
    #[must_use]
    pub fn auto_spec(mut self) -> Self {
        self.source = Some(SpecSource::Auto(AutoTuneConfig::default()));
        self
    }

    /// [`auto_spec`](Self::auto_spec) with explicit autotuner configuration
    /// (candidate iteration counts, scaled-fp16 admissibility gate).
    #[must_use]
    pub fn auto_spec_with(mut self, config: AutoTuneConfig) -> Self {
        self.source = Some(SpecSource::Auto(config));
        self
    }

    /// Enable adaptive runtime precision for every session of the prepared
    /// solver: a [`StallDetector`] watches the outer residual trace and, on
    /// stall/divergence/breakdown, the session escalates the inner levels to
    /// the next-wider variant of the escalation ladder mid-solve (fp16 →
    /// fp32 → fp64 matrix streams, bases dragged along), de-escalating after
    /// sustained progress per `policy`.  The outer Krylov state survives a
    /// switch: FGMRES is flexible, so swapping the inner solver between (or
    /// within) cycles is legal by construction.
    #[must_use]
    pub fn adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// [`adaptive`](Self::adaptive) with the default
    /// [`AdaptivePolicy`].
    #[must_use]
    pub fn adaptive_default(self) -> Self {
        self.adaptive(AdaptivePolicy::default())
    }

    /// Primary preconditioner kind (default: `ILU(0)` with α = 1).
    #[must_use]
    pub fn precond(mut self, kind: PrecondKind) -> Self {
        self.precond = Some(kind);
        self
    }

    /// Storage precision of the primary preconditioner (default: the scheme's
    /// Table 1 precision on the scheme path, fp64 otherwise).
    #[must_use]
    pub fn precond_precision(mut self, p: Precision) -> Self {
        self.precond_prec = Some(p);
        self
    }

    /// Convergence tolerance on `‖b − A x‖₂ / ‖b‖₂` (default: the paper's
    /// `1e-8`).
    #[must_use]
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = Some(tol);
        self
    }

    /// Maximum number of outermost restart cycles (default: the paper's 3).
    #[must_use]
    pub fn max_outer_cycles(mut self, cycles: usize) -> Self {
        self.max_outer_cycles = Some(cycles);
        self
    }

    /// Human-readable configuration name (default: the scheme's name, e.g.
    /// `"fp16-F3R"`, or the tuple notation for hand-rolled levels).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Store the Arnoldi/flexible bases of every *inner* FGMRES level in
    /// precision `p` (see [`NestedSpec::with_basis_storage`]).
    #[must_use]
    pub fn basis_storage(mut self, p: Precision) -> Self {
        self.basis_storage = Some(p);
        self
    }

    /// Stream the matrix of every *inner* level from the given storage
    /// (precision + plain/scaled; clamped per level, see
    /// [`NestedSpec::with_matrix_storage`]).  Scaled fp16 storage —
    /// `MatrixStorage::Scaled(Precision::Fp16)` — keeps half-precision
    /// matrix streaming robust on matrices whose entry dynamic range would
    /// overflow an unscaled fp16 copy.
    #[must_use]
    pub fn matrix_storage(mut self, storage: MatrixStorage) -> Self {
        self.matrix_storage = Some(storage);
        self
    }

    /// Resolve the configuration into a validated spec.
    fn resolve_spec(self) -> Result<(Arc<ProblemMatrix>, NestedSpec), SpecError> {
        let source = self.source.ok_or_else(|| {
            SpecError::new("the builder needs a level structure: call scheme(), levels() or spec()")
        })?;
        if self.params.is_some() && !matches!(source, SpecSource::Scheme(_)) {
            return Err(SpecError::new(
                "params() only applies to the scheme() path; levels() and spec() carry their own iteration counts",
            ));
        }
        let mut spec = match source {
            SpecSource::Spec(spec) => spec,
            SpecSource::Auto(config) => auto_spec_for_matrix(&self.matrix, &config),
            SpecSource::Scheme(scheme) => {
                // Defaults come from SolverSettings; explicitly set builder
                // fields are applied by the shared override block below.
                f3r_spec(self.params.unwrap_or_default(), scheme, &SolverSettings::default())
            }
            SpecSource::Levels(levels) => {
                let mut spec = NestedSpec {
                    levels,
                    precond: PrecondKind::Ilu0 { alpha: 1.0 },
                    precond_prec: Precision::Fp64,
                    tol: 1e-8,
                    max_outer_cycles: 3,
                    name: String::new(),
                };
                spec.name = spec.tuple_notation();
                spec
            }
        };
        // Explicitly set builder fields always win.
        if let Some(kind) = self.precond {
            spec.precond = kind;
        }
        if let Some(p) = self.precond_prec {
            spec.precond_prec = p;
        }
        if let Some(tol) = self.tol {
            spec.tol = tol;
        }
        if let Some(cycles) = self.max_outer_cycles {
            spec.max_outer_cycles = cycles;
        }
        if let Some(name) = self.name {
            spec.name = name;
        }
        if let Some(p) = self.basis_storage {
            spec = spec.with_basis_storage(p);
        }
        if let Some(storage) = self.matrix_storage {
            spec = spec.with_matrix_storage(storage);
        }
        spec.check()?;
        Ok((self.matrix, spec))
    }

    /// Validate the spec and run the per-matrix setup (preconditioner
    /// factorisation), returning the shareable prepared solver.
    ///
    /// # Errors
    /// Returns a [`SpecError`] if no level structure was given or the
    /// resulting spec fails [`NestedSpec::check`].
    pub fn try_build(mut self) -> Result<Arc<PreparedSolver>, SpecError> {
        let policy = self.policy.take();
        let (matrix, spec) = self.resolve_spec()?;
        // Materialize exactly the matrix variants the validated level chain
        // streams (the store stays lazy for everything else — a later
        // diagnostic or override can still fault a variant in).
        for level in &spec.levels {
            matrix.materialize(level.matrix_storage());
        }
        let precond = Arc::new(AnyPrecond::for_matrix(
            &matrix,
            &spec.precond,
            spec.precond_prec,
        ));
        let fingerprint = crate::fingerprint::solver_fingerprint(&matrix, &spec);
        Ok(Arc::new(PreparedSolver {
            matrix,
            precond,
            spec,
            policy,
            fingerprint,
        }))
    }

    /// Like [`try_build`](Self::try_build) but panics on an invalid
    /// configuration (the historical `NestedSolver::new` behaviour).
    ///
    /// # Panics
    /// Panics with the [`SpecError`] message if the configuration is invalid.
    #[must_use]
    pub fn build(self) -> Arc<PreparedSolver> {
        match self.try_build() {
            Ok(prepared) => prepared,
            Err(e) => panic!("{e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// PreparedSolver
// ---------------------------------------------------------------------------

/// Everything per-matrix a nested solver needs, set up once and shared
/// immutably: the multi-precision matrix copies, the factorized primary
/// preconditioner and the validated spec.
///
/// `PreparedSolver` is `Send + Sync`; wrap it in an `Arc` (as
/// [`SolverBuilder::build`] already does) and clone the handle into as many
/// threads as needed — each thread opens its own [`SolveSession`] and the
/// sessions never alias mutable state.
pub struct PreparedSolver {
    matrix: Arc<ProblemMatrix>,
    precond: Arc<AnyPrecond>,
    spec: NestedSpec,
    policy: Option<AdaptivePolicy>,
    fingerprint: u64,
}

impl fmt::Debug for PreparedSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedSolver")
            .field("name", &self.spec.name)
            .field("dim", &self.matrix.dim())
            .field("precond", &self.precond.name())
            .finish_non_exhaustive()
    }
}

impl PreparedSolver {
    /// Start a [`SolverBuilder`] for `matrix` (equivalent to
    /// [`SolverBuilder::new`]).
    #[must_use]
    pub fn builder(matrix: Arc<ProblemMatrix>) -> SolverBuilder {
        SolverBuilder::new(matrix)
    }

    /// The multi-precision matrix handle.
    #[must_use]
    pub fn matrix(&self) -> &Arc<ProblemMatrix> {
        &self.matrix
    }

    /// The factorized primary preconditioner `M` (shared by every session).
    #[must_use]
    pub fn precond(&self) -> &Arc<AnyPrecond> {
        &self.precond
    }

    /// The validated spec this solver was prepared from.
    #[must_use]
    pub fn spec(&self) -> &NestedSpec {
        &self.spec
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.matrix.dim()
    }

    /// Configuration name (e.g. `"fp16-F3R"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The adaptive-precision policy sessions of this solver run under, if
    /// [`SolverBuilder::adaptive`] enabled one.
    #[must_use]
    pub fn adaptive_policy(&self) -> Option<&AdaptivePolicy> {
        self.policy.as_ref()
    }

    /// Stable content fingerprint of this solver: the matrix
    /// [`content_hash`](ProblemMatrix::content_hash) mixed with the
    /// structural fields of the validated spec (see
    /// [`fingerprint`](crate::fingerprint)).  Equal fingerprints mean "built
    /// from bit-identical inputs", which is what the serving layer's
    /// registry keys its cache on — and it can compute the same value
    /// *before* building via
    /// [`solver_fingerprint`](crate::fingerprint::solver_fingerprint).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total resident bytes of this prepared solver: every materialized
    /// matrix variant ([`ProblemMatrix::storage_bytes`]) plus the factorized
    /// preconditioner ([`AnyPrecond::storage_bytes`]).  This is the price a
    /// cache pays to keep the solver warm, and the value the serving-layer
    /// registry charges against its byte cap.  Session workspaces are
    /// accounted separately ([`SolveSession::workspace_bytes`]) — they
    /// belong to the session, not the shared setup.
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        self.matrix.storage_bytes() + self.precond.storage_bytes()
    }

    /// Open a new solve session: a private set of mutable level workspaces
    /// and counters over this shared setup.  Cheap — workspaces are only
    /// allocated on the session's first solve.
    #[must_use]
    pub fn session(self: &Arc<Self>) -> SolveSession {
        let adaptive = self
            .policy
            .map(|policy| AdaptiveRun::new(policy, &self.spec.levels));
        SolveSession {
            prepared: Arc::clone(self),
            counters: KernelCounters::new_shared(),
            work: None,
            generation: 0,
            adaptive,
        }
    }
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

/// Whether a [`SolveObserver`] wants the solve to continue or stop early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveControl {
    /// Keep iterating.
    Continue,
    /// Stop the solve after the current event; the result reports
    /// [`StopReason::Stopped`] unless the solve already converged.
    Stop,
}

/// One outermost Arnoldi iteration, reported as it completes.
#[derive(Debug, Clone, Copy)]
pub struct OuterEvent {
    /// Global outermost iteration count (1-based, across restart cycles).
    pub outer_iteration: usize,
    /// Restart cycle index (0-based).
    pub cycle: usize,
    /// FGMRES residual-norm estimate `|g_{j+1}|` relative to `‖b‖₂` — the
    /// cheap by-product of the Givens update, not the true residual.
    pub relative_residual_estimate: f64,
}

/// One completed restart cycle, reported after the true residual check.
#[derive(Debug, Clone, Copy)]
pub struct CycleEvent {
    /// Restart cycle index (0-based).
    pub cycle: usize,
    /// Total outermost iterations so far.
    pub outer_iterations: usize,
    /// True relative residual `‖b − A x‖₂ / ‖b‖₂` (fp64 evaluation).
    pub true_relative_residual: f64,
}

/// One mid-solve precision switch of an adaptive session (see
/// [`SolverBuilder::adaptive`]), reported as it happens.
#[derive(Debug, Clone)]
pub struct PrecisionSwitchEvent {
    /// Restart-cycle index (0-based) of the cycle that triggered the switch.
    pub cycle: usize,
    /// Total outermost iterations executed when the switch happened.
    pub outer_iterations: usize,
    /// True relative residual at the switch (`NaN`/`inf` when the switch
    /// rescued a breakdown).
    pub true_relative_residual: f64,
    /// `true` for an escalation (wider variants), `false` for a
    /// de-escalation back down the ladder.
    pub escalated: bool,
    /// Ladder rung before the switch (0 = the spec as built).
    pub from_rung: usize,
    /// Ladder rung after the switch.
    pub to_rung: usize,
    /// The level structure the solve continues with, outermost first.
    pub levels: Vec<LevelSpec>,
}

/// Callback interface for watching a solve as it progresses.
///
/// The control-returning methods default to [`SolveControl::Continue`];
/// implement whichever granularity you need.  Returning
/// [`SolveControl::Stop`] ends the solve after the current event with
/// [`StopReason::Stopped`] (or [`StopReason::Converged`] if the tolerance
/// was reached in the same cycle).
pub trait SolveObserver {
    /// Called after every outermost Arnoldi iteration with the residual
    /// *estimate* (no extra kernel work is spent on these events).
    fn on_outer_iteration(&mut self, event: &OuterEvent) -> SolveControl {
        let _ = event;
        SolveControl::Continue
    }

    /// Called with the *true* relative residual after each restart cycle
    /// that does not terminate the solve.  A final cycle that converges,
    /// breaks down or was stopped by [`on_outer_iteration`](Self::on_outer_iteration)
    /// exits before this event; its residual is reported in
    /// [`SolveResult::final_relative_residual`] and `residual_history`.
    fn on_cycle_complete(&mut self, event: &CycleEvent) -> SolveControl {
        let _ = event;
        SolveControl::Continue
    }

    /// Called when an adaptive session switches its inner levels to a wider
    /// or narrower ladder rung mid-solve.  Informational — the switch has
    /// already happened; use [`on_outer_iteration`](Self::on_outer_iteration)
    /// or [`on_cycle_complete`](Self::on_cycle_complete) to stop the solve.
    fn on_precision_switch(&mut self, event: &PrecisionSwitchEvent) {
        let _ = event;
    }
}

/// Bridges the per-iteration [`CycleProgress`] hook of the outermost FGMRES
/// cycle onto the public [`SolveObserver`] interface.  Whether the observer
/// stopped the cycle is reported back through `CycleOutcome::stopped`.
struct ProgressAdapter<'o> {
    observer: &'o mut dyn SolveObserver,
    bnorm: f64,
    cycle: usize,
    outer_before: usize,
}

impl CycleProgress for ProgressAdapter<'_> {
    fn on_iteration(&mut self, iteration_in_cycle: usize, residual_estimate: f64) -> bool {
        let event = OuterEvent {
            outer_iteration: self.outer_before + iteration_in_cycle + 1,
            cycle: self.cycle,
            relative_residual_estimate: residual_estimate / self.bnorm,
        };
        self.observer.on_outer_iteration(&event) == SolveControl::Continue
    }
}

/// Per-iteration hook of the outermost cycle: forwards events to the user's
/// observer (if any) and, on adaptive sessions, feeds the stall detector.
/// A stall/divergence signal ends the cycle early (`switch_wanted`) so the
/// session can escalate; a user stop always wins and is recorded separately
/// so the two exits stay distinguishable after the cycle returns.
struct OuterHook<'o> {
    user: Option<ProgressAdapter<'o>>,
    detector: Option<&'o mut StallDetector>,
    bnorm: f64,
    can_escalate: bool,
    switch_wanted: bool,
    user_stopped: bool,
}

impl CycleProgress for OuterHook<'_> {
    fn on_iteration(&mut self, iteration_in_cycle: usize, residual_estimate: f64) -> bool {
        if let Some(user) = self.user.as_mut() {
            if !user.on_iteration(iteration_in_cycle, residual_estimate) {
                self.user_stopped = true;
                return false;
            }
        }
        if let Some(detector) = self.detector.as_deref_mut() {
            let signal = detector.observe(residual_estimate / self.bnorm);
            if self.can_escalate && !matches!(signal, StallSignal::Progressing) {
                self.switch_wanted = true;
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// SolveOptions
// ---------------------------------------------------------------------------

/// Per-solve overrides; every field defaults to the prepared spec's value.
///
/// ```
/// # use f3r_core::session::SolveOptions;
/// let x0 = vec![0.5; 4];
/// let opts = SolveOptions::new().x0(&x0).tol(1e-6).max_outer_cycles(1);
/// assert_eq!(opts.tol, Some(1e-6));
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct SolveOptions<'a> {
    /// Warm-start initial guess (default: the zero vector).
    pub x0: Option<&'a [f64]>,
    /// Convergence tolerance override (must be positive, like the spec's).
    pub tol: Option<f64>,
    /// Outermost restart-cycle budget override (must be at least 1).
    pub max_outer_cycles: Option<usize>,
}

impl<'a> SolveOptions<'a> {
    /// Defaults: zero initial guess, spec tolerance, spec cycle budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Warm-start from `x0` instead of the zero vector.
    #[must_use]
    pub fn x0(mut self, x0: &'a [f64]) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// Override the convergence tolerance for this solve.
    #[must_use]
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = Some(tol);
        self
    }

    /// Override the outermost restart-cycle budget for this solve.
    #[must_use]
    pub fn max_outer_cycles(mut self, cycles: usize) -> Self {
        self.max_outer_cycles = Some(cycles);
        self
    }
}

// ---------------------------------------------------------------------------
// SolveSession
// ---------------------------------------------------------------------------

/// Mutable per-session state: the inner-solver chain, the outer workspace
/// and the scratch vector for true-residual convergence checks.
struct SessionWork {
    inner: Box<dyn InnerSolver<f64>>,
    outer: OuterWorkspace,
    residual: Vec<f64>,
    /// Batched-path state, allocated on the first [`SolveSession::solve_batch`]
    /// and regrown only for wider batches.  Single-RHS solves never touch it,
    /// and allocating it does not bump the workspace generation: the
    /// generation tracks the per-session workspaces every solve shares.
    block: Option<BlockWork>,
}

/// Outer block workspace plus the packed right-hand-side / solution panels of
/// the batched path (reused across `solve_batch` calls).
struct BlockWork {
    outer: OuterBlockWorkspace,
    /// Column-major RHS panel over the still-running columns.
    bp: Vec<f64>,
    /// Column-major solution panel over the still-running columns.
    xp: Vec<f64>,
}

/// Runtime state of an adaptive session: the escalation ladder derived from
/// the prepared spec, the rung currently driving the inner chain, and the
/// stall/health bookkeeping of the escalate → cool-down → de-escalate state
/// machine.  The rung and its floor persist across solves of the same
/// session (a matrix that needed fp32 last solve starts there next solve);
/// the per-solve fields reset in [`begin_solve`](Self::begin_solve).
struct AdaptiveRun {
    policy: AdaptivePolicy,
    ladder: Vec<Vec<LevelSpec>>,
    /// Current ladder rung; `work.inner` is always built from
    /// `ladder[rung]`.
    rung: usize,
    /// Lowest rung de-escalation may return to.  Starts at 0 and is pinned
    /// upward when a probational de-escalation stalls again.
    floor: usize,
    /// Escalations taken in the current solve (bounded by
    /// `policy.max_escalations`).
    escalations: usize,
    /// Consecutive healthy cycles at the current rung.
    healthy_cycles: usize,
    /// Set right after a de-escalation: the narrow rung is on probation
    /// until it survives `deescalate_after` healthy cycles; stalling while
    /// on probation pins `floor` at the re-escalated rung.
    probation: bool,
    detector: StallDetector,
    /// True relative residual after the previous cycle at this rung (for
    /// the cycle-boundary reduction check); `None` right after a switch.
    last_cycle_rel: Option<f64>,
    /// Copy of `x` from the start of the current cycle, for rolling back a
    /// cycle that broke down before escalating.
    x_backup: Vec<f64>,
}

impl AdaptiveRun {
    fn new(policy: AdaptivePolicy, levels: &[LevelSpec]) -> Self {
        Self {
            ladder: escalation_ladder(levels),
            rung: 0,
            floor: 0,
            escalations: 0,
            healthy_cycles: 0,
            probation: false,
            detector: StallDetector::new(policy.stall),
            last_cycle_rel: None,
            x_backup: Vec::new(),
            policy,
        }
    }

    /// Reset the per-solve state, keeping the rung and floor the session
    /// has settled on.
    fn begin_solve(&mut self, n: usize) {
        self.escalations = 0;
        self.healthy_cycles = 0;
        self.probation = false;
        self.detector.reset();
        self.last_cycle_rel = None;
        self.x_backup.resize(n, 0.0);
    }

    fn can_escalate(&self) -> bool {
        self.rung + 1 < self.ladder.len() && self.escalations < self.policy.max_escalations
    }
}

/// Shared context of a mid-solve precision switch (the immutable pieces the
/// chain rebuild needs, plus the event data reported to the observer).
struct SwitchContext<'a> {
    prepared: &'a PreparedSolver,
    counters: &'a Arc<KernelCounters>,
    cycle: usize,
    outer_iterations: usize,
    true_relative_residual: f64,
}

/// Move an adaptive session to `new_rung`: materialize the rung's matrix
/// variants from the lazy store (counting the newly faulted-in bytes),
/// rebuild the inner-solver chain against them, attribute the per-level
/// escalation/de-escalation events, and reset the rung-local detector
/// state.  The outer workspace — and with it the outer Krylov state — is
/// untouched: the outermost level never changes, and FGMRES is flexible, so
/// a different inner solver between iterations is legal by construction.
fn switch_rung(
    run: &mut AdaptiveRun,
    work: &mut SessionWork,
    new_rung: usize,
    ctx: &SwitchContext<'_>,
    observer: Option<&mut (dyn SolveObserver + '_)>,
) {
    let escalated = new_rung > run.rung;
    let from_rung = run.rung;
    let new_levels = run.ladder[new_rung].clone();
    let matrix = &ctx.prepared.matrix;
    let bytes_before = matrix.storage_bytes();
    for level in &new_levels[1..] {
        matrix.materialize(level.matrix_storage());
    }
    let faulted = matrix.storage_bytes().saturating_sub(bytes_before);
    if faulted > 0 {
        ctx.counters.record_switch_bytes(faulted);
    }
    work.inner = if new_levels.len() == 1 {
        Box::new(PrecondInner::<f64>::new(
            Arc::clone(&ctx.prepared.precond),
            Arc::clone(ctx.counters),
            2,
        ))
    } else {
        build_child::<f64>(
            &new_levels[1..],
            2,
            matrix,
            &ctx.prepared.precond,
            ctx.counters,
        )
    };
    for (depth0, (old, new)) in run.ladder[from_rung]
        .iter()
        .zip(new_levels.iter())
        .enumerate()
        .skip(1)
    {
        if old != new {
            if escalated {
                ctx.counters.record_escalation(depth0 + 1);
            } else {
                ctx.counters.record_deescalation(depth0 + 1);
            }
        }
    }
    run.rung = new_rung;
    run.detector.reset();
    run.healthy_cycles = 0;
    run.last_cycle_rel = None;
    if let Some(obs) = observer {
        obs.on_precision_switch(&PrecisionSwitchEvent {
            cycle: ctx.cycle,
            outer_iterations: ctx.outer_iterations,
            true_relative_residual: ctx.true_relative_residual,
            escalated,
            from_rung,
            to_rung: new_rung,
            levels: new_levels,
        });
    }
}

/// One solve stream over a [`PreparedSolver`]: owns the mutable level
/// workspaces, the adaptive Richardson weights and the kernel counters.
///
/// Sessions are `Send` (move one into a worker thread) but deliberately not
/// shareable: concurrency is achieved by opening one session per thread over
/// the same `Arc<PreparedSolver>`.  Workspaces (including the true-residual
/// scratch vector) are allocated on the first solve and reused for every
/// later solve — [`workspace_generation`](Self::workspace_generation)
/// exposes the allocation epoch so tests can assert steady-state reuse; the
/// only steady-state allocations left are the O(cycles) result bookkeeping
/// each solve returns.
pub struct SolveSession {
    prepared: Arc<PreparedSolver>,
    counters: Arc<KernelCounters>,
    work: Option<SessionWork>,
    generation: u64,
    adaptive: Option<AdaptiveRun>,
}

impl SolveSession {
    /// The shared setup this session solves against.
    #[must_use]
    pub fn prepared(&self) -> &Arc<PreparedSolver> {
        &self.prepared
    }

    /// Kernel counters of this session (reset at the start of every solve).
    #[must_use]
    pub fn counters(&self) -> &Arc<KernelCounters> {
        &self.counters
    }

    /// Number of times this session has (re)allocated its workspaces: 0
    /// before the first solve, 1 from then on.  A steady-state solve never
    /// bumps this.
    #[must_use]
    pub fn workspace_generation(&self) -> u64 {
        self.generation
    }

    /// Heap bytes of this session's own mutable state: the outer FGMRES
    /// workspace (plus the block twin if `solve_batch` allocated it), the
    /// whole inner-solver chain, the true-residual scratch and the batched
    /// RHS/solution panels.  0 before the first solve (workspaces are lazy).
    ///
    /// This is the *per-session* complement of
    /// [`PreparedSolver::storage_bytes`]: the shared matrix variants and
    /// preconditioner factors the session borrows are priced there, so a
    /// pool holding `s` warm sessions costs
    /// `storage_bytes() + s × workspace_bytes()` resident bytes in total.
    #[must_use]
    pub fn workspace_bytes(&self) -> u64 {
        let Some(work) = &self.work else { return 0 };
        let outer = match &work.outer {
            OuterWorkspace::F64(ws) => ws.workspace_bytes(),
            OuterWorkspace::F32(ws) => ws.workspace_bytes(),
            OuterWorkspace::F16(ws) => ws.workspace_bytes(),
        };
        let block = work.block.as_ref().map_or(0, |b| {
            let ws = match &b.outer {
                OuterBlockWorkspace::F64(ws) => ws.workspace_bytes(),
                OuterBlockWorkspace::F32(ws) => ws.workspace_bytes(),
                OuterBlockWorkspace::F16(ws) => ws.workspace_bytes(),
            };
            ws + (b.bp.len() + b.xp.len()) as u64 * 8
        });
        outer + block + work.inner.workspace_bytes() + work.residual.len() as u64 * 8
    }

    /// The escalation-ladder rung an adaptive session currently runs at
    /// (0 = the spec as built), or `None` for a fixed-precision session.
    /// The rung persists across solves: a matrix that forced an escalation
    /// starts the next solve of the same session already widened.
    #[must_use]
    pub fn adaptive_rung(&self) -> Option<usize> {
        self.adaptive.as_ref().map(|run| run.rung)
    }

    /// Allocate the level workspaces if this is the first solve.
    fn ensure_work(&mut self) {
        if self.work.is_some() {
            return;
        }
        let spec = &self.prepared.spec;
        let matrix = &self.prepared.matrix;
        // An adaptive session builds its inner chain from the current ladder
        // rung (which persists across solves); rung 0 is the spec itself.
        let levels: &[LevelSpec] = match &self.adaptive {
            Some(run) => &run.ladder[run.rung],
            None => &spec.levels,
        };
        let inner: Box<dyn InnerSolver<f64>> = if levels.len() == 1 {
            Box::new(PrecondInner::<f64>::new(
                Arc::clone(&self.prepared.precond),
                Arc::clone(&self.counters),
                2,
            ))
        } else {
            build_child::<f64>(
                &levels[1..],
                2,
                matrix,
                &self.prepared.precond,
                &self.counters,
            )
        };
        let outer_basis = spec.levels[0].basis_precision().unwrap_or(Precision::Fp64);
        let outer = OuterWorkspace::new(outer_basis, matrix.dim(), spec.levels[0].iterations());
        self.work = Some(SessionWork {
            inner,
            outer,
            residual: vec![0.0; matrix.dim()],
            block: None,
        });
        self.generation += 1;
    }

    /// Solve `A x = b` from the zero initial guess with the spec's tolerance
    /// and cycle budget, overwriting `x`.
    pub fn solve(&mut self, b: &[f64], x: &mut [f64]) -> SolveResult {
        self.solve_impl(b, x, &SolveOptions::default(), None)
    }

    /// Solve `A x = b` with per-solve overrides (warm start, tolerance,
    /// cycle budget).
    pub fn solve_with(&mut self, b: &[f64], x: &mut [f64], opts: &SolveOptions<'_>) -> SolveResult {
        self.solve_impl(b, x, opts, None)
    }

    /// Solve `A x = b` while reporting progress to `observer` (which may stop
    /// the solve early).
    pub fn solve_observed(
        &mut self,
        b: &[f64],
        x: &mut [f64],
        opts: &SolveOptions<'_>,
        observer: &mut dyn SolveObserver,
    ) -> SolveResult {
        self.solve_impl(b, x, opts, Some(observer))
    }

    /// Solve one system per right-hand side, reusing the session workspaces
    /// across solves.  Each `xs[i]` is resized to the matrix dimension and
    /// overwritten; every system starts from the zero initial guess and uses
    /// the spec's tolerance and cycle budget.
    ///
    /// With two or more right-hand sides this delegates to
    /// [`solve_batch`](Self::solve_batch): since all systems share one
    /// matrix and one tolerance, batching is profitable from `k = 2` on —
    /// every batched matrix pass serves all still-running systems, so the
    /// dominant matrix-stream traffic drops to roughly `1/k` per right-hand
    /// side with no change to any system's convergence path (each column
    /// computes the same floating-point sequence as its sequential solve;
    /// see [`crate::block`]).  The only observable differences are the ones
    /// documented on `solve_batch`: per-result counters and timings report
    /// batch totals, and adaptive Richardson weights see the interleaved
    /// application order.  A single right-hand side takes the plain
    /// [`solve`](Self::solve) path unchanged.
    ///
    /// # Panics
    /// Panics if `bs` and `xs` have different lengths (the same contract,
    /// with the same wording, as `solve_batch`) or a right-hand side has the
    /// wrong length.
    pub fn solve_many<B: AsRef<[f64]>>(&mut self, bs: &[B], xs: &mut [Vec<f64>]) -> Vec<SolveResult> {
        assert_eq!(
            bs.len(),
            xs.len(),
            "solve_many: need one solution vector per right-hand side"
        );
        if bs.len() >= 2 {
            return self.solve_batch(bs, xs);
        }
        let n = self.prepared.dim();
        bs.iter()
            .zip(xs.iter_mut())
            .map(|(b, x)| {
                x.resize(n, 0.0);
                self.solve(b.as_ref(), x)
            })
            .collect()
    }

    /// Solve the `k = bs.len()` systems `A x_c = b_c` together, marching all
    /// right-hand sides through shared outer FGMRES cycles, and return one
    /// [`SolveResult`] per system (in input order).  Each `xs[c]` is resized
    /// to the matrix dimension and overwritten; every system starts from the
    /// zero initial guess and uses the spec's tolerance and cycle budget.
    ///
    /// Per iteration, the SpMVs of all still-running systems fuse into one
    /// pass over the matrix ([`ProblemMatrix::apply_multi`]) on every FGMRES
    /// level of the nesting hierarchy, so the dominant matrix-stream traffic
    /// is paid once per batch instead of once per right-hand side.  Each
    /// column still runs its own independent recurrence — same Arnoldi
    /// process, same convergence checks against the same tolerance, bitwise
    /// the same floating-point sequence as a sequential [`solve`](Self::solve)
    /// (except under adaptive Richardson levels, whose weight state evolves
    /// in application order; such specs still converge to the same
    /// tolerance, just not bitwise identically).  Convergence is tracked per
    /// column: a system that converges (true relative residual below the
    /// spec tolerance) or breaks down is *deflated* — later cycles and
    /// batched kernel calls no longer carry its column.
    ///
    /// A single right-hand side falls back to the plain sequential path;
    /// with `k = 0` an empty result vector is returned.
    ///
    /// Because the whole batch shares this session's kernel counters (reset
    /// once at batch start), the `counters`, `precond_applications` and
    /// `seconds` fields of every returned result report **batch totals**,
    /// not per-system shares.  Per-system fields (`converged`,
    /// `outer_iterations`, `residual_history`,
    /// `final_relative_residual`, …) are tracked individually.  Batched
    /// matrix passes are attributed through
    /// [`KernelCounters::record_spmm`], so
    /// `counters.matrix_bytes_total() / counters.spmm_columns_total()`
    /// exposes the per-RHS matrix traffic the batching saves.
    ///
    /// On an adaptive session (see [`SolverBuilder::adaptive`]) the batch
    /// runs at the session's current escalation-ladder rung but does not
    /// adapt mid-batch: stall detection needs the per-column residual
    /// trajectory, and the batched cycle reports per-cycle only.  Solve one
    /// representative system through [`solve`](Self::solve) first if the
    /// matrix may need a wider rung; the rung it settles on carries over.
    ///
    /// # Panics
    /// Panics if `bs` and `xs` have different lengths or a right-hand side
    /// is not `dim()` elements long.
    pub fn solve_batch<B: AsRef<[f64]>>(&mut self, bs: &[B], xs: &mut [Vec<f64>]) -> Vec<SolveResult> {
        assert_eq!(
            bs.len(),
            xs.len(),
            "solve_batch: need one solution vector per right-hand side"
        );
        let k = bs.len();
        if k == 0 {
            return Vec::new();
        }
        let n = self.prepared.dim();
        if k == 1 {
            xs[0].resize(n, 0.0);
            return vec![self.solve(bs[0].as_ref(), &mut xs[0])];
        }
        for b in bs {
            assert_eq!(b.as_ref().len(), n, "solve_batch: b length mismatch");
        }
        let start = Instant::now();
        self.ensure_work();
        self.counters.reset();
        let tol = self.prepared.spec.tol;
        let max_cycles = self.prepared.spec.max_outer_cycles;
        for x in xs.iter_mut() {
            x.clear();
            x.resize(n, 0.0);
        }

        // Per-column convergence bookkeeping (the O(k·cycles) result state
        // every batch allocates — panels and workspaces are reused).
        struct ColRun {
            converged: bool,
            stop_reason: StopReason,
            outer_iterations: usize,
            history: Vec<f64>,
            done: bool,
        }
        let bnorms: Vec<f64> = bs.iter().map(|b| blas1::norm2(b.as_ref())).collect();
        let mut runs: Vec<ColRun> = bnorms
            .iter()
            .map(|&bnorm| {
                // x = 0 is the exact solution of a zero-RHS column, exactly
                // as in the sequential path.
                let trivial = bnorm == 0.0;
                ColRun {
                    converged: trivial,
                    stop_reason: if trivial {
                        StopReason::Converged
                    } else {
                        StopReason::MaxIterations
                    },
                    outer_iterations: 0,
                    history: Vec::new(),
                    done: trivial,
                }
            })
            .collect();
        let abs_tols: Vec<f64> = bnorms.iter().map(|&bnorm| tol * bnorm).collect();

        let spec = &self.prepared.spec;
        let work = self.work.as_mut().expect("workspaces allocated by ensure_work");
        if work.block.as_ref().is_none_or(|bw| bw.outer.max_columns() < k) {
            let outer_basis = spec.levels[0].basis_precision().unwrap_or(Precision::Fp64);
            work.block = Some(BlockWork {
                outer: OuterBlockWorkspace::new(outer_basis, n, spec.levels[0].iterations(), k),
                bp: vec![0.0; n * k],
                xp: vec![0.0; n * k],
            });
        }
        let SessionWork {
            inner,
            block,
            residual,
            ..
        } = work;
        let block = block.as_mut().expect("block workspaces just ensured");

        let mut packed: Vec<usize> = Vec::with_capacity(k);
        let mut tols: Vec<f64> = Vec::with_capacity(k);
        for cycle in 0..max_cycles {
            packed.clear();
            packed.extend(
                runs.iter()
                    .enumerate()
                    .filter(|(_, r)| !r.done)
                    .map(|(c, _)| c),
            );
            let ka = packed.len();
            if ka == 0 {
                break;
            }
            // Pack the still-running columns into contiguous panels; deflated
            // columns stop paying for matrix, preconditioner and basis work.
            for (p, &c) in packed.iter().enumerate() {
                block.bp[p * n..(p + 1) * n].copy_from_slice(bs[c].as_ref());
                block.xp[p * n..(p + 1) * n].copy_from_slice(&xs[c]);
            }
            tols.clear();
            tols.extend(packed.iter().map(|&c| abs_tols[c]));
            let outcomes = block.outer.run_cycle(
                BlockCycleParams {
                    matrix: &self.prepared.matrix,
                    mat_storage: spec.levels[0].matrix_storage(),
                    inner: inner.as_mut(),
                    abs_tols: Some(&tols),
                    x_nonzero: cycle > 0,
                    depth: 1,
                    counters: &self.counters,
                },
                &mut block.xp[..ka * n],
                &block.bp[..ka * n],
                ka,
            );
            for (p, &c) in packed.iter().enumerate() {
                xs[c].copy_from_slice(&block.xp[p * n..(p + 1) * n]);
                let run = &mut runs[c];
                let outcome = &outcomes[p];
                run.outer_iterations += outcome.iterations;
                let true_rel = self
                    .prepared
                    .matrix
                    .true_relative_residual_with(&xs[c], bs[c].as_ref(), residual);
                run.history.push(true_rel);
                if !true_rel.is_finite() {
                    run.stop_reason = StopReason::Breakdown;
                    run.done = true;
                    continue;
                }
                if true_rel < tol {
                    run.converged = true;
                    run.stop_reason = StopReason::Converged;
                    run.done = true;
                    continue;
                }
                // As in the sequential path, a breakdown that still produced
                // iterations restarts; only a sterile cycle is terminal.
                if outcome.breakdown && outcome.iterations == 0 {
                    run.stop_reason = StopReason::Breakdown;
                    run.done = true;
                }
            }
        }

        let seconds = start.elapsed().as_secs_f64();
        let snapshot = self.counters.snapshot();
        runs.into_iter()
            .map(|run| SolveResult {
                converged: run.converged,
                stop_reason: run.stop_reason,
                outer_iterations: run.outer_iterations,
                precond_applications: snapshot.precond_applies,
                final_relative_residual: run.history.last().copied().unwrap_or(0.0),
                seconds,
                residual_history: run.history,
                counters: snapshot,
                solver_name: self.prepared.spec.name.clone(),
                fingerprint: Some(self.prepared.fingerprint),
            })
            .collect()
    }

    fn solve_impl(
        &mut self,
        b: &[f64],
        x: &mut [f64],
        opts: &SolveOptions<'_>,
        mut observer: Option<&mut dyn SolveObserver>,
    ) -> SolveResult {
        let n = self.prepared.dim();
        assert_eq!(b.len(), n, "solve: b length mismatch");
        assert_eq!(x.len(), n, "solve: x length mismatch");
        let start = Instant::now();
        self.ensure_work();
        self.counters.reset();
        // Per-solve overrides must satisfy the same invariants NestedSpec::check
        // enforces on the spec values they replace.
        let tol = opts.tol.unwrap_or(self.prepared.spec.tol);
        assert!(
            !tol.is_nan() && tol > 0.0,
            "solve: tolerance override must be positive"
        );
        let max_cycles = opts.max_outer_cycles.unwrap_or(self.prepared.spec.max_outer_cycles);
        assert!(max_cycles >= 1, "solve: need at least one outer cycle");
        let warm = match opts.x0 {
            Some(x0) => {
                assert_eq!(x0.len(), n, "solve: x0 length mismatch");
                x.copy_from_slice(x0);
                true
            }
            None => {
                for xi in x.iter_mut() {
                    *xi = 0.0;
                }
                false
            }
        };

        let bnorm = blas1::norm2(b);
        let mut history = Vec::new();
        let mut outer_iterations = 0usize;
        let mut stop_reason = StopReason::MaxIterations;
        let mut converged = false;

        if bnorm == 0.0 {
            // x = 0 is the exact solution (also under a warm start).
            for xi in x.iter_mut() {
                *xi = 0.0;
            }
            converged = true;
            stop_reason = StopReason::Converged;
        } else {
            let abs_tol = tol * bnorm;
            // An adaptive session may reset its cycle budget at every
            // precision switch (a freshly widened chain deserves a full
            // budget), bounded by a hard cap so a pathological matrix cannot
            // loop forever; a fixed-precision session runs the plain
            // `max_cycles` budget.
            let hard_cap = match &self.adaptive {
                Some(run) => max_cycles * (2 * run.policy.max_escalations + 2),
                None => max_cycles,
            };
            if let Some(run) = self.adaptive.as_mut() {
                run.begin_solve(n);
            }
            let mut total_cycles = 0usize;
            let mut cycles_since_switch = 0usize;
            'outer: while cycles_since_switch < max_cycles && total_cycles < hard_cap {
                let cycle = total_cycles;
                let can_escalate = self
                    .adaptive
                    .as_ref()
                    .is_some_and(AdaptiveRun::can_escalate);
                if can_escalate {
                    // Snapshot x so a cycle that breaks down in the narrow
                    // chain can be rolled back and retried one rung wider.
                    let run = self.adaptive.as_mut().expect("adaptive run present");
                    run.x_backup.copy_from_slice(x);
                }
                let spec = &self.prepared.spec;
                let work = self.work.as_mut().expect("workspaces allocated by ensure_work");
                let mut hook = OuterHook {
                    user: observer.as_deref_mut().map(|obs| ProgressAdapter {
                        observer: obs,
                        bnorm,
                        cycle,
                        outer_before: outer_iterations,
                    }),
                    detector: self.adaptive.as_mut().map(|run| &mut run.detector),
                    bnorm,
                    can_escalate,
                    switch_wanted: false,
                    user_stopped: false,
                };
                let have_hook = hook.user.is_some() || hook.detector.is_some();
                let outcome = work.outer.run_cycle(
                    CycleParams {
                        matrix: &self.prepared.matrix,
                        mat_storage: spec.levels[0].matrix_storage(),
                        inner: work.inner.as_mut(),
                        abs_tol: Some(abs_tol),
                        x_nonzero: warm || total_cycles > 0,
                        depth: 1,
                        counters: &self.counters,
                        progress: have_hook.then_some(&mut hook as &mut dyn CycleProgress),
                    },
                    x,
                    b,
                );
                let switch_wanted = hook.switch_wanted;
                let observer_stopped = hook.user_stopped;
                outer_iterations += outcome.iterations;
                let true_rel =
                    self.prepared
                        .matrix
                        .true_relative_residual_with(x, b, &mut work.residual);
                if !true_rel.is_finite() {
                    if can_escalate {
                        // Rescue: the narrow chain poisoned x — roll it back
                        // to the cycle start and retry one rung wider (the
                        // non-finite residual is not recorded; the rolled
                        // back x is still the last valid iterate).
                        let run = self.adaptive.as_mut().expect("adaptive run present");
                        x.copy_from_slice(&run.x_backup);
                        let new_rung = run.rung + 1;
                        run.escalations += 1;
                        if run.probation {
                            run.floor = new_rung;
                            run.probation = false;
                        }
                        let work = self.work.as_mut().expect("workspaces exist");
                        let ctx = SwitchContext {
                            prepared: &self.prepared,
                            counters: &self.counters,
                            cycle,
                            outer_iterations,
                            true_relative_residual: true_rel,
                        };
                        switch_rung(run, work, new_rung, &ctx, observer.as_deref_mut());
                        cycles_since_switch = 0;
                        total_cycles += 1;
                        continue 'outer;
                    }
                    history.push(true_rel);
                    stop_reason = StopReason::Breakdown;
                    break 'outer;
                }
                history.push(true_rel);
                if true_rel < tol {
                    converged = true;
                    stop_reason = StopReason::Converged;
                    break 'outer;
                }
                if observer_stopped {
                    stop_reason = StopReason::Stopped;
                    break 'outer;
                }
                if let Some(obs) = observer.as_deref_mut() {
                    let event = CycleEvent {
                        cycle,
                        outer_iterations,
                        true_relative_residual: true_rel,
                    };
                    if obs.on_cycle_complete(&event) == SolveControl::Stop {
                        stop_reason = StopReason::Stopped;
                        break 'outer;
                    }
                }
                let sterile = outcome.breakdown && outcome.iterations == 0;
                if sterile && !can_escalate {
                    stop_reason = StopReason::Breakdown;
                    break 'outer;
                }
                if let Some(run) = self.adaptive.as_mut() {
                    // Cycle-boundary stall check: a full cycle that failed to
                    // shrink the true residual by the policy's reduction
                    // factor counts as stalled even if the per-iteration
                    // detector stayed quiet.
                    let boundary_stall = run
                        .last_cycle_rel
                        .is_some_and(|prev| prev / true_rel < run.policy.cycle_reduction);
                    run.last_cycle_rel = Some(true_rel);
                    if can_escalate && (switch_wanted || boundary_stall || sterile) {
                        let new_rung = run.rung + 1;
                        run.escalations += 1;
                        if run.probation {
                            run.floor = new_rung;
                            run.probation = false;
                        }
                        let work = self.work.as_mut().expect("workspaces exist");
                        let ctx = SwitchContext {
                            prepared: &self.prepared,
                            counters: &self.counters,
                            cycle,
                            outer_iterations,
                            true_relative_residual: true_rel,
                        };
                        switch_rung(run, work, new_rung, &ctx, observer.as_deref_mut());
                        cycles_since_switch = 0;
                        total_cycles += 1;
                        continue 'outer;
                    }
                    if !switch_wanted && !boundary_stall {
                        run.healthy_cycles += 1;
                        if let Some(after) = run.policy.deescalate_after {
                            if run.healthy_cycles >= after {
                                if run.probation {
                                    // The narrow rung survived its probation:
                                    // it is the session's rung for good.
                                    run.probation = false;
                                    run.healthy_cycles = 0;
                                } else if run.rung > run.floor {
                                    let new_rung = run.rung - 1;
                                    let work = self.work.as_mut().expect("workspaces exist");
                                    let ctx = SwitchContext {
                                        prepared: &self.prepared,
                                        counters: &self.counters,
                                        cycle,
                                        outer_iterations,
                                        true_relative_residual: true_rel,
                                    };
                                    switch_rung(run, work, new_rung, &ctx, observer.as_deref_mut());
                                    run.probation = true;
                                    cycles_since_switch = 0;
                                    total_cycles += 1;
                                    continue 'outer;
                                }
                            }
                        }
                    }
                }
                total_cycles += 1;
                cycles_since_switch += 1;
            }
        }

        // `x` has not changed since the last in-loop residual evaluation, so
        // reuse it instead of paying another fp64 SpMV (the zero-rhs path has
        // no history and is exact by construction).
        let final_rel = history.last().copied().unwrap_or(0.0);
        SolveResult {
            converged,
            stop_reason,
            outer_iterations,
            precond_applications: self.counters.snapshot().precond_applies,
            final_relative_residual: final_rel,
            seconds: start.elapsed().as_secs_f64(),
            residual_history: history,
            counters: self.counters.snapshot(),
            solver_name: self.prepared.spec.name.clone(),
            fingerprint: Some(self.prepared.fingerprint),
        }
    }
}

impl SparseSolver for SolveSession {
    fn solve(&mut self, b: &[f64], x: &mut [f64]) -> SolveResult {
        SolveSession::solve(self, b, x)
    }

    fn name(&self) -> String {
        self.prepared.spec.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::hpcg::hpcg_matrix;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::gen::rhs::random_rhs;
    use f3r_sparse::scaling::jacobi_scale;

    fn small_prepared() -> Arc<PreparedSolver> {
        let a = jacobi_scale(&poisson2d_5pt(16, 16));
        SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .levels(vec![
                LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(5, Precision::Fp64, Precision::Fp64),
            ])
            .build()
    }

    #[test]
    fn prepared_solver_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedSolver>();
        fn assert_send<T: Send>() {}
        assert_send::<SolveSession>();
    }

    #[test]
    fn builder_scheme_path_matches_f3r_spec() {
        let a = jacobi_scale(&hpcg_matrix(4, 4, 4));
        let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .scheme(F3rScheme::Fp16)
            .build();
        let reference = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &SolverSettings::default());
        assert_eq!(prepared.spec().name, reference.name);
        assert_eq!(prepared.spec().levels, reference.levels);
        assert_eq!(prepared.spec().precond_prec, reference.precond_prec);
        assert_eq!(prepared.precond().storage_precision(), Precision::Fp16);
    }

    #[test]
    fn builder_overrides_win_over_spec() {
        let a = jacobi_scale(&poisson2d_5pt(8, 8));
        let spec = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &SolverSettings::default());
        let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .spec(spec)
            .precond(PrecondKind::Jacobi)
            .precond_precision(Precision::Fp64)
            .tol(1e-6)
            .max_outer_cycles(7)
            .name("renamed")
            .build();
        let s = prepared.spec();
        assert_eq!(s.precond, PrecondKind::Jacobi);
        assert_eq!(s.precond_prec, Precision::Fp64);
        assert_eq!(s.tol, 1e-6);
        assert_eq!(s.max_outer_cycles, 7);
        assert_eq!(s.name, "renamed");
    }

    #[test]
    fn builder_params_with_spec_is_rejected_not_ignored() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let spec = f3r_spec(F3rParams::default(), F3rScheme::Fp16, &SolverSettings::default());
        let err = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .spec(spec)
            .params(F3rParams::with_inner(9, 4, 2))
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("params() only applies"));
    }

    #[test]
    fn builder_params_drive_the_scheme_path() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .scheme(F3rScheme::Fp16)
            .params(F3rParams::with_inner(9, 4, 2))
            .build();
        assert_eq!(prepared.spec().tuple_notation(), "(F100, F9, F4, R2, M)");
    }

    #[test]
    fn builder_without_levels_errors() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let err = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("level structure"));
    }

    #[test]
    fn builder_basis_storage_compresses_inner_levels() {
        let a = jacobi_scale(&poisson2d_5pt(8, 8));
        let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .levels(vec![
                LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(5, Precision::Fp32, Precision::Fp32),
            ])
            .basis_storage(Precision::Fp16)
            .build();
        assert_eq!(prepared.spec().levels[0].basis_precision(), Some(Precision::Fp64));
        assert_eq!(prepared.spec().levels[1].basis_precision(), Some(Precision::Fp16));
    }

    #[test]
    fn builder_matrix_storage_rewrites_inner_levels() {
        let a = jacobi_scale(&poisson2d_5pt(8, 8));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let prepared = SolverBuilder::new(Arc::clone(&pm))
            .levels(vec![
                LevelSpec::fgmres(10, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(5, Precision::Fp32, Precision::Fp32),
            ])
            .matrix_storage(MatrixStorage::Scaled(Precision::Fp16))
            .build();
        assert_eq!(
            prepared.spec().levels[0].matrix_storage(),
            MatrixStorage::Plain(Precision::Fp64)
        );
        assert_eq!(
            prepared.spec().levels[1].matrix_storage(),
            MatrixStorage::Scaled(Precision::Fp16)
        );
        // Setup already materialized the variants the chain streams.
        use crate::operator::MatrixFormat;
        assert!(pm.is_materialized(MatrixStorage::Scaled(Precision::Fp16), MatrixFormat::Csr));
        let n = prepared.dim();
        let b = random_rhs(n, 11);
        let mut x = vec![0.0; n];
        let r = prepared.session().solve(&b, &mut x);
        assert!(r.converged, "{r}");
        // The scaled fp16 stream shows up in the matrix-traffic attribution.
        assert!(r.counters.matrix_bytes_in(Precision::Fp16) > 0);
    }

    #[test]
    fn auto_spec_picks_plain_fp16_on_a_benign_matrix_and_solves() {
        let a = jacobi_scale(&poisson2d_5pt(16, 16));
        let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .auto_spec()
            .precond(PrecondKind::Jacobi)
            .build();
        // Every entry of the diagonally scaled Laplacian fits plain fp16, so
        // the cheapest admissible candidate is the unscaled fp16 scheme.
        assert_eq!(prepared.name(), "auto:fp16-F3R");
        let n = prepared.dim();
        let b = random_rhs(n, 21);
        let mut x = vec![0.0; n];
        let r = prepared.session().solve(&b, &mut x);
        assert!(r.converged, "{r}");
    }

    #[test]
    fn auto_spec_rejects_params_like_other_non_scheme_paths() {
        let a = jacobi_scale(&poisson2d_5pt(4, 4));
        let err = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .auto_spec()
            .params(F3rParams::with_inner(9, 4, 2))
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("params() only applies"));
    }

    #[test]
    fn adaptive_session_is_bitwise_fixed_spec_on_a_benign_matrix() {
        let a = jacobi_scale(&poisson2d_5pt(16, 16));
        let pm = Arc::new(ProblemMatrix::from_csr(a));
        let levels = vec![
            LevelSpec::fgmres(30, Precision::Fp64, Precision::Fp64),
            LevelSpec::fgmres_stored(5, MatrixStorage::Scaled(Precision::Fp16), Precision::Fp64),
        ];
        let fixed = SolverBuilder::new(Arc::clone(&pm))
            .levels(levels.clone())
            .precond(PrecondKind::Jacobi)
            .build();
        let adaptive = SolverBuilder::new(pm)
            .levels(levels)
            .precond(PrecondKind::Jacobi)
            .adaptive_default()
            .build();
        assert!(adaptive.adaptive_policy().is_some());
        let n = fixed.dim();
        let b = random_rhs(n, 77);
        let mut xf = vec![0.0; n];
        let mut xa = vec![0.0; n];
        let rf = fixed.session().solve(&b, &mut xf);
        let mut session = adaptive.session();
        assert_eq!(session.adaptive_rung(), Some(0));
        let ra = session.solve(&b, &mut xa);
        assert!(rf.converged && ra.converged);
        // No stall on a benign matrix: no switches, and the adaptive solve
        // runs the exact chain of the fixed spec — bitwise identical.
        assert_eq!(ra.counters.total_escalations(), 0);
        assert_eq!(ra.counters.total_deescalations(), 0);
        assert_eq!(ra.counters.switch_bytes, 0);
        assert_eq!(session.adaptive_rung(), Some(0));
        assert_eq!(ra.outer_iterations, rf.outer_iterations);
        assert_eq!(xa, xf);
    }

    #[test]
    fn session_solves_and_reuses_workspaces() {
        let prepared = small_prepared();
        let mut session = prepared.session();
        assert_eq!(session.workspace_generation(), 0);
        let n = prepared.dim();
        let b = random_rhs(n, 42);
        let mut x = vec![0.0; n];
        let r1 = session.solve(&b, &mut x);
        assert!(r1.converged, "{r1}");
        assert_eq!(session.workspace_generation(), 1);
        let r2 = session.solve(&b, &mut x);
        assert!(r2.converged);
        assert_eq!(session.workspace_generation(), 1);
    }

    #[test]
    fn warm_start_from_the_solution_converges_immediately() {
        let prepared = small_prepared();
        let mut session = prepared.session();
        let n = prepared.dim();
        let b = random_rhs(n, 9);
        let mut x = vec![0.0; n];
        assert!(session.solve(&b, &mut x).converged);
        // Re-solving warm-started from the converged solution takes at most
        // one cheap cycle; the iteration count must collapse.
        let cold_iters = session.solve(&b, &mut vec![0.0; n]).outer_iterations;
        let x0 = x.clone();
        let warm = session.solve_with(&b, &mut x, &SolveOptions::new().x0(&x0));
        assert!(warm.converged);
        assert!(
            warm.outer_iterations < cold_iters,
            "warm {} !< cold {}",
            warm.outer_iterations,
            cold_iters
        );
    }

    #[test]
    fn per_solve_tol_override_changes_stopping_point() {
        let prepared = small_prepared();
        let mut session = prepared.session();
        let n = prepared.dim();
        let b = random_rhs(n, 3);
        let mut x = vec![0.0; n];
        let loose = session.solve_with(&b, &mut x, &SolveOptions::new().tol(1e-2));
        assert!(loose.converged);
        let tight = session.solve(&b, &mut x);
        assert!(tight.converged);
        assert!(loose.outer_iterations < tight.outer_iterations);
        assert!(loose.final_relative_residual > tight.final_relative_residual);
    }

    #[test]
    fn observer_sees_every_outer_iteration_and_can_stop() {
        struct Recorder {
            events: Vec<OuterEvent>,
            stop_after: usize,
        }
        impl SolveObserver for Recorder {
            fn on_outer_iteration(&mut self, event: &OuterEvent) -> SolveControl {
                self.events.push(*event);
                if self.events.len() >= self.stop_after {
                    SolveControl::Stop
                } else {
                    SolveControl::Continue
                }
            }
        }
        let prepared = small_prepared();
        let mut session = prepared.session();
        let n = prepared.dim();
        let b = random_rhs(n, 5);
        let mut x = vec![0.0; n];

        // Unbounded observer: sees exactly the executed iterations, with
        // monotone global numbering and shrinking residual estimates.
        let mut all = Recorder { events: Vec::new(), stop_after: usize::MAX };
        let full = session.solve_observed(&b, &mut x, &SolveOptions::new(), &mut all);
        assert!(full.converged);
        assert_eq!(all.events.len(), full.outer_iterations);
        for (i, ev) in all.events.iter().enumerate() {
            assert_eq!(ev.outer_iteration, i + 1);
        }
        assert!(all.events.last().unwrap().relative_residual_estimate < 1e-8);

        // Early stop: exactly 3 events, reported as Stopped.
        let mut early = Recorder { events: Vec::new(), stop_after: 3 };
        let stopped = session.solve_observed(&b, &mut x, &SolveOptions::new(), &mut early);
        assert_eq!(early.events.len(), 3);
        assert!(!stopped.converged);
        assert_eq!(stopped.stop_reason, StopReason::Stopped);
        assert_eq!(stopped.outer_iterations, 3);
    }

    #[test]
    fn observer_cycle_events_report_true_residuals() {
        struct CycleRecorder(Vec<CycleEvent>);
        impl SolveObserver for CycleRecorder {
            fn on_cycle_complete(&mut self, event: &CycleEvent) -> SolveControl {
                self.0.push(*event);
                SolveControl::Continue
            }
        }
        let a = jacobi_scale(&poisson2d_5pt(24, 24));
        let prepared = SolverBuilder::new(Arc::new(ProblemMatrix::from_csr(a)))
            .levels(vec![
                LevelSpec::fgmres(5, Precision::Fp64, Precision::Fp64),
                LevelSpec::fgmres(3, Precision::Fp64, Precision::Fp64),
            ])
            .precond(PrecondKind::Jacobi)
            .max_outer_cycles(4)
            .build();
        let mut session = prepared.session();
        let n = prepared.dim();
        let b = random_rhs(n, 7);
        let mut x = vec![0.0; n];
        let mut rec = CycleRecorder(Vec::new());
        let r = session.solve_observed(&b, &mut x, &SolveOptions::new(), &mut rec);
        // A converging final cycle breaks before on_cycle_complete, so the
        // recorder sees every cycle except (if it converged) the last one.
        assert!(!rec.0.is_empty());
        assert_eq!(
            rec.0.len(),
            r.residual_history.len() - usize::from(r.converged)
        );
        for pair in rec.0.windows(2) {
            assert!(pair[1].true_relative_residual < pair[0].true_relative_residual);
        }
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let prepared = small_prepared();
        let n = prepared.dim();
        let bs: Vec<Vec<f64>> = (0..3).map(|s| random_rhs(n, 100 + s)).collect();
        let mut xs = vec![Vec::new(); 3];
        let mut session = prepared.session();
        let results = session.solve_many(&bs, &mut xs);
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            assert!(r.converged, "rhs {i}: {r}");
            let mut x_ref = vec![0.0; n];
            let mut fresh = prepared.session();
            fresh.solve(&bs[i], &mut x_ref);
            // A session reuses Richardson weight state across solves, so
            // compare against the residual level rather than bitwise here
            // (bitwise determinism is covered by the integration tests).
            assert!(prepared.matrix().true_relative_residual(&xs[i], &bs[i]) < 1e-8);
            assert!(prepared.matrix().true_relative_residual(&x_ref, &bs[i]) < 1e-8);
        }
        assert_eq!(session.workspace_generation(), 1);
    }

    #[test]
    fn solve_batch_columns_are_bitwise_equal_to_sequential_solves() {
        // FGMRES-only chain: every batched column computes the exact
        // floating-point sequence of its sequential solve, so solutions,
        // iteration counts and residual histories must match bitwise.
        let prepared = small_prepared();
        let n = prepared.dim();
        let k = 4;
        let bs: Vec<Vec<f64>> = (0..k).map(|s| random_rhs(n, 200 + s as u64)).collect();
        let mut xs = vec![Vec::new(); k];
        let mut session = prepared.session();
        let results = session.solve_batch(&bs, &mut xs);
        assert_eq!(results.len(), k);
        assert_eq!(session.workspace_generation(), 1);
        for c in 0..k {
            let mut x_ref = vec![0.0; n];
            let r_ref = prepared.session().solve(&bs[c], &mut x_ref);
            assert!(results[c].converged, "rhs {c}: {}", results[c]);
            assert_eq!(results[c].converged, r_ref.converged);
            assert_eq!(results[c].stop_reason, r_ref.stop_reason);
            assert_eq!(results[c].outer_iterations, r_ref.outer_iterations, "rhs {c}");
            assert_eq!(results[c].residual_history, r_ref.residual_history, "rhs {c}");
            assert_eq!(xs[c], x_ref, "rhs {c}: batched column diverged bitwise");
        }
        // One batched matrix pass per outer iteration, each serving every
        // still-running column.
        let cnt = &results[0].counters;
        assert!(cnt.total_spmm() > 0);
        assert!(cnt.spmm_columns_total() >= cnt.total_spmm() * 2);
    }

    #[test]
    fn solve_batch_deflates_trivial_and_easy_columns() {
        let prepared = small_prepared();
        let n = prepared.dim();
        // Column 1 is the all-zero RHS: converged before the first cycle,
        // with an empty history, while its neighbours still iterate.
        let bs = vec![random_rhs(n, 31), vec![0.0; n], random_rhs(n, 32)];
        let mut xs = vec![Vec::new(); 3];
        let results = prepared.session().solve_batch(&bs, &mut xs);
        assert!(results.iter().all(|r| r.converged));
        assert_eq!(results[1].outer_iterations, 0);
        assert!(results[1].residual_history.is_empty());
        assert!(xs[1].iter().all(|&v| v == 0.0));
        for c in [0usize, 2] {
            assert!(results[c].outer_iterations > 0);
            assert!(prepared.matrix().true_relative_residual(&xs[c], &bs[c]) < 1e-8);
        }
    }

    #[test]
    fn solve_many_delegates_to_the_batched_path() {
        let prepared = small_prepared();
        let n = prepared.dim();
        let bs: Vec<Vec<f64>> = (0..2).map(|s| random_rhs(n, 300 + s)).collect();
        let mut xs = vec![Vec::new(); 2];
        let results = prepared.session().solve_many(&bs, &mut xs);
        // Batched matrix passes only exist on the solve_batch path.
        assert!(results[0].counters.total_spmm() > 0);
        let mut xb = vec![Vec::new(); 2];
        let batched = prepared.session().solve_batch(&bs, &mut xb);
        assert_eq!(xs, xb);
        assert_eq!(results[0].outer_iterations, batched[0].outer_iterations);
    }

    #[test]
    #[should_panic(expected = "solve_batch: need one solution vector per right-hand side")]
    fn solve_batch_mismatched_lengths_panic() {
        let prepared = small_prepared();
        let bs = vec![vec![0.0; prepared.dim()]; 2];
        let mut xs = vec![Vec::new(); 3];
        let _ = prepared.session().solve_batch(&bs, &mut xs);
    }

    #[test]
    #[should_panic(expected = "solve_batch: b length mismatch")]
    fn solve_batch_short_rhs_panics() {
        let prepared = small_prepared();
        let bs = vec![vec![0.0; prepared.dim()], vec![0.0; 3]];
        let mut xs = vec![Vec::new(); 2];
        let _ = prepared.session().solve_batch(&bs, &mut xs);
    }

    #[test]
    #[should_panic(expected = "tolerance override must be positive")]
    fn nan_tol_override_is_rejected() {
        let prepared = small_prepared();
        let mut session = prepared.session();
        let n = prepared.dim();
        let b = random_rhs(n, 1);
        let mut x = vec![0.0; n];
        let _ = session.solve_with(&b, &mut x, &SolveOptions::new().tol(f64::NAN));
    }

    #[test]
    #[should_panic(expected = "need at least one outer cycle")]
    fn zero_cycle_override_is_rejected() {
        let prepared = small_prepared();
        let mut session = prepared.session();
        let n = prepared.dim();
        let b = random_rhs(n, 1);
        let mut x = vec![0.0; n];
        let _ = session.solve_with(&b, &mut x, &SolveOptions::new().max_outer_cycles(0));
    }

    #[test]
    fn zero_rhs_is_trivially_converged_even_with_warm_start() {
        let prepared = small_prepared();
        let mut session = prepared.session();
        let n = prepared.dim();
        let b = vec![0.0; n];
        let x0 = vec![1.0; n];
        let mut x = vec![2.0; n];
        let r = session.solve_with(&b, &mut x, &SolveOptions::new().x0(&x0));
        assert!(r.converged);
        assert_eq!(r.outer_iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
