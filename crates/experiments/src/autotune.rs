//! Autotuner validation: `auto_spec` against the brute-force candidate sweep.
//!
//! The cost-model autotuner ([`f3r_core::adaptive::auto_spec`]) picks an
//! initial spec from one pass of entry statistics.  This experiment checks
//! the pick against ground truth: solve *every* candidate, find the converged
//! one that measured the fewest matrix-stream bytes (the brute-force best),
//! and assert the autotuner's pick models within [`ACCEPT_FACTOR`] of it.

use std::sync::Arc;

use f3r_core::adaptive::{auto_spec, candidate_specs, AutoTuneConfig};
use f3r_core::prelude::*;
use f3r_sparse::gen::hpcg::hpcg_matrix;
use f3r_sparse::gen::laplacian::poisson2d_5pt;
use f3r_sparse::gen::rhs::random_rhs;
use f3r_sparse::io::EntryRangeStats;
use f3r_sparse::scaling::jacobi_scale;
use f3r_sparse::CsrMatrix;

use crate::report::Table;
use crate::suite::SuiteScale;

/// Documented acceptance factor: the autotuner's pick must model within this
/// factor of the brute-force-best converged candidate.  The model ranks by
/// *traffic per outermost iteration* and deliberately ignores iteration
/// counts, so a 2× slack absorbs precision-dependent convergence differences
/// on well-conditioned problems without letting a category error (e.g. fp64
/// picked where fp16 wins) slip through.
pub const ACCEPT_FACTOR: f64 = 2.0;

/// Measured outcome of one autotuner candidate on one problem.
#[derive(Debug, Clone)]
pub struct CandidateOutcome {
    /// Spec name (`fp64-F3R`, `fp32-F3R`, `fp16-F3R`, `fp16-F3R-scaled`).
    pub name: String,
    /// Modeled traffic per outermost iteration (words per row).
    pub modeled_traffic: f64,
    /// Whether the entry statistics admit the candidate.
    pub admissible: bool,
    /// Whether the solve converged to the spec tolerance.
    pub converged: bool,
    /// Outer iterations of the solve.
    pub outer_iterations: usize,
    /// Measured matrix-stream bytes of the whole solve.
    pub measured_matrix_bytes: u64,
    /// Whether this is the candidate `auto_spec` picked.
    pub chosen: bool,
}

/// The sweep result for one problem.
#[derive(Debug, Clone)]
pub struct AutotuneReport {
    /// Problem label.
    pub problem: String,
    /// Name of the spec `auto_spec` picked (without the `auto:` prefix).
    pub auto_pick: String,
    /// Per-candidate measurements, in [`candidate_specs`] order.
    pub outcomes: Vec<CandidateOutcome>,
}

impl AutotuneReport {
    /// The converged candidate with the fewest measured matrix bytes.
    #[must_use]
    pub fn brute_force_best(&self) -> Option<&CandidateOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.converged)
            .min_by_key(|o| o.measured_matrix_bytes)
    }

    /// The outcome row of the autotuner's pick.
    #[must_use]
    pub fn auto_outcome(&self) -> &CandidateOutcome {
        self.outcomes
            .iter()
            .find(|o| o.chosen)
            .expect("auto_spec always picks one of the candidates")
    }

    /// Whether the pick's modeled traffic is within [`ACCEPT_FACTOR`] of the
    /// brute-force best's (vacuously true when nothing converged).
    #[must_use]
    pub fn auto_within_factor(&self) -> bool {
        self.brute_force_best().is_none_or(|best| {
            self.auto_outcome().modeled_traffic <= ACCEPT_FACTOR * best.modeled_traffic
        })
    }
}

/// Sweep every autotuner candidate on one matrix and record the measured
/// ground truth next to the model's pick.
#[must_use]
pub fn run_problem(label: &str, a: CsrMatrix<f64>) -> AutotuneReport {
    let config = AutoTuneConfig::default();
    let stats = EntryRangeStats::compute(&a);
    let nnz_per_row = a.nnz() as f64 / a.n_rows().max(1) as f64;
    let candidates = candidate_specs(&stats, nnz_per_row, &config);
    let auto = auto_spec(&stats, nnz_per_row, &config);
    let auto_pick = auto.name.trim_start_matches("auto:").to_string();

    let matrix = Arc::new(ProblemMatrix::from_csr(a));
    let n = matrix.dim();
    let b = random_rhs(n, 9);

    let outcomes = candidates
        .into_iter()
        .map(|c| {
            let prepared = SolverBuilder::new(Arc::clone(&matrix))
                .spec(c.spec.clone())
                .build();
            let mut x = vec![0.0; n];
            let r = prepared.session().solve(&b, &mut x);
            CandidateOutcome {
                name: c.spec.name,
                modeled_traffic: c.modeled_traffic,
                admissible: c.admissible,
                converged: r.converged,
                outer_iterations: r.outer_iterations,
                measured_matrix_bytes: r.counters.matrix_bytes_total(),
                chosen: false,
            }
        })
        .collect::<Vec<_>>();
    let mut report = AutotuneReport {
        problem: label.to_string(),
        auto_pick,
        outcomes,
    };
    for o in &mut report.outcomes {
        o.chosen = o.name == report.auto_pick;
    }
    report
}

/// Run the validation sweep: the Figure 1 diagonally scaled Laplacian and the
/// HPCG problem (16³ at the default `small` scale).
#[must_use]
pub fn run(scale: SuiteScale) -> Vec<AutotuneReport> {
    let (nx, h) = match scale {
        SuiteScale::Tiny => (16, 8),
        SuiteScale::Small => (32, 16),
        SuiteScale::Medium => (64, 24),
    };
    vec![
        run_problem(
            &format!("laplacian-{nx}x{nx}"),
            jacobi_scale(&poisson2d_5pt(nx, nx)),
        ),
        run_problem(
            &format!("hpcg-{h}^3"),
            jacobi_scale(&hpcg_matrix(h, h, h)),
        ),
    ]
}

/// Render the sweep as a table.
#[must_use]
pub fn table(reports: &[AutotuneReport]) -> Table {
    let mut t = Table::new(
        "Autotuner validation — auto_spec vs brute-force candidate sweep",
        &[
            "problem", "candidate", "modeled w/row", "admissible", "converged", "outer it",
            "matrix MiB", "auto pick", "brute best",
        ],
    );
    for report in reports {
        let best = report.brute_force_best().map(|o| o.name.clone());
        for o in &report.outcomes {
            t.push_row(vec![
                report.problem.clone(),
                o.name.clone(),
                format!("{:.1}", o.modeled_traffic),
                o.admissible.to_string(),
                o.converged.to_string(),
                o.outer_iterations.to_string(),
                format!("{:.2}", o.measured_matrix_bytes as f64 / (1024.0 * 1024.0)),
                if o.chosen { "<<" } else { "" }.to_string(),
                if best.as_deref() == Some(o.name.as_str()) {
                    "**"
                } else {
                    ""
                }
                .to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_pick_models_within_factor_of_brute_force_best() {
        for report in run(SuiteScale::Tiny) {
            let best = report
                .brute_force_best()
                .unwrap_or_else(|| panic!("{}: no candidate converged", report.problem));
            assert!(
                report.auto_within_factor(),
                "{}: auto pick {} models {:.1} w/row, brute-force best {} models {:.1} \
                 (factor {ACCEPT_FACTOR})",
                report.problem,
                report.auto_pick,
                report.auto_outcome().modeled_traffic,
                best.name,
                best.modeled_traffic,
            );
            // On these benign matrices every candidate is admissible and the
            // fp16 pick must itself converge.
            assert!(report.auto_outcome().converged, "{}", report.problem);
            assert!(report.outcomes.iter().all(|o| o.admissible));
        }
    }
}
