//! Validate the cost-model spec autotuner against a brute-force sweep.

use f3r_experiments::autotune;
use f3r_experiments::output_dir;
use f3r_experiments::SuiteScale;

fn main() {
    let reports = autotune::run(SuiteScale::from_env());
    let table = autotune::table(&reports);
    println!("{}", table.to_text());
    for report in &reports {
        let ok = report.auto_within_factor();
        println!(
            "{}: auto pick {} — within {}x of brute-force best: {}",
            report.problem,
            report.auto_pick,
            autotune::ACCEPT_FACTOR,
            if ok { "yes" } else { "NO" },
        );
        assert!(ok, "autotuner pick outside the acceptance factor");
    }
    let path = table
        .write_to(&output_dir(), "autotune_validation")
        .expect("write report");
    eprintln!("wrote {}", path.display());
}
