//! Regenerate the Section 4.1 memory-access model study (Eqs. 1-3).

use f3r_experiments::cost_model_exp;
use f3r_experiments::output_dir;

fn main() {
    let summary = cost_model_exp::summary_table();
    let split = cost_model_exp::split_table(64);
    let solvers = cost_model_exp::solver_traffic_table(27.0);
    println!("{}", summary.to_text());
    println!("{}", solvers.to_text());
    println!("{}", split.to_text());
    summary.write_to(&output_dir(), "cost_model_summary").expect("write report");
    solvers.write_to(&output_dir(), "cost_model_solver_traffic").expect("write report");
    let path = split.write_to(&output_dir(), "cost_model_split").expect("write report");
    eprintln!("wrote {}", path.display());
}
