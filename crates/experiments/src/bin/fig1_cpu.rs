//! Regenerate Figure 1: relative performance on the CPU-node configuration.

use f3r_experiments::{fig1, output_dir, SuiteScale};

fn main() {
    let scale = SuiteScale::from_env();
    let (sym, nonsym) = fig1::run(scale, None);
    let (ta, tb) = fig1::tables(&sym, &nonsym);
    println!("{}", ta.to_text());
    println!("{}", tb.to_text());
    ta.write_to(&output_dir(), "fig1a_cpu_symmetric").expect("write report");
    let path = tb.write_to(&output_dir(), "fig1b_cpu_nonsymmetric").expect("write report");
    eprintln!("wrote reports next to {}", path.display());
}
