//! Regenerate Figure 2: relative performance on the GPU-node configuration
//! (SD-AINV + sliced ELLPACK).

use f3r_experiments::{fig2, output_dir, SuiteScale};

fn main() {
    let scale = SuiteScale::from_env();
    let (sym, nonsym) = fig2::run(scale, None);
    let (ta, tb) = fig2::tables(&sym, &nonsym);
    println!("{}", ta.to_text());
    println!("{}", tb.to_text());
    ta.write_to(&output_dir(), "fig2a_gpu_symmetric").expect("write report");
    let path = tb.write_to(&output_dir(), "fig2b_gpu_nonsymmetric").expect("write report");
    eprintln!("wrote reports next to {}", path.display());
}
