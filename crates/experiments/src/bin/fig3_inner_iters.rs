//! Regenerate Figure 3: the effect of the inner iteration counts m2, m3, m4.

use f3r_experiments::{fig3, output_dir, NodeConfig, RunBudget, SuiteScale};

fn main() {
    let scale = SuiteScale::from_env();
    let points = fig3::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let raw = fig3::points_table(&points);
    let summary = fig3::summary_table(&points);
    println!("{}", summary.to_text());
    println!("{}", raw.to_text());
    raw.write_to(&output_dir(), "fig3_inner_iterations_points").expect("write report");
    let path = summary.write_to(&output_dir(), "fig3_inner_iterations_summary").expect("write report");
    eprintln!("wrote {}", path.display());
}
