//! Regenerate Figure 4: the nesting-depth study (F2, fp16-F2, F3, fp16-F3, F4).

use f3r_experiments::{fig4, output_dir, NodeConfig, RunBudget, SuiteScale};

fn main() {
    let scale = SuiteScale::from_env();
    let points = fig4::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let table = fig4::to_table(&points);
    println!("{}", table.to_text());
    let path = table.write_to(&output_dir(), "fig4_nesting_depth").expect("write report");
    eprintln!("wrote {}", path.display());
}
