//! Regenerate Figure 5: the adaptive weight-update cycle sweep.

use f3r_experiments::{fig5, output_dir, NodeConfig, RunBudget, SuiteScale};

fn main() {
    let scale = SuiteScale::from_env();
    let points = fig5::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let table = fig5::to_table(&points);
    println!("{}", table.to_text());
    let path = table.write_to(&output_dir(), "fig5_weight_cycle").expect("write report");
    eprintln!("wrote {}", path.display());
}
