//! Regenerate Figure 6: adaptive weight updating vs fixed weights.

use f3r_experiments::{fig6, output_dir, NodeConfig, RunBudget, SuiteScale};

fn main() {
    let scale = SuiteScale::from_env();
    let points = fig6::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let table = fig6::to_table(&points);
    println!("{}", table.to_text());
    let path = table.write_to(&output_dir(), "fig6_adaptive_weight").expect("write report");
    eprintln!("wrote {}", path.display());
}
