//! Run every experiment of the reproduction in sequence (Table 2, Figures
//! 1-6, Table 3, and the Section 4.1 cost-model study), writing all reports
//! under `target/experiments/`.

use f3r_experiments::*;

fn main() {
    let scale = SuiteScale::from_env();
    let dir = output_dir();
    eprintln!("running all experiments at {scale:?} scale; reports -> {}", dir.display());

    let t2 = table2::run(scale);
    println!("{}", t2.to_text());
    t2.write_to(&dir, "table2_suite").expect("write");

    let cm = cost_model_exp::summary_table();
    println!("{}", cm.to_text());
    cm.write_to(&dir, "cost_model_summary").expect("write");
    cost_model_exp::split_table(64).write_to(&dir, "cost_model_split").expect("write");
    cost_model_exp::solver_traffic_table(27.0).write_to(&dir, "cost_model_solver_traffic").expect("write");

    let (sym, nonsym) = fig1::run(scale, None);
    let (f1a, f1b) = fig1::tables(&sym, &nonsym);
    println!("{}", f1a.to_text());
    println!("{}", f1b.to_text());
    f1a.write_to(&dir, "fig1a_cpu_symmetric").expect("write");
    f1b.write_to(&dir, "fig1b_cpu_nonsymmetric").expect("write");

    let (gsym, gnonsym) = fig2::run(scale, None);
    let (f2a, f2b) = fig2::tables(&gsym, &gnonsym);
    println!("{}", f2a.to_text());
    println!("{}", f2b.to_text());
    f2a.write_to(&dir, "fig2a_gpu_symmetric").expect("write");
    f2b.write_to(&dir, "fig2b_gpu_nonsymmetric").expect("write");

    let rows = table3::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let t3 = table3::to_table(&rows);
    println!("{}", t3.to_text());
    t3.write_to(&dir, "table3_precond_counts").expect("write");

    let p3 = fig3::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    fig3::points_table(&p3).write_to(&dir, "fig3_inner_iterations_points").expect("write");
    let s3 = fig3::summary_table(&p3);
    println!("{}", s3.to_text());
    s3.write_to(&dir, "fig3_inner_iterations_summary").expect("write");

    let p4 = fig4::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let t4 = fig4::to_table(&p4);
    println!("{}", t4.to_text());
    t4.write_to(&dir, "fig4_nesting_depth").expect("write");

    let p5 = fig5::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let t5 = fig5::to_table(&p5);
    println!("{}", t5.to_text());
    t5.write_to(&dir, "fig5_weight_cycle").expect("write");

    let p6 = fig6::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let t6 = fig6::to_table(&p6);
    println!("{}", t6.to_text());
    t6.write_to(&dir, "fig6_adaptive_weight").expect("write");

    eprintln!("all experiment reports written to {}", dir.display());
}
