//! Regenerate Table 2: the test-matrix suite and its statistics.

use f3r_experiments::{output_dir, table2, SuiteScale};

fn main() {
    let scale = SuiteScale::from_env();
    let table = table2::run(scale);
    println!("{}", table.to_text());
    let path = table.write_to(&output_dir(), "table2_suite").expect("write report");
    eprintln!("wrote {}", path.display());
}
