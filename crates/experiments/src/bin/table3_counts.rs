//! Regenerate Table 3: preconditioner-invocation counts until convergence.

use f3r_experiments::{output_dir, table3, NodeConfig, RunBudget, SuiteScale};

fn main() {
    let scale = SuiteScale::from_env();
    let rows = table3::run(scale, NodeConfig::cpu_default(), &RunBudget::default());
    let table = table3::to_table(&rows);
    println!("{}", table.to_text());
    let path = table.write_to(&output_dir(), "table3_precond_counts").expect("write report");
    eprintln!("wrote {}", path.display());
}
