//! Reproduction of the Section 4.1 memory-access model study (Eqs. 1–3 and
//! the worked example that motivates F3R's structure).

use f3r_core::cost_model::{best_split, eq123, spec_traffic_per_outer_iteration, RowCosts};
use f3r_core::prelude::*;

use crate::report::Table;

/// The Eq. 2 split study: modeled traffic of `(F^m̄, F^{m/m̄}, M)` for every
/// integer `m̄`, with the paper's `cA = cM = 45`, `m = 64` example.
#[must_use]
pub fn split_table(m: usize) -> Table {
    let costs = RowCosts::paper_example();
    let reference = eq123(costs, m, 1).reference_fgmres;
    let mut t = Table::new(
        &format!("Section 4.1 — two-level split of FGMRES({m}) with cA = cM = 45 (words/row)"),
        &["m_outer", "m_inner", "nested traffic", "reference traffic", "ratio"],
    );
    for m_outer in 1..=m {
        let m_inner = m as f64 / m_outer as f64;
        let nested = f3r_precision::traffic::nested_fgmres_fgmres_traffic(
            costs.c_a, costs.c_m, m_outer as f64, m_inner,
        );
        t.push_row(vec![
            m_outer.to_string(),
            format!("{m_inner:.2}"),
            format!("{nested:.1}"),
            format!("{reference:.1}"),
            format!("{:.3}", nested / reference),
        ]);
    }
    t
}

/// The headline numbers of the worked example plus the Eq. 3 comparison at
/// the F3R operating point `(m̄, m̿) = (4, 2)`.
#[must_use]
pub fn summary_table() -> Table {
    let costs = RowCosts::paper_example();
    let best = best_split(costs, 64);
    let small = eq123(costs, 4, 2);
    let mut t = Table::new(
        "Section 4.1 — model summary (cA = cM = 45)",
        &["quantity", "value (words/row)"],
    );
    t.push_row(vec![
        "O(F^64, M) reference".into(),
        format!("{:.1}", best.reference_traffic),
    ]);
    t.push_row(vec![
        format!("best two-level split m_outer = {}", best.m_outer),
        format!("{:.1}", best.nested_traffic),
    ]);
    t.push_row(vec!["O(F^8, M)".into(), format!("{:.1}", small.reference_fgmres)]);
    t.push_row(vec![
        "O(F^4, F^2, M) (Eq. 2, small m: worse)".into(),
        format!("{:.1}", small.nested_fgmres),
    ]);
    t.push_row(vec![
        "O(F^4, R^2, M) (Eq. 3: better)".into(),
        format!("{:.1}", small.nested_richardson),
    ]);
    t
}

/// Modeled per-outer-iteration traffic of the three F3R schemes and the
/// Table 4 variants, for a matrix with the given density.
#[must_use]
pub fn solver_traffic_table(nnz_per_row: f64) -> Table {
    let settings = SolverSettings::default();
    let specs = vec![
        f3r_spec(F3rParams::default(), F3rScheme::Fp64, &settings),
        f3r_spec(F3rParams::default(), F3rScheme::Fp32, &settings),
        f3r_spec(F3rParams::default(), F3rScheme::Fp16, &settings),
        f2_spec(&settings),
        fp16_f2_spec(&settings),
        f3_spec(&settings),
        fp16_f3_spec(&settings),
        f4_spec(&settings),
    ];
    let mut t = Table::new(
        &format!("Modeled traffic per outermost iteration (nnz/row = {nnz_per_row})"),
        &["solver", "tuple", "words/row per outer iteration", "vs fp64-F3R"],
    );
    let base = spec_traffic_per_outer_iteration(&specs[0], nnz_per_row, nnz_per_row);
    for spec in &specs {
        let traffic = spec_traffic_per_outer_iteration(spec, nnz_per_row, nnz_per_row);
        t.push_row(vec![
            spec.name.clone(),
            spec.tuple_notation(),
            format!("{traffic:.1}"),
            format!("{:.2}x", base / traffic),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_table_minimum_is_at_10() {
        let t = split_table(64);
        assert_eq!(t.n_rows(), 64);
        let csv = t.to_csv();
        // the m_outer = 10 row must have the smallest ratio column
        let mut best_row = String::new();
        let mut best_ratio = f64::INFINITY;
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let ratio: f64 = cells[4].parse().unwrap();
            if ratio < best_ratio {
                best_ratio = ratio;
                best_row = cells[0].to_string();
            }
        }
        assert_eq!(best_row, "10");
        assert!(best_ratio < 1.0);
    }

    #[test]
    fn summary_and_solver_tables_render() {
        let s = summary_table();
        assert_eq!(s.n_rows(), 5);
        let t = solver_traffic_table(27.0);
        assert_eq!(t.n_rows(), 8);
        // fp16-F3R must show a > 1x traffic advantage over fp64-F3R.
        let csv = t.to_csv();
        let fp16_row = csv.lines().find(|l| l.starts_with("fp16-F3R,")).unwrap();
        let factor: f64 = fp16_row
            .rsplit(',')
            .next()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(factor > 1.2, "fp16-F3R modeled advantage {factor}");
    }
}
