//! Figure 1 reproduction: relative performance on the CPU-node configuration
//! (block-Jacobi ILU(0)/IC(0), CSR SpMV).

use crate::relative::{run_problem, to_table, ProblemResults, RelativeOptions};
use crate::report::Table;
use crate::runner::NodeConfig;
use crate::suite::{nonsymmetric_suite, symmetric_suite, SuiteScale};

/// Run the Figure 1 experiment (both panels) at the given scale.
#[must_use]
pub fn run(scale: SuiteScale, opts: Option<RelativeOptions>) -> (Vec<ProblemResults>, Vec<ProblemResults>) {
    let opts = opts.unwrap_or_else(|| RelativeOptions::for_node(NodeConfig::cpu_default()));
    let sym: Vec<ProblemResults> = symmetric_suite(scale)
        .iter()
        .map(|p| run_problem(p, &opts))
        .collect();
    let nonsym: Vec<ProblemResults> = nonsymmetric_suite(scale)
        .iter()
        .map(|p| run_problem(p, &opts))
        .collect();
    (sym, nonsym)
}

/// Render the two panels of Figure 1 as tables.
#[must_use]
pub fn tables(sym: &[ProblemResults], nonsym: &[ProblemResults]) -> (Table, Table) {
    (
        to_table(
            "Figure 1a — CPU node, symmetric matrices: speedup over fp64-F3R",
            sym,
        ),
        to_table(
            "Figure 1b — CPU node, nonsymmetric matrices: speedup over fp64-F3R",
            nonsym,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunBudget;

    #[test]
    fn single_problem_smoke() {
        // Full Figure 1 is exercised by the experiment binary; here just one
        // symmetric problem without the best-parameter search.
        let opts = RelativeOptions {
            node: NodeConfig::Cpu { blocks: 4 },
            budget: RunBudget {
                max_baseline_iterations: 3000,
                ..RunBudget::default()
            },
            repeats: 1,
            include_best: false,
        };
        let probs = symmetric_suite(SuiteScale::Tiny);
        let pr = run_problem(&probs[2], &opts);
        let (t, _) = tables(std::slice::from_ref(&pr), &[]);
        assert!(t.to_text().contains("fp16-F3R"));
    }
}
