//! Figure 2 reproduction: relative performance on the GPU-node configuration
//! (SD-AINV preconditioner, sliced-ELLPACK SpMV with chunk 32).

use crate::relative::{run_problem, to_table, ProblemResults, RelativeOptions};
use crate::report::Table;
use crate::runner::NodeConfig;
use crate::suite::{nonsymmetric_suite, symmetric_suite, SuiteScale};

/// Run the Figure 2 experiment (both panels) at the given scale.
#[must_use]
pub fn run(scale: SuiteScale, opts: Option<RelativeOptions>) -> (Vec<ProblemResults>, Vec<ProblemResults>) {
    let opts = opts.unwrap_or_else(|| RelativeOptions::for_node(NodeConfig::gpu_default()));
    let sym: Vec<ProblemResults> = symmetric_suite(scale)
        .iter()
        .map(|p| run_problem(p, &opts))
        .collect();
    let nonsym: Vec<ProblemResults> = nonsymmetric_suite(scale)
        .iter()
        .map(|p| run_problem(p, &opts))
        .collect();
    (sym, nonsym)
}

/// Render the two panels of Figure 2 as tables.
#[must_use]
pub fn tables(sym: &[ProblemResults], nonsym: &[ProblemResults]) -> (Table, Table) {
    (
        to_table(
            "Figure 2a — GPU-node configuration (SD-AINV + SELL), symmetric matrices: speedup over fp64-F3R",
            sym,
        ),
        to_table(
            "Figure 2b — GPU-node configuration (SD-AINV + SELL), nonsymmetric matrices: speedup over fp64-F3R",
            nonsym,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunBudget;

    #[test]
    fn gpu_configuration_runs_on_one_problem() {
        let opts = RelativeOptions {
            node: NodeConfig::gpu_default(),
            budget: RunBudget::default(),
            repeats: 1,
            include_best: false,
        };
        let probs = symmetric_suite(SuiteScale::Tiny);
        let pr = run_problem(&probs[0], &opts);
        assert!(pr.baseline.result.converged);
        let (t, _) = tables(std::slice::from_ref(&pr), &[]);
        assert!(t.to_text().contains("GPU-node"));
    }
}
