//! Figure 3 reproduction: effect of the inner iteration counts `m2`, `m3`,
//! `m4` on fp16-F3R, relative to the default `(8, 4, 2)`.

use f3r_core::prelude::*;

use crate::report::{fmt_ratio, Table};
use crate::runner::{build_matrix, run_solver, NodeConfig, RunBudget, SolverKind};
use crate::suite::{SuiteScale, TestProblem};
use crate::sweep::{relative_point, summarize, sweep_problems, RelativePoint};

/// The parameter values swept in Figure 3 (each varied one at a time around
/// the default `(m2, m3, m4) = (8, 4, 2)`).
#[must_use]
pub fn swept_configs() -> Vec<(String, F3rParams)> {
    let mut configs = Vec::new();
    for m4 in [1usize, 3, 4] {
        configs.push((format!("m4={m4}"), F3rParams::with_inner(8, 4, m4)));
    }
    for m3 in [2usize, 3, 5, 6] {
        configs.push((format!("m3={m3}"), F3rParams::with_inner(8, m3, 2)));
    }
    for m2 in [6usize, 7, 9, 10] {
        configs.push((format!("m2={m2}"), F3rParams::with_inner(m2, 4, 2)));
    }
    configs
}

/// Run the sweep on one problem, producing one point per swept configuration.
#[must_use]
pub fn run_problem(problem: &TestProblem, node: NodeConfig, budget: &RunBudget) -> Vec<RelativePoint> {
    let matrix = build_matrix(problem, node);
    let default = run_solver(
        &matrix,
        problem,
        node,
        budget,
        &SolverKind::F3r {
            scheme: F3rScheme::Fp16,
            params: F3rParams::default(),
        },
        1,
    );
    swept_configs()
        .iter()
        .map(|(label, params)| {
            let variant = run_solver(
                &matrix,
                problem,
                node,
                budget,
                &SolverKind::F3r {
                    scheme: F3rScheme::Fp16,
                    params: *params,
                },
                1,
            );
            relative_point(label, &default, &variant)
        })
        .collect()
}

/// Run the sweep on the representative problem subset.
#[must_use]
pub fn run(scale: SuiteScale, node: NodeConfig, budget: &RunBudget) -> Vec<RelativePoint> {
    sweep_problems(scale)
        .iter()
        .flat_map(|p| run_problem(p, node, budget))
        .collect()
}

/// Per-point table (the raw scatter data of Figure 3).
#[must_use]
pub fn points_table(points: &[RelativePoint]) -> Table {
    let mut t = Table::new(
        "Figure 3 — fp16-F3R with varied (m2, m3, m4), relative to the default (8, 4, 2)",
        &["problem", "config", "rel convergence", "rel performance"],
    );
    for p in points {
        t.push_row(vec![
            p.problem.clone(),
            p.config.clone(),
            fmt_ratio(p.rel_convergence),
            fmt_ratio(p.rel_performance),
        ]);
    }
    t
}

/// Per-configuration five-number summary (the boxplots of Figure 3).
#[must_use]
pub fn summary_table(points: &[RelativePoint]) -> Table {
    let mut t = Table::new(
        "Figure 3 — per-configuration summary (median [q1, q3]) of the relative axes",
        &["config", "median rel conv", "median rel perf", "q1 perf", "q3 perf", "samples"],
    );
    let mut configs: Vec<String> = points.iter().map(|p| p.config.clone()).collect();
    configs.dedup();
    let mut seen = std::collections::BTreeSet::new();
    for config in configs {
        if !seen.insert(config.clone()) {
            continue;
        }
        let conv: Vec<f64> = points
            .iter()
            .filter(|p| p.config == config)
            .filter_map(|p| p.rel_convergence)
            .collect();
        let perf: Vec<f64> = points
            .iter()
            .filter(|p| p.config == config)
            .filter_map(|p| p.rel_performance)
            .collect();
        let sc = summarize(&conv);
        let sp = summarize(&perf);
        t.push_row(vec![
            config,
            fmt_ratio(sc.map(|s| s.median)),
            fmt_ratio(sp.map(|s| s.median)),
            fmt_ratio(sp.map(|s| s.q1)),
            fmt_ratio(sp.map(|s| s.q3)),
            sp.map_or(0, |s| s.count).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::symmetric_suite;

    #[test]
    fn config_list_matches_paper_sweep() {
        let configs = swept_configs();
        assert_eq!(configs.len(), 11);
        assert!(configs.iter().any(|(l, _)| l == "m4=1"));
        assert!(configs.iter().any(|(l, _)| l == "m3=6"));
        assert!(configs.iter().any(|(l, _)| l == "m2=10"));
    }

    #[test]
    fn sweep_runs_on_one_problem() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let budget = RunBudget::default();
        let points = run_problem(&probs[0], NodeConfig::Cpu { blocks: 4 }, &budget);
        assert_eq!(points.len(), 11);
        // the default configuration converges, so most variants should too
        let converged = points.iter().filter(|p| p.rel_performance.is_some()).count();
        assert!(converged >= 8, "only {converged}/11 variants produced a ratio");
        let t = points_table(&points);
        assert_eq!(t.n_rows(), 11);
        let s = summary_table(&points);
        assert!(s.n_rows() >= 10);
    }
}
