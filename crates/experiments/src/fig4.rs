//! Figure 4 / Table 4 reproduction: nesting depth study — F2, fp16-F2, F3,
//! fp16-F3 and F4 relative to fp16-F3R with the default setting.

use f3r_core::prelude::*;

use crate::report::{fmt_ratio, Table};
use crate::runner::{build_matrix, run_solver, NodeConfig, RunBudget, SolverKind, VariantKind};
use crate::suite::{SuiteScale, TestProblem};
use crate::sweep::{relative_point, sweep_problems, RelativePoint};

/// The Table 4 reference solvers, in presentation order.
#[must_use]
pub fn variants() -> Vec<(String, VariantKind)> {
    vec![
        ("F2".into(), VariantKind::F2),
        ("fp16-F2".into(), VariantKind::Fp16F2),
        ("F3".into(), VariantKind::F3),
        ("fp16-F3".into(), VariantKind::Fp16F3),
        ("F4".into(), VariantKind::F4),
    ]
}

/// Run the depth study on one problem.
#[must_use]
pub fn run_problem(problem: &TestProblem, node: NodeConfig, budget: &RunBudget) -> Vec<RelativePoint> {
    let matrix = build_matrix(problem, node);
    let default = run_solver(
        &matrix,
        problem,
        node,
        budget,
        &SolverKind::F3r {
            scheme: F3rScheme::Fp16,
            params: F3rParams::default(),
        },
        1,
    );
    variants()
        .iter()
        .map(|(label, kind)| {
            let variant = run_solver(&matrix, problem, node, budget, &SolverKind::Variant(*kind), 1);
            relative_point(label, &default, &variant)
        })
        .collect()
}

/// Run the depth study on the representative problem subset.
#[must_use]
pub fn run(scale: SuiteScale, node: NodeConfig, budget: &RunBudget) -> Vec<RelativePoint> {
    sweep_problems(scale)
        .iter()
        .flat_map(|p| run_problem(p, node, budget))
        .collect()
}

/// Render the Figure 4 scatter data as a table.
#[must_use]
pub fn to_table(points: &[RelativePoint]) -> Table {
    let mut t = Table::new(
        "Figure 4 — nesting depth: F2/fp16-F2/F3/fp16-F3/F4 relative to fp16-F3R",
        &["problem", "solver", "rel convergence", "rel performance"],
    );
    for p in points {
        t.push_row(vec![
            p.problem.clone(),
            p.config.clone(),
            fmt_ratio(p.rel_convergence),
            fmt_ratio(p.rel_performance),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::symmetric_suite;

    #[test]
    fn depth_study_runs_on_one_problem() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let budget = RunBudget::default();
        let points = run_problem(&probs[0], NodeConfig::Cpu { blocks: 4 }, &budget);
        assert_eq!(points.len(), 5);
        // F4 replaces Richardson with FGMRES(2); its convergence should be
        // close to fp16-F3R (Assumption (ii) of the paper).  On the Tiny
        // problem the preconditioner counts are quantised to whole outermost
        // iterations, so the ratio can land exactly on a small integer —
        // allow a full quantisation step of slack on either side.
        let f4 = points.iter().find(|p| p.config == "F4").unwrap();
        if let Some(rc) = f4.rel_convergence {
            assert!(rc > 0.3 && rc < 3.0, "F4 relative convergence {rc}");
        }
        let t = to_table(&points);
        assert_eq!(t.n_rows(), 5);
    }
}
