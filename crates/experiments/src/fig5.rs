//! Figure 5 reproduction: the weight-update cycle `c` of the adaptive
//! Richardson weight, relative to the default `c = 64`.

use f3r_core::prelude::*;

use crate::report::{fmt_ratio, Table};
use crate::runner::{build_matrix, run_solver, NodeConfig, RunBudget, SolverKind};
use crate::suite::{SuiteScale, TestProblem};
use crate::sweep::{relative_point, sweep_problems, RelativePoint};

/// The update-cycle values swept in Figure 5.
pub const CYCLES: &[usize] = &[1, 4, 16, 32, 128, 256];

/// Run the cycle sweep on one problem.
#[must_use]
pub fn run_problem(problem: &TestProblem, node: NodeConfig, budget: &RunBudget) -> Vec<RelativePoint> {
    let matrix = build_matrix(problem, node);
    let default = run_solver(
        &matrix,
        problem,
        node,
        budget,
        &SolverKind::F3r {
            scheme: F3rScheme::Fp16,
            params: F3rParams::default(), // c = 64
        },
        1,
    );
    CYCLES
        .iter()
        .map(|&c| {
            let params = F3rParams {
                weight_cycle: c,
                ..F3rParams::default()
            };
            let variant = run_solver(
                &matrix,
                problem,
                node,
                budget,
                &SolverKind::F3r {
                    scheme: F3rScheme::Fp16,
                    params,
                },
                1,
            );
            relative_point(&format!("c={c}"), &default, &variant)
        })
        .collect()
}

/// Run the cycle sweep on the representative problem subset.
#[must_use]
pub fn run(scale: SuiteScale, node: NodeConfig, budget: &RunBudget) -> Vec<RelativePoint> {
    sweep_problems(scale)
        .iter()
        .flat_map(|p| run_problem(p, node, budget))
        .collect()
}

/// Render the Figure 5 scatter data as a table.
#[must_use]
pub fn to_table(points: &[RelativePoint]) -> Table {
    let mut t = Table::new(
        "Figure 5 — adaptive weight-update cycle c, relative to fp16-F3R with c = 64",
        &["problem", "config", "rel convergence", "rel performance"],
    );
    for p in points {
        t.push_row(vec![
            p.problem.clone(),
            p.config.clone(),
            fmt_ratio(p.rel_convergence),
            fmt_ratio(p.rel_performance),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::symmetric_suite;

    #[test]
    fn cycle_sweep_runs_on_one_problem() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let budget = RunBudget::default();
        let points = run_problem(&probs[2], NodeConfig::Cpu { blocks: 4 }, &budget);
        assert_eq!(points.len(), CYCLES.len());
        // No clear trend is expected (the paper's conclusion), but all cycle
        // settings should converge on an easy problem.
        assert!(points.iter().all(|p| p.rel_convergence.is_some()));
    }
}
