//! Figure 6 reproduction: adaptive weight updating versus a fixed, manually
//! chosen weight ω in the innermost Richardson part.
//!
//! The paper plots, per problem, the performance and convergence speed of the
//! static-ω variants *relative to the adaptive strategy*; values below 1 mean
//! the adaptive strategy is better.

use f3r_core::prelude::*;

use crate::report::{fmt_ratio, Table};
use crate::runner::{build_matrix, run_solver, NodeConfig, RunBudget, SolverKind};
use crate::suite::{SuiteScale, TestProblem};
use crate::sweep::{sweep_problems, RelativePoint};

/// The fixed weights compared in Figure 6.
pub const OMEGAS: &[f64] = &[0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3];

/// Run the comparison on one problem.  The returned points use the Figure 6
/// convention: the ratio is `static / adaptive`, so values < 1 favour the
/// adaptive strategy.
#[must_use]
pub fn run_problem(problem: &TestProblem, node: NodeConfig, budget: &RunBudget) -> Vec<RelativePoint> {
    let matrix = build_matrix(problem, node);
    let adaptive = run_solver(
        &matrix,
        problem,
        node,
        budget,
        &SolverKind::F3r {
            scheme: F3rScheme::Fp16,
            params: F3rParams::default(),
        },
        1,
    );
    OMEGAS
        .iter()
        .map(|&omega| {
            let fixed = run_solver(
                &matrix,
                problem,
                node,
                budget,
                &SolverKind::F3rFixedWeight {
                    scheme: F3rScheme::Fp16,
                    params: F3rParams::default(),
                    omega,
                },
                1,
            );
            let ok = adaptive.result.converged && fixed.result.converged;
            // Figure 6 convention: plot the static variant's convergence
            // speed and performance relative to the adaptive variant, so a
            // value < 1 means the adaptive strategy is better.
            RelativePoint {
                problem: problem.name.clone(),
                config: format!("ω={omega}"),
                rel_convergence: if ok && fixed.result.precond_applications > 0 {
                    // convergence speed ∝ 1 / preconditioning steps
                    Some(
                        adaptive.result.precond_applications as f64
                            / fixed.result.precond_applications as f64,
                    )
                } else {
                    None
                },
                rel_performance: if ok && fixed.result.seconds > 0.0 {
                    // performance ∝ 1 / time
                    Some(adaptive.result.seconds / fixed.result.seconds)
                } else {
                    None
                },
            }
        })
        .collect()
}

/// Run the comparison on the representative problem subset.
#[must_use]
pub fn run(scale: SuiteScale, node: NodeConfig, budget: &RunBudget) -> Vec<RelativePoint> {
    sweep_problems(scale)
        .iter()
        .flat_map(|p| run_problem(p, node, budget))
        .collect()
}

/// Render the Figure 6 data as a table (`-` marks a failed static solve, as
/// the missing bars in the paper do).
#[must_use]
pub fn to_table(points: &[RelativePoint]) -> Table {
    let mut t = Table::new(
        "Figure 6 — fixed weight ω vs adaptive updating (values < 1: adaptive is better)",
        &["problem", "config", "rel convergence (static/adaptive)", "rel performance (static/adaptive)"],
    );
    for p in points {
        t.push_row(vec![
            p.problem.clone(),
            p.config.clone(),
            fmt_ratio(p.rel_convergence),
            fmt_ratio(p.rel_performance),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::symmetric_suite;

    #[test]
    fn adaptive_vs_fixed_runs_on_one_problem() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let budget = RunBudget::default();
        let points = run_problem(&probs[0], NodeConfig::Cpu { blocks: 4 }, &budget);
        assert_eq!(points.len(), OMEGAS.len());
        // ω = 1.0 should be competitive on a diagonally scaled SPD problem,
        // i.e. within a factor ~2 of the adaptive approach either way.
        let unit = points.iter().find(|p| p.config == "ω=1").unwrap();
        if let Some(rc) = unit.rel_convergence {
            assert!(rc > 0.4 && rc < 2.5, "ω=1.0 relative convergence {rc}");
        }
        let t = to_table(&points);
        assert_eq!(t.n_rows(), OMEGAS.len());
    }
}
