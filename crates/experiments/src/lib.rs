//! Experiment harness for the F3R reproduction.
//!
//! Each module regenerates one table or figure of the paper (see DESIGN.md
//! §5 for the experiment index); the binaries under `src/bin/` are thin
//! wrappers that run a module at the scale selected by the `F3R_SCALE`
//! environment variable (`tiny`, `small` — default —, `medium`) and write
//! text + CSV reports under `target/experiments/`.

#![warn(missing_docs)]

pub mod autotune;
pub mod cost_model_exp;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod relative;
pub mod report;
pub mod runner;
pub mod suite;
pub mod sweep;
pub mod table2;
pub mod table3;

pub use report::{output_dir, Table};
pub use runner::{NodeConfig, RunBudget, SolverKind, SolverOutcome, VariantKind};
pub use suite::{full_suite, nonsymmetric_suite, symmetric_suite, SuiteScale, TestProblem};
