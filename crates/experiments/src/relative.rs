//! Shared machinery for the Figure 1 / Figure 2 relative-performance
//! experiments.
//!
//! For every test problem the paper plots the speedup of each solver over
//! fp64-F3R (wall-clock).  Because software-emulated fp16 shifts part of the
//! advantage that native AVX512-FP16/tensor-core hardware provides, the
//! reproduction reports two speedup columns per solver: wall-clock and
//! modeled memory traffic (bytes moved, the paper's own Section 4.1 currency).

use std::sync::Arc;

use f3r_core::prelude::*;
use f3r_precision::Precision;

use crate::report::{fmt_ratio, fmt_secs, Table};
use crate::runner::{build_matrix, run_solver, NodeConfig, RunBudget, SolverKind, SolverOutcome};
use crate::suite::TestProblem;

/// The `(m2, m3, m4)` candidates searched for the `fp16-F3R-best` rows of
/// Figures 1 and 2 (drawn from the best-parameter rows the paper reports).
pub const BEST_CANDIDATES: &[(usize, usize, usize)] = &[
    (8, 4, 2),
    (8, 4, 1),
    (6, 4, 2),
    (8, 6, 2),
    (9, 4, 2),
    (8, 3, 2),
    (8, 5, 2),
];

/// Options of a relative-performance experiment.
#[derive(Debug, Clone)]
pub struct RelativeOptions {
    /// Node configuration (CPU node for Figure 1, GPU node for Figure 2).
    pub node: NodeConfig,
    /// Iteration/restart budget.
    pub budget: RunBudget,
    /// Wall-clock repeats to average (the paper averages three runs).
    pub repeats: usize,
    /// Whether to search the [`BEST_CANDIDATES`] grid for fp16-F3R-best.
    pub include_best: bool,
}

impl RelativeOptions {
    /// Defaults for a given node configuration.
    #[must_use]
    pub fn for_node(node: NodeConfig) -> Self {
        Self {
            node,
            budget: RunBudget::default(),
            repeats: 1,
            include_best: true,
        }
    }
}

/// All solver outcomes for one problem.
#[derive(Debug)]
pub struct ProblemResults {
    /// Problem name.
    pub problem: String,
    /// Whether the problem is symmetric (CG family) or not (BiCGStab family).
    pub symmetric: bool,
    /// Outcome of the fp64-F3R baseline.
    pub baseline: SolverOutcome,
    /// Outcomes of every other solver, in presentation order.
    pub others: Vec<SolverOutcome>,
    /// The best `(m2, m3, m4)` found for fp16-F3R-best, if searched.
    pub best_params: Option<(usize, usize, usize)>,
}

impl ProblemResults {
    /// Speedup of `outcome` over the fp64-F3R baseline in wall-clock time
    /// (`None` if the solver did not converge).
    #[must_use]
    pub fn speedup_time(&self, outcome: &SolverOutcome) -> Option<f64> {
        if !outcome.result.converged || !self.baseline.result.converged {
            return None;
        }
        Some(self.baseline.result.seconds / outcome.result.seconds.max(1e-12))
    }

    /// Ratio `metric(baseline) / metric(outcome)` guarded against diverged
    /// runs and degenerate (non-positive) metric values — the shared shape
    /// of every "speedup over fp64-F3R" column.
    fn metric_ratio(
        &self,
        outcome: &SolverOutcome,
        metric: impl Fn(&SolveResult) -> f64,
    ) -> Option<f64> {
        if !outcome.result.converged || !self.baseline.result.converged {
            return None;
        }
        let base = metric(&self.baseline.result);
        let own = metric(&outcome.result);
        if own <= 0.0 || base <= 0.0 {
            None
        } else {
            Some(base / own)
        }
    }

    /// Speedup of `outcome` over the fp64-F3R baseline in modeled memory
    /// traffic.
    #[must_use]
    pub fn speedup_traffic(&self, outcome: &SolverOutcome) -> Option<f64> {
        self.metric_ratio(outcome, |r| r.modeled_bytes() as f64)
    }

    /// Reduction factor of `outcome`'s Krylov-basis traffic (bytes read from
    /// and written to stored basis vectors) relative to the fp64-F3R
    /// baseline — the quantity compressed basis storage
    /// (`NestedSpec::with_basis_storage`) shrinks.  `None` when either run
    /// diverged or moved no basis bytes.
    #[must_use]
    pub fn speedup_basis_traffic(&self, outcome: &SolverOutcome) -> Option<f64> {
        self.metric_ratio(outcome, |r| r.counters.basis_bytes_total() as f64)
    }

    /// Reduction factor of `outcome`'s matrix-stream traffic (values +
    /// indices + row pointers + row scales, attributed at the storage
    /// precision) relative to the fp64-F3R baseline — the quantity narrow
    /// and scaled matrix storage (`NestedSpec::with_matrix_storage`)
    /// shrinks.  `None` when either run diverged or moved no matrix bytes.
    #[must_use]
    pub fn speedup_matrix_traffic(&self, outcome: &SolverOutcome) -> Option<f64> {
        self.metric_ratio(outcome, |r| r.counters.matrix_bytes_total() as f64)
    }

    /// Reduction factor of `outcome`'s matrix-stream bytes *per streamed
    /// column* relative to the fp64-F3R baseline — the quantity batched
    /// multi-RHS solving (`SolveSession::solve_batch`) shrinks.  Each SpMV
    /// streams the matrix for one column; each `k`-column SpMM streams it
    /// once for `k` columns, so the metric is
    /// `matrix_bytes_total / (total_spmv + spmm_columns_total)`.  `None`
    /// when either run diverged or streamed no columns.
    #[must_use]
    pub fn speedup_batch_traffic(&self, outcome: &SolverOutcome) -> Option<f64> {
        self.metric_ratio(outcome, |r| {
            let cols = r.counters.total_spmv() + r.counters.spmm_columns_total();
            if cols == 0 {
                0.0
            } else {
                r.counters.matrix_bytes_total() as f64 / cols as f64
            }
        })
    }
}

/// The solver list of Figures 1 and 2 for a problem of the given symmetry:
/// fp32-F3R, fp16-F3R, fp64/fp32/fp16-{CG or BiCGStab}, fp64/fp32/fp16-FGMRES(64).
#[must_use]
pub fn figure_solver_set(symmetric: bool) -> Vec<SolverKind> {
    let mut kinds = vec![
        SolverKind::F3r {
            scheme: F3rScheme::Fp32,
            params: F3rParams::default(),
        },
        SolverKind::F3r {
            scheme: F3rScheme::Fp16,
            params: F3rParams::default(),
        },
    ];
    for prec in [Precision::Fp64, Precision::Fp32, Precision::Fp16] {
        if symmetric {
            kinds.push(SolverKind::Cg { precond_prec: prec });
        } else {
            kinds.push(SolverKind::BiCgStab { precond_prec: prec });
        }
    }
    for prec in [Precision::Fp64, Precision::Fp32, Precision::Fp16] {
        kinds.push(SolverKind::Fgmres {
            restart: 64,
            precond_prec: prec,
        });
    }
    kinds
}

/// Run the full Figure 1 / Figure 2 solver set on one problem.
#[must_use]
pub fn run_problem(problem: &TestProblem, opts: &RelativeOptions) -> ProblemResults {
    let matrix = build_matrix(problem, opts.node);
    let baseline = run_solver(
        &matrix,
        problem,
        opts.node,
        &opts.budget,
        &SolverKind::F3r {
            scheme: F3rScheme::Fp64,
            params: F3rParams::default(),
        },
        opts.repeats,
    );
    let mut others = Vec::new();
    for kind in figure_solver_set(problem.symmetric) {
        others.push(run_solver(&matrix, problem, opts.node, &opts.budget, &kind, opts.repeats));
    }
    let best_params = if opts.include_best {
        let (best, params) = best_fp16_f3r(&matrix, problem, opts);
        others.push(best);
        Some(params)
    } else {
        None
    };
    ProblemResults {
        problem: problem.name.clone(),
        symmetric: problem.symmetric,
        baseline,
        others,
        best_params,
    }
}

/// Search the [`BEST_CANDIDATES`] grid and return the fastest converging
/// fp16-F3R configuration (renamed `fp16-F3R-best`).
fn best_fp16_f3r(
    matrix: &Arc<ProblemMatrix>,
    problem: &TestProblem,
    opts: &RelativeOptions,
) -> (SolverOutcome, (usize, usize, usize)) {
    let mut best: Option<(SolverOutcome, (usize, usize, usize))> = None;
    for &(m2, m3, m4) in BEST_CANDIDATES {
        let outcome = run_solver(
            matrix,
            problem,
            opts.node,
            &opts.budget,
            &SolverKind::F3r {
                scheme: F3rScheme::Fp16,
                params: F3rParams::with_inner(m2, m3, m4),
            },
            1,
        );
        let better = match &best {
            None => true,
            Some((current, _)) => {
                (outcome.result.converged && !current.result.converged)
                    || (outcome.result.converged == current.result.converged
                        && outcome.result.seconds < current.result.seconds)
            }
        };
        if better {
            best = Some((outcome, (m2, m3, m4)));
        }
    }
    let (mut outcome, params) = best.expect("candidate list is non-empty");
    outcome.solver = "fp16-F3R-best".to_string();
    (outcome, params)
}

/// Render a set of per-problem results as the Figure 1 / Figure 2 table:
/// one row per (problem, solver) with speedups over fp64-F3R.
#[must_use]
pub fn to_table(title: &str, results: &[ProblemResults]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "problem",
            "solver",
            "converged",
            "time[s]",
            "speedup(time)",
            "speedup(traffic)",
            "precond applies",
            "best m2-m3-m4",
        ],
    );
    for pr in results {
        let base = &pr.baseline;
        table.push_row(vec![
            pr.problem.clone(),
            base.solver.clone(),
            "yes".to_string(),
            fmt_secs(base.result.seconds),
            "1.00".to_string(),
            "1.00".to_string(),
            base.result.precond_applications.to_string(),
            String::new(),
        ]);
        for o in &pr.others {
            let best_label = if o.solver == "fp16-F3R-best" {
                pr.best_params
                    .map(|(a, b, c)| format!("{a}-{b}-{c}"))
                    .unwrap_or_default()
            } else {
                String::new()
            };
            table.push_row(vec![
                pr.problem.clone(),
                o.solver.clone(),
                if o.result.converged { "yes" } else { "no" }.to_string(),
                fmt_secs(o.result.seconds),
                fmt_ratio(pr.speedup_time(o)),
                fmt_ratio(pr.speedup_traffic(o)),
                o.result.precond_applications.to_string(),
                best_label,
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{symmetric_suite, SuiteScale};

    #[test]
    fn solver_set_matches_figure_legend() {
        let sym = figure_solver_set(true);
        assert_eq!(sym.len(), 8);
        assert!(sym.iter().any(|k| matches!(k, SolverKind::Cg { .. })));
        let nonsym = figure_solver_set(false);
        assert!(nonsym.iter().any(|k| matches!(k, SolverKind::BiCgStab { .. })));
        assert!(nonsym.iter().all(|k| !matches!(k, SolverKind::Cg { .. })));
    }

    #[test]
    fn run_problem_produces_comparable_outcomes() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let opts = RelativeOptions {
            node: NodeConfig::Cpu { blocks: 4 },
            budget: RunBudget {
                max_baseline_iterations: 3000,
                ..RunBudget::default()
            },
            repeats: 1,
            include_best: false,
        };
        let pr = run_problem(&probs[0], &opts);
        assert!(pr.baseline.result.converged);
        assert_eq!(pr.others.len(), 8);
        // fp16-F3R must converge and move fewer modeled bytes than fp64-F3R.
        let fp16 = pr.others.iter().find(|o| o.solver == "fp16-F3R").unwrap();
        assert!(fp16.result.converged);
        let speedup_traffic = pr.speedup_traffic(fp16).unwrap();
        assert!(
            speedup_traffic > 1.0,
            "fp16-F3R should reduce modeled traffic, got {speedup_traffic}"
        );
        // The basis-traffic attribution flows through every solve: fp16-F3R
        // keeps fp32 vectors on the middle levels, so its basis bytes are
        // below the all-fp64 baseline's even without compressed storage.
        let basis = pr.speedup_basis_traffic(fp16).unwrap();
        assert!(basis > 1.0, "fp16-F3R basis traffic ratio {basis}");
        // So does the matrix-stream attribution: fp16-F3R streams fp32/fp16
        // matrix variants on its inner levels.
        let matrix = pr.speedup_matrix_traffic(fp16).unwrap();
        assert!(matrix > 1.0, "fp16-F3R matrix traffic ratio {matrix}");
        // Per-streamed-column matrix bytes: both runs here are single-RHS
        // (no SpMM amortization), so the ratio reduces to the per-column
        // stream width and fp16-F3R again wins.
        let batch = pr.speedup_batch_traffic(fp16).unwrap();
        assert!(batch > 1.0, "fp16-F3R per-column stream ratio {batch}");
        let table = to_table("test", std::slice::from_ref(&pr));
        assert_eq!(table.n_rows(), 9);
    }
}
