//! Text-table and CSV reporting helpers shared by all experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple column-aligned text table with a title.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have the same number of cells as the header).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write both the text and CSV renderings under `dir/<stem>.{txt,csv}`,
    /// returning the CSV path.
    pub fn write_to(&self, dir: &Path, stem: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{stem}.txt")), self.to_text())?;
        let csv_path = dir.join(format!("{stem}.csv"));
        fs::write(&csv_path, self.to_csv())?;
        Ok(csv_path)
    }
}

/// Default output directory for experiment artefacts.
#[must_use]
pub fn output_dir() -> PathBuf {
    std::env::var("F3R_OUTPUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"))
}

/// Format a speedup/ratio for display (two decimals, `"-"` for non-finite or
/// non-positive values — the paper leaves a blank bar when a solver fails).
#[must_use]
pub fn fmt_ratio(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() && x > 0.0 => format!("{x:.2}"),
        _ => "-".to_string(),
    }
}

/// Format seconds with three decimals.
#[must_use]
pub fn fmt_secs(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.00".into()]);
        t.push_row(vec!["b,c".into(), "2.50".into()]);
        let text = t.to_text();
        assert!(text.contains("# demo"));
        assert!(text.contains("a"));
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value"));
        assert!(csv.contains("\"b,c\""));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn ratio_formatting_handles_failures() {
        assert_eq!(fmt_ratio(Some(1.234)), "1.23");
        assert_eq!(fmt_ratio(Some(f64::NAN)), "-");
        assert_eq!(fmt_ratio(None), "-");
        assert_eq!(fmt_secs(0.5), "0.500");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn write_to_creates_files() {
        let dir = std::env::temp_dir().join("f3r_report_test");
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into()]);
        let csv = t.write_to(&dir, "demo").unwrap();
        assert!(csv.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
