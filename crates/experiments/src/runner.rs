//! Experiment runner: builds solvers from declarative descriptions and runs
//! them on suite problems.

use std::sync::Arc;

use f3r_core::prelude::*;
use f3r_precision::Precision;
use f3r_precond::PrecondKind;
use f3r_sparse::gen::rhs::random_rhs;

use crate::suite::TestProblem;

/// Which "node" of the paper an experiment reproduces.
///
/// The CPU node (Section 5.1) uses block-Jacobi ILU(0)/IC(0) and CSR SpMV;
/// the GPU node (Section 5.2) uses the SD-AINV approximate inverse and
/// sliced-ELLPACK SpMV.  On this machine both run on the host CPU — the node
/// selects the preconditioner and kernel configuration, not the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeConfig {
    /// Block-Jacobi ILU(0)/IC(0) + CSR (the paper's CPU node).
    Cpu {
        /// Number of block-Jacobi blocks (the paper uses one per thread).
        blocks: usize,
    },
    /// SD-AINV + sliced ELLPACK (the paper's GPU node).
    Gpu {
        /// Sliced-ELLPACK chunk size (the paper uses 32).
        chunk: usize,
    },
}

impl NodeConfig {
    /// Default CPU-node configuration: one block per worker thread.
    #[must_use]
    pub fn cpu_default() -> Self {
        NodeConfig::Cpu {
            blocks: f3r_parallel::current_num_threads().max(2),
        }
    }

    /// Default GPU-node configuration (chunk 32, as in the paper).
    #[must_use]
    pub fn gpu_default() -> Self {
        NodeConfig::Gpu { chunk: 32 }
    }

    /// The SpMV backend this node uses.
    #[must_use]
    pub fn backend(self) -> SpmvBackend {
        match self {
            NodeConfig::Cpu { .. } => SpmvBackend::Csr,
            NodeConfig::Gpu { chunk } => SpmvBackend::Sell { chunk },
        }
    }

    /// The primary preconditioner this node uses for a given problem.
    #[must_use]
    pub fn precond_for(self, problem: &TestProblem) -> PrecondKind {
        match self {
            NodeConfig::Cpu { blocks } => {
                if problem.symmetric {
                    PrecondKind::BlockJacobiIc0 {
                        blocks,
                        alpha: problem.alpha,
                    }
                } else {
                    PrecondKind::BlockJacobiIlu0 {
                        blocks,
                        alpha: problem.alpha,
                    }
                }
            }
            NodeConfig::Gpu { .. } => PrecondKind::SdAinv {
                alpha: problem.alpha,
                order: 2,
            },
        }
    }

    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NodeConfig::Cpu { .. } => "cpu-node",
            NodeConfig::Gpu { .. } => "gpu-node",
        }
    }
}

/// Iteration/restart budget of an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunBudget {
    /// Convergence tolerance (the paper uses 1e-8).
    pub tol: f64,
    /// Maximum outermost cycles of nested solvers (the paper allows 3).
    pub max_outer_cycles: usize,
    /// Maximum iterations of the CG/BiCGStab/FGMRES(64) baselines
    /// (the paper allows 19 200; scale down for laptop-size problems).
    pub max_baseline_iterations: usize,
}

impl Default for RunBudget {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_outer_cycles: 3,
            max_baseline_iterations: 6_000,
        }
    }
}

/// Declarative description of one solver configuration to run.
#[derive(Debug, Clone)]
pub enum SolverKind {
    /// F3R with a precision scheme and iteration parameters.
    F3r {
        /// Precision scheme (fp64-/fp32-/fp16-F3R).
        scheme: F3rScheme,
        /// Iteration counts `(m1, m2, m3, m4)` and weight cycle `c`.
        params: F3rParams,
    },
    /// F3R with a fixed Richardson weight (Figure 6).
    F3rFixedWeight {
        /// Precision scheme.
        scheme: F3rScheme,
        /// Iteration parameters.
        params: F3rParams,
        /// The fixed weight ω.
        omega: f64,
    },
    /// One of the Table 4 nesting-depth reference solvers.
    Variant(VariantKind),
    /// Preconditioned CG with the given preconditioner storage precision.
    Cg {
        /// Preconditioner storage precision.
        precond_prec: Precision,
    },
    /// Preconditioned BiCGStab with the given preconditioner storage precision.
    BiCgStab {
        /// Preconditioner storage precision.
        precond_prec: Precision,
    },
    /// Restarted FGMRES with the given restart length and preconditioner
    /// storage precision.
    Fgmres {
        /// Restart cycle length (the paper uses 64).
        restart: usize,
        /// Preconditioner storage precision.
        precond_prec: Precision,
    },
}

/// The Table 4 reference solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantKind {
    /// `(F100, F64, M)` with an fp32 inner level.
    F2,
    /// `(F100, F64, M)` with an fp16 inner level.
    Fp16F2,
    /// `(F100, F8, F8, M)` with fp32 vectors in the inner `F8`.
    F3,
    /// `(F100, F8, F8, M)` with fp16 vectors in the inner `F8`.
    Fp16F3,
    /// `(F100, F8, F4, F2, M)` — fp16-F3R with FGMRES(2) innermost.
    F4,
}

/// Result of one (problem, solver) run.
#[derive(Debug, Clone)]
pub struct SolverOutcome {
    /// Problem name.
    pub problem: String,
    /// Solver configuration name.
    pub solver: String,
    /// The solve result.
    pub result: SolveResult,
}

/// Build the multi-precision matrix handle of a problem for a node
/// configuration.  Do this once per problem and share the `Arc` across
/// solver runs.
#[must_use]
pub fn build_matrix(problem: &TestProblem, node: NodeConfig) -> Arc<ProblemMatrix> {
    Arc::new(ProblemMatrix::new(problem.matrix.clone(), node.backend()))
}

/// Construct a boxed solver for the given problem/matrix/configuration.
#[must_use]
pub fn build_solver(
    matrix: &Arc<ProblemMatrix>,
    problem: &TestProblem,
    node: NodeConfig,
    budget: &RunBudget,
    kind: &SolverKind,
) -> Box<dyn SparseSolver> {
    let precond = node.precond_for(problem);
    let settings = SolverSettings {
        precond,
        tol: budget.tol,
        max_outer_cycles: budget.max_outer_cycles,
    };
    // Nested solvers go through the session API: prepare (validates the spec
    // and factorizes M) and open one session, which is itself a SparseSolver.
    let nested = |spec| -> Box<dyn SparseSolver> {
        Box::new(
            SolverBuilder::new(Arc::clone(matrix))
                .spec(spec)
                .build()
                .session(),
        )
    };
    match kind {
        SolverKind::F3r { scheme, params } => nested(f3r_spec(*params, *scheme, &settings)),
        SolverKind::F3rFixedWeight {
            scheme,
            params,
            omega,
        } => nested(f3r_spec_fixed_weight(*params, *scheme, &settings, *omega)),
        SolverKind::Variant(v) => nested(match v {
            VariantKind::F2 => f2_spec(&settings),
            VariantKind::Fp16F2 => fp16_f2_spec(&settings),
            VariantKind::F3 => f3_spec(&settings),
            VariantKind::Fp16F3 => fp16_f3_spec(&settings),
            VariantKind::F4 => f4_spec(&settings),
        }),
        SolverKind::Cg { precond_prec } => Box::new(CgSolver::new(
            Arc::clone(matrix),
            BaselineConfig {
                precond,
                precond_prec: *precond_prec,
                tol: budget.tol,
                max_iterations: budget.max_baseline_iterations,
            },
        )),
        SolverKind::BiCgStab { precond_prec } => Box::new(BiCgStabSolver::new(
            Arc::clone(matrix),
            BaselineConfig {
                precond,
                precond_prec: *precond_prec,
                tol: budget.tol,
                max_iterations: budget.max_baseline_iterations,
            },
        )),
        SolverKind::Fgmres {
            restart,
            precond_prec,
        } => Box::new(RestartedFgmresSolver::new(
            Arc::clone(matrix),
            *restart,
            BaselineConfig {
                precond,
                precond_prec: *precond_prec,
                tol: budget.tol,
                max_iterations: budget.max_baseline_iterations,
            },
        )),
    }
}

/// Run one solver configuration on one problem (averaging `repeats` runs of
/// the wall-clock time, as the paper averages three runs).
#[must_use]
pub fn run_solver(
    matrix: &Arc<ProblemMatrix>,
    problem: &TestProblem,
    node: NodeConfig,
    budget: &RunBudget,
    kind: &SolverKind,
    repeats: usize,
) -> SolverOutcome {
    let mut solver = build_solver(matrix, problem, node, budget, kind);
    let b = random_rhs(matrix.dim(), problem.rhs_seed);
    let mut x = vec![0.0; matrix.dim()];
    let mut result = solver.solve(&b, &mut x);
    if repeats > 1 {
        let mut total = result.seconds;
        for _ in 1..repeats {
            let r = solver.solve(&b, &mut x);
            total += r.seconds;
        }
        result.seconds = total / repeats as f64;
    }
    SolverOutcome {
        problem: problem.name.clone(),
        solver: solver.name(),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{symmetric_suite, SuiteScale};

    #[test]
    fn cpu_and_gpu_nodes_pick_different_preconditioners() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let p = &probs[0];
        let cpu = NodeConfig::Cpu { blocks: 4 }.precond_for(p);
        let gpu = NodeConfig::gpu_default().precond_for(p);
        assert!(matches!(cpu, PrecondKind::BlockJacobiIc0 { .. }));
        assert!(matches!(gpu, PrecondKind::SdAinv { .. }));
        assert_eq!(NodeConfig::cpu_default().label(), "cpu-node");
    }

    #[test]
    fn run_f3r_and_cg_on_tiny_problem() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let p = &probs[0]; // hpcg tiny
        let node = NodeConfig::Cpu { blocks: 4 };
        let budget = RunBudget {
            max_baseline_iterations: 2000,
            ..RunBudget::default()
        };
        let matrix = build_matrix(p, node);
        let f3r = run_solver(
            &matrix,
            p,
            node,
            &budget,
            &SolverKind::F3r {
                scheme: F3rScheme::Fp16,
                params: F3rParams::default(),
            },
            1,
        );
        assert!(f3r.result.converged, "{}: {}", p.name, f3r.result.final_relative_residual);
        assert_eq!(f3r.solver, "fp16-F3R");
        let cg = run_solver(
            &matrix,
            p,
            node,
            &budget,
            &SolverKind::Cg {
                precond_prec: Precision::Fp64,
            },
            1,
        );
        assert!(cg.result.converged);
        assert_eq!(cg.solver, "fp64-CG");
    }

    #[test]
    fn gpu_node_configuration_also_converges() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let p = &probs[2]; // G3_circuit-like (well conditioned)
        let node = NodeConfig::gpu_default();
        let budget = RunBudget::default();
        let matrix = build_matrix(p, node);
        let out = run_solver(
            &matrix,
            p,
            node,
            &budget,
            &SolverKind::F3r {
                scheme: F3rScheme::Fp16,
                params: F3rParams::default(),
            },
            1,
        );
        assert!(out.result.converged, "residual {}", out.result.final_relative_residual);
    }
}
