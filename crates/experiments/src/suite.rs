//! The test-matrix suite (the reproduction of Table 2).
//!
//! The paper evaluates on HPCG/HPGMP benchmark matrices (reproduced exactly,
//! at smaller grid sizes) and on SuiteSparse matrices (each mapped to a
//! synthetic analogue with the same qualitative structure — see DESIGN.md §3).
//! Problems are produced already diagonally scaled, as in Section 5
//! ("we applied diagonal scaling to all matrices"), together with their
//! α_ILU / α_AINV stabilisation factors from Table 2.

use f3r_sparse::gen::{
    anisotropic_poisson_3d, convection_diffusion_3d, elasticity_like_3d, hpcg_matrix,
    hpgmp_matrix, poisson2d_5pt, random_nonsymmetric, random_spd,
};
use f3r_sparse::scaling::jacobi_scale;
use f3r_sparse::{CsrMatrix, MatrixStats};

/// Problem-size scale of the suite.
///
/// The paper runs problems with 0.7M–17M unknowns on an HPC node; the
/// reproduction scales each analogue down so the full experiment set runs on
/// a laptop.  `Tiny` is meant for unit tests and CI, `Small` for the default
/// experiment binaries, `Medium` for longer, more realistic runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Unit-test sizes (n ≈ 0.5–2k).
    Tiny,
    /// Default experiment sizes (n ≈ 4–30k).
    Small,
    /// Longer runs (n ≈ 30–150k).
    Medium,
}

impl SuiteScale {
    /// Parse from the `F3R_SCALE` environment variable (`tiny`/`small`/`medium`).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("F3R_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "tiny" => SuiteScale::Tiny,
            "medium" => SuiteScale::Medium,
            _ => SuiteScale::Small,
        }
    }

    fn grid(self, tiny: usize, small: usize, medium: usize) -> usize {
        match self {
            SuiteScale::Tiny => tiny,
            SuiteScale::Small => small,
            SuiteScale::Medium => medium,
        }
    }
}

/// One test problem of the suite: a diagonally scaled matrix plus metadata.
pub struct TestProblem {
    /// Short name used in reports (e.g. `hpcg_16_16_16`, `audikw_1-like`).
    pub name: String,
    /// The paper matrix this problem stands in for.
    pub paper_analog: String,
    /// Whether the matrix is symmetric (selects CG+IC(0) vs BiCGStab+ILU(0)).
    pub symmetric: bool,
    /// The diagonally scaled coefficient matrix.
    pub matrix: CsrMatrix<f64>,
    /// Diagonal-boost stabilisation factor (α_ILU on the CPU node, α_AINV on
    /// the GPU node; Table 2 lists values in 1.0–1.6).
    pub alpha: f64,
    /// Seed used for the right-hand side of this problem.
    pub rhs_seed: u64,
}

impl TestProblem {
    fn new(
        name: &str,
        paper_analog: &str,
        symmetric: bool,
        matrix: CsrMatrix<f64>,
        alpha: f64,
        rhs_seed: u64,
    ) -> Self {
        Self {
            name: name.to_string(),
            paper_analog: paper_analog.to_string(),
            symmetric,
            matrix: jacobi_scale(&matrix),
            alpha,
            rhs_seed,
        }
    }

    /// Matrix statistics (the Table 2 columns).
    #[must_use]
    pub fn stats(&self) -> MatrixStats {
        MatrixStats::compute(&self.matrix)
    }
}

/// The symmetric (SPD) half of the suite — the problems of Figure 1a /
/// Figure 2a.
#[must_use]
pub fn symmetric_suite(scale: SuiteScale) -> Vec<TestProblem> {
    let g = |t, s, m| scale.grid(t, s, m);
    vec![
        TestProblem::new(
            &format!("hpcg_{0}_{0}_{0}", g(8, 16, 32)),
            "hpcg_7_7_7 … hpcg_8_8_8",
            true,
            hpcg_matrix(g(8, 16, 32), g(8, 16, 32), g(8, 16, 32)),
            1.0,
            101,
        ),
        TestProblem::new(
            &format!("hpcg_{}_{}_{}", g(12, 24, 48), g(8, 16, 32), g(8, 16, 32)),
            "hpcg_8_7_7 (elongated grid)",
            true,
            hpcg_matrix(g(12, 24, 48), g(8, 16, 32), g(8, 16, 32)),
            1.0,
            102,
        ),
        TestProblem::new(
            "G3_circuit-like",
            "G3_circuit (2-D diffusion, ~5 nnz/row)",
            true,
            poisson2d_5pt(g(24, 64, 160), g(24, 64, 160)),
            1.0,
            103,
        ),
        TestProblem::new(
            "ecology2-like",
            "ecology2 / apache2 (2-D diffusion, 5 nnz/row)",
            true,
            poisson2d_5pt(g(20, 56, 128), g(28, 72, 192)),
            1.0,
            104,
        ),
        TestProblem::new(
            "thermal2-like",
            "thermal2 / tmt_sym (anisotropic diffusion, ~7 nnz/row)",
            true,
            anisotropic_poisson_3d(g(10, 22, 40), g(10, 22, 40), g(10, 22, 40), 1.0, 1.0, 1e-2),
            1.0,
            105,
        ),
        TestProblem::new(
            "audikw_1-like",
            "audikw_1 (3-D elasticity, ~82 nnz/row)",
            true,
            elasticity_like_3d(g(5, 9, 14), g(5, 9, 14), g(5, 9, 14), 0.3),
            1.1,
            106,
        ),
        TestProblem::new(
            "Serena-like",
            "Serena / Emilia_923 / Bump_2911 (3-D mechanics, ~44 nnz/row)",
            true,
            elasticity_like_3d(g(5, 10, 16), g(5, 10, 16), g(4, 8, 12), 0.08),
            1.1,
            107,
        ),
        TestProblem::new(
            "ldoor-like",
            "ldoor / Queen_4147 (heavy SPD, random pattern)",
            true,
            random_spd(g(800, 6000, 30_000), 40, 0.4, 108),
            1.1,
            108,
        ),
    ]
}

/// The nonsymmetric half of the suite — the problems of Figure 1b /
/// Figure 2b.
#[must_use]
pub fn nonsymmetric_suite(scale: SuiteScale) -> Vec<TestProblem> {
    let g = |t, s, m| scale.grid(t, s, m);
    vec![
        TestProblem::new(
            &format!("hpgmp_{0}_{0}_{0}", g(8, 16, 32)),
            "hpgmp_7_7_7 … hpgmp_8_8_8",
            false,
            hpgmp_matrix(g(8, 16, 32), g(8, 16, 32), g(8, 16, 32), 0.5),
            1.0,
            201,
        ),
        TestProblem::new(
            &format!("hpgmp_{}_{}_{}", g(12, 24, 48), g(8, 16, 32), g(8, 16, 32)),
            "hpgmp_8_7_7 (elongated grid)",
            false,
            hpgmp_matrix(g(12, 24, 48), g(8, 16, 32), g(8, 16, 32), 0.5),
            1.0,
            202,
        ),
        TestProblem::new(
            "atmosmodd-like",
            "atmosmodd / atmosmodj / atmosmodl (convection–diffusion)",
            false,
            convection_diffusion_3d(g(9, 20, 36), g(9, 20, 36), g(9, 20, 36), 0.5, 0.0, 1.0),
            1.0,
            203,
        ),
        TestProblem::new(
            "Transport-like",
            "Transport (strong convection)",
            false,
            convection_diffusion_3d(g(9, 20, 36), g(9, 20, 36), g(9, 20, 36), 3.0, 1.5, 2.0),
            1.0,
            204,
        ),
        TestProblem::new(
            "tmt_unsym-like",
            "tmt_unsym / t2em (2-D dominated, mildly nonsymmetric)",
            false,
            convection_diffusion_3d(g(18, 48, 110), g(18, 48, 110), 1, 1.0, 0.5, 0.0),
            1.0,
            205,
        ),
        TestProblem::new(
            "ss-like",
            "ss / Freescale1 (irregular pattern)",
            false,
            random_nonsymmetric(g(800, 6000, 30_000), 18, 0.5, 206),
            1.1,
            206,
        ),
        TestProblem::new(
            "vas_stokes-like",
            "vas_stokes_1M / vas_stokes_2M / stokes (hard, irregular)",
            false,
            random_nonsymmetric(g(900, 7000, 36_000), 28, 0.15, 207),
            1.0,
            207,
        ),
    ]
}

/// The full suite (symmetric followed by nonsymmetric problems).
#[must_use]
pub fn full_suite(scale: SuiteScale) -> Vec<TestProblem> {
    let mut all = symmetric_suite(scale);
    all.extend(nonsymmetric_suite(scale));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_symmetry_flags_are_correct() {
        for p in full_suite(SuiteScale::Tiny) {
            let stats = p.stats();
            assert_eq!(
                stats.symmetric, p.symmetric,
                "problem {} has wrong symmetry flag",
                p.name
            );
            assert!(stats.n > 100, "problem {} too small", p.name);
            // diagonal scaling must have produced unit diagonals
            assert!(stats.max_abs <= 1.0 + 1e-9, "problem {} not scaled", p.name);
        }
    }

    #[test]
    fn suite_sizes_grow_with_scale() {
        let tiny: usize = symmetric_suite(SuiteScale::Tiny).iter().map(|p| p.stats().n).sum();
        let small: usize = symmetric_suite(SuiteScale::Small).iter().map(|p| p.stats().n).sum();
        assert!(small > 4 * tiny);
    }

    #[test]
    fn density_families_are_represented() {
        let probs = symmetric_suite(SuiteScale::Tiny);
        let densities: Vec<f64> = probs.iter().map(|p| p.stats().nnz_per_row).collect();
        assert!(densities.iter().any(|&d| d < 8.0), "low-density family missing");
        assert!(densities.iter().any(|&d| d > 40.0), "high-density family missing");
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = full_suite(SuiteScale::Tiny).iter().map(|p| p.name.clone()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
