//! Shared machinery for the parameter-sweep experiments of Section 6
//! (Figures 3–6): everything is measured *relative to fp16-F3R with the
//! default setting*, on both axes used by the paper's scatter/box plots:
//!
//! * **relative convergence speed** — default preconditioner-invocation count
//!   divided by the variant's count (> 1 means the variant converges in fewer
//!   preconditioning steps),
//! * **relative performance** — default wall-clock time divided by the
//!   variant's time (> 1 means the variant is faster).

use crate::runner::SolverOutcome;
use crate::suite::{nonsymmetric_suite, symmetric_suite, SuiteScale, TestProblem};

/// One point of a Figure 3/4/5/6 style scatter plot.
#[derive(Debug, Clone)]
pub struct RelativePoint {
    /// Problem name.
    pub problem: String,
    /// Variant label (e.g. `m4=3`, `F3`, `c=16`, `ω=1.1`).
    pub config: String,
    /// Relative convergence speed (`None` if either solve failed).
    pub rel_convergence: Option<f64>,
    /// Relative execution performance (`None` if either solve failed).
    pub rel_performance: Option<f64>,
}

/// Compute the two relative axes for a variant against the default run.
#[must_use]
pub fn relative_point(
    config: &str,
    default: &SolverOutcome,
    variant: &SolverOutcome,
) -> RelativePoint {
    let ok = default.result.converged && variant.result.converged;
    let rel_convergence = if ok && variant.result.precond_applications > 0 {
        Some(default.result.precond_applications as f64 / variant.result.precond_applications as f64)
    } else {
        None
    };
    let rel_performance = if ok && variant.result.seconds > 0.0 {
        Some(default.result.seconds / variant.result.seconds)
    } else {
        None
    };
    RelativePoint {
        problem: default.problem.clone(),
        config: config.to_string(),
        rel_convergence,
        rel_performance,
    }
}

/// Five-number summary used to report the boxplot panels of Figures 3–5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Largest value.
    pub max: f64,
    /// Number of (finite) samples.
    pub count: usize,
}

/// Compute a five-number summary of the finite values in `values`.
#[must_use]
pub fn summarize(values: &[f64]) -> Option<Summary> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    Some(Summary {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
        count: v.len(),
    })
}

/// The representative problem subset used by the Section 6 sweeps (a mix of
/// symmetric and nonsymmetric problems; the paper sweeps the full suite, the
/// default reproduction uses a subset to keep wall-clock reasonable).
#[must_use]
pub fn sweep_problems(scale: SuiteScale) -> Vec<TestProblem> {
    let sym = symmetric_suite(scale);
    let nonsym = nonsymmetric_suite(scale);
    let mut out = Vec::new();
    for (i, p) in sym.into_iter().enumerate() {
        if matches!(i, 0 | 2 | 5) {
            out.push(p);
        }
    }
    for (i, p) in nonsym.into_iter().enumerate() {
        if matches!(i, 0 | 2 | 4) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precision::CounterSnapshot;
    use f3r_core::convergence::{SolveResult, StopReason};

    fn outcome(name: &str, converged: bool, seconds: f64, preconds: u64) -> SolverOutcome {
        SolverOutcome {
            problem: "p".into(),
            solver: name.into(),
            result: SolveResult {
                converged,
                stop_reason: if converged { StopReason::Converged } else { StopReason::MaxIterations },
                outer_iterations: 10,
                precond_applications: preconds,
                final_relative_residual: 1e-9,
                seconds,
                residual_history: vec![1.0, 1e-9],
                counters: CounterSnapshot::default(),
                solver_name: name.into(),
                fingerprint: None,
            },
        }
    }

    #[test]
    fn relative_point_axes() {
        let default = outcome("default", true, 2.0, 1000);
        let variant = outcome("variant", true, 1.0, 500);
        let p = relative_point("m4=1", &default, &variant);
        assert_eq!(p.rel_convergence, Some(2.0));
        assert_eq!(p.rel_performance, Some(2.0));

        let failed = outcome("variant", false, 1.0, 500);
        let p = relative_point("m4=4", &default, &failed);
        assert!(p.rel_convergence.is_none());
        assert!(p.rel_performance.is_none());
    }

    #[test]
    fn summary_quartiles() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.count, 5);
        assert!(summarize(&[f64::NAN]).is_none());
    }

    #[test]
    fn sweep_subset_mixes_symmetries() {
        let probs = sweep_problems(SuiteScale::Tiny);
        assert_eq!(probs.len(), 6);
        assert!(probs.iter().any(|p| p.symmetric));
        assert!(probs.iter().any(|p| !p.symmetric));
    }
}
