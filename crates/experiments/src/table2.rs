//! Table 2 reproduction: the test-matrix suite and its statistics.

use crate::report::Table;
use crate::suite::{full_suite, SuiteScale};

/// Build the Table 2 style suite description: one row per test problem with
/// `n`, `nnz`, `nnz/n`, symmetry, the α stabilisation factor and the paper
/// matrix the problem stands in for.
#[must_use]
pub fn run(scale: SuiteScale) -> Table {
    let mut table = Table::new(
        "Table 2 — test matrices (synthetic analogues, see DESIGN.md §3)",
        &["matrix", "n", "nnz", "nnz/n", "sym", "alpha", "paper analog"],
    );
    for p in full_suite(scale) {
        let s = p.stats();
        table.push_row(vec![
            p.name.clone(),
            s.n.to_string(),
            s.nnz.to_string(),
            format!("{:.2}", s.nnz_per_row),
            if s.symmetric { "yes" } else { "no" }.to_string(),
            format!("{:.1}", p.alpha),
            p.paper_analog.clone(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_problem() {
        let t = run(SuiteScale::Tiny);
        assert_eq!(t.n_rows(), 15);
        let text = t.to_text();
        assert!(text.contains("hpcg"));
        assert!(text.contains("hpgmp"));
        assert!(text.contains("audikw_1-like"));
    }
}
