//! Table 3 reproduction: number of invocations of the primary preconditioner
//! `M` until convergence.
//!
//! Columns: CG (symmetric) or BiCGStab (nonsymmetric), fp64-FGMRES(64), and
//! the three F3R implementations.  Hyphens mark failed solves, as in the
//! paper.

use f3r_core::prelude::*;
use f3r_precision::Precision;

use crate::report::Table;
use crate::runner::{build_matrix, run_solver, NodeConfig, RunBudget, SolverKind};
use crate::suite::{full_suite, SuiteScale, TestProblem};

/// Preconditioner-invocation counts for one problem.
#[derive(Debug, Clone)]
pub struct CountsRow {
    /// Problem name.
    pub problem: String,
    /// CG or BiCGStab count (depending on symmetry), `None` if it failed.
    pub krylov_baseline: Option<u64>,
    /// fp64-FGMRES(64) count, `None` if it failed.
    pub fgmres64: Option<u64>,
    /// fp64-F3R, fp32-F3R, fp16-F3R counts.
    pub f3r: [Option<u64>; 3],
}

fn count(outcome: &crate::runner::SolverOutcome) -> Option<u64> {
    if outcome.result.converged {
        Some(outcome.result.precond_applications)
    } else {
        None
    }
}

/// Run the Table 3 experiment for one problem.
#[must_use]
pub fn run_problem(problem: &TestProblem, node: NodeConfig, budget: &RunBudget) -> CountsRow {
    let matrix = build_matrix(problem, node);
    let baseline_kind = if problem.symmetric {
        SolverKind::Cg {
            precond_prec: Precision::Fp64,
        }
    } else {
        SolverKind::BiCgStab {
            precond_prec: Precision::Fp64,
        }
    };
    let krylov = run_solver(&matrix, problem, node, budget, &baseline_kind, 1);
    let fgmres = run_solver(
        &matrix,
        problem,
        node,
        budget,
        &SolverKind::Fgmres {
            restart: 64,
            precond_prec: Precision::Fp64,
        },
        1,
    );
    let mut f3r = [None, None, None];
    for (i, scheme) in [F3rScheme::Fp64, F3rScheme::Fp32, F3rScheme::Fp16].iter().enumerate() {
        let out = run_solver(
            &matrix,
            problem,
            node,
            budget,
            &SolverKind::F3r {
                scheme: *scheme,
                params: F3rParams::default(),
            },
            1,
        );
        f3r[i] = count(&out);
    }
    CountsRow {
        problem: problem.name.clone(),
        krylov_baseline: count(&krylov),
        fgmres64: count(&fgmres),
        f3r,
    }
}

/// Run Table 3 for the full suite.
#[must_use]
pub fn run(scale: SuiteScale, node: NodeConfig, budget: &RunBudget) -> Vec<CountsRow> {
    full_suite(scale)
        .iter()
        .map(|p| run_problem(p, node, budget))
        .collect()
}

/// Render the counts as the Table 3 layout.
#[must_use]
pub fn to_table(rows: &[CountsRow]) -> Table {
    let fmt = |v: Option<u64>| v.map_or("-".to_string(), |c| c.to_string());
    let mut table = Table::new(
        "Table 3 — invocations of the primary preconditioner M until convergence",
        &["matrix", "CG/BiCGStab", "fp64-FGMRES(64)", "fp64-F3R", "fp32-F3R", "fp16-F3R"],
    );
    for r in rows {
        table.push_row(vec![
            r.problem.clone(),
            fmt(r.krylov_baseline),
            fmt(r.fgmres64),
            fmt(r.f3r[0]),
            fmt(r.f3r[1]),
            fmt(r.f3r[2]),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::symmetric_suite;

    #[test]
    fn counts_are_consistent_across_f3r_precisions() {
        // The paper's key observation: the three F3R implementations converge
        // in (nearly) the same number of preconditioning steps.
        let probs = symmetric_suite(SuiteScale::Tiny);
        let budget = RunBudget {
            max_baseline_iterations: 3000,
            ..RunBudget::default()
        };
        let row = run_problem(&probs[0], NodeConfig::Cpu { blocks: 4 }, &budget);
        let c64 = row.f3r[0].expect("fp64-F3R converged") as f64;
        let c16 = row.f3r[2].expect("fp16-F3R converged") as f64;
        assert!(
            (c16 - c64).abs() / c64 < 0.35,
            "fp16-F3R count {c16} deviates too much from fp64-F3R count {c64}"
        );
        let table = to_table(std::slice::from_ref(&row));
        assert_eq!(table.n_rows(), 1);
    }
}
