//! A small, self-contained Rust lexer for invariant checking.
//!
//! The rules in this crate reason about *code tokens* — an `unsafe` inside a
//! string literal, a `mul_add` in a doc comment, or a `PAR_…` name in a
//! `#[doc]` attribute must never trip a rule.  A regex over raw source
//! cannot make that distinction, so the checker carries its own lexer.  It
//! handles the token-level subtleties of real Rust source:
//!
//! * line comments (`//`), doc comments (`///`, `//!`) and **nested** block
//!   comments (`/* /* … */ */`, including `/**`/`/*!` doc blocks);
//! * string literals with escapes, raw strings `r"…"`/`r#"…"#` with any
//!   number of hashes, byte strings `b"…"`/`br#"…"#`, and C strings
//!   `c"…"`/`cr#"…"#`;
//! * `'a'` char literals (with escapes such as `'\''` and `'\u{1F600}'`)
//!   versus `'a` lifetimes and `'static`/loop labels;
//! * integer versus float numeric literals (`0x1f` is an int even though it
//!   ends in `f`; `1.` is a float; `0..n` is an int and a range, not a
//!   float), which the raw-cast rule needs to classify cast operands;
//! * identifiers, keywords (kept as plain identifier tokens — the rules
//!   match on text) and single-character punctuation.
//!
//! The output keeps comments in a side table with their line spans so rules
//! can ask "is there a `// SAFETY:` comment directly above line N?" without
//! comments ever appearing in the code-token stream.

/// Kind of one code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `as`, names, …).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Integer literal (`42`, `0x1f`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1.`, `2e-3`, `1f32`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// One punctuation character (`{`, `:`, `#`, …).
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (single character for [`TokKind::Punct`]; string and
    /// char literals keep their quotes/prefixes).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment with its line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// `true` for `///`, `//!`, `/**` and `/*!` doc comments.
    pub doc: bool,
}

/// Lexed view of one source file: code tokens plus a comment side table.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (no comments).
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Number of lines in the file.
    pub n_lines: u32,
}

impl Lexed {
    /// `true` when any *code* token starts on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        // Token and comment vectors are line-ordered; files are small enough
        // that a linear scan per query would do, but rules query per line in
        // tight ladders, so binary-search the token start lines.
        self.toks
            .binary_search_by(|t| t.line.cmp(&line))
            .is_ok()
    }

    /// All comments that touch `line` (start ≤ line ≤ end).
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line <= line && line <= c.end_line)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into code tokens and comments.
///
/// The lexer is permissive: malformed input (an unterminated string, a stray
/// byte) never panics — it degrades to single-character tokens so rules can
/// still run on the rest of the file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let start_line = cur.line;
        let start_pos = cur.pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                // Line comment (incl. /// and //! doc comments).
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = src[start_pos..cur.pos].to_string();
                let doc = text.starts_with("///") || text.starts_with("//!");
                out.comments.push(Comment { line: start_line, end_line: start_line, text, doc });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                // Block comment; Rust block comments nest.
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break, // unterminated: treat rest as comment
                    }
                }
                let text = src[start_pos..cur.pos].to_string();
                let doc = text.starts_with("/**") || text.starts_with("/*!");
                out.comments.push(Comment { line: start_line, end_line: cur.line, text, doc });
            }
            b'\'' => lex_quote(&mut cur, src, &mut out),
            b'"' => lex_string(&mut cur, src, &mut out, start_line),
            _ if is_ident_start(b) => {
                // Raw string / byte string / C string prefixes first: the
                // prefix characters would otherwise lex as an identifier
                // glued to a string.
                if try_prefixed_string(&mut cur, src, &mut out, start_line) {
                    continue;
                }
                while let Some(c) = cur.peek() {
                    if is_ident_cont(c) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                let mut text = &src[start_pos..cur.pos];
                // Raw identifier `r#name`: strip nothing, but swallow the
                // `#name` continuation so `r#fn` is one token.
                if text == "r" && cur.peek() == Some(b'#') && cur.peek_at(1).is_some_and(is_ident_start) {
                    cur.bump();
                    while let Some(c) = cur.peek() {
                        if is_ident_cont(c) {
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    text = &src[start_pos..cur.pos];
                }
                out.toks.push(Tok { kind: TokKind::Ident, text: text.to_string(), line: start_line });
            }
            _ if b.is_ascii_digit() => lex_number(&mut cur, src, &mut out, start_line),
            _ => {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line: start_line,
                });
            }
        }
    }
    out.n_lines = cur.line;
    out
}

/// `'…` — a char literal, a lifetime, or a loop label.
fn lex_quote(cur: &mut Cursor, src: &str, out: &mut Lexed) {
    let start_pos = cur.pos;
    let start_line = cur.line;
    cur.bump(); // the opening '
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: consume escape then closing quote.
            cur.bump();
            cur.bump(); // escape head (n, ', u, x, …)
            // `\u{…}` spans to the closing brace.
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == b'\'' {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: src[start_pos..cur.pos].to_string(),
                line: start_line,
            });
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char literal; `'a` / `'static` is a lifetime.  Scan
            // the identifier, then look for a closing quote.
            cur.bump();
            while let Some(c2) = cur.peek() {
                if is_ident_cont(c2) {
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek() == Some(b'\'') {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: src[start_pos..cur.pos].to_string(),
                    line: start_line,
                });
            } else {
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[start_pos..cur.pos].to_string(),
                    line: start_line,
                });
            }
        }
        Some(_) => {
            // Non-identifier char literal: `'+'`, `' '`, `'0'`, …
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: src[start_pos..cur.pos].to_string(),
                line: start_line,
            });
        }
        None => {
            out.toks.push(Tok { kind: TokKind::Punct, text: "'".into(), line: start_line });
        }
    }
}

/// Ordinary `"…"` string with escapes.
fn lex_string(cur: &mut Cursor, src: &str, out: &mut Lexed, start_line: u32) {
    let start_pos = cur.pos;
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump(); // whatever is escaped, including \" and \\
            }
            b'"' => break,
            _ => {}
        }
    }
    out.toks.push(Tok {
        kind: TokKind::Str,
        text: src[start_pos..cur.pos].to_string(),
        line: start_line,
    });
}

/// Raw / byte / C strings: `r"…"`, `r#"…"#`, `br##"…"##`, `b"…"`, `c"…"`,
/// `cr#"…"#`.  Returns `true` when one was consumed.
fn try_prefixed_string(cur: &mut Cursor, src: &str, out: &mut Lexed, start_line: u32) -> bool {
    let rest = &cur.src[cur.pos..];
    // Longest prefix first so `br#"` is not parsed as ident `br` + junk.
    let (prefix_len, raw) = if rest.starts_with(b"br") || rest.starts_with(b"cr") {
        (2, true)
    } else if rest.starts_with(b"r") {
        (1, true)
    } else if rest.starts_with(b"b") || rest.starts_with(b"c") {
        (1, false)
    } else {
        return false;
    };
    let mut off = prefix_len;
    let mut hashes = 0usize;
    if raw {
        while rest.get(off) == Some(&b'#') {
            hashes += 1;
            off += 1;
        }
    }
    if rest.get(off) != Some(&b'"') {
        return false; // `r` / `b` was just an identifier start after all
    }
    // Commit: consume prefix, hashes and opening quote.
    let start_pos = cur.pos;
    for _ in 0..=off {
        cur.bump();
    }
    if raw {
        // Scan for `"` followed by `hashes` hash characters; no escapes.
        'scan: while let Some(c) = cur.bump() {
            if c == b'"' {
                for k in 0..hashes {
                    if cur.peek_at(k) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    } else {
        while let Some(c) = cur.bump() {
            match c {
                b'\\' => {
                    cur.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }
    out.toks.push(Tok {
        kind: TokKind::Str,
        text: src[start_pos..cur.pos].to_string(),
        line: start_line,
    });
    true
}

/// Numeric literal; decides int vs float.
fn lex_number(cur: &mut Cursor, src: &str, out: &mut Lexed, start_line: u32) {
    let start_pos = cur.pos;
    let mut float = false;
    if cur.peek() == Some(b'0')
        && matches!(cur.peek_at(1), Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B'))
    {
        // Radix literal: always an integer; `e`/`f` are digits or suffixes
        // here (`0x1f`), never exponents.
        cur.bump();
        cur.bump();
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() || c == b'_' {
                cur.bump();
            } else {
                break;
            }
        }
        // Fractional part: a `.` NOT followed by another `.` (range) or an
        // identifier start (method call like `1.max(2)`).
        if cur.peek() == Some(b'.')
            && cur.peek_at(1) != Some(b'.')
            && !cur.peek_at(1).is_some_and(is_ident_start)
        {
            float = true;
            cur.bump();
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == b'_' {
                    cur.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
            let mut k = 1;
            if matches!(cur.peek_at(1), Some(b'+') | Some(b'-')) {
                k = 2;
            }
            if cur.peek_at(k).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                for _ in 0..k {
                    cur.bump();
                }
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit() || c == b'_' {
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, …): `f32`/`f64` forces float.
        if cur.peek().is_some_and(is_ident_start) {
            let sfx_start = cur.pos;
            while let Some(c) = cur.peek() {
                if is_ident_cont(c) {
                    cur.bump();
                } else {
                    break;
                }
            }
            let sfx = &src[sfx_start..cur.pos];
            if sfx == "f32" || sfx == "f64" || sfx == "f16" {
                float = true;
            }
        }
    }
    out.toks.push(Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text: src[start_pos..cur.pos].to_string(),
        line: start_line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_keywords() {
        let l = lex(r##"let s = "unsafe { mul_add }"; let r = r#"unsafe"#;"##);
        assert!(l.toks.iter().all(|t| !t.is_ident("unsafe")));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn raw_string_hashes_and_quotes() {
        // The doubled hashes swallow the single-hash terminator inside.
        let l = lex("let s = r##\"a \" quote and \"# end\"##; x");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(l.toks.iter().any(|t| t.is_ident("x")));
        assert!(l.toks.iter().all(|t| !t.is_ident("quote")));
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let s = 'x'; loop_label: for _ in 'outer: 0..1 {} }");
        let lifetimes: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.clone()).collect();
        let chars: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Char).map(|t| t.text.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'outer"]);
        assert_eq!(chars, vec!["'a'", "'x'"]);
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let a = '\''; let b = '\n'; let c = '\u{1F600}'; let l: &'static str;");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner unsafe */ still comment */ b");
        assert_eq!(kinds("a /* x /* y */ z */ b").len(), 2);
        assert_eq!(l.toks.len(), 2);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner unsafe"));
    }

    #[test]
    fn int_vs_float() {
        let t = kinds("0x1f 1.0 1. 2e-3 1_000u64 1f32 0..n 3.max(4)");
        let f: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Float).map(|(_, s)| s.clone()).collect();
        let i: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Int).map(|(_, s)| s.clone()).collect();
        assert_eq!(f, vec!["1.0", "1.", "2e-3", "1f32"]);
        assert_eq!(i, vec!["0x1f", "1_000u64", "0", "3", "4"]);
    }

    #[test]
    fn doc_comments_flagged() {
        let l = lex("/// doc\n//! inner\n// plain\n/** block doc */\nfn f() {}");
        let docs: Vec<_> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, true]);
    }

    #[test]
    fn comment_line_spans() {
        let l = lex("/* a\nb\nc */ fn f() {}");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 3);
        assert_eq!(l.toks[0].line, 3);
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let l = lex(r##"let a = b"unsafe"; let b = br#"x"#; let r#fn = 1;"##);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert!(l.toks.iter().any(|t| t.text == "r#fn"));
    }
}
