//! # f3r-lint — first-party invariant checker
//!
//! A registry-free static-analysis pass for this workspace.  It carries its
//! own small Rust lexer ([`lexer`]) — raw strings, nested block comments,
//! char literals vs lifetimes, doc comments — so rules fire on *code*, never
//! on text inside strings or comments, and enforces the repository's
//! documented invariants as named rules ([`rules`]) with `file:line`
//! diagnostics, per-site suppression, a `--deny` mode for CI, and a JSON
//! report ([`report`]) with a per-crate `unsafe` inventory.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p f3r-lint --release -- --deny --json lint_report.json
//! ```
//!
//! Suppress a single site with a justified allow comment on, or directly
//! above, the offending line:
//!
//! ```text
//! // f3r-lint: allow(no-raw-float-casts-in-kernels): seed-parity reference path
//! ```

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

use report::Inventory;
use rules::{Suppressed, Violation};

/// Aggregated result of linting a source tree.
#[derive(Debug, Default)]
pub struct LintRun {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// All suppressed sites, same order.
    pub suppressed: Vec<Suppressed>,
    /// Per-crate `unsafe` inventory.
    pub inventory: Inventory,
}

impl LintRun {
    /// Render the JSON report for this run.
    pub fn to_json(&self) -> String {
        report::render(self.files_scanned, &self.violations, &self.suppressed, &self.inventory)
    }
}

/// Lint every first-party `.rs` file under `root`.
pub fn lint_root(root: &Path) -> std::io::Result<LintRun> {
    let files = walk::collect(root)?;
    let mut run = LintRun { files_scanned: files.len(), ..LintRun::default() };
    for f in &files {
        let src = fs::read_to_string(&f.abs)?;
        let outcome = rules::check_file(&f.rel, &src);
        run.violations.extend(outcome.violations);
        run.suppressed.extend(outcome.suppressed);
        if !outcome.unsafe_sites.is_empty() {
            let entry = run.inventory.entry(f.crate_name.clone()).or_default();
            entry.extend(outcome.unsafe_sites.into_iter().map(|s| (f.rel.clone(), s)));
        }
    }
    run.violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    run.suppressed.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Ok(run)
}
