//! CLI entry point for `f3r-lint`.
//!
//! ```text
//! f3r-lint [--deny] [--json PATH] [--root PATH] [--quiet]
//! ```
//!
//! Without `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` containing `[workspace]`.
//! `--deny` exits non-zero when any violation is found (CI mode).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use f3r_lint::{lint_root, rules::RULES};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: f3r-lint [--deny] [--json PATH] [--root PATH] [--quiet]");
    eprintln!();
    eprintln!("rules:");
    for (name, desc) in RULES {
        eprintln!("  {name:<34} {desc}");
    }
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut quiet = false;
    let mut json: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("f3r-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let run = match lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("f3r-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json {
        if let Err(e) = write_report(path, &run.to_json()) {
            eprintln!("f3r-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !quiet {
        for v in &run.violations {
            eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        let total_unsafe: usize = run.inventory.values().map(|v| v.len()).sum();
        let documented: usize = run
            .inventory
            .values()
            .map(|v| v.iter().filter(|(_, s)| s.documented).count())
            .sum();
        eprintln!(
            "f3r-lint: {} files, {} violation(s), {} suppressed, \
             unsafe sites: {documented}/{total_unsafe} documented",
            run.files_scanned,
            run.violations.len(),
            run.suppressed.len(),
        );
    }

    if deny && !run.violations.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn write_report(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}
