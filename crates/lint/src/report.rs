//! JSON report emission (hand-rolled — the workspace carries no serde).
//!
//! Schema (`lint_report.json`):
//!
//! ```text
//! {
//!   "schema": "f3r-lint-report/1",
//!   "files_scanned": <int>,
//!   "rules": [{"name": …, "description": …}, …],
//!   "violations": [{"rule", "file", "line", "message"}, …],
//!   "suppressed": [{"rule", "file", "line", "reason"}, …],
//!   "unsafe_inventory": {
//!     "<crate>": {"total", "documented", "by_kind": {"block": n, …},
//!                  "sites": [{"file", "line", "kind", "documented"}, …]},
//!     …
//!   }
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Suppressed, UnsafeSite, Violation, RULES};

/// Per-crate unsafe inventory entry: `(file, site)` pairs.
pub type Inventory = BTreeMap<String, Vec<(String, UnsafeSite)>>;

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full report as pretty-printed JSON.
pub fn render(
    files_scanned: usize,
    violations: &[Violation],
    suppressed: &[Suppressed],
    inventory: &Inventory,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"f3r-lint-report/1\",\n");
    let _ = writeln!(s, "  \"files_scanned\": {files_scanned},");

    s.push_str("  \"rules\": [\n");
    for (i, (name, desc)) in RULES.iter().enumerate() {
        let comma = if i + 1 < RULES.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"description\": \"{}\"}}{comma}",
            esc(name),
            esc(desc)
        );
    }
    s.push_str("  ],\n");

    s.push_str("  \"violations\": [\n");
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 < violations.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}",
            esc(v.rule),
            esc(&v.file),
            v.line,
            esc(&v.message)
        );
    }
    s.push_str("  ],\n");

    s.push_str("  \"suppressed\": [\n");
    for (i, v) in suppressed.iter().enumerate() {
        let comma = if i + 1 < suppressed.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{comma}",
            esc(&v.rule),
            esc(&v.file),
            v.line,
            esc(&v.reason)
        );
    }
    s.push_str("  ],\n");

    s.push_str("  \"unsafe_inventory\": {\n");
    let n_crates = inventory.len();
    for (ci, (crate_name, sites)) in inventory.iter().enumerate() {
        let documented = sites.iter().filter(|(_, s)| s.documented).count();
        let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
        for (_, site) in sites {
            *by_kind.entry(site.kind.name()).or_insert(0) += 1;
        }
        let _ = writeln!(s, "    \"{}\": {{", esc(crate_name));
        let _ = writeln!(s, "      \"total\": {},", sites.len());
        let _ = writeln!(s, "      \"documented\": {documented},");
        let kinds: Vec<String> =
            by_kind.iter().map(|(k, n)| format!("\"{k}\": {n}")).collect();
        let _ = writeln!(s, "      \"by_kind\": {{{}}},", kinds.join(", "));
        s.push_str("      \"sites\": [\n");
        for (i, (file, site)) in sites.iter().enumerate() {
            let comma = if i + 1 < sites.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \
                 \"documented\": {}}}{comma}",
                esc(file),
                site.line,
                site.kind.name(),
                site.documented
            );
        }
        s.push_str("      ]\n");
        let comma = if ci + 1 < n_crates { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::UnsafeKind;

    #[test]
    fn escapes_and_shape() {
        let violations = vec![Violation {
            rule: "x",
            file: "a\\b.rs".into(),
            line: 3,
            message: "say \"hi\"\n".into(),
        }];
        let mut inv = Inventory::new();
        inv.insert(
            "c".into(),
            vec![("f.rs".into(), UnsafeSite { line: 1, kind: UnsafeKind::Block, documented: true })],
        );
        let s = render(2, &violations, &[], &inv);
        assert!(s.contains("\"a\\\\b.rs\""));
        assert!(s.contains("say \\\"hi\\\"\\n"));
        assert!(s.contains("\"files_scanned\": 2"));
        assert!(s.contains("\"by_kind\": {\"block\": 1}"));
        assert!(s.contains("\"documented\": 1,"));
    }
}
