//! The named invariant rules and the per-file analysis that drives them.
//!
//! Each rule enforces one convention this repository established in prose
//! (see `docs/ARCHITECTURE.md` § *Invariants and enforcement* for the PR
//! that introduced each one).  Rules work on the token stream of
//! [`crate::lexer`], so nothing inside strings, comments or doc examples can
//! trip them, and every diagnostic carries a `file:line`.
//!
//! # Suppression
//!
//! A violation can be silenced per site with a comment — on the same line or
//! in the comment block directly above — of the form:
//!
//! ```text
//! // f3r-lint: allow(rule-name): reason why this site is exempt
//! ```
//!
//! The reason is mandatory: a suppression without one is itself reported
//! (`malformed-suppression`).  Suppressions are recorded in the JSON report
//! so exemptions stay auditable.

use std::collections::HashSet;

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// Every `unsafe` block / fn / impl / trait carries a `// SAFETY:` comment
/// (or, for functions, a `# Safety` doc section) justifying it.
pub const RULE_UNSAFE: &str = "unsafe-needs-safety-comment";
/// No raw `as f16/f32/f64` float-to-float casts in the hot kernel modules:
/// conversions route through `Scalar::widen`/`narrow`/`FromScalar` so the
/// single-widening convention stays auditable in one place.
pub const RULE_FLOAT_CAST: &str = "no-raw-float-casts-in-kernels";
/// No `mul_add` in the element-wise update kernels: fused multiply-add
/// breaks the bitwise SIMD==scalar parity contract.
pub const RULE_MUL_ADD: &str = "no-mul-add-in-elementwise-kernels";
/// Every `#[target_feature(enable = …)]` function is `unsafe fn` and lives
/// in `f3r-simd`, behind the detected-backend dispatch.
pub const RULE_TARGET_FEATURE: &str = "target-feature-gate";
/// Every `Ordering::…` use in the `f3r-parallel` pool carries an
/// `// ordering:` justification comment.
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering-documented";
/// Parallel dispatch thresholds (`PAR_*`, `MIN_*_PER_TASK`) are defined only
/// in `f3r_parallel::thresholds`, the single home of the dispatch policy.
pub const RULE_PAR_THRESHOLDS: &str = "par-thresholds-single-home";
/// A `f3r-lint: allow(...)` comment that names no rule or gives no reason.
pub const RULE_MALFORMED_SUPPRESSION: &str = "malformed-suppression";

/// All rules with one-line descriptions (for reports and `--help`).
pub const RULES: &[(&str, &str)] = &[
    (RULE_UNSAFE, "every unsafe block/fn/impl carries a SAFETY justification"),
    (RULE_FLOAT_CAST, "no raw float-to-float `as` casts in hot kernel modules"),
    (RULE_MUL_ADD, "no mul_add in element-wise update kernels (bitwise parity)"),
    (RULE_TARGET_FEATURE, "#[target_feature] fns are unsafe and live in f3r-simd"),
    (RULE_ATOMIC_ORDERING, "every atomic Ordering in the pool and serve crates has an `ordering:` note"),
    (RULE_PAR_THRESHOLDS, "PAR_*/MIN_*_PER_TASK constants live in f3r_parallel::thresholds"),
    (RULE_MALFORMED_SUPPRESSION, "f3r-lint allow() comments must name rules and give a reason"),
];

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

/// One suppressed (allowlisted) site, kept for the audit trail.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Rule that would have fired.
    pub rule: String,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line of the suppressed site.
    pub line: u32,
    /// The mandatory justification from the allow comment.
    pub reason: String,
}

/// Kind of an `unsafe` site, for the per-crate inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe fn` definition or trait-method declaration.
    Fn,
    /// `unsafe impl`.
    Impl,
    /// `unsafe trait`.
    Trait,
    /// `unsafe extern` block.
    Extern,
}

impl UnsafeKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Extern => "extern",
        }
    }
}

/// One `unsafe` site found in a file (inventory entry).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// What the keyword introduces.
    pub kind: UnsafeKind,
    /// Whether a `SAFETY:` comment (or `# Safety` doc section) covers it.
    pub documented: bool,
}

/// Everything the checker produced for one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations that survived suppression.
    pub violations: Vec<Violation>,
    /// Sites silenced by a well-formed allow comment.
    pub suppressed: Vec<Suppressed>,
    /// All `unsafe` sites (documented or not) for the inventory.
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Lex `source` and run every rule that applies to `rel_path`.
pub fn check_file(rel_path: &str, source: &str) -> FileOutcome {
    let lx = lex(source);
    let an = Analysis::new(rel_path, &lx);
    let mut out = FileOutcome::default();
    out.violations.extend(an.malformed.iter().cloned());

    rule_unsafe(&an, &mut out);
    rule_float_cast(&an, &mut out);
    rule_mul_add(&an, &mut out);
    rule_target_feature(&an, &mut out);
    rule_atomic_ordering(&an, &mut out);
    rule_par_thresholds(&an, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Per-file analysis scaffolding.
// ---------------------------------------------------------------------------

struct Suppression {
    rules: Vec<String>,
    reason: String,
    /// Lines the suppression covers (comment span through the first
    /// non-attribute code line below, so it reaches past attributes).
    lines: (u32, u32),
}

struct Analysis<'a> {
    path: &'a str,
    lx: &'a Lexed,
    /// Token indices that are part of a `#[…]` / `#![…]` attribute.
    attr_tok: Vec<bool>,
    /// Lines carrying at least one non-attribute code token.
    code_lines: HashSet<u32>,
    /// Lines carrying attribute tokens.
    attr_lines: HashSet<u32>,
    /// Lines covered by at least one comment.
    comment_lines: HashSet<u32>,
    /// Line ranges of `#[cfg(test)]`-gated items.
    test_ranges: Vec<(u32, u32)>,
    suppressions: Vec<Suppression>,
    malformed: Vec<Violation>,
}

impl<'a> Analysis<'a> {
    fn new(path: &'a str, lx: &'a Lexed) -> Self {
        let attr_tok = attribute_tokens(lx);
        let mut code_lines = HashSet::new();
        let mut attr_lines = HashSet::new();
        for (i, t) in lx.toks.iter().enumerate() {
            if attr_tok[i] {
                attr_lines.insert(t.line);
            } else {
                code_lines.insert(t.line);
            }
        }
        let mut comment_lines = HashSet::new();
        for c in &lx.comments {
            for l in c.line..=c.end_line {
                comment_lines.insert(l);
            }
        }
        let test_ranges = test_regions(lx, &attr_tok);
        let mut an = Analysis {
            path,
            lx,
            attr_tok,
            code_lines,
            attr_lines,
            comment_lines,
            test_ranges,
            suppressions: Vec::new(),
            malformed: Vec::new(),
        };
        an.collect_suppressions();
        an
    }

    fn collect_suppressions(&mut self) {
        let known: HashSet<&str> = RULES.iter().map(|(n, _)| *n).collect();
        for c in self.lx.comments.iter() {
            if c.doc {
                continue; // doc comments document the syntax; only plain
                          // comments act as suppressions
            }
            let Some(at) = c.text.find("f3r-lint:") else { continue };
            let rest = c.text[at + "f3r-lint:".len()..].trim_start();
            let parsed = parse_allow(rest);
            let (rules, reason) = match parsed {
                Some(v) => v,
                None => {
                    self.malformed.push(Violation {
                        rule: RULE_MALFORMED_SUPPRESSION,
                        file: self.path.to_string(),
                        line: c.line,
                        message: "malformed f3r-lint comment: expected \
                                  `f3r-lint: allow(rule-name): reason`"
                            .into(),
                    });
                    continue;
                }
            };
            for r in &rules {
                if !known.contains(r.as_str()) {
                    self.malformed.push(Violation {
                        rule: RULE_MALFORMED_SUPPRESSION,
                        file: self.path.to_string(),
                        line: c.line,
                        message: format!("f3r-lint allow() names unknown rule `{r}`"),
                    });
                }
            }
            // The suppression reaches from the comment to the first
            // non-attribute code line below it (attributes may sit between
            // the comment and the flagged construct).  A trailing comment on
            // a code line covers that line only.
            let end = if self.code_lines.contains(&c.line) {
                c.end_line
            } else {
                let mut e = c.end_line;
                for t in &self.lx.toks {
                    if t.line > c.end_line && self.code_lines.contains(&t.line) {
                        e = t.line;
                        break;
                    }
                }
                e
            };
            self.suppressions.push(Suppression { rules, reason, lines: (c.line, end) });
        }
    }

    /// If a suppression for `rule` covers `line`, record it and return true.
    fn suppressed(&self, rule: &'static str, line: u32, out: &mut FileOutcome) -> bool {
        for s in &self.suppressions {
            if line >= s.lines.0 && line <= s.lines.1 && s.rules.iter().any(|r| r == rule) {
                out.suppressed.push(Suppressed {
                    rule: rule.to_string(),
                    file: self.path.to_string(),
                    line,
                    reason: s.reason.clone(),
                });
                return true;
            }
        }
        false
    }

    fn report(&self, rule: &'static str, line: u32, message: String, out: &mut FileOutcome) {
        if !self.suppressed(rule, line, out) {
            out.violations.push(Violation { rule, file: self.path.to_string(), line, message });
        }
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// Is there a comment matching `pred` on `line` or in the contiguous
    /// comment/attribute block directly above it?  Blank lines and
    /// non-attribute code break the search, mirroring clippy's
    /// `undocumented_unsafe_blocks` placement rules.
    fn marker_above(&self, line: u32, pred: impl Fn(&Comment) -> bool) -> bool {
        if self.lx.comments_on_line(line).any(&pred) {
            return true;
        }
        let mut k = line.saturating_sub(1);
        while k >= 1 {
            if self.code_lines.contains(&k) {
                return false;
            }
            if self.lx.comments_on_line(k).any(&pred) {
                return true;
            }
            if !self.comment_lines.contains(&k) && !self.attr_lines.contains(&k) {
                return false; // blank line
            }
            k -= 1;
        }
        false
    }

    /// Previous / next non-attribute code token relative to index `i`.
    fn prev_code(&self, i: usize) -> Option<&Tok> {
        (0..i).rev().find(|&j| !self.attr_tok[j]).map(|j| &self.lx.toks[j])
    }

    fn next_code(&self, i: usize) -> Option<(usize, &Tok)> {
        (i + 1..self.lx.toks.len())
            .find(|&j| !self.attr_tok[j])
            .map(|j| (j, &self.lx.toks[j]))
    }
}

/// Parse `allow(rule, rule2): reason` → rule list + reason.
fn parse_allow(rest: &str) -> Option<(Vec<String>, String)> {
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let mut reason = rest[close + 1..].trim();
    reason = reason.trim_start_matches([':', '-', '—', ' ']).trim();
    let reason = reason.trim_end_matches("*/").trim();
    if reason.is_empty() {
        return None;
    }
    Some((rules, reason.to_string()))
}

/// Mark every token that belongs to an outer/inner attribute.
fn attribute_tokens(lx: &Lexed) -> Vec<bool> {
    let mut mark = vec![false; lx.toks.len()];
    let mut i = 0;
    while i < lx.toks.len() {
        if lx.toks[i].is_punct('#') {
            let mut j = i + 1;
            if j < lx.toks.len() && lx.toks[j].is_punct('!') {
                j += 1;
            }
            if j < lx.toks.len() && lx.toks[j].is_punct('[') {
                let mut depth = 0usize;
                let mut k = j;
                while k < lx.toks.len() {
                    if lx.toks[k].is_punct('[') {
                        depth += 1;
                    } else if lx.toks[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                for m in mark.iter_mut().take(k.min(lx.toks.len() - 1) + 1).skip(i) {
                    *m = true;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    mark
}

/// Line ranges of items gated behind `#[cfg(test)]` (and `#[cfg(all(test,…))]`,
/// but not `#[cfg(not(test))]`): the braced body following the attribute.
fn test_regions(lx: &Lexed, attr_tok: &[bool]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        // Find `#[cfg(… test …)]` attribute spans.
        if toks[i].is_punct('#')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('[')
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        {
            let mut depth = 0usize;
            let mut k = i + 1;
            let mut saw_test = false;
            let mut saw_not = false;
            while k < toks.len() {
                if toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[k].is_ident("test") {
                    saw_test = true;
                } else if toks[k].is_ident("not") {
                    saw_not = true;
                }
                k += 1;
            }
            if saw_test && !saw_not {
                // Skip any further attributes, then find the item's braces
                // (a `;` first means a braceless item — no region).
                let mut j = k + 1;
                while j < toks.len() && attr_tok[j] {
                    j += 1;
                }
                let mut brace_start = None;
                while j < toks.len() {
                    if toks[j].is_punct(';') {
                        break;
                    }
                    if toks[j].is_punct('{') {
                        brace_start = Some(j);
                        break;
                    }
                    j += 1;
                }
                if let Some(b) = brace_start {
                    let mut depth = 0usize;
                    let mut e = b;
                    while e < toks.len() {
                        if toks[e].is_punct('{') {
                            depth += 1;
                        } else if toks[e].is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        e += 1;
                    }
                    let end_line = toks.get(e).map_or(lx.n_lines, |t| t.line);
                    ranges.push((toks[i].line, end_line));
                    i = e + 1;
                    continue;
                }
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

// ---------------------------------------------------------------------------
// Rule: unsafe-needs-safety-comment.
// ---------------------------------------------------------------------------

fn safety_marker(c: &Comment) -> bool {
    if c.doc {
        c.text.contains("# Safety") || c.text.contains("SAFETY:")
    } else {
        c.text.contains("SAFETY:")
    }
}

fn rule_unsafe(an: &Analysis, out: &mut FileOutcome) {
    for (i, t) in an.lx.toks.iter().enumerate() {
        if !t.is_ident("unsafe") || an.attr_tok[i] {
            continue;
        }
        let Some((_, n)) = an.next_code(i) else { continue };
        let kind = if n.is_punct('{') {
            UnsafeKind::Block
        } else if n.is_ident("fn") {
            UnsafeKind::Fn
        } else if n.is_ident("impl") {
            UnsafeKind::Impl
        } else if n.is_ident("trait") {
            UnsafeKind::Trait
        } else if n.is_ident("extern") {
            UnsafeKind::Extern
        } else {
            continue; // e.g. 2024-style `#[unsafe(...)]` internals
        };
        // `unsafe fn` / `unsafe extern … fn` in *type* position
        // (`call: unsafe fn(…)`, `as unsafe fn`, `= unsafe extern "C" fn(…)`)
        // declares no new obligation site.  Blocks/impls/traits cannot
        // appear in type position, so only the fn forms get this check.
        if matches!(kind, UnsafeKind::Fn | UnsafeKind::Extern) {
            if let Some(p) = an.prev_code(i) {
                if matches!(p.text.as_str(), ":" | "(" | "," | "<" | "&" | "|" | "=" | ">")
                    || p.is_ident("as")
                    || p.is_ident("dyn")
                {
                    continue;
                }
            }
        }
        let documented = an.marker_above(t.line, safety_marker);
        out.unsafe_sites.push(UnsafeSite { line: t.line, kind, documented });
        if !documented {
            an.report(
                RULE_UNSAFE,
                t.line,
                format!(
                    "`unsafe {}` without a `// SAFETY:` comment (or `# Safety` doc \
                     section) directly above",
                    kind.name()
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-float-casts-in-kernels.
// ---------------------------------------------------------------------------

/// Hot kernel modules covered by the raw-cast rule.  The conversion helpers
/// themselves (`f3r-precision`'s `scalar.rs`/`convert.rs`) are the one place
/// raw float casts are *supposed* to live, so that crate is not listed; the
/// seed-reference kernels (`reference.rs`) reproduce historical semantics
/// and are exempt by design.
const CAST_SCOPE: &[&str] = &[
    "crates/sparse/src/spmv.rs",
    "crates/sparse/src/blas1.rs",
    "crates/sparse/src/sell.rs",
    "crates/sparse/src/csr.rs",
    "crates/sparse/src/scaling.rs",
    "crates/simd/src/",
    "crates/core/src/basis.rs",
    "crates/core/src/block.rs",
    "crates/core/src/fgmres.rs",
    "crates/core/src/richardson.rs",
];

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|s| {
        if s.ends_with('/') {
            path.starts_with(s)
        } else {
            path == *s
        }
    })
}

/// Identifier names the rule treats as integer-valued (index/size casts are
/// allowlisted by the rule itself, not by per-site comments).
fn int_like_name(name: &str) -> bool {
    const EXACT: &[&str] = &[
        "len", "nnz", "dim", "count", "idx", "n", "m", "k", "i", "j", "width", "height",
        "stride", "rows", "cols", "window", "iterations",
    ];
    EXACT.contains(&name)
        || name.starts_with("n_")
        || name.starts_with("num_")
        || name.ends_with("_count")
        || name.ends_with("_len")
        || name.ends_with("_idx")
        || name.ends_with("_rows")
        || name.ends_with("_cols")
        || name.ends_with("_dim")
        || name.ends_with("_iterations")
}

/// Names that mark the operand as definitely floating point.
fn float_hint_name(name: &str) -> bool {
    matches!(
        name,
        "to_f32" | "to_f64" | "powf" | "powi" | "sqrt" | "abs" | "ln" | "log2" | "log10"
            | "exp" | "sin" | "cos" | "recip" | "from_f32" | "from_f64"
    )
}

fn rule_float_cast(an: &Analysis, out: &mut FileOutcome) {
    if !in_scope(an.path, CAST_SCOPE) {
        return;
    }
    let toks = &an.lx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("as") || an.attr_tok[i] {
            continue;
        }
        let Some(tgt) = toks.get(i + 1) else { continue };
        if !(tgt.is_ident("f16") || tgt.is_ident("f32") || tgt.is_ident("f64")) {
            continue;
        }
        if an.in_test(toks[i].line) {
            continue; // test data generation, not kernel code
        }
        // Capture the minimal cast operand by scanning left over balanced
        // groups and `.`/`::` chains, then classify it.
        let operand = capture_operand(toks, i);
        let has_float_lit = operand.iter().any(|t| t.kind == TokKind::Float);
        let has_int_lit = operand.iter().any(|t| t.kind == TokKind::Int);
        let float_hint = operand
            .iter()
            .any(|t| t.kind == TokKind::Ident && float_hint_name(&t.text));
        // Rightmost identifier outside any parentheses is the operand's
        // "name" (`self.nnz() as f64` → `nnz`; `update_count as f64` →
        // `update_count`).
        let name = operand_name(&operand);
        let int_name = name.as_deref().is_some_and(int_like_name);
        let allowed = !has_float_lit && !float_hint && (has_int_lit || int_name);
        if !allowed {
            an.report(
                RULE_FLOAT_CAST,
                toks[i].line,
                format!(
                    "raw `as {}` cast in a hot kernel module; route the conversion \
                     through `Scalar::widen`/`narrow`/`FromScalar` (integer-source \
                     casts are recognised by name — rename the operand if it is an \
                     index/size, or suppress with a reason)",
                    tgt.text
                ),
                out,
            );
        }
    }
}

/// Tokens of the minimal expression to the left of the `as` at index `i`,
/// in source order.
fn capture_operand(toks: &[Tok], i: usize) -> Vec<&Tok> {
    let mut j = i as isize - 1;
    let mut depth = 0usize;
    let mut rev: Vec<&Tok> = Vec::new();
    while j >= 0 {
        let t = &toks[j as usize];
        let c = if t.kind == TokKind::Punct { t.text.chars().next().unwrap_or(' ') } else { ' ' };
        if c == ')' || c == ']' {
            depth += 1;
            rev.push(t);
        } else if c == '(' || c == '[' {
            if depth == 0 {
                break; // opening group that contains the cast: stop outside it
            }
            depth -= 1;
            rev.push(t);
        } else if depth > 0 {
            rev.push(t);
        } else {
            match t.kind {
                TokKind::Ident | TokKind::Int | TokKind::Float | TokKind::Lifetime => {
                    // `x as f64 as f32` keeps consuming through the first
                    // cast so the chain is classified as one operand.
                    rev.push(t);
                }
                TokKind::Punct if c == '.' || c == ':' => rev.push(t),
                _ => break,
            }
        }
        j -= 1;
    }
    rev.reverse();
    rev
}

/// Rightmost identifier of the operand that sits outside any group.
fn operand_name(operand: &[&Tok]) -> Option<String> {
    let mut depth = 0usize;
    for t in operand.iter().rev() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => depth = depth.saturating_sub(1),
                _ => {}
            }
        } else if t.kind == TokKind::Ident && depth == 0 {
            return Some(t.text.clone());
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule: no-mul-add-in-elementwise-kernels.
// ---------------------------------------------------------------------------

/// Modules holding the element-wise update kernels whose SIMD twins promise
/// bitwise parity.  `reference.rs` (the preserved seed kernels) and the
/// `Scalar` trait in `f3r-precision` deliberately keep `mul_add` and are
/// outside this scope.
const MUL_ADD_SCOPE: &[&str] = &[
    "crates/sparse/src/spmv.rs",
    "crates/sparse/src/blas1.rs",
    "crates/sparse/src/sell.rs",
    "crates/simd/src/",
];

fn rule_mul_add(an: &Analysis, out: &mut FileOutcome) {
    if !in_scope(an.path, MUL_ADD_SCOPE) {
        return;
    }
    for (i, t) in an.lx.toks.iter().enumerate() {
        if t.is_ident("mul_add") && !an.attr_tok[i] && !an.in_test(t.line) {
            an.report(
                RULE_MUL_ADD,
                t.line,
                "`mul_add` in an element-wise kernel module breaks the bitwise \
                 SIMD==scalar parity contract; use separate multiply and add"
                    .into(),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: target-feature-gate.
// ---------------------------------------------------------------------------

fn rule_target_feature(an: &Analysis, out: &mut FileOutcome) {
    let toks = &an.lx.toks;
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && an.attr_tok[i]) {
            i += 1;
            continue;
        }
        // Attribute head: `#[` or `#![` then the attribute path.
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct('!') {
            j += 1;
        }
        if !(j < toks.len() && toks[j].is_punct('[')) {
            i += 1;
            continue;
        }
        if !toks.get(j + 1).is_some_and(|t| t.is_ident("target_feature")) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        if !an.path.starts_with("crates/simd/") {
            an.report(
                RULE_TARGET_FEATURE,
                line,
                "#[target_feature] outside f3r-simd: raw SIMD entry points must \
                 live behind the detected-backend dispatch in crates/simd"
                    .into(),
                out,
            );
        }
        // Find the end of this attribute, skip any further attributes, then
        // require `unsafe` before the `fn`.
        let mut depth = 0usize;
        let mut k = j;
        while k < toks.len() {
            if toks[k].is_punct('[') {
                depth += 1;
            } else if toks[k].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let mut m = k + 1;
        while m < toks.len() && an.attr_tok[m] {
            m += 1;
        }
        let mut saw_unsafe = false;
        let mut saw_fn = false;
        let scan_end = (m + 12).min(toks.len());
        for t in &toks[m..scan_end] {
            if t.is_ident("unsafe") {
                saw_unsafe = true;
            }
            if t.is_ident("fn") {
                saw_fn = true;
                break;
            }
            if t.is_punct(';') || t.is_punct('{') {
                break;
            }
        }
        if saw_fn && !saw_unsafe {
            an.report(
                RULE_TARGET_FEATURE,
                line,
                "#[target_feature] fn must be declared `unsafe fn`: callers must \
                 prove the feature set via the runtime-detected backend"
                    .into(),
                out,
            );
        }
        i = k + 1;
    }
}

// ---------------------------------------------------------------------------
// Rule: atomic-ordering-documented.
// ---------------------------------------------------------------------------

const ORDERING_SCOPE: &[&str] = &["crates/parallel/src/", "crates/serve/src/"];
const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn ordering_marker(c: &Comment) -> bool {
    c.text.to_ascii_lowercase().contains("ordering:")
}

fn rule_atomic_ordering(an: &Analysis, out: &mut FileOutcome) {
    if !in_scope(an.path, ORDERING_SCOPE) {
        return;
    }
    let toks = &an.lx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering") || an.attr_tok[i] {
            continue;
        }
        let path_sep = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !path_sep {
            continue;
        }
        let Some(v) = toks.get(i + 3) else { continue };
        if !ORDERING_VARIANTS.contains(&v.text.as_str()) {
            continue;
        }
        if !an.marker_above(toks[i].line, ordering_marker) {
            an.report(
                RULE_ATOMIC_ORDERING,
                toks[i].line,
                format!(
                    "`Ordering::{}` without an `// ordering:` justification comment \
                     (pool protocol invariant from the persistent-pool PR)",
                    v.text
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: par-thresholds-single-home.
// ---------------------------------------------------------------------------

const THRESHOLDS_HOME: &str = "crates/parallel/src/thresholds.rs";

fn threshold_name(name: &str) -> bool {
    name.starts_with("PAR_") || (name.starts_with("MIN_") && name.ends_with("_PER_TASK"))
}

fn rule_par_thresholds(an: &Analysis, out: &mut FileOutcome) {
    if an.path == THRESHOLDS_HOME {
        return;
    }
    let toks = &an.lx.toks;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("const") || toks[i].is_ident("static")) || an.attr_tok[i] {
            continue;
        }
        let Some(name) = toks.get(i + 1) else { continue };
        // A definition is `const NAME: …`; `use …::NAME;` re-exports and
        // plain mentions never match this shape.
        if name.kind != TokKind::Ident
            || !threshold_name(&name.text)
            || !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            continue;
        }
        an.report(
            RULE_PAR_THRESHOLDS,
            toks[i].line,
            format!(
                "`{}` defined outside f3r_parallel::thresholds; the dispatch policy \
                 has a single home — define it there and import it",
                name.text
            ),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing() {
        let (r, why) = parse_allow("allow(x-rule): because reasons").unwrap();
        assert_eq!(r, vec!["x-rule"]);
        assert_eq!(why, "because reasons");
        let (r, _) = parse_allow("allow(a, b) - two rules here").unwrap();
        assert_eq!(r, vec!["a", "b"]);
        assert!(parse_allow("allow(a)").is_none()); // no reason
        assert!(parse_allow("allow(): reason").is_none()); // no rule
        assert!(parse_allow("deny(a): reason").is_none());
    }

    #[test]
    fn int_names() {
        for ok in ["len", "nnz", "n_rows", "padded_len", "update_count", "num_blocks", "m"] {
            assert!(int_like_name(ok), "{ok}");
        }
        for bad in ["alpha", "beta", "c_scale", "value", "norm"] {
            assert!(!int_like_name(bad), "{bad}");
        }
    }

    #[test]
    fn threshold_names() {
        assert!(threshold_name("PAR_ROW_THRESHOLD"));
        assert!(threshold_name("MIN_LEN_PER_TASK"));
        assert!(!threshold_name("MIN_RATE"));
        assert!(!threshold_name("SPARSE_LIMIT"));
    }
}
