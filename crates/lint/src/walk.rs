//! Workspace traversal: find every first-party `.rs` file and attribute it
//! to its owning crate.
//!
//! `third_party/` (vendored dep shims), `target/`, and hidden directories
//! are skipped — the lint enforces *this* repo's conventions, not its
//! vendored dependencies'.

use std::fs;
use std::path::{Path, PathBuf};

/// One source file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Root-relative path with forward slashes (rule scoping keys off this).
    pub rel: String,
    /// Package name from the nearest ancestor `Cargo.toml`.
    pub crate_name: String,
}

const SKIP_DIRS: &[&str] = &["target", "third_party", ".git", "node_modules"];

/// Collect every lintable `.rs` file under `root`, sorted by relative path.
pub fn collect(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk_dir(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    for f in &mut files {
        f.crate_name = crate_name_for(root, &f.abs);
    }
    Ok(files)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile { abs: path, rel, crate_name: String::new() });
        }
    }
    Ok(())
}

/// Read the `name = "…"` from the `[package]` section of the nearest
/// ancestor `Cargo.toml`; falls back to the parent directory name.
fn crate_name_for(root: &Path, file: &Path) -> String {
    let mut dir = file.parent();
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if let Some(name) = package_name(&text) {
                    return name;
                }
            }
        }
        if d == root {
            break;
        }
        dir = d.parent();
    }
    file.parent()
        .and_then(|p| p.file_name())
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".into())
}

/// Minimal TOML scrape: `name = "…"` inside the `[package]` table.
fn package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in toml.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('[') {
            in_package = rest.trim_end_matches(']').trim() == "package";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let v = rest.trim().trim_matches('"');
                    if !v.is_empty() {
                        return Some(v.to_string());
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_scrape() {
        let toml = "[workspace]\nmembers = []\n\n[package]\nname = \"f3r-lint\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(toml).as_deref(), Some("f3r-lint"));
        assert_eq!(package_name("[dependencies]\nfoo = \"1\"\n"), None);
    }
}
