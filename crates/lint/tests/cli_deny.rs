//! End-to-end CLI test: `f3r-lint --deny` must exit non-zero on a seeded
//! violation tree (written to a temp directory at test time) and zero on a
//! clean tree, and `--json` must produce the report artifact.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_f3r-lint")
}

struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("f3r-lint-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp tree");
        TempTree(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Mirror the workspace layout so path-scoped rules engage.
fn seed_violation_tree(t: &TempTree) {
    t.write("Cargo.toml", "[workspace]\nmembers = [\"crates/sparse\"]\n");
    t.write("crates/sparse/Cargo.toml", "[package]\nname = \"f3r-sparse\"\n");
    t.write(
        "crates/sparse/src/blas1.rs",
        "const MIN_LEN_PER_TASK: usize = 1 << 15;\n\
         fn f(x: f64, y: f32) -> f32 {\n\
             let bad = x as f32;\n\
             unsafe { core::hint::unreachable_unchecked() }\n\
         }\n",
    );
    t.write(
        "crates/sparse/src/spmv.rs",
        "fn g(a: f32, x: f32, y: f32) -> f32 { x.mul_add(a, y) }\n",
    );
}

fn seed_clean_tree(t: &TempTree) {
    t.write("Cargo.toml", "[workspace]\nmembers = [\"crates/sparse\"]\n");
    t.write("crates/sparse/Cargo.toml", "[package]\nname = \"f3r-sparse\"\n");
    t.write(
        "crates/sparse/src/blas1.rs",
        "use f3r_parallel::thresholds::MIN_LEN_PER_TASK;\n\
         fn f(n: usize) -> f64 {\n\
             // SAFETY: n is non-zero by the caller's contract.\n\
             unsafe { core::hint::assert_unchecked(n > 0) };\n\
             n as f64\n\
         }\n",
    );
}

#[test]
fn deny_exits_nonzero_on_seeded_tree_and_zero_on_clean_tree() {
    let seeded = TempTree::new("seeded");
    seed_violation_tree(&seeded);
    let out = Command::new(bin())
        .args(["--deny", "--root"])
        .arg(seeded.path())
        .output()
        .expect("run f3r-lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "--deny must fail on seeded tree:\n{stderr}");
    assert_eq!(out.status.code(), Some(1), "{stderr}");
    for rule in [
        "par-thresholds-single-home",
        "no-raw-float-casts-in-kernels",
        "unsafe-needs-safety-comment",
        "no-mul-add-in-elementwise-kernels",
    ] {
        assert!(stderr.contains(rule), "missing {rule} in:\n{stderr}");
    }

    let clean = TempTree::new("clean");
    seed_clean_tree(&clean);
    let out = Command::new(bin())
        .args(["--deny", "--root"])
        .arg(clean.path())
        .output()
        .expect("run f3r-lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "--deny must pass on clean tree:\n{stderr}");
}

#[test]
fn json_report_is_written_and_structured() {
    let seeded = TempTree::new("json");
    seed_violation_tree(&seeded);
    let report_path = seeded.path().join("lint_report.json");
    let out = Command::new(bin())
        .args(["--quiet", "--json"])
        .arg(&report_path)
        .arg("--root")
        .arg(seeded.path())
        .output()
        .expect("run f3r-lint");
    // Without --deny the exit code stays zero even with violations.
    assert!(out.status.success());
    let json = fs::read_to_string(&report_path).expect("report written");
    assert!(json.contains("\"schema\": \"f3r-lint-report/1\""));
    assert!(json.contains("\"rule\": \"no-raw-float-casts-in-kernels\""));
    assert!(json.contains("\"file\": \"crates/sparse/src/blas1.rs\""));
    assert!(json.contains("\"unsafe_inventory\""));
    assert!(json.contains("\"f3r-sparse\""));
}

#[test]
fn deny_is_green_on_this_repository() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(bin())
        .args(["--deny", "--quiet", "--root"])
        .arg(&root)
        .output()
        .expect("run f3r-lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "repo HEAD must be --deny clean:\n{stderr}");
}
