//! Fixture snippets with seeded violations, pinning each rule's exact hit
//! and miss counts — including the lexer interplay cases (raw strings
//! containing `unsafe`, lifetimes vs char literals, nested block comments,
//! suppressed sites).

use f3r_lint::rules::{self, check_file, FileOutcome};

fn count(out: &FileOutcome, rule: &str) -> usize {
    out.violations.iter().filter(|v| v.rule == rule).count()
}

fn suppressed(out: &FileOutcome, rule: &str) -> usize {
    out.suppressed.iter().filter(|s| s.rule == rule).count()
}

// ---------------------------------------------------------------------------
// unsafe-needs-safety-comment
// ---------------------------------------------------------------------------

#[test]
fn unsafe_rule_hits_and_misses() {
    let src = r####"
fn documented() {
    // SAFETY: pointer is valid for the whole call.
    unsafe { body() }
}

fn undocumented() {
    unsafe { body() } // seeded violation 1
}

// SAFETY: trait contract upheld by construction.
unsafe impl Send for Thing {}

unsafe impl Sync for Thing {} // seeded violation 2

/// Widens a value.
///
/// # Safety
/// Caller must check the feature bit.
unsafe fn doc_safety_fn() {}

unsafe fn bare_fn() {} // seeded violation 3

struct Table {
    call: unsafe fn(*const (), usize), // type position: not a site
}

fn strings() {
    let s = "unsafe { hidden in a string }";
    let r = r#"unsafe fn also_hidden() {}"#;
    /* a /* nested */ comment with unsafe { } inside */
    let _ = (s, r);
}
"####;
    let out = check_file("crates/demo/src/lib.rs", src);
    assert_eq!(count(&out, rules::RULE_UNSAFE), 3, "{:?}", out.violations);
    // Inventory sees all real sites — documented or not — and nothing from
    // strings/comments/type positions: 2 blocks, 2 impls, 2 fns.
    assert_eq!(out.unsafe_sites.len(), 6);
    assert_eq!(out.unsafe_sites.iter().filter(|s| s.documented).count(), 3);
}

#[test]
fn unsafe_rule_comment_placement() {
    // The SAFETY comment may sit above attributes; a blank line breaks it.
    let src = "// SAFETY: fine through the attribute.\n\
               #[inline(always)]\n\
               unsafe fn a() {}\n\
               \n\
               // SAFETY: orphaned by the blank line below.\n\
               \n\
               unsafe fn b() {}\n\
               unsafe fn c() {} // SAFETY: trailing on the same line is fine\n";
    let out = check_file("crates/demo/src/lib.rs", src);
    let lines: Vec<u32> = out
        .violations
        .iter()
        .filter(|v| v.rule == rules::RULE_UNSAFE)
        .map(|v| v.line)
        .collect();
    assert_eq!(lines, vec![7], "{:?}", out.violations);
}

#[test]
fn unsafe_rule_suppression() {
    let src = "// f3r-lint: allow(unsafe-needs-safety-comment): exercised by the miri job\n\
               unsafe fn exempt() {}\n\
               unsafe fn not_exempt() {}\n";
    let out = check_file("crates/demo/src/lib.rs", src);
    assert_eq!(count(&out, rules::RULE_UNSAFE), 1);
    assert_eq!(suppressed(&out, rules::RULE_UNSAFE), 1);
    assert_eq!(out.suppressed[0].reason, "exercised by the miri job");
}

// ---------------------------------------------------------------------------
// no-raw-float-casts-in-kernels
// ---------------------------------------------------------------------------

#[test]
fn float_cast_rule_classification() {
    let src = r#"
fn kernel(x: f64, n: usize, vals: &[f64]) -> f64 {
    let a = x as f32;                  // seeded violation: ambiguous name
    let b = 1.5 as f32;                // seeded violation: float literal
    let c = x as f64 as f32;           // seeded: TWO hits (each `as` in the chain)
    let d = value.sqrt() as f32;       // seeded violation: float-method witness
    let ok1 = n as f64;                // miss: integer-like name
    let ok2 = vals.len() as f64;       // miss: len()
    let ok3 = self.nnz() as f64 / self.n_rows as f64; // miss: both int names
    let ok4 = 7 as f64;                // miss: integer literal
    let ok5 = update_count as f64;     // miss: _count suffix
    f64::from(a + b + c + d) + ok1 + ok2 + ok3 + ok4 + ok5
}
"#;
    let out = check_file("crates/sparse/src/blas1.rs", src);
    assert_eq!(count(&out, rules::RULE_FLOAT_CAST), 5, "{:?}", out.violations);
}

#[test]
fn float_cast_rule_scope_and_tests() {
    let body = "fn f(x: f64) -> f32 { x as f32 }\n\
                #[cfg(test)]\n\
                mod tests {\n\
                    fn gen(i: usize) -> f32 { (i % 7) as f64 as f32 }\n\
                }\n";
    // In scope: one production hit, test module exempt.
    let out = check_file("crates/sparse/src/spmv.rs", body);
    assert_eq!(count(&out, rules::RULE_FLOAT_CAST), 1);
    // Out of scope entirely (the conversion helpers' own crate).
    let out = check_file("crates/precision/src/scalar.rs", body);
    assert_eq!(count(&out, rules::RULE_FLOAT_CAST), 0);
}

#[test]
fn float_cast_rule_suppression() {
    let src = "fn f(x: f64) -> f32 {\n\
                   // f3r-lint: allow(no-raw-float-casts-in-kernels): seed-parity path\n\
                   x as f32\n\
               }\n";
    let out = check_file("crates/simd/src/lib.rs", src);
    assert_eq!(count(&out, rules::RULE_FLOAT_CAST), 0);
    assert_eq!(suppressed(&out, rules::RULE_FLOAT_CAST), 1);
}

// ---------------------------------------------------------------------------
// no-mul-add-in-elementwise-kernels
// ---------------------------------------------------------------------------

#[test]
fn mul_add_rule() {
    let src = "fn axpy(a: f32, x: &[f32], y: &mut [f32]) {\n\
                   y[0] = x[0].mul_add(a, y[0]); // seeded violation\n\
               }\n\
               fn talk() { let s = \"mul_add in a string\"; }\n\
               // mul_add in a comment\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn reference() -> f64 { 2.0f64.mul_add(3.0, 4.0) }\n\
               }\n";
    let out = check_file("crates/sparse/src/blas1.rs", src);
    assert_eq!(count(&out, rules::RULE_MUL_ADD), 1, "{:?}", out.violations);
    // Out of scope: the seed-reference kernels keep their fused semantics.
    let out = check_file("crates/sparse/src/reference.rs", src);
    assert_eq!(count(&out, rules::RULE_MUL_ADD), 0);
}

// ---------------------------------------------------------------------------
// target-feature-gate
// ---------------------------------------------------------------------------

#[test]
fn target_feature_rule() {
    let good = "#[target_feature(enable = \"avx2\")]\n\
                pub(crate) unsafe fn k() {}\n";
    let out = check_file("crates/simd/src/x86.rs", good);
    assert_eq!(count(&out, rules::RULE_TARGET_FEATURE), 0);

    // Same file, missing `unsafe`.
    let bad = "#[target_feature(enable = \"avx2\")]\n\
               pub(crate) fn k() {}\n";
    let out = check_file("crates/simd/src/x86.rs", bad);
    assert_eq!(count(&out, rules::RULE_TARGET_FEATURE), 1);

    // Right shape, wrong crate: two hits (location and, for the second
    // fixture below, also the missing unsafe).
    let out = check_file("crates/sparse/src/spmv.rs", good);
    assert_eq!(count(&out, rules::RULE_TARGET_FEATURE), 1);
    let out = check_file("crates/sparse/src/spmv.rs", bad);
    assert_eq!(count(&out, rules::RULE_TARGET_FEATURE), 2);
}

// ---------------------------------------------------------------------------
// atomic-ordering-documented
// ---------------------------------------------------------------------------

#[test]
fn atomic_ordering_rule() {
    let src = "fn f(c: &AtomicUsize) {\n\
                   // ordering: Relaxed — plain counter, no publication.\n\
                   c.store(1, Ordering::Relaxed);\n\
                   c.fetch_add(1, Ordering::AcqRel); // seeded violation\n\
                   let e = Ordering::Less; // cmp::Ordering, not atomic\n\
               }\n";
    let out = check_file("crates/parallel/src/lib.rs", src);
    assert_eq!(count(&out, rules::RULE_ATOMIC_ORDERING), 1, "{:?}", out.violations);
    // Outside the pool crate the rule does not apply.
    let out = check_file("crates/simd/src/lib.rs", src);
    assert_eq!(count(&out, rules::RULE_ATOMIC_ORDERING), 0);
}

// ---------------------------------------------------------------------------
// par-thresholds-single-home
// ---------------------------------------------------------------------------

#[test]
fn thresholds_rule() {
    let src = "pub const PAR_LEN_THRESHOLD: usize = 1 << 15; // seeded violation\n\
               const MIN_ROWS_PER_TASK: usize = 1 << 12; // seeded violation\n\
               const MIN_RATE: f64 = 0.5; // not a threshold name\n\
               use f3r_parallel::thresholds::MIN_LEN_PER_TASK; // import is fine\n\
               static PAR_FLAG: bool = true; // seeded violation 3 (PAR_ prefix)\n";
    let out = check_file("crates/sparse/src/blas1.rs", src);
    assert_eq!(count(&out, rules::RULE_PAR_THRESHOLDS), 3, "{:?}", out.violations);
    // The single home itself may define them.
    let out = check_file("crates/parallel/src/thresholds.rs", src);
    assert_eq!(count(&out, rules::RULE_PAR_THRESHOLDS), 0);
}

// ---------------------------------------------------------------------------
// malformed-suppression
// ---------------------------------------------------------------------------

#[test]
fn malformed_suppressions() {
    let src = "// f3r-lint: allow(unsafe-needs-safety-comment)\n\
               unsafe fn missing_reason() {}\n\
               // f3r-lint: allow(made-up-rule): the rule name is unknown\n\
               fn other() {}\n\
               // f3r-lint: denylist nonsense\n";
    let out = check_file("crates/demo/src/lib.rs", src);
    assert_eq!(count(&out, rules::RULE_MALFORMED_SUPPRESSION), 3, "{:?}", out.violations);
    // The reason-less allow does NOT suppress: the unsafe fn still fires.
    assert_eq!(count(&out, rules::RULE_UNSAFE), 1);
}

// ---------------------------------------------------------------------------
// Lexer interplay: the classic traps must not produce false positives.
// ---------------------------------------------------------------------------

#[test]
fn lexer_traps_produce_no_false_positives() {
    let src = r####"
fn lifetimes<'a, 'outer>(x: &'a [u8]) -> &'a [u8] {
    let c = 'u';           // char literal, not a lifetime
    let n = '\n';
    let s = r#"unsafe { mul_add(Ordering::Relaxed) } as f32"#;
    /* outer /* inner `unsafe fn` and `1.0 as f32` */ still a comment */
    let r = b"unsafe";     // byte string
    let range = 0..x.len(); // `0..` must not lex as a float
    x
}
"####;
    let out = check_file("crates/sparse/src/blas1.rs", src);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(out.unsafe_sites.is_empty());
}
