//! The repository HEAD must be lint-clean: zero violations, every `unsafe`
//! site documented.  This is the acceptance pin for the dogfooding pass —
//! any new violation fails this test (and CI's `--deny` job) with a
//! `file:line` diagnostic in the assertion message.

use std::path::Path;

#[test]
fn repo_head_has_zero_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let run = f3r_lint::lint_root(&root).expect("walk workspace");
    assert!(run.files_scanned > 50, "suspiciously few files: {}", run.files_scanned);
    let rendered: Vec<String> = run
        .violations
        .iter()
        .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(rendered.is_empty(), "repo is not lint-clean:\n{}", rendered.join("\n"));
}

#[test]
fn repo_unsafe_inventory_is_fully_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let run = f3r_lint::lint_root(&root).expect("walk workspace");
    let undocumented: Vec<String> = run
        .inventory
        .iter()
        .flat_map(|(krate, sites)| {
            sites.iter().filter(|(_, s)| !s.documented).map(move |(file, s)| {
                format!("{krate}: {file}:{} ({})", s.line, s.kind.name())
            })
        })
        .collect();
    assert!(undocumented.is_empty(), "undocumented unsafe:\n{}", undocumented.join("\n"));
    // The SIMD backend is the repo's unsafe hotspot; if the inventory stops
    // seeing it, the walker or classifier has regressed.
    let simd = run.inventory.get("f3r-simd").expect("f3r-simd in inventory");
    assert!(simd.len() >= 30, "f3r-simd inventory shrank: {}", simd.len());
}
