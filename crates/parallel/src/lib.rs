//! Persistent worker-pool data parallelism for the F3R kernel layer.
//!
//! The sparse kernels previously used rayon's parallel iterators, then a
//! first-party scoped-thread layer that spawned OS threads on *every* kernel
//! call.  That per-call spawn cost (tens of microseconds) forced the kernel
//! thresholds an order of magnitude above where parallelism starts paying
//! off, so the paper-scale mid-size problems (2^14–2^18 unknowns) ran
//! entirely single-core.  This crate now keeps a **global, lazily
//! initialised pool of parked worker threads** and dispatches each helper
//! call as a batch of chunk tasks:
//!
//! * the pool is created on the first above-threshold call and holds
//!   `current_num_threads() - 1` workers parked on a condition variable,
//! * each helper call enqueues its chunk tasks, executes the **last chunk on
//!   the calling thread** (as the scoped layer did), helps drain its own
//!   remaining tasks, and parks only until its batch completes,
//! * dispatch costs two mutex acquisitions and a wake — roughly a
//!   microsecond — instead of a thread spawn + join per call, which is what
//!   lets the `thresholds` below sit at the seed values again.
//!
//! The helpers are deliberately shaped around how the kernels parallelise:
//!
//! * [`par_chunks_mut`] — split an output slice into contiguous chunks and
//!   process each chunk on its own task (SpMV rows, axpy-style updates),
//! * [`par_map_chunks_mut`] — like [`par_chunks_mut`] but each chunk also
//!   yields a value, collected in chunk order (fused update + norm kernels),
//! * [`par_map_ranges`] — map disjoint index ranges to per-chunk results and
//!   collect them in order (chunked reductions: dot products, norms),
//! * [`par_for_each_mut`] / [`par_map`] — parallelise over a small list of
//!   unevenly sized items (block-Jacobi blocks).
//!
//! # Worker count
//!
//! The pool size is resolved once, at the first parallel dispatch, from (in
//! priority order) [`set_num_threads`], the `F3R_NUM_THREADS` environment
//! variable, and [`std::thread::available_parallelism`].  A count of 1
//! disables the pool entirely: every helper runs inline, no threads are ever
//! spawned, and single-CPU machines never pay for synchronisation.
//!
//! # Re-entrancy
//!
//! Helpers may be called from inside tasks.  A helper invoked **on a pool
//! worker** (see [`is_worker_thread`]) runs its whole input inline as a
//! single chunk — workers never enqueue work or block on other workers, so
//! nested kernel calls (e.g. a preconditioner apply inside a parallel sweep)
//! cannot deadlock the pool.  A helper invoked on a *non-worker* thread
//! (including the caller thread while it executes its own chunk) dispatches
//! normally; any number of caller threads may use the pool concurrently, and
//! every caller helps execute its own batch, so progress never depends on a
//! worker being free.
//!
//! Panics in a task are caught, forwarded to the calling thread after the
//! batch completes, and resumed there; the pool itself survives.

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::{self, Thread};

pub mod thresholds;

// ---------------------------------------------------------------------------
// Worker-count configuration
// ---------------------------------------------------------------------------

/// Thread count requested via [`set_num_threads`]; 0 means "not set".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-pool size (total compute threads, callers included).
///
/// Takes effect only if called **before the first parallel dispatch** — the
/// pool is created lazily and its size is latched when the first
/// above-threshold helper call arrives.  Later calls are ignored (the pool
/// does not resize).  A programmatic setting takes priority over the
/// `F3R_NUM_THREADS` environment variable; `n` is clamped to at least 1, and
/// `1` means "run everything inline, never spawn a worker".
///
/// Returns the count in effect as far as this call can observe: `n` if the
/// pool has not started yet, otherwise the already-latched pool size.  Call
/// it during startup, before other threads issue parallel work — racing it
/// against a concurrent first dispatch can latch the previous configuration
/// even though `n` is returned.
pub fn set_num_threads(n: usize) -> usize {
    let n = n.max(1);
    // ordering: Relaxed — a plain configuration cell; the pool's OnceLock
    // initialization is the synchronization point that publishes it.
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
    POOL.get().map_or(n, |p| p.threads)
}

/// Resolve the thread count from configuration without touching the pool:
/// [`set_num_threads`] > `F3R_NUM_THREADS` > available parallelism.
fn configured_threads() -> usize {
    // ordering: Relaxed — pairs with the Relaxed store in `set_num_threads`;
    // only the value matters, no other memory is published through it.
    let set = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if set != 0 {
        return set;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    if let Some(n) = *ENV.get_or_init(|| {
        std::env::var("F3R_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    }) {
        return n;
    }
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Number of compute threads the helpers will use at most (callers included).
///
/// Once the pool has started this is its latched size; before that it
/// reflects the current configuration (see [`set_num_threads`]).
#[must_use]
pub fn current_num_threads() -> usize {
    POOL.get().map_or_else(configured_threads, |p| p.threads)
}

/// Whether the current thread is one of the pool's worker threads.
///
/// Helpers called on a worker run inline as a single chunk (see the module
/// docs on re-entrancy); exposed so tests and diagnostics can observe it.
#[must_use]
pub fn is_worker_thread() -> bool {
    IN_WORKER.with(Cell::get)
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// One enqueued chunk task: a pointer to its batch plus the chunk index.
struct Task {
    batch: *const BatchState,
    index: usize,
}

// SAFETY: `Task` carries a raw pointer to a `BatchState` that lives on the
// stack of a thread currently blocked in `run_batch`.  The dispatch protocol
// guarantees the pointee outlives the task: the caller does not return until
// `remaining` reaches zero, and `remaining` is decremented only after a task
// finishes executing.
unsafe impl Send for Task {}

/// Shared per-dispatch state, allocated on the calling thread's stack.
struct BatchState {
    /// Type-erased pointer to the caller's `Fn(usize)` chunk closure.
    job: *const (),
    /// Monomorphised trampoline invoking `job` with a chunk index.
    call: unsafe fn(*const (), usize),
    /// Tasks not yet completed (executed by workers or the caller).
    remaining: AtomicUsize,
    /// Handle used to unpark the caller when the batch completes.
    caller: Thread,
    /// First panic payload raised by any task, forwarded to the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct Pool {
    /// Latched total thread count (workers + one caller).
    threads: usize,
    /// FIFO of pending chunk tasks across all in-flight batches.
    queue: Mutex<VecDeque<Task>>,
    /// Signalled when tasks are pushed; workers park here when idle.
    available: Condvar,
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// Get the global pool, creating it (and spawning its parked workers) on
/// first use.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            threads,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for id in 0..threads.saturating_sub(1) {
            thread::Builder::new()
                .name(format!("f3r-worker-{id}"))
                .spawn(move || worker_loop(pool))
                .expect("failed to spawn f3r worker thread");
        }
        pool
    })
}

fn worker_loop(pool: &'static Pool) {
    IN_WORKER.with(|w| w.set(true));
    let mut queue = pool.queue.lock().expect("pool queue poisoned");
    loop {
        if let Some(task) = queue.pop_front() {
            drop(queue);
            execute(task);
            queue = pool.queue.lock().expect("pool queue poisoned");
        } else {
            queue = pool.available.wait(queue).expect("pool queue poisoned");
        }
    }
}

/// Execute one task and mark it complete, unparking the caller if it was the
/// batch's last.  Panics in the task body are captured into the batch.
fn execute(task: Task) {
    // SAFETY: the batch outlives the task (see the `Send` impl on `Task`);
    // this task has not been counted out of `remaining` yet.
    let batch = unsafe { &*task.batch };
    // Clone the caller handle *before* the decrement: after this task's
    // decrement the batch may complete and the caller's stack frame vanish.
    let caller = batch.caller.clone();
    // SAFETY: `job`/`call` were built from a closure reference that
    // `run_batch` keeps alive until `remaining` reaches zero.
    let result = catch_unwind(AssertUnwindSafe(|| unsafe { (batch.call)(batch.job, task.index) }));
    if let Err(payload) = result {
        let mut slot = batch.panic.lock().expect("panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    // ordering: AcqRel — Release publishes this task's writes to whoever
    // observes the count hit zero; Acquire on the last decrement makes every
    // other task's writes visible to the caller before it is unparked.
    if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        caller.unpark();
    }
}

impl Pool {
    /// Pop a not-yet-started task belonging to `batch`, if any is queued
    /// (the caller uses this to help drain its own batch).
    fn pop_own(&self, batch: *const BatchState) -> Option<Task> {
        let mut queue = self.queue.lock().expect("pool queue poisoned");
        let pos = queue.iter().position(|t| std::ptr::eq(t.batch, batch))?;
        queue.remove(pos)
    }
}

/// Run `count` chunk tasks `f(0), …, f(count-1)` across the pool and the
/// calling thread, returning when all of them have completed.
///
/// The caller executes chunk `count - 1` itself, then helps execute any of
/// its own chunks still queued, then parks until workers finish the rest.
/// Runs everything inline when the batch is trivial, the pool is configured
/// for a single thread, or the current thread is itself a pool worker
/// (re-entrant call — see the module docs).
fn run_batch<F: Fn(usize) + Sync>(count: usize, f: &F) {
    if count <= 1 || is_worker_thread() {
        for i in 0..count {
            f(i);
        }
        return;
    }
    let pool = pool();
    if pool.threads <= 1 {
        for i in 0..count {
            f(i);
        }
        return;
    }

    /// Monomorphised trampoline: recover the closure and run chunk `index`.
    // SAFETY: callers must pass a `job` pointer created from the same `F`
    // this instantiation was monomorphised for (run_batch builds both).
    unsafe fn call_task<F: Fn(usize)>(job: *const (), index: usize) {
        // SAFETY: `job` points at the live `F` borrowed by `run_batch`.
        unsafe { (*job.cast::<F>())(index) }
    }

    let batch = BatchState {
        job: std::ptr::from_ref(f).cast(),
        call: call_task::<F>,
        remaining: AtomicUsize::new(count),
        caller: thread::current(),
        panic: Mutex::new(None),
    };
    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        for index in 0..count - 1 {
            queue.push_back(Task { batch: &batch, index });
        }
    }
    // Wake exactly as many workers as there are queued tasks (capped at the
    // worker count): notify_all would stampede every parked worker through
    // the queue mutex on each kernel call, inflating the dispatch cost the
    // thresholds are tuned against.
    for _ in 0..(count - 1).min(pool.threads - 1) {
        pool.available.notify_one();
    }
    // The caller takes the last chunk itself (saving one handoff per call,
    // exactly as the scoped-thread layer did) …
    execute(Task { batch: &batch, index: count - 1 });
    // … then helps drain its own batch instead of blocking, so completion
    // never depends on workers being free (they may be busy with another
    // caller's batch — or not exist at all).
    while let Some(task) = pool.pop_own(&batch) {
        execute(task);
    }
    // Park until the last in-flight task unparks us.  `park` may wake
    // spuriously (or from a stale token left by our own last-task unpark),
    // so re-check the counter each time.
    // ordering: Acquire — pairs with the AcqRel decrement in `execute`; once
    // zero is observed, every task's writes happen-before this point.
    while batch.remaining.load(Ordering::Acquire) > 0 {
        thread::park();
    }
    let payload = batch.panic.lock().expect("panic slot poisoned").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Shareable raw pointer used to hand disjoint sub-slices / result slots to
/// chunk tasks.
struct SyncPtr<T>(*mut T);

impl<T> SyncPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: `SyncPtr` is only used inside the dispatch helpers below, where
// every task derives a *disjoint* region from the shared base pointer, and
// the underlying allocation outlives the batch (it is borrowed by the
// enclosing helper call, which does not return until the batch completes).
unsafe impl<T: Send> Send for SyncPtr<T> {}
// SAFETY: see above — concurrent tasks never touch overlapping regions.
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// Number of workers for `items` work items at granularity `grain`.
fn workers(items: usize, grain: usize) -> usize {
    if grain == 0 {
        return 1;
    }
    (items / grain.max(1)).clamp(1, current_num_threads())
}

// ---------------------------------------------------------------------------
// Public helpers (signatures unchanged from the scoped-thread layer)
// ---------------------------------------------------------------------------

/// Process contiguous chunks of `data` in parallel.
///
/// `data` is split into roughly equal contiguous chunks of at least `grain`
/// elements; `f` is called with each chunk's start offset in `data` and the
/// mutable chunk itself.  Runs inline when one worker suffices or when
/// called from a pool worker (re-entrant call).
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], grain: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let nw = workers(n, grain);
    if nw <= 1 || is_worker_thread() {
        f(0, data);
        return;
    }
    let per = n.div_ceil(nw);
    let count = n.div_ceil(per);
    let base = SyncPtr(data.as_mut_ptr());
    run_batch(count, &|i: usize| {
        let start = i * per;
        let len = per.min(n - start);
        // SAFETY: tasks receive disjoint index ranges of `data`, which the
        // enclosing call keeps borrowed until the batch completes.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
        f(start, chunk);
    });
}

/// Process contiguous chunks of `data` in parallel, collecting a per-chunk
/// result in chunk order.
///
/// Like [`par_chunks_mut`] but each chunk also produces a value — the shape
/// fused kernels need (e.g. an SpMV that simultaneously accumulates dot
/// products of its output).
#[must_use]
pub fn par_map_chunks_mut<T: Send, R: Send, F>(data: &mut [T], grain: usize, f: F) -> Vec<R>
where
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let n = data.len();
    let nw = workers(n, grain);
    if nw <= 1 || is_worker_thread() {
        return vec![f(0, data)];
    }
    let per = n.div_ceil(nw);
    let count = n.div_ceil(per);
    let mut out: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let base = SyncPtr(data.as_mut_ptr());
    let slots = SyncPtr(out.as_mut_ptr());
    run_batch(count, &|i: usize| {
        let start = i * per;
        let len = per.min(n - start);
        // SAFETY: disjoint chunk of `data` per task (see par_chunks_mut).
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
        let r = f(start, chunk);
        // SAFETY: slot `i` is written by exactly one task; overwriting the
        // initial `None` without dropping it is fine (dropping `None` is a
        // no-op for any `R`).
        unsafe { slots.get().add(i).write(Some(r)) };
    });
    out.into_iter()
        .map(|r| r.expect("pool task produced a result"))
        .collect()
}

/// Map disjoint index ranges of `0..len` to per-range results, in order.
///
/// The index space is split into roughly equal ranges of at least `grain`
/// indices; `f` maps each range to a result, and the results are returned in
/// range order (so reductions stay deterministic for a fixed worker count —
/// combine them with a fold on the caller side).  Called from a pool worker
/// it returns a single range covering `0..len` (inline re-entrant path).
#[must_use]
pub fn par_map_ranges<R: Send, F>(len: usize, grain: usize, f: F) -> Vec<R>
where
    F: Fn(Range<usize>) -> R + Sync,
{
    let nw = workers(len, grain);
    if nw <= 1 || is_worker_thread() {
        return vec![f(0..len)];
    }
    let per = len.div_ceil(nw);
    let count = len.div_ceil(per);
    let mut out: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let slots = SyncPtr(out.as_mut_ptr());
    run_batch(count, &|i: usize| {
        let start = i * per;
        let end = (start + per).min(len);
        let r = f(start..end);
        // SAFETY: slot `i` is written by exactly one task (see
        // par_map_chunks_mut).
        unsafe { slots.get().add(i).write(Some(r)) };
    });
    out.into_iter()
        .map(|r| r.expect("pool task produced a result"))
        .collect()
}

/// Apply `f` to every item of `items` in parallel (uneven item costs are
/// fine; items are dealt as contiguous groups).
pub fn par_for_each_mut<I: Send, F>(items: &mut [I], f: F)
where
    F: Fn(usize, &mut I) + Sync,
{
    let n = items.len();
    let nw = n.clamp(1, current_num_threads());
    if nw <= 1 || n <= 1 || is_worker_thread() {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let per = n.div_ceil(nw);
    let count = n.div_ceil(per);
    let base = SyncPtr(items.as_mut_ptr());
    run_batch(count, &|g: usize| {
        let start = g * per;
        let len = per.min(n - start);
        // SAFETY: disjoint group of `items` per task (see par_chunks_mut).
        let group = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
        for (j, item) in group.iter_mut().enumerate() {
            f(start + j, item);
        }
    });
}

/// Map every item of `items` to a result in parallel, preserving order.
#[must_use]
pub fn par_map<T: Sync, R: Send, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let nw = n.clamp(1, current_num_threads());
    if nw <= 1 || n <= 1 || is_worker_thread() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per = n.div_ceil(nw);
    let count = n.div_ceil(per);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots = SyncPtr(out.as_mut_ptr());
    run_batch(count, &|g: usize| {
        let start = g * per;
        let end = (start + per).min(n);
        for (off, item) in items[start..end].iter().enumerate() {
            let idx = start + off;
            let r = f(idx, item);
            // SAFETY: slot `idx` belongs to exactly one task's group.
            unsafe { slots.get().add(idx).write(Some(r)) };
        }
    });
    out.into_iter()
        .map(|r| r.expect("pool task produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every pool-touching test requests the same multi-thread configuration
    /// before its first dispatch, so whichever test initialises the pool
    /// first latches a size > 1 and the pool path is actually exercised even
    /// on single-core machines.
    fn use_test_pool() {
        set_num_threads(4);
    }

    #[test]
    fn chunks_cover_every_element_exactly_once() {
        use_test_pool();
        let mut data = vec![0u32; 10_000];
        par_chunks_mut(&mut data, 16, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (offset + i) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn small_input_runs_inline() {
        use_test_pool();
        let mut data = vec![1u8; 3];
        par_chunks_mut(&mut data, 1024, |offset, chunk| {
            assert_eq!(offset, 0);
            assert_eq!(chunk.len(), 3);
        });
    }

    #[test]
    fn ranges_partition_and_preserve_order() {
        use_test_pool();
        let sums = par_map_ranges(100_000, 1_000, |r| r.map(|i| i as u64).sum::<u64>());
        let total: u64 = sums.iter().sum();
        assert_eq!(total, 99_999 * 100_000 / 2);
        assert!(!sums.is_empty());
    }

    #[test]
    fn zero_length_range_map() {
        use_test_pool();
        let sums = par_map_ranges(0, 64, |r| r.len());
        assert_eq!(sums, vec![0]);
    }

    #[test]
    fn map_chunks_results_in_chunk_order() {
        use_test_pool();
        let mut data: Vec<u64> = (0..10_000).collect();
        let sums = par_map_chunks_mut(&mut data, 100, |offset, chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
            offset as u64
        });
        let mut prev = None;
        for s in &sums {
            assert!(prev.is_none_or(|p| p < *s), "offsets must be increasing");
            prev = Some(*s);
        }
        assert_eq!(data[0], 1);
        assert_eq!(data[9999], 10_000);
    }

    #[test]
    fn uneven_items_all_processed() {
        use_test_pool();
        let mut items: Vec<Vec<u8>> = (0..7).map(|i| vec![0u8; i + 1]).collect();
        par_for_each_mut(&mut items, |idx, item| {
            for v in item.iter_mut() {
                *v = idx as u8 + 1;
            }
        });
        for (idx, item) in items.iter().enumerate() {
            assert!(item.iter().all(|&v| v == idx as u8 + 1));
        }
    }

    #[test]
    fn map_preserves_order() {
        use_test_pool();
        let items: Vec<usize> = (0..133).collect();
        let doubled = par_map(&items, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(doubled, (0..133).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn current_num_threads_is_positive() {
        use_test_pool();
        assert!(current_num_threads() >= 1);
    }
}
