//! Scoped-thread data parallelism for the F3R kernel layer.
//!
//! The sparse kernels previously used rayon's parallel iterators; this crate
//! replaces that external dependency with a small set of first-party helpers
//! built on [`std::thread::scope`].  The helpers are deliberately shaped
//! around how the kernels actually parallelise:
//!
//! * [`par_chunks_mut`] — split an output slice into contiguous chunks and
//!   process each chunk on its own thread (SpMV rows, axpy-style updates),
//! * [`par_map_ranges`] — map disjoint index ranges to per-chunk results and
//!   collect them in order (chunked reductions: dot products, norms),
//! * [`par_for_each_mut`] / [`par_map`] — parallelise over a small list of
//!   unevenly sized items (block-Jacobi blocks).
//!
//! Threads are spawned per call, so callers must gate on a problem-size
//! threshold (the kernels use `PAR_*_THRESHOLD` constants an order of
//! magnitude above the spawn cost).  All helpers fall back to inline
//! sequential execution when a single worker would be used, so small inputs
//! and single-CPU machines never pay for a spawn.

#![warn(missing_docs)]

use std::ops::Range;

/// Number of worker threads the helpers will use at most: the machine's
/// available parallelism (1 if it cannot be queried).
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of workers for `items` work items at granularity `grain`.
fn workers(items: usize, grain: usize) -> usize {
    if grain == 0 {
        return 1;
    }
    (items / grain.max(1)).clamp(1, current_num_threads())
}

/// Process contiguous chunks of `data` in parallel.
///
/// `data` is split into roughly equal contiguous chunks of at least `grain`
/// elements; `f` is called with each chunk's start offset in `data` and the
/// mutable chunk itself.  Runs inline when one worker suffices.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], grain: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let nw = workers(n, grain);
    if nw <= 1 {
        f(0, data);
        return;
    }
    let per = n.div_ceil(nw);
    std::thread::scope(|s| {
        let mut chunks = data.chunks_mut(per).enumerate();
        let last = chunks.next_back();
        for (i, chunk) in chunks {
            let f = &f;
            s.spawn(move || f(i * per, chunk));
        }
        // The caller would otherwise idle in the scope; give it the last
        // chunk, saving one spawn per call.
        if let Some((i, chunk)) = last {
            f(i * per, chunk);
        }
    });
}

/// Process contiguous chunks of `data` in parallel, collecting a per-chunk
/// result in chunk order.
///
/// Like [`par_chunks_mut`] but each chunk also produces a value — the shape
/// fused kernels need (e.g. an SpMV that simultaneously accumulates dot
/// products of its output).
#[must_use]
pub fn par_map_chunks_mut<T: Send, R: Send, F>(data: &mut [T], grain: usize, f: F) -> Vec<R>
where
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let n = data.len();
    let nw = workers(n, grain);
    if nw <= 1 {
        return vec![f(0, data)];
    }
    let per = n.div_ceil(nw);
    let mut out: Vec<Option<R>> = (0..n.div_ceil(per)).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut work: Vec<_> = data.chunks_mut(per).enumerate().zip(out.iter_mut()).collect();
        let last = work.pop();
        for ((i, chunk), slot) in work {
            let f = &f;
            s.spawn(move || *slot = Some(f(i * per, chunk)));
        }
        if let Some(((i, chunk), slot)) = last {
            *slot = Some(f(i * per, chunk));
        }
    });
    out.into_iter().map(|r| r.expect("worker produced a result")).collect()
}

/// Map disjoint index ranges of `0..len` to per-range results, in order.
///
/// The index space is split into roughly equal ranges of at least `grain`
/// indices; `f` maps each range to a result, and the results are returned in
/// range order (so reductions stay deterministic for a fixed worker count —
/// combine them with a fold on the caller side).
#[must_use]
pub fn par_map_ranges<R: Send, F>(len: usize, grain: usize, f: F) -> Vec<R>
where
    F: Fn(Range<usize>) -> R + Sync,
{
    let nw = workers(len, grain);
    if nw <= 1 {
        return vec![f(0..len)];
    }
    let per = len.div_ceil(nw);
    let mut out: Vec<Option<R>> = (0..len.div_ceil(per)).map(|_| None).collect();
    std::thread::scope(|s| {
        let count = out.len();
        let mut slots = out.iter_mut().enumerate();
        let last = slots.next_back();
        debug_assert!(count >= 1);
        for (i, slot) in slots {
            let f = &f;
            s.spawn(move || {
                let start = i * per;
                let end = (start + per).min(len);
                *slot = Some(f(start..end));
            });
        }
        if let Some((i, slot)) = last {
            let start = i * per;
            let end = (start + per).min(len);
            *slot = Some(f(start..end));
        }
    });
    out.into_iter().map(|r| r.expect("worker produced a result")).collect()
}

/// Apply `f` to every item of `items` in parallel (uneven item costs are
/// fine; items are dealt round-robin-free as contiguous groups).
pub fn par_for_each_mut<I: Send, F>(items: &mut [I], f: F)
where
    F: Fn(usize, &mut I) + Sync,
{
    let n = items.len();
    let nw = n.clamp(1, current_num_threads());
    if nw <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let per = n.div_ceil(nw);
    std::thread::scope(|s| {
        for (g, group) in items.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, item) in group.iter_mut().enumerate() {
                    f(g * per + j, item);
                }
            });
        }
    });
}

/// Map every item of `items` to a result in parallel, preserving order.
#[must_use]
pub fn par_map<T: Sync, R: Send, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let nw = n.clamp(1, current_num_threads());
    if nw <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per = n.div_ceil(nw);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for (g, slots) in out.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, slot) in slots.iter_mut().enumerate() {
                    let idx = g * per + j;
                    *slot = Some(f(idx, &items[idx]));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("worker produced a result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_element_exactly_once() {
        let mut data = vec![0u32; 10_000];
        par_chunks_mut(&mut data, 16, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (offset + i) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn small_input_runs_inline() {
        let mut data = vec![1u8; 3];
        par_chunks_mut(&mut data, 1024, |offset, chunk| {
            assert_eq!(offset, 0);
            assert_eq!(chunk.len(), 3);
        });
    }

    #[test]
    fn ranges_partition_and_preserve_order() {
        let sums = par_map_ranges(100_000, 1_000, |r| r.map(|i| i as u64).sum::<u64>());
        let total: u64 = sums.iter().sum();
        assert_eq!(total, 99_999 * 100_000 / 2);
        assert!(!sums.is_empty());
    }

    #[test]
    fn zero_length_range_map() {
        let sums = par_map_ranges(0, 64, |r| r.len());
        assert_eq!(sums, vec![0]);
    }

    #[test]
    fn uneven_items_all_processed() {
        let mut items: Vec<Vec<u8>> = (0..7).map(|i| vec![0u8; i + 1]).collect();
        par_for_each_mut(&mut items, |idx, item| {
            for v in item.iter_mut() {
                *v = idx as u8 + 1;
            }
        });
        for (idx, item) in items.iter().enumerate() {
            assert!(item.iter().all(|&v| v == idx as u8 + 1));
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..133).collect();
        let doubled = par_map(&items, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(doubled, (0..133).map(|v| v * 2).collect::<Vec<_>>());
    }
}
