//! Shared problem-size thresholds above which the kernel layers dispatch to
//! the worker pool.
//!
//! One definition instead of per-crate copies: `f3r_sparse::spmv`,
//! `f3r_sparse::blas1` and `f3r_precond::block_jacobi` all re-export these
//! constants, so the dispatch policy of the whole kernel layer is tuned in
//! one place.
//!
//! The values are the seed values of the repository: with the persistent
//! worker pool a dispatch costs roughly a microsecond (two mutex
//! acquisitions and a wake), so parallelism starts paying off as soon as a
//! kernel call itself takes a few microseconds.  The previous scoped-thread
//! layer spawned OS threads per call and needed thresholds an order of
//! magnitude higher (2^16 rows / 2^20 elements), which left the paper's
//! mid-size problems (2^14–2^18 unknowns, most of the Figure 1/3/4 suite)
//! entirely single-core.

/// Matrix row count at or above which SpMV-shaped kernels go parallel
/// (CSR / sliced-ELLPACK products, fused residual and SpMV+dot kernels).
///
/// An SpMV touches several memory streams per row (values, column indices,
/// gathered `x`, streamed `y`), so per-row work is high enough to amortise a
/// pool dispatch well before the BLAS-1 element threshold is reached.
pub const PAR_ROW_THRESHOLD: usize = 1 << 14;

/// Vector length at or above which BLAS-1 kernels (dot, axpy, fused
/// update+norm variants) go parallel.
///
/// A 2^15-element fp32 dot reads 256 KiB and takes a handful of
/// microseconds on one core — several times the pool's dispatch cost.
pub const PAR_LEN_THRESHOLD: usize = 1 << 15;

/// Total row count at or above which block-Jacobi preconditioner
/// applications solve their blocks in parallel.
///
/// Per-block triangular solves are heavier per row than an SpMV row (two
/// sweeps, data dependencies), so this matches [`PAR_ROW_THRESHOLD`].
pub const PAR_BLOCK_ROW_THRESHOLD: usize = 1 << 14;

/// Minimum elements per pool task in BLAS-1 sweeps.  A 2^15-element chunk
/// streams 128–512 KiB depending on precision — tens of microseconds of
/// memory traffic against the pool's ~1 µs dispatch cost, while still
/// letting vectors just above [`PAR_LEN_THRESHOLD`] split across workers.
/// The grain doubled from 2^14 when the SIMD backend landed: vectorised
/// sweeps finish a chunk roughly 2–8× faster (most dramatically for fp16),
/// so the old grain left the per-task dispatch overhead a visible fraction
/// of the chunk runtime.
pub const MIN_LEN_PER_TASK: usize = 1 << 15;

/// Minimum rows handled per pool task in SpMV-shaped kernels.  A 2^12-row
/// chunk of a typical stencil matrix moves a few hundred KiB of
/// values/indices/vector traffic — comfortably above the pool's ~1 µs
/// dispatch cost — while letting systems just past [`PAR_ROW_THRESHOLD`]
/// still split across workers.
pub const MIN_ROWS_PER_TASK: usize = 1 << 12;
