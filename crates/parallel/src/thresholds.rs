//! Shared problem-size thresholds above which the kernel layers dispatch to
//! the worker pool.
//!
//! One definition instead of per-crate copies: `f3r_sparse::spmv`,
//! `f3r_sparse::blas1` and `f3r_precond::block_jacobi` all re-export these
//! constants, so the dispatch policy of the whole kernel layer is tuned in
//! one place.
//!
//! The values are the seed values of the repository: with the persistent
//! worker pool a dispatch costs roughly a microsecond (two mutex
//! acquisitions and a wake), so parallelism starts paying off as soon as a
//! kernel call itself takes a few microseconds.  The previous scoped-thread
//! layer spawned OS threads per call and needed thresholds an order of
//! magnitude higher (2^16 rows / 2^20 elements), which left the paper's
//! mid-size problems (2^14–2^18 unknowns, most of the Figure 1/3/4 suite)
//! entirely single-core.

/// Matrix row count at or above which SpMV-shaped kernels go parallel
/// (CSR / sliced-ELLPACK products, fused residual and SpMV+dot kernels).
///
/// An SpMV touches several memory streams per row (values, column indices,
/// gathered `x`, streamed `y`), so per-row work is high enough to amortise a
/// pool dispatch well before the BLAS-1 element threshold is reached.
pub const PAR_ROW_THRESHOLD: usize = 1 << 14;

/// Vector length at or above which BLAS-1 kernels (dot, axpy, fused
/// update+norm variants) go parallel.
///
/// A 2^15-element fp32 dot reads 256 KiB and takes a handful of
/// microseconds on one core — several times the pool's dispatch cost.
pub const PAR_LEN_THRESHOLD: usize = 1 << 15;

/// Total row count at or above which block-Jacobi preconditioner
/// applications solve their blocks in parallel.
///
/// Per-block triangular solves are heavier per row than an SpMV row (two
/// sweeps, data dependencies), so this matches [`PAR_ROW_THRESHOLD`].
pub const PAR_BLOCK_ROW_THRESHOLD: usize = 1 << 14;
