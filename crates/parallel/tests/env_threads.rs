//! `F3R_NUM_THREADS` environment override, in its own integration-test
//! binary so this process's pool is guaranteed to initialise from the
//! environment (the other test binaries latch a programmatic size first).

use f3r_parallel::{current_num_threads, par_map_ranges};

#[test]
fn env_var_sets_pool_size() {
    // Must happen before the first parallel dispatch in this process; the
    // value is read once and latched at pool initialisation.
    std::env::set_var("F3R_NUM_THREADS", "3");
    assert_eq!(current_num_threads(), 3);
    let sums = par_map_ranges(1 << 16, 16, |r| r.map(|i| i as u64).sum::<u64>());
    let n = 1u64 << 16;
    assert_eq!(sums.into_iter().sum::<u64>(), n * (n - 1) / 2);
    assert_eq!(current_num_threads(), 3, "size latched at first dispatch");
}
