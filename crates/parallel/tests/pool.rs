//! Regression tests for the persistent worker pool: re-entrancy, concurrent
//! callers, panic propagation.
//!
//! Every test requests a 4-thread pool before its first dispatch; whichever
//! test initialises the pool first latches that size (programmatic
//! configuration overrides `F3R_NUM_THREADS`), so the pool path is exercised
//! even on single-core machines and under the CI `F3R_NUM_THREADS=2` job.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use f3r_parallel::{
    current_num_threads, is_worker_thread, par_chunks_mut, par_map, par_map_chunks_mut,
    par_map_ranges, set_num_threads,
};

fn use_test_pool() {
    set_num_threads(4);
}

/// A helper invoked from inside a pool worker must complete inline (single
/// chunk, no queueing) — the re-entrancy guarantee that makes nested kernel
/// calls deadlock-free.
///
/// The caller executes the *last* chunk first and this test blocks it there
/// until the first chunk has finished, so the first chunk is forced onto a
/// pool worker, where the nested `par_map_ranges` must observe the inline
/// path.
#[test]
fn nested_call_inside_worker_runs_inline() {
    use_test_pool();
    assert!(current_num_threads() >= 2, "test needs a real pool");
    let worker_done = AtomicBool::new(false);
    let saw_worker = AtomicBool::new(false);
    let mut data = [0u64, 0u64];
    par_chunks_mut(&mut data, 1, |offset, chunk| {
        if offset == 0 {
            // Runs on a pool worker (the caller is parked in the other
            // chunk until we finish).
            if is_worker_thread() {
                saw_worker.store(true, Ordering::SeqCst);
                // Re-entrant call: must run inline as a single range and
                // must not deadlock waiting for pool capacity.
                let sums = par_map_ranges(100_000, 10, |r| r.map(|i| i as u64).sum::<u64>());
                assert_eq!(sums.len(), 1, "worker-side nested call must be inline");
                chunk[0] = sums.iter().sum();
            } else {
                // Helping path (caller drained its own queue entry before a
                // worker woke up): nested call dispatches normally instead.
                let sums = par_map_ranges(100_000, 10, |r| r.map(|i| i as u64).sum::<u64>());
                chunk[0] = sums.iter().sum();
            }
            worker_done.store(true, Ordering::SeqCst);
        } else {
            // The caller's own chunk: wait until chunk 0 completed so it
            // cannot be picked up by the helping loop afterwards.
            let start = Instant::now();
            while !worker_done.load(Ordering::SeqCst) {
                assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "pool made no progress on the sibling chunk (deadlock?)"
                );
                std::thread::yield_now();
            }
            // Nested dispatch from a non-worker thread is also legal.
            let sums = par_map_ranges(10_000, 10, |r| r.map(|i| i as u64).sum::<u64>());
            chunk[0] = sums.iter().sum();
        }
    });
    assert_eq!(data[0], 99_999 * 100_000 / 2);
    assert_eq!(data[1], 9_999 * 10_000 / 2);
    assert!(
        worker_done.load(Ordering::SeqCst),
        "first chunk never completed"
    );
    // Not asserted: `saw_worker` — the caller's helping loop may legally win
    // the race for chunk 0, but in that case the blocked sibling chunk above
    // would have deadlocked if helping were broken, so both paths are covered.
}

/// Deep nesting through every helper shape completes and is correct.
#[test]
fn nested_helpers_compose() {
    use_test_pool();
    let mut outer = vec![0u64; 64];
    par_chunks_mut(&mut outer, 1, |offset, chunk| {
        // Each element issues its own nested reduction; on workers these run
        // inline, on the caller they dispatch.
        for (j, v) in chunk.iter_mut().enumerate() {
            let n = 1000 + offset + j;
            *v = par_map_ranges(n, 100, |r| r.map(|i| i as u64).sum::<u64>())
                .into_iter()
                .sum();
        }
    });
    for (idx, v) in outer.iter().enumerate() {
        let n = (1000 + idx) as u64;
        assert_eq!(*v, n * (n - 1) / 2, "element {idx}");
    }
}

/// Many caller threads hammering the pool concurrently: every batch completes
/// with the right answer and nothing deadlocks.
#[test]
fn stress_concurrent_callers() {
    use_test_pool();
    let iterations = 200;
    let callers = 8;
    let completed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..callers {
            let completed = &completed;
            s.spawn(move || {
                for i in 0..iterations {
                    let n = 5_000 + 37 * t + i;
                    let total: u64 = par_map_ranges(n, 16, |r| r.map(|i| i as u64).sum::<u64>())
                        .into_iter()
                        .sum();
                    assert_eq!(total, (n as u64 * (n as u64 - 1)) / 2);

                    let mut data = vec![1u32; n];
                    par_chunks_mut(&mut data, 16, |offset, chunk| {
                        for (j, v) in chunk.iter_mut().enumerate() {
                            *v += (offset + j) as u32;
                        }
                    });
                    assert!(data.iter().enumerate().all(|(j, &v)| v == j as u32 + 1));
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(completed.load(Ordering::Relaxed), callers * iterations);
}

/// A panic inside a task propagates to the caller after the batch completes,
/// and the pool remains fully usable afterwards.
#[test]
fn panic_in_task_propagates_and_pool_survives() {
    use_test_pool();
    let mut data = vec![0u8; 4096];
    let result = catch_unwind(AssertUnwindSafe(|| {
        par_chunks_mut(&mut data, 1, |offset, _chunk| {
            assert!(offset != 0, "boom at offset 0");
        });
    }));
    let payload = result.expect_err("the task panic must reach the caller");
    let msg = payload.downcast_ref::<&str>().map_or_else(
        || payload.downcast_ref::<String>().cloned().unwrap_or_default(),
        |s| (*s).to_string(),
    );
    assert!(msg.contains("boom at offset 0"), "unexpected payload: {msg}");

    // The pool must still work after a panicked batch.
    for _ in 0..8 {
        let sums = par_map_ranges(50_000, 16, |r| r.len());
        assert_eq!(sums.iter().sum::<usize>(), 50_000);
    }
}

/// Results from `par_map` / `par_map_chunks_mut` stay in order under the
/// pool (workers may finish out of order; collection must not).
#[test]
fn pool_preserves_result_order() {
    use_test_pool();
    let items: Vec<usize> = (0..4096).collect();
    let mapped = par_map(&items, |i, &v| {
        assert_eq!(i, v);
        v * 3
    });
    assert_eq!(mapped, (0..4096).map(|v| v * 3).collect::<Vec<_>>());

    let mut data: Vec<u64> = (0..65_536).collect();
    let offsets = par_map_chunks_mut(&mut data, 64, |offset, chunk| {
        for v in chunk.iter_mut() {
            *v *= 2;
        }
        offset
    });
    assert!(offsets.windows(2).all(|w| w[0] < w[1]), "chunk order lost");
    assert!(data.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
}

/// `set_num_threads` before first dispatch latches the pool size; later
/// calls report the latched size instead of resizing.
#[test]
fn set_num_threads_latches_at_first_dispatch() {
    use_test_pool();
    // Force pool initialisation.
    let _ = par_map_ranges(1 << 16, 16, |r| r.len());
    assert_eq!(current_num_threads(), 4);
    // The pool does not resize after the fact.
    assert_eq!(set_num_threads(16), 4);
    assert_eq!(current_num_threads(), 4);
}
