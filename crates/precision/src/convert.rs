//! Slice conversion helpers used by the precision bridges between nesting
//! levels of the F3R solver.
//!
//! Every crossing of a precision boundary in the nested solver (fp64 ↔ fp32
//! between the outermost and middle FGMRES, fp32 ↔ fp16 around the innermost
//! Richardson) is a plain element-wise rounding/widening of a vector; these
//! helpers centralise that operation so the solvers never touch raw
//! `as`-casts.

use crate::scalar::{Scalar, SliceView, SliceViewMut};

/// Convert `src` into `dst` element-wise with a single rounding (or exact
/// widening) per element.
///
/// Semantically each element goes through `D::from_f64(s.to_f64())`: one
/// exact widening followed by at most one round-to-nearest-even.  The
/// `f16 ↔ f32/f64` and `f32 → f16` pairs dispatch to the bulk hardware
/// converters in [`half::slice`], which produce bit-identical results
/// (`f32 → f16` is a single RNE rounding either way because `f32 → f64` is
/// exact).  `f64 → f16` deliberately stays scalar: hardware offers no
/// single-rounding path for it.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn convert_slice<S: Scalar, D: Scalar>(src: &[S], dst: &mut [D]) {
    assert_eq!(
        src.len(),
        dst.len(),
        "convert_slice: length mismatch ({} vs {})",
        src.len(),
        dst.len()
    );
    use crate::scalar::Precision::{Fp16, Fp32, Fp64};
    let bulk = matches!((S::PRECISION, D::PRECISION), (Fp16, Fp32) | (Fp16, Fp64) | (Fp32, Fp16));
    if bulk {
        match (S::view(src), D::view_mut(dst)) {
            (SliceView::F16(s), SliceViewMut::F32(d)) => half::slice::widen_slice(s, d),
            (SliceView::F16(s), SliceViewMut::F64(d)) => half::slice::widen_slice_f64(s, d),
            (SliceView::F32(s), SliceViewMut::F16(d)) => half::slice::narrow_slice(s, d),
            // `bulk` enumerates exactly the three (S, D) pairs above, and a
            // type's view always carries its own variant.
            _ => unreachable!("view variants disagree with PRECISION"),
        }
        return;
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = D::from_f64(s.to_f64());
    }
}

/// Convert a slice into a freshly allocated vector of another precision.
#[must_use]
pub fn convert_vec<S: Scalar, D: Scalar>(src: &[S]) -> Vec<D> {
    let mut out = vec![D::zero(); src.len()];
    convert_slice(src, &mut out);
    out
}

/// Copy `src` into `dst` without precision change.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn copy_into<T: Scalar>(src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len(), "copy_into: length mismatch");
    dst.copy_from_slice(src);
}

/// Maximum absolute element-wise error introduced by rounding `src` to
/// precision `D` and widening it back to `f64`.
///
/// Used by tests and by the experiment reports to quantify the storage error
/// of fp16/fp32 copies of the coefficient matrix.
#[must_use]
pub fn round_trip_error<D: Scalar>(src: &[f64]) -> f64 {
    src.iter()
        .map(|&v| (D::from_f64(v).to_f64() - v).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use half::f16;

    #[test]
    fn convert_f64_to_f32_and_back() {
        let src = vec![1.0_f64, -2.5, 3.25, 1e-3];
        let mut mid = vec![0.0_f32; 4];
        convert_slice(&src, &mut mid);
        let mut back = vec![0.0_f64; 4];
        convert_slice(&mid, &mut back);
        for (a, b) in src.iter().zip(back.iter()) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
        }
    }

    #[test]
    fn convert_to_f16_rounds() {
        let src = vec![1.0_f64, 1.0 + 2.0_f64.powi(-12)];
        let out: Vec<f16> = convert_vec(&src);
        assert_eq!(out[0].to_f64(), 1.0);
        // below half-precision resolution: rounds to 1.0
        assert_eq!(out[1].to_f64(), 1.0);
    }

    #[test]
    fn round_trip_error_is_zero_for_exact_values() {
        let src = vec![0.0, 1.0, -2.0, 0.5, 1024.0];
        assert_eq!(round_trip_error::<f16>(&src), 0.0);
        assert_eq!(round_trip_error::<f32>(&src), 0.0);
    }

    #[test]
    fn round_trip_error_bounded_by_eps() {
        let src: Vec<f64> = (0..100).map(|i| 1.0 + i as f64 * 1e-3).collect();
        let err16 = round_trip_error::<f16>(&src);
        let err32 = round_trip_error::<f32>(&src);
        assert!(err16 <= 2.0_f64.powi(-10));
        assert!(err32 <= 2.0_f64.powi(-23));
        assert!(err16 > err32);
    }

    #[test]
    fn copy_into_copies() {
        let src = vec![1.0_f32, 2.0, 3.0];
        let mut dst = vec![0.0_f32; 3];
        copy_into(&src, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn convert_slice_length_mismatch_panics() {
        let src = vec![1.0_f64; 3];
        let mut dst = vec![0.0_f32; 4];
        convert_slice(&src, &mut dst);
    }
}
