//! Lock-free instrumentation counters shared by all solver levels.
//!
//! The paper's evaluation reports two kinds of work measures besides wall
//! clock: the number of invocations of the primary preconditioner `M`
//! (Table 3) and, implicitly through its Section 4.1 model, the amount of
//! memory traffic per solve.  [`KernelCounters`] collects both, plus a
//! breakdown of SpMV/BLAS-1 calls per precision, using relaxed atomics so the
//! counters can be bumped from pool-parallel kernels without contention
//! concerns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::scalar::Precision;

/// Shared, thread-safe set of kernel counters.
///
/// Cloning the handle (via `Arc`) shares the same underlying counters; use
/// [`KernelCounters::snapshot`] to read a consistent-enough copy and
/// [`KernelCounters::reset`] between solves.
#[derive(Debug, Default)]
pub struct KernelCounters {
    /// Invocations of the primary preconditioner `M` (the Table 3 metric).
    precond_applies: AtomicU64,
    /// SpMV invocations, indexed by matrix-value precision (fp16, fp32, fp64).
    spmv_calls: [AtomicU64; 3],
    /// BLAS-1 (axpy/dot/norm/scale) invocations, indexed by precision.
    blas1_calls: [AtomicU64; 3],
    /// Modeled bytes moved, indexed by precision of the data that dominated
    /// the kernel (matrix values for SpMV, vector precision for BLAS-1).
    bytes_moved: [AtomicU64; 3],
    /// Bytes read from stored Krylov/flexible basis vectors, indexed by the
    /// *storage* precision of the basis (which may differ from the working
    /// precision when the basis is compressed).  Also counted in
    /// `bytes_moved`.
    basis_bytes_read: [AtomicU64; 3],
    /// Bytes written to stored Krylov/flexible basis vectors, indexed by the
    /// storage precision.  Also counted in `bytes_moved`.
    basis_bytes_written: [AtomicU64; 3],
    /// Bytes read from the stored coefficient matrix `A` (values + indices +
    /// row pointers + row scales for scaled storage), indexed by the matrix
    /// *storage* precision.  A subset of the SpMV bytes already counted in
    /// `bytes_moved`, kept separately so experiments can attribute how much
    /// of a solve's traffic is the matrix stream — the quantity reduced by
    /// narrow/scaled matrix storage.
    matrix_bytes_read: [AtomicU64; 3],
    /// Total inner-solver iterations executed, by nesting depth (1-based,
    /// capped at depth 8).
    level_iterations: [AtomicU64; 8],
    /// Number of Richardson adaptive-weight updates (ω′ computations).
    weight_updates: AtomicU64,
    /// Batched multi-RHS SpMV (SpMM) invocations, indexed by matrix-value
    /// precision.  Each call streams the matrix once for all panel columns.
    spmm_calls: [AtomicU64; 3],
    /// Total panel columns processed by the SpMM calls above, indexed by
    /// matrix-value precision: `spmm_columns / spmm_calls` is the mean batch
    /// width, and the per-batch-column matrix traffic is
    /// `matrix_bytes / column count` because the stream is shared.
    spmm_columns: [AtomicU64; 3],
    /// Mid-solve precision escalations (switches to a *wider* variant), by
    /// nesting depth (1-based, capped at depth 8) of the affected level.
    level_escalations: [AtomicU64; 8],
    /// Mid-solve precision de-escalations (switches back to a narrower
    /// variant), by nesting depth of the affected level.
    level_deescalations: [AtomicU64; 8],
    /// Bytes of matrix storage newly materialized by mid-solve precision
    /// switches — the one-off cost of faulting wider variants in from the
    /// lazy matrix store, kept separate from the streaming traffic above.
    switch_bytes: AtomicU64,
}

const fn precision_index(p: Precision) -> usize {
    match p {
        Precision::Fp16 => 0,
        Precision::Fp32 => 1,
        Precision::Fp64 => 2,
    }
}

impl KernelCounters {
    /// Create a fresh, zeroed set of counters wrapped in an [`Arc`].
    #[must_use]
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one invocation of the primary preconditioner `M`.
    pub fn record_precond_apply(&self) {
        self.precond_applies.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `count` invocations of the primary preconditioner `M`.
    pub fn record_precond_applies(&self, count: u64) {
        self.precond_applies.fetch_add(count, Ordering::Relaxed);
    }

    /// Record one SpMV with matrix values stored in precision `p`, moving an
    /// estimated `bytes` of memory.
    pub fn record_spmv(&self, p: Precision, bytes: u64) {
        self.spmv_calls[precision_index(p)].fetch_add(1, Ordering::Relaxed);
        self.bytes_moved[precision_index(p)].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one batched multi-RHS SpMV (SpMM) over a `columns`-wide panel
    /// with matrix values stored in precision `p`, moving an estimated
    /// `bytes` of memory **in total** (matrix stream once + `columns` vector
    /// sweeps).
    ///
    /// The matrix stream is physically shared by the whole panel, so it is
    /// recorded once per call, not once per column; the separate column
    /// count is what lets experiments amortize it per batch column
    /// (`matrix_bytes_total / spmm_columns_total` = matrix bytes per RHS).
    pub fn record_spmm(&self, p: Precision, bytes: u64, columns: u64) {
        let i = precision_index(p);
        self.spmm_calls[i].fetch_add(1, Ordering::Relaxed);
        self.spmm_columns[i].fetch_add(columns, Ordering::Relaxed);
        self.bytes_moved[i].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one BLAS-1 kernel on vectors of precision `p`, moving an
    /// estimated `bytes` of memory.
    pub fn record_blas1(&self, p: Precision, bytes: u64) {
        self.blas1_calls[precision_index(p)].fetch_add(1, Ordering::Relaxed);
        self.bytes_moved[precision_index(p)].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one sweep over stored basis vectors: `read_bytes` read from and
    /// `write_bytes` written to basis storage held in precision `p`.
    ///
    /// Basis traffic also accumulates into the total `bytes_moved` for `p`,
    /// so `total_bytes` keeps counting every modeled byte; the separate
    /// basis read/write counters exist so experiments can attribute how much
    /// of a solve's traffic is Krylov-basis streaming — the quantity basis
    /// compression reduces.
    pub fn record_basis_traffic(&self, p: Precision, read_bytes: u64, write_bytes: u64) {
        let i = precision_index(p);
        self.basis_bytes_read[i].fetch_add(read_bytes, Ordering::Relaxed);
        self.basis_bytes_written[i].fetch_add(write_bytes, Ordering::Relaxed);
        self.bytes_moved[i].fetch_add(read_bytes + write_bytes, Ordering::Relaxed);
    }

    /// Attribute `bytes` of matrix-stream traffic to the matrix storage
    /// precision `p`.
    ///
    /// Unlike [`record_basis_traffic`](Self::record_basis_traffic), this does
    /// *not* add to the overall `bytes_moved` totals: the matrix stream is
    /// already part of the SpMV bytes recorded by
    /// [`record_spmv`](Self::record_spmv), and this counter only splits that
    /// total out per matrix storage precision.
    pub fn record_matrix_traffic(&self, p: Precision, bytes: u64) {
        self.matrix_bytes_read[precision_index(p)].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `iters` iterations executed by the solver at nesting `depth`
    /// (1 = outermost).
    pub fn record_level_iterations(&self, depth: usize, iters: u64) {
        let idx = depth.saturating_sub(1).min(self.level_iterations.len() - 1);
        self.level_iterations[idx].fetch_add(iters, Ordering::Relaxed);
    }

    /// Record one adaptive-weight update (computation of ω′ in Algorithm 1).
    pub fn record_weight_update(&self) {
        self.weight_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one mid-solve precision escalation of the level at nesting
    /// `depth` (1 = outermost; depths beyond 8 are clamped like
    /// [`record_level_iterations`](Self::record_level_iterations)).
    pub fn record_escalation(&self, depth: usize) {
        let idx = depth.saturating_sub(1).min(self.level_escalations.len() - 1);
        self.level_escalations[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one mid-solve precision de-escalation of the level at nesting
    /// `depth`.
    pub fn record_deescalation(&self, depth: usize) {
        let idx = depth
            .saturating_sub(1)
            .min(self.level_deescalations.len() - 1);
        self.level_deescalations[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Record `bytes` of matrix storage newly materialized by a mid-solve
    /// precision switch.
    pub fn record_switch_bytes(&self, bytes: u64) {
        self.switch_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.precond_applies.store(0, Ordering::Relaxed);
        self.weight_updates.store(0, Ordering::Relaxed);
        for c in &self.spmv_calls {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.blas1_calls {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.bytes_moved {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.basis_bytes_read {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.basis_bytes_written {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.matrix_bytes_read {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.level_iterations {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.spmm_calls {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.spmm_columns {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.level_escalations {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.level_deescalations {
            c.store(0, Ordering::Relaxed);
        }
        self.switch_bytes.store(0, Ordering::Relaxed);
    }

    /// Take a plain-data snapshot of the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        let load3 = |a: &[AtomicU64; 3]| {
            [
                a[0].load(Ordering::Relaxed),
                a[1].load(Ordering::Relaxed),
                a[2].load(Ordering::Relaxed),
            ]
        };
        let load8 = |a: &[AtomicU64; 8]| {
            let mut out = [0u64; 8];
            for (o, c) in out.iter_mut().zip(a.iter()) {
                *o = c.load(Ordering::Relaxed);
            }
            out
        };
        CounterSnapshot {
            precond_applies: self.precond_applies.load(Ordering::Relaxed),
            spmv_calls: load3(&self.spmv_calls),
            blas1_calls: load3(&self.blas1_calls),
            bytes_moved: load3(&self.bytes_moved),
            basis_bytes_read: load3(&self.basis_bytes_read),
            basis_bytes_written: load3(&self.basis_bytes_written),
            matrix_bytes_read: load3(&self.matrix_bytes_read),
            level_iterations: load8(&self.level_iterations),
            weight_updates: self.weight_updates.load(Ordering::Relaxed),
            spmm_calls: load3(&self.spmm_calls),
            spmm_columns: load3(&self.spmm_columns),
            level_escalations: load8(&self.level_escalations),
            level_deescalations: load8(&self.level_deescalations),
            switch_bytes: self.switch_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of a [`KernelCounters`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Invocations of the primary preconditioner `M`.
    pub precond_applies: u64,
    /// SpMV calls per matrix-value precision, ordered `[fp16, fp32, fp64]`.
    pub spmv_calls: [u64; 3],
    /// BLAS-1 calls per vector precision, ordered `[fp16, fp32, fp64]`.
    pub blas1_calls: [u64; 3],
    /// Modeled bytes moved per precision, ordered `[fp16, fp32, fp64]`.
    pub bytes_moved: [u64; 3],
    /// Bytes read from stored basis vectors per *storage* precision,
    /// ordered `[fp16, fp32, fp64]` (a subset of `bytes_moved`).
    pub basis_bytes_read: [u64; 3],
    /// Bytes written to stored basis vectors per storage precision,
    /// ordered `[fp16, fp32, fp64]` (a subset of `bytes_moved`).
    pub basis_bytes_written: [u64; 3],
    /// Matrix-stream bytes read per matrix *storage* precision, ordered
    /// `[fp16, fp32, fp64]` (a subset of the SpMV bytes in `bytes_moved`).
    pub matrix_bytes_read: [u64; 3],
    /// Iterations executed per nesting depth (index 0 = outermost).
    pub level_iterations: [u64; 8],
    /// Number of adaptive Richardson weight updates performed.
    pub weight_updates: u64,
    /// Batched SpMM calls per matrix-value precision, ordered
    /// `[fp16, fp32, fp64]` (each call streamed the matrix once).
    pub spmm_calls: [u64; 3],
    /// Total panel columns processed by those SpMM calls, same order.
    pub spmm_columns: [u64; 3],
    /// Mid-solve precision escalations per nesting depth (index 0 =
    /// outermost; the outermost level never switches, so index 0 stays 0).
    pub level_escalations: [u64; 8],
    /// Mid-solve precision de-escalations per nesting depth.
    pub level_deescalations: [u64; 8],
    /// Bytes of matrix storage newly materialized by mid-solve precision
    /// switches (the one-off variant-faulting cost, not streaming traffic).
    pub switch_bytes: u64,
}

impl CounterSnapshot {
    /// Total modeled bytes moved across all precisions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_moved.iter().sum()
    }

    /// Total SpMV calls across all precisions.
    #[must_use]
    pub fn total_spmv(&self) -> u64 {
        self.spmv_calls.iter().sum()
    }

    /// Total bytes moved through stored basis vectors (reads + writes, all
    /// storage precisions) — the traffic basis compression shrinks.
    #[must_use]
    pub fn basis_bytes_total(&self) -> u64 {
        self.basis_bytes_read.iter().sum::<u64>() + self.basis_bytes_written.iter().sum::<u64>()
    }

    /// Basis bytes (reads + writes) held in a given storage precision.
    #[must_use]
    pub fn basis_bytes_in(&self, p: Precision) -> u64 {
        let i = precision_index(p);
        self.basis_bytes_read[i] + self.basis_bytes_written[i]
    }

    /// Matrix-stream bytes read from storage held in a given precision.
    #[must_use]
    pub fn matrix_bytes_in(&self, p: Precision) -> u64 {
        self.matrix_bytes_read[precision_index(p)]
    }

    /// Total matrix-stream bytes across all storage precisions — the traffic
    /// narrow/scaled matrix storage shrinks.
    #[must_use]
    pub fn matrix_bytes_total(&self) -> u64 {
        self.matrix_bytes_read.iter().sum()
    }

    /// Fraction of the modeled traffic carried in a given precision
    /// (`0.0` if no traffic was recorded at all).
    #[must_use]
    pub fn traffic_fraction(&self, p: Precision) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        self.bytes_moved[precision_index(p)] as f64 / total as f64
    }

    /// Counter value for SpMV calls in a given precision.
    #[must_use]
    pub fn spmv_in(&self, p: Precision) -> u64 {
        self.spmv_calls[precision_index(p)]
    }

    /// Total batched SpMM calls across all precisions.
    #[must_use]
    pub fn total_spmm(&self) -> u64 {
        self.spmm_calls.iter().sum()
    }

    /// Total panel columns processed by batched SpMM calls across all
    /// precisions.  Combined with a matrix-traffic counter this yields the
    /// per-batch-column (per-RHS) matrix stream:
    /// `matrix_bytes_total() / spmm_columns_total()` when every SpMV in the
    /// measured phase went through the batched path.
    #[must_use]
    pub fn spmm_columns_total(&self) -> u64 {
        self.spmm_columns.iter().sum()
    }

    /// Batched SpMM calls with matrix values in a given precision.
    #[must_use]
    pub fn spmm_in(&self, p: Precision) -> u64 {
        self.spmm_calls[precision_index(p)]
    }

    /// Mean SpMM batch width (0.0 if no SpMM ran).
    #[must_use]
    pub fn mean_spmm_width(&self) -> f64 {
        let calls = self.total_spmm();
        if calls == 0 {
            return 0.0;
        }
        self.spmm_columns_total() as f64 / calls as f64
    }

    /// Modeled bytes moved in a given precision.
    #[must_use]
    pub fn bytes_in(&self, p: Precision) -> u64 {
        self.bytes_moved[precision_index(p)]
    }

    /// Total mid-solve precision escalations across all nesting depths.
    #[must_use]
    pub fn total_escalations(&self) -> u64 {
        self.level_escalations.iter().sum()
    }

    /// Total mid-solve precision de-escalations across all nesting depths.
    #[must_use]
    pub fn total_deescalations(&self) -> u64 {
        self.level_deescalations.iter().sum()
    }

    /// Element-wise difference `self - earlier`, saturating at zero.
    ///
    /// Useful for measuring the cost of a single phase between two snapshots.
    #[must_use]
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let sub3 = |a: [u64; 3], b: [u64; 3]| {
            [
                a[0].saturating_sub(b[0]),
                a[1].saturating_sub(b[1]),
                a[2].saturating_sub(b[2]),
            ]
        };
        let sub8 = |a: [u64; 8], b: [u64; 8]| {
            let mut out = [0u64; 8];
            for ((o, s), e) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
                *o = s.saturating_sub(*e);
            }
            out
        };
        CounterSnapshot {
            precond_applies: self.precond_applies.saturating_sub(earlier.precond_applies),
            spmv_calls: sub3(self.spmv_calls, earlier.spmv_calls),
            blas1_calls: sub3(self.blas1_calls, earlier.blas1_calls),
            bytes_moved: sub3(self.bytes_moved, earlier.bytes_moved),
            basis_bytes_read: sub3(self.basis_bytes_read, earlier.basis_bytes_read),
            basis_bytes_written: sub3(self.basis_bytes_written, earlier.basis_bytes_written),
            matrix_bytes_read: sub3(self.matrix_bytes_read, earlier.matrix_bytes_read),
            level_iterations: sub8(self.level_iterations, earlier.level_iterations),
            weight_updates: self.weight_updates.saturating_sub(earlier.weight_updates),
            spmm_calls: sub3(self.spmm_calls, earlier.spmm_calls),
            spmm_columns: sub3(self.spmm_columns, earlier.spmm_columns),
            level_escalations: sub8(self.level_escalations, earlier.level_escalations),
            level_deescalations: sub8(self.level_deescalations, earlier.level_deescalations),
            switch_bytes: self.switch_bytes.saturating_sub(earlier.switch_bytes),
        }
    }

    /// Add `other` into `self`, field by field (the inverse of
    /// [`since`](Self::since)).  Lets an aggregator — e.g. the serving
    /// layer's metrics, which merge per-request deltas from many worker
    /// sessions — maintain one running total.
    pub fn accumulate(&mut self, other: &CounterSnapshot) {
        let add3 = |a: &mut [u64; 3], b: [u64; 3]| {
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.saturating_add(y);
            }
        };
        let add8 = |a: &mut [u64; 8], b: [u64; 8]| {
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.saturating_add(y);
            }
        };
        self.precond_applies = self.precond_applies.saturating_add(other.precond_applies);
        add3(&mut self.spmv_calls, other.spmv_calls);
        add3(&mut self.blas1_calls, other.blas1_calls);
        add3(&mut self.bytes_moved, other.bytes_moved);
        add3(&mut self.basis_bytes_read, other.basis_bytes_read);
        add3(&mut self.basis_bytes_written, other.basis_bytes_written);
        add3(&mut self.matrix_bytes_read, other.matrix_bytes_read);
        add8(&mut self.level_iterations, other.level_iterations);
        self.weight_updates = self.weight_updates.saturating_add(other.weight_updates);
        add3(&mut self.spmm_calls, other.spmm_calls);
        add3(&mut self.spmm_columns, other.spmm_columns);
        add8(&mut self.level_escalations, other.level_escalations);
        add8(&mut self.level_deescalations, other.level_deescalations);
        self.switch_bytes = self.switch_bytes.saturating_add(other.switch_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = KernelCounters::new_shared();
        c.record_precond_apply();
        c.record_precond_applies(4);
        c.record_spmv(Precision::Fp16, 100);
        c.record_spmv(Precision::Fp64, 300);
        c.record_blas1(Precision::Fp32, 50);
        c.record_level_iterations(1, 10);
        c.record_level_iterations(4, 7);
        c.record_weight_update();

        let s = c.snapshot();
        assert_eq!(s.precond_applies, 5);
        assert_eq!(s.spmv_in(Precision::Fp16), 1);
        assert_eq!(s.spmv_in(Precision::Fp64), 1);
        assert_eq!(s.total_spmv(), 2);
        assert_eq!(s.total_bytes(), 450);
        assert_eq!(s.level_iterations[0], 10);
        assert_eq!(s.level_iterations[3], 7);
        assert_eq!(s.weight_updates, 1);

        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn traffic_fraction_sums_to_one() {
        let c = KernelCounters::new_shared();
        c.record_spmv(Precision::Fp16, 250);
        c.record_spmv(Precision::Fp32, 250);
        c.record_spmv(Precision::Fp64, 500);
        let s = c.snapshot();
        let sum: f64 = Precision::all().iter().map(|&p| s.traffic_fraction(p)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((s.traffic_fraction(Precision::Fp64) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_fraction_zero_when_empty() {
        let c = KernelCounters::new_shared();
        assert_eq!(c.snapshot().traffic_fraction(Precision::Fp64), 0.0);
    }

    #[test]
    fn snapshot_difference() {
        let c = KernelCounters::new_shared();
        c.record_precond_applies(3);
        c.record_spmv(Precision::Fp32, 10);
        let first = c.snapshot();
        c.record_precond_applies(2);
        c.record_spmv(Precision::Fp32, 10);
        let second = c.snapshot();
        let diff = second.since(&first);
        assert_eq!(diff.precond_applies, 2);
        assert_eq!(diff.spmv_in(Precision::Fp32), 1);
        assert_eq!(diff.bytes_in(Precision::Fp32), 10);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = KernelCounters::new_shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record_precond_apply();
                        c.record_blas1(Precision::Fp16, 8);
                    }
                });
            }
        });
        let s = c.snapshot();
        assert_eq!(s.precond_applies, 4000);
        assert_eq!(s.blas1_calls[0], 4000);
        assert_eq!(s.bytes_in(Precision::Fp16), 32_000);
    }

    #[test]
    fn basis_traffic_is_attributed_and_counted_in_totals() {
        let c = KernelCounters::new_shared();
        c.record_basis_traffic(Precision::Fp16, 200, 100);
        c.record_basis_traffic(Precision::Fp64, 800, 0);
        c.record_blas1(Precision::Fp64, 50);
        let s = c.snapshot();
        assert_eq!(s.basis_bytes_in(Precision::Fp16), 300);
        assert_eq!(s.basis_bytes_in(Precision::Fp64), 800);
        assert_eq!(s.basis_bytes_total(), 1100);
        assert_eq!(s.basis_bytes_read, [200, 0, 800]);
        assert_eq!(s.basis_bytes_written, [100, 0, 0]);
        // Basis traffic is a subset of the overall byte totals.
        assert_eq!(s.total_bytes(), 1150);
        c.reset();
        assert_eq!(c.snapshot().basis_bytes_total(), 0);
    }

    #[test]
    fn basis_traffic_survives_snapshot_difference() {
        let c = KernelCounters::new_shared();
        c.record_basis_traffic(Precision::Fp32, 10, 20);
        let first = c.snapshot();
        c.record_basis_traffic(Precision::Fp32, 5, 5);
        let diff = c.snapshot().since(&first);
        assert_eq!(diff.basis_bytes_in(Precision::Fp32), 10);
    }

    #[test]
    fn matrix_traffic_is_attributed_without_inflating_totals() {
        let c = KernelCounters::new_shared();
        // An SpMV records its full byte estimate; the matrix-stream subset is
        // attributed separately and must not double-count into the totals.
        c.record_spmv(Precision::Fp16, 1000);
        c.record_matrix_traffic(Precision::Fp16, 700);
        c.record_spmv(Precision::Fp64, 4000);
        c.record_matrix_traffic(Precision::Fp64, 3200);
        let s = c.snapshot();
        assert_eq!(s.matrix_bytes_in(Precision::Fp16), 700);
        assert_eq!(s.matrix_bytes_in(Precision::Fp64), 3200);
        assert_eq!(s.matrix_bytes_total(), 3900);
        assert_eq!(s.total_bytes(), 5000);
        let first = s;
        c.record_matrix_traffic(Precision::Fp16, 300);
        let diff = c.snapshot().since(&first);
        assert_eq!(diff.matrix_bytes_in(Precision::Fp16), 300);
        c.reset();
        assert_eq!(c.snapshot().matrix_bytes_total(), 0);
    }

    #[test]
    fn spmm_traffic_attributes_per_batch_column() {
        let c = KernelCounters::new_shared();
        // One 8-wide SpMM: matrix stream once, attributed once, 8 columns.
        c.record_spmm(Precision::Fp16, 1000, 8);
        c.record_matrix_traffic(Precision::Fp16, 700);
        let s = c.snapshot();
        assert_eq!(s.total_spmm(), 1);
        assert_eq!(s.spmm_in(Precision::Fp16), 1);
        assert_eq!(s.spmm_columns_total(), 8);
        assert_eq!(s.mean_spmm_width(), 8.0);
        assert_eq!(s.total_bytes(), 1000);
        // Per-RHS matrix stream: shared bytes over processed columns.
        assert_eq!(s.matrix_bytes_total() / s.spmm_columns_total(), 87);
        let first = s;
        c.record_spmm(Precision::Fp16, 500, 4);
        let diff = c.snapshot().since(&first);
        assert_eq!(diff.spmm_calls, [1, 0, 0]);
        assert_eq!(diff.spmm_columns, [4, 0, 0]);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
        assert_eq!(c.snapshot().mean_spmm_width(), 0.0);
    }

    #[test]
    fn escalation_events_are_attributed_per_level() {
        let c = KernelCounters::new_shared();
        c.record_escalation(2);
        c.record_escalation(2);
        c.record_escalation(3);
        c.record_deescalation(2);
        c.record_switch_bytes(4096);
        let s = c.snapshot();
        assert_eq!(s.level_escalations[1], 2);
        assert_eq!(s.level_escalations[2], 1);
        assert_eq!(s.total_escalations(), 3);
        assert_eq!(s.level_deescalations[1], 1);
        assert_eq!(s.total_deescalations(), 1);
        assert_eq!(s.switch_bytes, 4096);
        // Depths beyond the table clamp like level_iterations.
        c.record_escalation(50);
        assert_eq!(c.snapshot().level_escalations[7], 1);
        // The difference view isolates a phase.
        let first = c.snapshot();
        c.record_escalation(2);
        c.record_switch_bytes(100);
        let diff = c.snapshot().since(&first);
        assert_eq!(diff.total_escalations(), 1);
        assert_eq!(diff.switch_bytes, 100);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn deep_level_iterations_are_clamped() {
        let c = KernelCounters::new_shared();
        c.record_level_iterations(50, 3);
        assert_eq!(c.snapshot().level_iterations[7], 3);
    }
}
