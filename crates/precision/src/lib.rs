//! Precision layer for the F3R nested Krylov solver reproduction.
//!
//! The paper *"A Nested Krylov Method Using Half-Precision Arithmetic"*
//! (Suzuki & Iwashita, 2025) builds a solver whose levels run in three
//! different floating-point precisions (fp64, fp32 and IEEE binary16).  This
//! crate provides everything the rest of the workspace needs to talk about
//! precision:
//!
//! * [`Scalar`] — a trait abstracting over `f64`, `f32` and [`half::f16`]
//!   so that sparse kernels and solvers can be written once and instantiated
//!   per precision level,
//! * [`Precision`] — a runtime tag describing a precision (used by solver
//!   configuration, reports and the memory-traffic model),
//! * [`convert`] — slice conversion helpers used by the precision bridges
//!   between nesting levels,
//! * [`traffic`] — the memory-access model of the paper (Section 4.1,
//!   Eqs. 1–3) generalised to arbitrary value/index byte widths,
//! * [`counters`] — lock-free instrumentation counters used to reproduce
//!   Table 3 (preconditioner-invocation counts) and the modeled-traffic
//!   columns of the experiment reports.

#![warn(missing_docs)]

pub mod convert;
pub mod counters;
pub mod scalar;
pub mod traffic;

pub use convert::{convert_slice, convert_vec, copy_into, round_trip_error};
pub use counters::{CounterSnapshot, KernelCounters};
pub use scalar::{FromScalar, Precision, Scalar, SliceView, SliceViewMut};

/// Re-export of the IEEE binary16 type used throughout the workspace.
pub use half::f16;
