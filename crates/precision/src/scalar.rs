//! The [`Scalar`] trait and the [`Precision`] runtime tag.
//!
//! All sparse kernels, preconditioners and solver levels in this workspace
//! are generic over a working precision `T: Scalar`.  The trait is kept
//! deliberately small: the solvers only need basic arithmetic, conversions
//! to/from `f64`/`f32`, and a handful of numeric queries.
//!
//! Half precision (`half::f16`) follows the convention used by the paper and
//! by fp16 hardware: values are *stored* in binary16, while compound
//! operations that would otherwise lose too much accuracy (long
//! accumulations, inner products for the adaptive Richardson weight) are
//! carried out in the associated [`Scalar::Accum`] type, which is `f32` for
//! `f16` and the type itself for `f32`/`f64`.

use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use half::f16;

/// Runtime description of a floating-point precision.
///
/// This is the configuration-level counterpart of the compile-time
/// [`Scalar`] trait: solver configurations (e.g. "store the level-3 matrix in
/// fp16") carry a `Precision`, and builders dispatch to the matching
/// `Scalar` instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// IEEE binary16 (half precision), 2 bytes per value.
    Fp16,
    /// IEEE binary32 (single precision), 4 bytes per value.
    Fp32,
    /// IEEE binary64 (double precision), 8 bytes per value.
    Fp64,
}

impl Precision {
    /// Number of bytes used to store one value in this precision.
    #[must_use]
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
            Precision::Fp64 => 8,
        }
    }

    /// Unit roundoff (machine epsilon) of the precision.
    #[must_use]
    pub fn epsilon(self) -> f64 {
        match self {
            Precision::Fp16 => f64::from(f16::EPSILON),
            Precision::Fp32 => f64::from(f32::EPSILON),
            Precision::Fp64 => f64::EPSILON,
        }
    }

    /// Largest finite representable magnitude.
    #[must_use]
    pub fn max_finite(self) -> f64 {
        match self {
            Precision::Fp16 => f64::from(f16::MAX),
            Precision::Fp32 => f64::from(f32::MAX),
            Precision::Fp64 => f64::MAX,
        }
    }

    /// Short human-readable name matching the paper's nomenclature
    /// (`"fp16"`, `"fp32"`, `"fp64"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Precision::Fp16 => "fp16",
            Precision::Fp32 => "fp32",
            Precision::Fp64 => "fp64",
        }
    }

    /// All precisions ordered from lowest to highest.
    #[must_use]
    pub const fn all() -> [Precision; 3] {
        [Precision::Fp16, Precision::Fp32, Precision::Fp64]
    }

    /// The next lower precision, if any (fp64 → fp32 → fp16).
    #[must_use]
    pub const fn lower(self) -> Option<Precision> {
        match self {
            Precision::Fp64 => Some(Precision::Fp32),
            Precision::Fp32 => Some(Precision::Fp16),
            Precision::Fp16 => None,
        }
    }
}

impl Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar slice with its concrete element type recovered at runtime.
///
/// Generic kernels sometimes need to hand a `&[T]` to non-generic code — most
/// importantly the `f3r-simd` dispatch layer, whose hand-written SIMD kernels
/// exist per concrete precision.  [`Scalar::view`] reifies the type parameter
/// into this enum; because each `Scalar` impl returns its own variant, a
/// `match` on the view monomorphises to a single static arm with no runtime
/// branch.
#[derive(Debug)]
pub enum SliceView<'a> {
    /// A half-precision slice.
    F16(&'a [f16]),
    /// A single-precision slice.
    F32(&'a [f32]),
    /// A double-precision slice.
    F64(&'a [f64]),
}

/// Mutable counterpart of [`SliceView`]; see [`Scalar::view_mut`].
#[derive(Debug)]
pub enum SliceViewMut<'a> {
    /// A half-precision slice.
    F16(&'a mut [f16]),
    /// A single-precision slice.
    F32(&'a mut [f32]),
    /// A double-precision slice.
    F64(&'a mut [f64]),
}

/// Floating-point scalar usable as a working precision in the solvers.
///
/// Implemented for `f64`, `f32` and [`half::f16`].  The trait provides the
/// conversions and numeric queries the nested solver levels need; heavier
/// numeric work (accumulation, inner products) should be done in
/// [`Scalar::Accum`].
///
/// # Example
///
/// Kernels written once against `Scalar` run in any precision; long
/// reductions accumulate in [`Scalar::Accum`], which each element enters
/// through a single exact [`Scalar::widen`] conversion:
///
/// ```
/// use f3r_precision::{f16, Scalar};
///
/// fn sum_of_squares<T: Scalar>(xs: &[T]) -> f64 {
///     let mut acc = <T::Accum as Scalar>::zero();
///     for &x in xs {
///         let w = x.widen(); // exact; f16 → f32 for half precision
///         acc += w * w;
///     }
///     acc.to_f64()
/// }
///
/// // 4096 fp16 ones: a pure fp16 accumulation would saturate at 2048, the
/// // fp32 accumulator is exact.
/// let ones = vec![f16::from_f32(1.0); 4096];
/// assert_eq!(sum_of_squares(&ones), 4096.0);
/// ```
pub trait Scalar:
    Copy
    + Send
    + Sync
    + 'static
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// The precision this scalar stores values in.
    const PRECISION: Precision;

    /// Accumulation type: long reductions over `Self` values should be done
    /// in this type.  `f32` for `f16`, otherwise `Self`.
    ///
    /// The [`FromScalar`] bound lets mixed-precision kernels pull a matrix
    /// value stored in *any* precision into this accumulator with one direct
    /// conversion (`TA → TV::Accum`), which is what makes the
    /// decoupled-storage/arithmetic scheme of the paper free at the kernel
    /// level.
    type Accum: FromScalar;

    /// Widen directly into the accumulation precision.
    ///
    /// This is the streaming-kernel conversion: a single, exact `f16 → f32`
    /// widening for half precision and the identity for `f32`/`f64`.  Hot
    /// loops must use this (or [`Scalar::narrow`]) instead of the
    /// `from_f64(x.to_f64())` round trip, which costs two conversions and two
    /// rounding steps per element and blocks vectorisation.
    fn widen(self) -> Self::Accum;

    /// Round a value from the accumulation precision back into this
    /// precision (round-to-nearest-even).  Identity for `f32`/`f64`, a
    /// single `f32 → f16` rounding for half precision.
    fn narrow(v: Self::Accum) -> Self;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Round a double-precision value into this precision
    /// (round-to-nearest-even).
    fn from_f64(v: f64) -> Self;
    /// Widen into double precision (exact).
    fn to_f64(self) -> f64;
    /// Round a single-precision value into this precision.
    fn from_f32(v: f32) -> Self;
    /// Convert to single precision (exact for `f16`/`f32`, rounding for `f64`).
    fn to_f32(self) -> f32;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root (computed in the accumulation precision for `f16`).
    fn sqrt(self) -> Self;
    /// Fused (or emulated) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` if the value is neither infinite nor NaN.
    fn is_finite(self) -> bool;

    /// Reify a slice of this scalar into a [`SliceView`] carrying the
    /// concrete element type (see the enum docs for why).
    fn view(xs: &[Self]) -> SliceView<'_>;

    /// Mutable counterpart of [`Scalar::view`].
    fn view_mut(xs: &mut [Self]) -> SliceViewMut<'_>;

    /// Number of bytes per stored value.
    #[must_use]
    fn bytes() -> usize {
        Self::PRECISION.bytes()
    }

    /// Unit roundoff of this precision.
    #[must_use]
    fn epsilon() -> f64 {
        Self::PRECISION.epsilon()
    }

    /// Short name (`"fp16"`, `"fp32"`, `"fp64"`).
    #[must_use]
    fn name() -> &'static str {
        Self::PRECISION.name()
    }
}

/// Direct conversion *into* an accumulation precision from any stored
/// scalar.
///
/// Only `f32` and `f64` ever serve as accumulators, and both can absorb any
/// stored precision with a single hardware (or, for `f16`, one software)
/// conversion.  Kernels use this to widen matrix values stored in `TA` into
/// the vector accumulator `TV::Accum` without the historical
/// `from_f64(x.to_f64())` double conversion.
pub trait FromScalar: Scalar {
    /// Widen (or round, when the source is wider) `s` into this precision
    /// with a single conversion.
    fn from_scalar<S: Scalar>(s: S) -> Self;

    /// Round this accumulator value into any stored precision with a single
    /// conversion — the write-side mirror of [`FromScalar::from_scalar`].
    ///
    /// Compress-on-write kernels (e.g. `narrow_scaled_into`, which stores a
    /// working-precision vector as a scaled fp16 basis vector) use this to
    /// leave the accumulator exactly once per element, the same
    /// single-conversion discipline the read side gets from `from_scalar`.
    fn into_scalar<S: Scalar>(self) -> S;
}

impl FromScalar for f32 {
    #[inline(always)]
    fn from_scalar<S: Scalar>(s: S) -> f32 {
        s.to_f32()
    }

    #[inline(always)]
    fn into_scalar<S: Scalar>(self) -> S {
        S::from_f32(self)
    }
}

impl FromScalar for f64 {
    #[inline(always)]
    fn from_scalar<S: Scalar>(s: S) -> f64 {
        s.to_f64()
    }

    #[inline(always)]
    fn into_scalar<S: Scalar>(self) -> S {
        S::from_f64(self)
    }
}

impl Scalar for f64 {
    const PRECISION: Precision = Precision::Fp64;
    type Accum = f64;

    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
    #[inline(always)]
    fn narrow(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        f64::from(v)
    }
    #[inline(always)]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn view(xs: &[Self]) -> SliceView<'_> {
        SliceView::F64(xs)
    }
    #[inline(always)]
    fn view_mut(xs: &mut [Self]) -> SliceViewMut<'_> {
        SliceViewMut::F64(xs)
    }
}

impl Scalar for f32 {
    const PRECISION: Precision = Precision::Fp32;
    type Accum = f32;

    #[inline(always)]
    fn widen(self) -> f32 {
        self
    }
    #[inline(always)]
    fn narrow(v: f32) -> Self {
        v
    }
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        v
    }
    #[inline(always)]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn view(xs: &[Self]) -> SliceView<'_> {
        SliceView::F32(xs)
    }
    #[inline(always)]
    fn view_mut(xs: &mut [Self]) -> SliceViewMut<'_> {
        SliceViewMut::F32(xs)
    }
}

impl Scalar for f16 {
    const PRECISION: Precision = Precision::Fp16;
    type Accum = f32;

    #[inline(always)]
    fn widen(self) -> f32 {
        self.to_f32()
    }
    #[inline(always)]
    fn narrow(v: f32) -> Self {
        f16::from_f32(v)
    }
    #[inline(always)]
    fn zero() -> Self {
        f16::from_f32(0.0)
    }
    #[inline(always)]
    fn one() -> Self {
        f16::from_f32(1.0)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        f16::from_f64(v)
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        f16::from_f32(v)
    }
    #[inline(always)]
    fn to_f32(self) -> f32 {
        f32::from(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f16::from_f32(f32::from(self).abs())
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f16::from_f32(f32::from(self).sqrt())
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Emulate an fp16 FMA with an fp32 intermediate, which is what
        // mixed-precision hardware units (and the paper's AVX512-FP16
        // kernels with fp32 accumulation) effectively provide.
        f16::from_f32(f32::from(self).mul_add(f32::from(a), f32::from(b)))
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::from(self).is_finite()
    }
    #[inline(always)]
    fn view(xs: &[Self]) -> SliceView<'_> {
        SliceView::F16(xs)
    }
    #[inline(always)]
    fn view_mut(xs: &mut [Self]) -> SliceViewMut<'_> {
        SliceViewMut::F16(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: Scalar>() {
        let x = T::from_f64(1.5);
        assert_eq!(x.to_f64(), 1.5);
        assert_eq!(T::zero().to_f64(), 0.0);
        assert_eq!(T::one().to_f64(), 1.0);
        assert!(T::one().is_finite());
        assert_eq!((T::one() + T::one()).to_f64(), 2.0);
        assert_eq!((-T::one()).abs().to_f64(), 1.0);
        assert_eq!(T::from_f64(4.0).sqrt().to_f64(), 2.0);
        assert_eq!(T::from_f64(2.0).mul_add(T::from_f64(3.0), T::one()).to_f64(), 7.0);
    }

    #[test]
    fn roundtrip_f64() {
        generic_roundtrip::<f64>();
    }

    #[test]
    fn roundtrip_f32() {
        generic_roundtrip::<f32>();
    }

    #[test]
    fn roundtrip_f16() {
        generic_roundtrip::<f16>();
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Fp64.bytes(), 8);
        assert_eq!(<f16 as Scalar>::bytes(), 2);
        assert_eq!(<f32 as Scalar>::bytes(), 4);
        assert_eq!(<f64 as Scalar>::bytes(), 8);
    }

    #[test]
    fn precision_epsilons_are_ordered() {
        assert!(Precision::Fp16.epsilon() > Precision::Fp32.epsilon());
        assert!(Precision::Fp32.epsilon() > Precision::Fp64.epsilon());
        // binary16 has 10 fraction bits => eps = 2^-10.
        assert_eq!(Precision::Fp16.epsilon(), 2.0_f64.powi(-10));
    }

    #[test]
    fn precision_names() {
        assert_eq!(Precision::Fp16.name(), "fp16");
        assert_eq!(Precision::Fp32.name(), "fp32");
        assert_eq!(Precision::Fp64.name(), "fp64");
        assert_eq!(format!("{}", Precision::Fp64), "fp64");
    }

    #[test]
    fn precision_lowering_chain() {
        assert_eq!(Precision::Fp64.lower(), Some(Precision::Fp32));
        assert_eq!(Precision::Fp32.lower(), Some(Precision::Fp16));
        assert_eq!(Precision::Fp16.lower(), None);
    }

    #[test]
    fn fp16_max_finite_is_65504() {
        assert_eq!(Precision::Fp16.max_finite(), 65504.0);
    }

    #[test]
    fn fp16_rounds_to_nearest() {
        // 1 + 2^-11 is exactly between 1 and 1 + 2^-10; round-to-even gives 1.
        let x = f16::from_f64(1.0 + 2.0_f64.powi(-11));
        assert_eq!(x.to_f64(), 1.0);
        let y = f16::from_f64(1.0 + 1.5 * 2.0_f64.powi(-10));
        assert!((y.to_f64() - (1.0 + 2.0 * 2.0_f64.powi(-10))).abs() < 1e-12 || (y.to_f64() - (1.0 + 2.0_f64.powi(-10))).abs() < 1e-12);
    }

    #[test]
    fn widen_is_exact_and_narrow_rounds() {
        fn roundtrip<T: Scalar>() {
            // widen is exact: it must agree with the f64 path for every
            // representable value we throw at it.
            for &v in &[0.0, 1.0, -1.0, 0.5, -2.75, 1024.0] {
                let x = T::from_f64(v);
                assert_eq!(x.widen().to_f64(), x.to_f64());
                // narrow ∘ widen is the identity on representable values
                assert_eq!(T::narrow(x.widen()).to_f64(), x.to_f64());
            }
        }
        roundtrip::<f16>();
        roundtrip::<f32>();
        roundtrip::<f64>();
        // narrow applies round-to-nearest-even: 1 + 2^-11 in f32 is halfway
        // between adjacent f16 values and must round down to 1.0.
        let halfway = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(<f16 as Scalar>::narrow(halfway).to_f64(), 1.0);
    }

    #[test]
    fn widen_narrow_match_the_f64_round_trip() {
        // The direct conversions must be numerically identical to the old
        // from_f64(to_f64()) path — just cheaper.
        for bits in (0..=0xFFFFu16).step_by(7) {
            let h = f16::from_bits(bits);
            if !h.is_finite() {
                continue;
            }
            assert_eq!(h.widen(), f32::from_f64(h.to_f64()));
            let w = h.widen() * 1.000_976_6; // perturb to force rounding
            assert_eq!(<f16 as Scalar>::narrow(w), f16::from_f64(f64::from(w)));
        }
    }

    #[test]
    fn accum_types() {
        fn accum_name<T: Scalar>() -> &'static str {
            <T::Accum as Scalar>::name()
        }
        assert_eq!(accum_name::<f16>(), "fp32");
        assert_eq!(accum_name::<f32>(), "fp32");
        assert_eq!(accum_name::<f64>(), "fp64");
    }
}
