//! Memory-access (traffic) model from Section 4.1 of the paper.
//!
//! The paper motivates the structure of F3R with a rough model of the amount
//! of memory accessed per row (per `n`) by a preconditioned FGMRES cycle and
//! by a Richardson sweep:
//!
//! ```text
//! O(F^m, M)  = cA*m + cM*m + (5/2)*m^2                       (Eq. 1a)
//! O(R^m, M)  = cA*(m-1) + cM*m + 4*(m-1)                     (Eq. 1b)
//! O(F^m̄, F^m̿, M) = cA*m̄ + O(F^m̿,M)*m̄ + (5/2)*m̄^2            (Eq. 2)
//! O(F^m̄, R^m̿, M) = cA*m̄ + O(R^m̿,M)*m̄ + (5/2)*m̄^2            (Eq. 3)
//! ```
//!
//! where `cA` and `cM` are the per-row storage costs (in 8-byte words) of the
//! coefficient matrix and the primary preconditioner.  This module provides
//! the model both in the paper's "word count" form (for reproducing the
//! worked example `cA = 45`, `m = 64`) and in a byte-exact form parameterised
//! by [`Precision`], which the experiment harness uses for its modeled-traffic
//! columns.

use crate::scalar::Precision;

/// Per-row storage cost of a sparse operator, in *double-precision-equivalent
/// words per row* (the unit the paper uses for `cA` and `cM`).
///
/// For a CSR matrix with `nnz_per_row` nonzeros stored with `value` precision
/// values and 32-bit integer column indices, the cost is
/// `nnz_per_row * (value_bytes + 4) / 8`.
#[must_use]
pub fn words_per_row(nnz_per_row: f64, value: Precision) -> f64 {
    nnz_per_row * (value.bytes() as f64 + 4.0) / 8.0
}

/// Memory-access model of one invocation of `(F^m, M)` (Eq. 1, first line),
/// in words per row.
#[must_use]
pub fn fgmres_traffic(c_a: f64, c_m: f64, m: f64) -> f64 {
    c_a * m + c_m * m + 2.5 * m * m
}

/// Memory-access model of one invocation of `(R^m, M)` (Eq. 1, second line),
/// in words per row.  Assumes a zero initial guess, so the first residual is
/// free (`r0 = v`).
#[must_use]
pub fn richardson_traffic(c_a: f64, c_m: f64, m: f64) -> f64 {
    c_a * (m - 1.0) + c_m * m + 4.0 * (m - 1.0)
}

/// Memory-access model of the two-level nested FGMRES `(F^m̄, F^m̿, M)`
/// (Eq. 2), in words per row.
#[must_use]
pub fn nested_fgmres_fgmres_traffic(c_a: f64, c_m: f64, m_outer: f64, m_inner: f64) -> f64 {
    c_a * m_outer + fgmres_traffic(c_a, c_m, m_inner) * m_outer + 2.5 * m_outer * m_outer
}

/// Memory-access model of FGMRES preconditioned by Richardson
/// `(F^m̄, R^m̿, M)` (Eq. 3), in words per row.
#[must_use]
pub fn nested_fgmres_richardson_traffic(c_a: f64, c_m: f64, m_outer: f64, m_inner: f64) -> f64 {
    c_a * m_outer + richardson_traffic(c_a, c_m, m_inner) * m_outer + 2.5 * m_outer * m_outer
}

/// Kernel-level byte-traffic estimates used by the instrumented solvers.
///
/// These are lower-bound "every operand streams from memory once" estimates,
/// the same level of abstraction as the paper's model (no cache model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficModel;

impl TrafficModel {
    /// Bytes of the *matrix stream* of one SpMV: values in precision `a`,
    /// 32-bit column indices and the (n+1) 32-bit row pointers.
    ///
    /// This is the portion of [`spmv_bytes`](Self::spmv_bytes) attributable
    /// to the stored matrix itself — the traffic that shrinks when the matrix
    /// storage precision drops, and the quantity
    /// `KernelCounters::record_matrix_traffic` attributes per storage
    /// precision (parallel to the basis-traffic attribution).
    #[must_use]
    pub fn matrix_stream_bytes(nnz: usize, n: usize, a: Precision) -> u64 {
        (nnz as u64) * (a.bytes() as u64 + 4) + 4 * (n as u64 + 1)
    }

    /// [`matrix_stream_bytes`](Self::matrix_stream_bytes) for *scaled*
    /// matrix storage, which additionally streams one `f64` amplitude scale
    /// per row.
    #[must_use]
    pub fn scaled_matrix_stream_bytes(nnz: usize, n: usize, a: Precision) -> u64 {
        Self::matrix_stream_bytes(nnz, n, a) + 8 * n as u64
    }

    /// Bytes moved by one CSR SpMV `y = A x` with `nnz` stored nonzeros,
    /// `n` rows, matrix values in `a`, and vectors in `v`.
    ///
    /// Counts: matrix values + 32-bit column indices + (n+1) 32-bit row
    /// pointers + read of `x` + write of `y`.
    #[must_use]
    pub fn spmv_bytes(nnz: usize, n: usize, a: Precision, v: Precision) -> u64 {
        Self::matrix_stream_bytes(nnz, n, a) + (n as u64) * 2 * v.bytes() as u64
    }

    /// Bytes moved by one SpMV against *scaled* matrix storage: like
    /// [`spmv_bytes`](Self::spmv_bytes) plus the per-row `f64` scale stream.
    #[must_use]
    pub fn spmv_scaled_bytes(nnz: usize, n: usize, a: Precision, v: Precision) -> u64 {
        Self::spmv_bytes(nnz, n, a, v) + 8 * n as u64
    }

    /// Bytes moved by a BLAS-1 kernel touching `reads` input vectors and
    /// `writes` output vectors of length `n` in precision `v`.
    #[must_use]
    pub fn blas1_bytes(n: usize, reads: usize, writes: usize, v: Precision) -> u64 {
        (n as u64) * (reads + writes) as u64 * v.bytes() as u64
    }

    /// Bytes moved by one CSR SpMM `Y = A X` over a `k`-column panel: the
    /// matrix stream is paid **once** (the point of the batched kernels)
    /// while the vector read/write traffic scales with the panel width.
    ///
    /// `spmm_bytes(nnz, n, a, v, 1) == spmv_bytes(nnz, n, a, v)`, and the
    /// per-RHS matrix traffic of a k-wide panel is `1/k` of the
    /// single-vector kernel's — the amortization the batched solver's
    /// counters measure.
    #[must_use]
    pub fn spmm_bytes(nnz: usize, n: usize, a: Precision, v: Precision, k: usize) -> u64 {
        Self::matrix_stream_bytes(nnz, n, a) + (n as u64) * 2 * (k as u64) * v.bytes() as u64
    }

    /// [`spmm_bytes`](Self::spmm_bytes) for *scaled* matrix storage, which
    /// additionally streams one `f64` amplitude scale per row (once per
    /// panel, like the rest of the matrix stream).
    #[must_use]
    pub fn spmm_scaled_bytes(nnz: usize, n: usize, a: Precision, v: Precision, k: usize) -> u64 {
        Self::spmm_bytes(nnz, n, a, v, k) + 8 * n as u64
    }

    /// Bytes moved through stored basis vectors by one panel sweep touching
    /// `vectors` basis vectors *per column* across a `k`-column panel (the
    /// batched twin of [`basis_bytes`](Self::basis_bytes)).
    ///
    /// Unlike the matrix stream, basis vectors are **per-column state** — a
    /// batch of k recurrences stores k distinct bases — so this traffic
    /// scales linearly with the panel width rather than amortizing.
    #[must_use]
    pub fn batched_basis_bytes(n: usize, vectors: usize, k: usize, s: Precision) -> u64 {
        Self::basis_bytes(n, vectors, s) * k as u64
    }

    /// Bytes moved through stored Krylov/flexible basis vectors by one sweep
    /// touching `vectors` basis vectors of length `n` held in storage
    /// precision `s`.
    ///
    /// Basis vectors may be stored in a lower precision than the level's
    /// working precision (compressed-basis storage with one amplitude scale
    /// per vector); this helper prices a sweep at the *storage* width, which
    /// is exactly the traffic the compression saves.  The per-vector `f64`
    /// scale is a scalar and is not counted.
    #[must_use]
    pub fn basis_bytes(n: usize, vectors: usize, s: Precision) -> u64 {
        (n as u64) * (vectors as u64) * s.bytes() as u64
    }

    /// Bytes moved by one application of a triangular-solve style
    /// preconditioner (e.g. ILU(0)) with `nnz` stored nonzeros and vectors of
    /// length `n` in precision `v` (values stored in precision `m`).
    #[must_use]
    pub fn sparse_precond_bytes(nnz: usize, n: usize, m: Precision, v: Precision) -> u64 {
        // Forward + backward sweeps read all factors once plus the vectors.
        (nnz as u64) * (m.bytes() as u64 + 4) + 4 * (n as u64 + 1) + (n as u64) * 3 * v.bytes() as u64
    }
}

/// Result of the Eq. 2 worked example in Section 4.1: given `cA` and `m`,
/// find the inner/outer split minimising the two-level nested traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestSplit {
    /// Outer iteration count `m̄`.
    pub m_outer: usize,
    /// Inner iteration count `m̿ = m / m̄` (real-valued in the paper's model).
    pub m_inner: f64,
    /// Modeled traffic of the nested solver at this split (words/row).
    pub nested_traffic: f64,
    /// Modeled traffic of the reference single-level FGMRES (words/row).
    pub reference_traffic: f64,
}

/// Sweep all integer outer counts `m̄ ∈ [1, m]` (keeping `m̄ · m̿ = m`) and
/// return the split with minimum modeled traffic, reproducing the worked
/// example of Section 4.1 (`cA = 45`, `m = 64` → `m̄ = 10`).
#[must_use]
pub fn best_two_level_split(c_a: f64, c_m: f64, m: usize) -> BestSplit {
    let reference = fgmres_traffic(c_a, c_m, m as f64);
    let mut best = BestSplit {
        m_outer: 1,
        m_inner: m as f64,
        nested_traffic: f64::INFINITY,
        reference_traffic: reference,
    };
    for m_outer in 1..=m {
        let m_inner = m as f64 / m_outer as f64;
        let t = nested_fgmres_fgmres_traffic(c_a, c_m, m_outer as f64, m_inner);
        if t < best.nested_traffic {
            best = BestSplit {
                m_outer,
                m_inner,
                nested_traffic: t,
                reference_traffic: reference,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const CA: f64 = 45.0; // 30 nnz/row, fp64 values + 32-bit indices (paper's example)
    const CM: f64 = 45.0;

    #[test]
    fn eq2_expands_to_reference_plus_overhead() {
        // Eq. 2: O(F^m̄,F^m̿,M) = O(F^m,M) + cA*m̄ + 2.5*m̿^2*m̄ + 2.5*m̄^2 - 2.5*m^2
        let (m_outer, m_inner) = (8.0, 8.0);
        let m = m_outer * m_inner;
        let lhs = nested_fgmres_fgmres_traffic(CA, CM, m_outer, m_inner);
        let rhs = fgmres_traffic(CA, CM, m) + CA * m_outer + 2.5 * m_inner * m_inner * m_outer
            + 2.5 * m_outer * m_outer
            - 2.5 * m * m;
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn eq3_expands_to_reference_plus_overhead() {
        // Eq. 3: O(F^m̄,R^m̿,M) = O(F^m,M) + 4*(m̿-1)*m̄ + 2.5*m̄^2 - 2.5*m^2
        let (m_outer, m_inner) = (4.0, 2.0);
        let m = m_outer * m_inner;
        let lhs = nested_fgmres_richardson_traffic(CA, CM, m_outer, m_inner);
        let rhs = fgmres_traffic(CA, CM, m) + 4.0 * (m_inner - 1.0) * m_outer
            + 2.5 * m_outer * m_outer
            - 2.5 * m * m;
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn paper_worked_example_ca45_m64_best_split_is_10() {
        // Section 4.1: "assuming cA = 45 and m = 64 ... m̄ = 10 results in the
        // least amount, though 10 is not a divisor of 64."
        let best = best_two_level_split(CA, CM, 64);
        assert_eq!(best.m_outer, 10);
        assert!(best.nested_traffic < best.reference_traffic);
    }

    #[test]
    fn nesting_helps_for_large_m_hurts_for_small_m() {
        // Large m: splitting reduces traffic.
        assert!(
            nested_fgmres_fgmres_traffic(CA, CM, 8.0, 8.0) < fgmres_traffic(CA, CM, 64.0)
        );
        // Small m: splitting FGMRES into FGMRES/FGMRES increases traffic...
        assert!(nested_fgmres_fgmres_traffic(CA, CM, 4.0, 2.0) > fgmres_traffic(CA, CM, 8.0));
        // ...but replacing the inner FGMRES by Richardson reduces it (m >= 3).
        assert!(
            nested_fgmres_richardson_traffic(CA, CM, 4.0, 2.0) < fgmres_traffic(CA, CM, 8.0)
        );
    }

    #[test]
    fn richardson_cheaper_than_fgmres_per_sweep() {
        for m in 2..10 {
            assert!(richardson_traffic(CA, CM, m as f64) < fgmres_traffic(CA, CM, m as f64));
        }
    }

    #[test]
    fn words_per_row_matches_paper_example() {
        // 30 nonzeros per row, fp64 values + 32-bit indices => cA = 45.
        assert_eq!(words_per_row(30.0, Precision::Fp64), 45.0);
        // fp16 values: (2+4)/8 * 30 = 22.5 words.
        assert_eq!(words_per_row(30.0, Precision::Fp16), 22.5);
    }

    #[test]
    fn basis_bytes_scale_with_storage_precision() {
        // fp16 basis storage moves a quarter of the bytes of fp64 storage.
        let b64 = TrafficModel::basis_bytes(1000, 30, Precision::Fp64);
        let b16 = TrafficModel::basis_bytes(1000, 30, Precision::Fp16);
        assert_eq!(b64, 1000 * 30 * 8);
        assert_eq!(b16 * 4, b64);
    }

    #[test]
    fn matrix_stream_bytes_decompose_spmv_bytes() {
        let (nnz, n) = (1000, 100);
        for &a in &[Precision::Fp16, Precision::Fp32, Precision::Fp64] {
            let mat = TrafficModel::matrix_stream_bytes(nnz, n, a);
            assert_eq!(mat, (nnz as u64) * (a.bytes() as u64 + 4) + 4 * (n as u64 + 1));
            assert_eq!(
                TrafficModel::spmv_bytes(nnz, n, a, Precision::Fp64),
                mat + (n as u64) * 16
            );
            // Scaled storage adds exactly the 8-byte-per-row scale stream.
            assert_eq!(
                TrafficModel::scaled_matrix_stream_bytes(nnz, n, a),
                mat + 8 * n as u64
            );
            assert_eq!(
                TrafficModel::spmv_scaled_bytes(nnz, n, a, Precision::Fp32),
                TrafficModel::spmv_bytes(nnz, n, a, Precision::Fp32) + 8 * n as u64
            );
        }
    }

    #[test]
    fn spmv_bytes_scales_with_precision() {
        let b64 = TrafficModel::spmv_bytes(1000, 100, Precision::Fp64, Precision::Fp64);
        let b16 = TrafficModel::spmv_bytes(1000, 100, Precision::Fp16, Precision::Fp16);
        assert!(b16 < b64);
        assert_eq!(
            TrafficModel::blas1_bytes(100, 2, 1, Precision::Fp32),
            100 * 3 * 4
        );
    }

    #[test]
    fn spmm_bytes_amortize_the_matrix_stream() {
        let (nnz, n) = (1000, 100);
        let (a, v) = (Precision::Fp16, Precision::Fp32);
        // k = 1 degenerates to the single-vector kernel.
        assert_eq!(
            TrafficModel::spmm_bytes(nnz, n, a, v, 1),
            TrafficModel::spmv_bytes(nnz, n, a, v)
        );
        // A k-wide panel pays the matrix stream once plus k vector sweeps,
        // so per-RHS traffic decays toward 2·n·v.bytes() as k grows.
        let k = 8;
        assert_eq!(
            TrafficModel::spmm_bytes(nnz, n, a, v, k),
            TrafficModel::matrix_stream_bytes(nnz, n, a) + (n as u64) * 2 * 8 * 4
        );
        assert!(
            TrafficModel::spmm_bytes(nnz, n, a, v, k)
                < TrafficModel::spmv_bytes(nnz, n, a, v) * k as u64
        );
        assert_eq!(
            TrafficModel::spmm_scaled_bytes(nnz, n, a, v, k),
            TrafficModel::spmm_bytes(nnz, n, a, v, k) + 8 * n as u64
        );
        // Basis traffic is per-column state: no amortization.
        assert_eq!(
            TrafficModel::batched_basis_bytes(n, 30, k, Precision::Fp16),
            TrafficModel::basis_bytes(n, 30, Precision::Fp16) * k as u64
        );
    }
}
