//! SD-AINV-style sparse approximate inverse preconditioner.
//!
//! The paper's GPU experiments (Section 5.2) use the SD-AINV preconditioner
//! of Suzuki et al. (2022), "a simplified version of the standard approximate
//! inverse preconditioner", whose defining operational property is that it
//! "requires only two sparse matrix-vector multiplications (SpMVs) per
//! preconditioning step and is well-suited for GPU implementation" — no
//! triangular solves, no reductions.
//!
//! This module reproduces that operational profile with a
//! Jacobi–Neumann approximate inverse: writing the (diagonally boosted)
//! matrix as `A = D (I - G)` with `G = I - D⁻¹A`, the truncated Neumann
//! series gives
//!
//! ```text
//! M = (I + G + G² + … + G^order) D⁻¹  ≈  A⁻¹ .
//! ```
//!
//! With `order = 2` (the default) an application costs exactly two SpMVs with
//! the sparse iteration matrix `G` plus a diagonal scaling — the same
//! application cost and parallel structure as SD-AINV.  On the diagonally
//! scaled, (weakly) diagonally dominant test problems of the paper the series
//! converges and the operator is a serviceable approximate inverse.  The
//! substitution is documented in DESIGN.md §3.

use f3r_precision::Scalar;
use f3r_sparse::spmv::spmv;
use f3r_sparse::{CooMatrix, CsrMatrix};

use crate::traits::Preconditioner;

/// Truncated-Neumann sparse approximate inverse (SD-AINV stand-in), stored in
/// precision `T`.
pub struct SdAinvPrecond<T: Scalar> {
    /// Iteration matrix `G = I - D⁻¹ A` (same pattern as the off-diagonal of A).
    g: CsrMatrix<T>,
    /// Reciprocal (boosted) diagonal `D⁻¹`.
    inv_diag: Vec<T>,
    order: usize,
}

impl<T: Scalar> SdAinvPrecond<T> {
    /// Build the approximate inverse of `a` with the diagonal boosted by
    /// `alpha` (α_AINV, Section 5.2) and `order` Neumann terms beyond the
    /// diagonal one (`order = 2` reproduces the two-SpMV application cost of
    /// SD-AINV).
    ///
    /// # Panics
    /// Panics if `a` is not square or `order` is zero.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // row indexes the matrix and the diagonal
    pub fn new(a: &CsrMatrix<f64>, alpha: f64, order: usize) -> Self {
        assert!(a.is_square(), "SD-AINV requires a square matrix");
        assert!(order >= 1, "order must be at least 1");
        let n = a.n_rows();
        let diag = a.diagonal();
        let inv_diag: Vec<f64> = diag
            .iter()
            .map(|&d| {
                let b = d * alpha;
                if b.abs() > 0.0 {
                    1.0 / b
                } else {
                    1.0
                }
            })
            .collect();
        // G = I - D^{-1} A  (diagonal entries become 1 - a_ii/(alpha*a_ii),
        // off-diagonal entries -a_ij / (alpha*a_ii)).
        let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
        for row in 0..n {
            let (cols, vals) = a.row_entries(row);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let c = c as usize;
                let scaled = inv_diag[row] * v;
                let g = if c == row { 1.0 - scaled } else { -scaled };
                if g != 0.0 {
                    coo.push(row, c, g);
                }
            }
        }
        Self {
            g: coo.to_csr().to_precision::<T>(),
            inv_diag: inv_diag.iter().map(|&v| T::from_f64(v)).collect(),
            order,
        }
    }

    /// Number of Neumann terms applied beyond the diagonal solve.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// The stored iteration matrix `G`.
    #[must_use]
    pub fn iteration_matrix(&self) -> &CsrMatrix<T> {
        &self.g
    }
}

impl<T: Scalar> Preconditioner<T> for SdAinvPrecond<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        let n = self.inv_diag.len();
        assert_eq!(r.len(), n, "SD-AINV: length mismatch");
        assert_eq!(z.len(), n, "SD-AINV: length mismatch");
        // t = D^{-1} r ; z = t ; repeat order times: t = G t ; z += t
        let mut t: Vec<T> = (0..n).map(|i| r[i] * self.inv_diag[i]).collect();
        z.copy_from_slice(&t);
        let mut buf = vec![T::zero(); n];
        for _ in 0..self.order {
            spmv(&self.g, &t, &mut buf);
            std::mem::swap(&mut t, &mut buf);
            for i in 0..n {
                z[i] += t[i];
            }
        }
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn nnz(&self) -> usize {
        self.g.nnz() + self.inv_diag.len()
    }

    fn name(&self) -> String {
        format!("SD-AINV(order={}) ({})", self.order, T::name())
    }

    fn sweeps_per_apply(&self) -> usize {
        self.order
    }

    fn storage_bytes(&self) -> u64 {
        // The iteration-matrix CSR plus the reciprocal diagonal.
        self.g.storage_bytes() + self.inv_diag.len() as u64 * T::PRECISION.bytes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::scaling::jacobi_scale;
    use f3r_sparse::spmv::spmv_seq;

    fn residual_reduction(order: usize) -> f64 {
        let a = jacobi_scale(&poisson2d_5pt(12, 12));
        let n = a.n_rows();
        let p = SdAinvPrecond::<f64>::new(&a, 1.0, order);
        let r: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 / 13.0).collect();
        let mut z = vec![0.0; n];
        p.apply(&r, &mut z);
        let mut az = vec![0.0; n];
        spmv_seq(&a, &z, &mut az);
        let err: f64 = r.iter().zip(&az).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        err / rnorm
    }

    #[test]
    fn reduces_residual_and_improves_with_order() {
        let e1 = residual_reduction(1);
        let e2 = residual_reduction(2);
        let e4 = residual_reduction(4);
        assert!(e1 < 1.0);
        assert!(e2 < e1);
        assert!(e4 < e2);
    }

    #[test]
    fn two_spmv_per_apply_at_default_order() {
        let a = jacobi_scale(&poisson2d_5pt(6, 6));
        let p = SdAinvPrecond::<f64>::new(&a, 1.0, 2);
        assert_eq!(p.sweeps_per_apply(), 2);
        assert_eq!(p.order(), 2);
    }

    #[test]
    fn exact_for_diagonal_matrix() {
        use f3r_sparse::CooMatrix;
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, (i + 1) as f64);
        }
        let a = coo.to_csr();
        let p = SdAinvPrecond::<f64>::new(&a, 1.0, 2);
        let r = vec![1.0, 2.0, 3.0, 4.0];
        let mut z = vec![0.0; 4];
        p.apply(&r, &mut z);
        for (i, &zi) in z.iter().enumerate() {
            assert!((zi - 1.0).abs() < 1e-14, "i={i} z={zi}");
        }
    }

    #[test]
    fn fp16_storage_is_finite_and_close() {
        use half::f16;
        let a = jacobi_scale(&poisson2d_5pt(8, 8));
        let n = a.n_rows();
        let p64 = SdAinvPrecond::<f64>::new(&a, 1.0, 2);
        let p16 = SdAinvPrecond::<f16>::new(&a, 1.0, 2);
        let r = vec![1.0f64; n];
        let mut z64 = vec![0.0f64; n];
        p64.apply(&r, &mut z64);
        let r16 = vec![f16::from_f32(1.0); n];
        let mut z16 = vec![f16::from_f32(0.0); n];
        p16.apply(&r16, &mut z16);
        for i in 0..n {
            assert!(z16[i].is_finite());
            assert!((z16[i].to_f64() - z64[i]).abs() < 2e-2);
        }
    }

    #[test]
    fn alpha_boost_damps_the_operator() {
        let a = jacobi_scale(&poisson2d_5pt(6, 6));
        let p1 = SdAinvPrecond::<f64>::new(&a, 1.0, 2);
        let p2 = SdAinvPrecond::<f64>::new(&a, 1.3, 2);
        let n = a.n_rows();
        let r = vec![1.0; n];
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        p1.apply(&r, &mut z1);
        p2.apply(&r, &mut z2);
        let s1: f64 = z1.iter().map(|v| v.abs()).sum();
        let s2: f64 = z2.iter().map(|v| v.abs()).sum();
        assert!(s2 < s1, "larger alpha should damp the preconditioner");
    }
}
