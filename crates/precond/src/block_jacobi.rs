//! Block-Jacobi wrapper around a per-block factorisation.
//!
//! Section 5.1 of the paper uses "a block-Jacobi ILU(0) (or IC(0) when
//! symmetric) preconditioner ... for multi-threading", with one block per
//! hardware thread (112 blocks on the Camphor 3 node).  The same structure is
//! reproduced here: the row range is split into `n_blocks` contiguous blocks,
//! each diagonal block is factorised independently, and applications run the
//! per-block triangular solves as parallel tasks on the persistent
//! `f3r-parallel` worker pool.

use f3r_precision::Scalar;
use f3r_sparse::CsrMatrix;

use crate::ic0::Ic0Precond;
use crate::ilu0::Ilu0Precond;
use crate::traits::Preconditioner;

/// Block-Jacobi preconditioner composed of independent per-block solvers.
pub struct BlockJacobiPrecond<P> {
    blocks: Vec<P>,
    offsets: Vec<usize>,
    n: usize,
    nnz: usize,
    kind: &'static str,
}

/// Compute contiguous block offsets splitting `n` rows into `n_blocks`
/// near-equal blocks (the first `n % n_blocks` blocks get one extra row).
fn block_offsets(n: usize, n_blocks: usize) -> Vec<usize> {
    let n_blocks = n_blocks.clamp(1, n.max(1));
    let base = n / n_blocks;
    let extra = n % n_blocks;
    let mut offsets = Vec::with_capacity(n_blocks + 1);
    let mut pos = 0;
    offsets.push(0);
    for b in 0..n_blocks {
        pos += base + usize::from(b < extra);
        offsets.push(pos);
    }
    offsets
}

impl<T: Scalar> BlockJacobiPrecond<Ilu0Precond<T>> {
    /// Block-Jacobi ILU(0) with `n_blocks` blocks and α_ILU diagonal boost
    /// `alpha` applied inside each block factorisation.
    #[must_use]
    pub fn ilu0(a: &CsrMatrix<f64>, n_blocks: usize, alpha: f64) -> Self {
        Self::build(a, n_blocks, "block-Jacobi ILU(0)", |block| {
            Ilu0Precond::<T>::new(block, alpha)
        })
    }
}

impl<T: Scalar> BlockJacobiPrecond<Ic0Precond<T>> {
    /// Block-Jacobi IC(0) with `n_blocks` blocks and α diagonal boost
    /// `alpha` applied inside each block factorisation.
    #[must_use]
    pub fn ic0(a: &CsrMatrix<f64>, n_blocks: usize, alpha: f64) -> Self {
        Self::build(a, n_blocks, "block-Jacobi IC(0)", |block| {
            Ic0Precond::<T>::new(block, alpha)
        })
    }
}

impl<P> BlockJacobiPrecond<P> {
    fn build<T: Scalar>(
        a: &CsrMatrix<f64>,
        n_blocks: usize,
        kind: &'static str,
        factorise: impl Fn(&CsrMatrix<f64>) -> P + Sync,
    ) -> Self
    where
        P: Preconditioner<T>,
    {
        assert!(a.is_square(), "block-Jacobi requires a square matrix");
        let n = a.n_rows();
        let offsets = block_offsets(n, n_blocks);
        let windows: Vec<(usize, usize)> = offsets.windows(2).map(|w| (w[0], w[1])).collect();
        let blocks: Vec<P> =
            f3r_parallel::par_map(&windows, |_, &(lo, hi)| factorise(&a.diagonal_block(lo, hi)));
        let nnz = blocks.iter().map(Preconditioner::nnz).sum();
        Self {
            blocks,
            offsets,
            n,
            nnz,
            kind,
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Total rows below which block applications run sequentially, shared with
/// the kernel layer's threshold table: small systems (where a triangular
/// solve is microseconds) must not pay even the pool's dispatch cost on
/// every `M` application.
use f3r_parallel::thresholds::PAR_BLOCK_ROW_THRESHOLD;

impl<T: Scalar, P: Preconditioner<T>> Preconditioner<T> for BlockJacobiPrecond<P> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.n, "block-Jacobi: length mismatch");
        assert_eq!(z.len(), self.n, "block-Jacobi: length mismatch");
        if self.n < PAR_BLOCK_ROW_THRESHOLD {
            for (b, w) in self.offsets.windows(2).enumerate() {
                self.blocks[b].apply(&r[w[0]..w[1]], &mut z[w[0]..w[1]]);
            }
            return;
        }
        // Split z into per-block mutable chunks, then solve blocks in parallel.
        let mut chunks: Vec<&mut [T]> = Vec::with_capacity(self.blocks.len());
        let mut rest = z;
        for w in self.offsets.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            chunks.push(head);
            rest = tail;
        }
        f3r_parallel::par_for_each_mut(&mut chunks, |b, z_block| {
            let (start, end) = (self.offsets[b], self.offsets[b + 1]);
            self.blocks[b].apply(&r[start..end], z_block);
        });
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn name(&self) -> String {
        format!("{} x{} ({})", self.kind, self.blocks.len(), T::name())
    }

    fn storage_bytes(&self) -> u64 {
        // The per-block factors plus the block-offset table.
        self.blocks.iter().map(P::storage_bytes).sum::<u64>()
            + self.offsets.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::hpcg::hpcg_matrix;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::spmv::spmv_seq;

    #[test]
    fn offsets_cover_all_rows() {
        assert_eq!(block_offsets(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(block_offsets(9, 3), vec![0, 3, 6, 9]);
        assert_eq!(block_offsets(5, 8), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(block_offsets(4, 1), vec![0, 4]);
    }

    #[test]
    fn single_block_matches_plain_ilu0() {
        let a = poisson2d_5pt(8, 8);
        let n = a.n_rows();
        let bj = BlockJacobiPrecond::<Ilu0Precond<f64>>::ilu0(&a, 1, 1.0);
        let plain = Ilu0Precond::<f64>::new(&a, 1.0);
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        bj.apply(&r, &mut z1);
        plain.apply(&r, &mut z2);
        for i in 0..n {
            assert!((z1[i] - z2[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn multi_block_still_reduces_residual() {
        let a = hpcg_matrix(6, 6, 6);
        let n = a.n_rows();
        let bj = BlockJacobiPrecond::<Ic0Precond<f64>>::ic0(&a, 8, 1.0);
        assert_eq!(bj.n_blocks(), 8);
        let r: Vec<f64> = (0..n).map(|i| ((i * 13) % 29) as f64 / 29.0).collect();
        let mut z = vec![0.0; n];
        bj.apply(&r, &mut z);
        let mut az = vec![0.0; n];
        spmv_seq(&a, &z, &mut az);
        let err: f64 = r.iter().zip(&az).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < rnorm, "block-Jacobi should reduce the residual");
    }

    #[test]
    fn more_blocks_weaker_but_cheaper() {
        // With more blocks the preconditioner drops more couplings, so the
        // preconditioned residual should (weakly) increase.
        let a = poisson2d_5pt(16, 16);
        let n = a.n_rows();
        let r: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
        let residual_after = |blocks: usize| {
            let bj = BlockJacobiPrecond::<Ilu0Precond<f64>>::ilu0(&a, blocks, 1.0);
            let mut z = vec![0.0; n];
            bj.apply(&r, &mut z);
            let mut az = vec![0.0; n];
            spmv_seq(&a, &z, &mut az);
            r.iter().zip(&az).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
        };
        let e1 = residual_after(1);
        let e16 = residual_after(16);
        assert!(e1 <= e16 + 1e-12, "1 block {e1} should beat 16 blocks {e16}");
    }

    #[test]
    fn fp16_block_jacobi_is_finite() {
        use half::f16;
        let a = poisson2d_5pt(10, 10);
        let n = a.n_rows();
        let bj = BlockJacobiPrecond::<Ilu0Precond<f16>>::ilu0(&a, 4, 1.0);
        let r: Vec<f16> = (0..n).map(|i| f16::from_f32((i % 5) as f32 * 0.1)).collect();
        let mut z = vec![f16::from_f32(0.0); n];
        bj.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        assert!(bj.name().contains("fp16"));
    }
}
