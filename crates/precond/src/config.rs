//! Declarative preconditioner configuration and factory.
//!
//! The experiment harness describes the primary preconditioner of each test
//! case as a [`PrecondKind`] value plus a storage
//! [`Precision`](f3r_precision::Precision); the
//! [`build_preconditioner`] factory turns that description into a boxed
//! [`Preconditioner`] object of the requested precision, constructing in
//! fp64 and casting (the paper's recipe).

use f3r_precision::Scalar;
use f3r_sparse::CsrMatrix;

use crate::ainv::SdAinvPrecond;
use crate::block_jacobi::BlockJacobiPrecond;
use crate::ic0::Ic0Precond;
use crate::ilu0::Ilu0Precond;
use crate::jacobi::JacobiPrecond;
use crate::traits::{IdentityPrecond, Preconditioner};

/// Which primary preconditioner to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecondKind {
    /// No preconditioning (`M = I`).
    Identity,
    /// Diagonal (Jacobi) preconditioner.
    Jacobi,
    /// Single-block ILU(0) with α_ILU diagonal boost.
    Ilu0 {
        /// Diagonal boost applied during factorisation (α_ILU).
        alpha: f64,
    },
    /// Single-block IC(0) with α diagonal boost.
    Ic0 {
        /// Diagonal boost applied during factorisation.
        alpha: f64,
    },
    /// Block-Jacobi ILU(0) (the paper's CPU-node preconditioner for
    /// nonsymmetric problems).
    BlockJacobiIlu0 {
        /// Number of blocks (the paper uses one per hardware thread).
        blocks: usize,
        /// Diagonal boost applied during each block factorisation (α_ILU).
        alpha: f64,
    },
    /// Block-Jacobi IC(0) (the paper's CPU-node preconditioner for symmetric
    /// problems).
    BlockJacobiIc0 {
        /// Number of blocks.
        blocks: usize,
        /// Diagonal boost applied during each block factorisation.
        alpha: f64,
    },
    /// SD-AINV style approximate inverse (the paper's GPU-node
    /// preconditioner).
    SdAinv {
        /// Diagonal boost applied before building the inverse (α_AINV).
        alpha: f64,
        /// Number of Neumann terms (2 reproduces SD-AINV's two SpMVs).
        order: usize,
    },
}

impl PrecondKind {
    /// Short label used in experiment reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PrecondKind::Identity => "identity".into(),
            PrecondKind::Jacobi => "jacobi".into(),
            PrecondKind::Ilu0 { .. } => "ilu0".into(),
            PrecondKind::Ic0 { .. } => "ic0".into(),
            PrecondKind::BlockJacobiIlu0 { blocks, .. } => format!("bj-ilu0x{blocks}"),
            PrecondKind::BlockJacobiIc0 { blocks, .. } => format!("bj-ic0x{blocks}"),
            PrecondKind::SdAinv { order, .. } => format!("sd-ainv{order}"),
        }
    }
}

/// Build a preconditioner of kind `kind` for the matrix `a`, storing its
/// coefficients in precision `T`.
#[must_use]
pub fn build_preconditioner<T: Scalar>(
    a: &CsrMatrix<f64>,
    kind: &PrecondKind,
) -> Box<dyn Preconditioner<T>> {
    match *kind {
        PrecondKind::Identity => Box::new(IdentityPrecond::new(a.n_rows())),
        PrecondKind::Jacobi => Box::new(JacobiPrecond::<T>::new(a)),
        PrecondKind::Ilu0 { alpha } => Box::new(Ilu0Precond::<T>::new(a, alpha)),
        PrecondKind::Ic0 { alpha } => Box::new(Ic0Precond::<T>::new(a, alpha)),
        PrecondKind::BlockJacobiIlu0 { blocks, alpha } => {
            Box::new(BlockJacobiPrecond::<Ilu0Precond<T>>::ilu0(a, blocks, alpha))
        }
        PrecondKind::BlockJacobiIc0 { blocks, alpha } => {
            Box::new(BlockJacobiPrecond::<Ic0Precond<T>>::ic0(a, blocks, alpha))
        }
        PrecondKind::SdAinv { alpha, order } => Box::new(SdAinvPrecond::<T>::new(a, alpha, order)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_precision::Precision;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use half::f16;

    #[test]
    fn factory_builds_every_kind_in_every_precision() {
        let a = poisson2d_5pt(6, 6);
        let kinds = [
            PrecondKind::Identity,
            PrecondKind::Jacobi,
            PrecondKind::Ilu0 { alpha: 1.0 },
            PrecondKind::Ic0 { alpha: 1.0 },
            PrecondKind::BlockJacobiIlu0 { blocks: 4, alpha: 1.0 },
            PrecondKind::BlockJacobiIc0 { blocks: 4, alpha: 1.0 },
            PrecondKind::SdAinv { alpha: 1.0, order: 2 },
        ];
        for kind in &kinds {
            let p64 = build_preconditioner::<f64>(&a, kind);
            let p32 = build_preconditioner::<f32>(&a, kind);
            let p16 = build_preconditioner::<f16>(&a, kind);
            assert_eq!(p64.dim(), 36);
            assert_eq!(p64.value_precision(), Precision::Fp64);
            assert_eq!(p32.value_precision(), Precision::Fp32);
            assert_eq!(p16.value_precision(), Precision::Fp16);
            let r = vec![1.0f64; 36];
            let mut z = vec![0.0f64; 36];
            p64.apply(&r, &mut z);
            assert!(z.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            PrecondKind::Identity,
            PrecondKind::Jacobi,
            PrecondKind::Ilu0 { alpha: 1.0 },
            PrecondKind::Ic0 { alpha: 1.0 },
            PrecondKind::BlockJacobiIlu0 { blocks: 16, alpha: 1.0 },
            PrecondKind::BlockJacobiIc0 { blocks: 16, alpha: 1.0 },
            PrecondKind::SdAinv { alpha: 1.0, order: 2 },
        ]
        .iter()
        .map(PrecondKind::label)
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
