//! IC(0): incomplete Cholesky factorisation with zero fill-in.
//!
//! Used as the primary preconditioner for the symmetric positive definite
//! test problems on the CPU node (Section 5.1: "block-Jacobi ILU(0) (or
//! IC(0) when symmetric)").  The factorisation is computed in fp64 on the
//! lower triangle of `A` (with the α stabilisation applied to the diagonal)
//! and stored in the target precision `T`; the application performs the
//! forward solve `L y = r` and the backward solve `Lᵀ z = y`.

use f3r_precision::Scalar;
use f3r_sparse::CsrMatrix;

use crate::traits::Preconditioner;

/// IC(0) factor `L` (lower triangular, diagonal included) stored in CSR and
/// precision `T`.
#[derive(Debug, Clone)]
pub struct Ic0Precond<T> {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
    inv_diag: Vec<T>,
}

/// Floor applied to the pivot before taking the square root; guards against
/// breakdown of the incomplete factorisation (Scott & Tůma 2024 discuss this
/// failure mode at low precision — here the construction is always fp64).
const PIVOT_FLOOR: f64 = 1e-12;

impl<T: Scalar> Ic0Precond<T> {
    /// Factorise the lower triangle of `a` with the diagonal boosted by
    /// `alpha` during factorisation (α stabilisation).
    ///
    /// # Panics
    /// Panics if `a` is not square.
    #[must_use]
    pub fn new(a: &CsrMatrix<f64>, alpha: f64) -> Self {
        assert!(a.is_square(), "IC(0) requires a square matrix");
        let lower = a.lower_triangle();
        let n = lower.n_rows();
        let row_ptr = lower.row_ptr().to_vec();
        let col_idx = lower.col_idx().to_vec();
        let mut values: Vec<f64> = lower.values().to_vec();

        // boost diagonal (last entry of each row in the lower triangle,
        // because columns are sorted and j <= i)
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            for k in row_ptr[i]..row_ptr[i + 1] {
                if col_idx[k] as usize == i {
                    diag_pos[i] = k;
                    values[k] *= alpha;
                }
            }
        }

        // Row-oriented IC(0).  l_ij = (a_ij - sum_k l_ik l_jk) / l_jj for j<i,
        // l_ii = sqrt(a_ii - sum_k l_ik^2), sums restricted to the pattern.
        let mut col_map = vec![usize::MAX; n];
        for i in 0..n {
            let (start, end) = (row_ptr[i], row_ptr[i + 1]);
            for k in start..end {
                col_map[col_idx[k] as usize] = k;
            }
            for kk in start..end {
                let j = col_idx[kk] as usize;
                if j >= i {
                    break;
                }
                // dot of rows i and j over columns < j
                let mut s = 0.0;
                for kj in row_ptr[j]..row_ptr[j + 1] {
                    let c = col_idx[kj] as usize;
                    if c >= j {
                        break;
                    }
                    let pos = col_map[c];
                    if pos != usize::MAX {
                        s += values[pos] * values[kj];
                    }
                }
                let ljj = if diag_pos[j] == usize::MAX {
                    1.0
                } else {
                    values[diag_pos[j]]
                };
                let ljj = if ljj.abs() < PIVOT_FLOOR { PIVOT_FLOOR } else { ljj };
                values[kk] = (values[kk] - s) / ljj;
            }
            // diagonal
            if diag_pos[i] != usize::MAX {
                let mut s = 0.0;
                for k in start..end {
                    let c = col_idx[k] as usize;
                    if c >= i {
                        break;
                    }
                    s += values[k] * values[k];
                }
                let d = values[diag_pos[i]] - s;
                values[diag_pos[i]] = if d > PIVOT_FLOOR {
                    d.sqrt()
                } else {
                    // breakdown safeguard: keep a small positive pivot
                    PIVOT_FLOOR.sqrt()
                };
            }
            for k in start..end {
                col_map[col_idx[k] as usize] = usize::MAX;
            }
        }

        let inv_diag: Vec<T> = (0..n)
            .map(|i| {
                let d = if diag_pos[i] == usize::MAX {
                    1.0
                } else {
                    values[diag_pos[i]]
                };
                T::from_f64(1.0 / d)
            })
            .collect();

        Self {
            n,
            row_ptr,
            col_idx,
            values: values.iter().map(|&v| T::from_f64(v)).collect(),
            inv_diag,
        }
    }
}

impl<T: Scalar> Preconditioner<T> for Ic0Precond<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.n, "IC(0): length mismatch");
        assert_eq!(z.len(), self.n, "IC(0): length mismatch");
        let n = self.n;
        // Forward solve L y = r (diagonal is the last entry of each row).
        // All operands enter the accumulator with a single widening
        // conversion (no f64 round trip).
        for i in 0..n {
            let mut acc = r[i].widen();
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                if j >= i {
                    break;
                }
                acc -= self.values[k].widen() * z[j].widen();
            }
            z[i] = T::narrow(acc * self.inv_diag[i].widen());
        }
        // Backward solve L^T z = y, traversing rows in reverse and scattering.
        for i in (0..n).rev() {
            let zi = z[i].widen() * self.inv_diag[i].widen();
            z[i] = T::narrow(zi);
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                if j >= i {
                    break;
                }
                z[j] = T::narrow(z[j].widen() - self.values[k].widen() * zi);
            }
        }
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn name(&self) -> String {
        format!("IC(0) ({})", T::name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::spmv::spmv_seq;
    use f3r_sparse::CooMatrix;

    #[test]
    fn exact_for_tridiagonal_spd() {
        let n = 16;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        let a = coo.to_csr();
        let p = Ic0Precond::<f64>::new(&a, 1.0);
        let x_true: Vec<f64> = (0..n).map(|i| 0.5 + (i as f64 * 0.2).cos()).collect();
        let mut b = vec![0.0; n];
        spmv_seq(&a, &x_true, &mut b);
        let mut z = vec![0.0; n];
        p.apply(&b, &mut z);
        for i in 0..n {
            assert!((z[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn reduces_residual_on_poisson() {
        let a = poisson2d_5pt(10, 10);
        let n = a.n_rows();
        let p = Ic0Precond::<f64>::new(&a, 1.0);
        let r: Vec<f64> = (0..n).map(|i| ((i * 11) % 17) as f64 / 17.0).collect();
        let mut z = vec![0.0; n];
        p.apply(&r, &mut z);
        let mut az = vec![0.0; n];
        spmv_seq(&a, &z, &mut az);
        let err: f64 = r.iter().zip(&az).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 0.8 * rnorm, "err {err} vs {rnorm}");
    }

    #[test]
    fn matches_symmetry_of_operator() {
        // M = (L L^T)^{-1} must be symmetric: (e_i, M e_j) == (e_j, M e_i).
        let a = poisson2d_5pt(5, 5);
        let n = a.n_rows();
        let p = Ic0Precond::<f64>::new(&a, 1.0);
        let apply_to_unit = |k: usize| {
            let mut r = vec![0.0; n];
            r[k] = 1.0;
            let mut z = vec![0.0; n];
            p.apply(&r, &mut z);
            z
        };
        let z3 = apply_to_unit(3);
        let z17 = apply_to_unit(17);
        assert!((z3[17] - z17[3]).abs() < 1e-12);
    }

    #[test]
    fn breakdown_safeguard_handles_indefinite_input() {
        // Not SPD: IC(0) would break down without the pivot floor.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0e-30);
        coo.push(1, 1, -1.0);
        coo.push(2, 2, 4.0);
        coo.push_sym(1, 0, 0.5);
        let a = coo.to_csr();
        let p = Ic0Precond::<f64>::new(&a, 1.0);
        let r = vec![1.0; 3];
        let mut z = vec![0.0; 3];
        p.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fp32_storage_close_to_fp64() {
        let a = poisson2d_5pt(6, 6);
        let n = a.n_rows();
        let p64 = Ic0Precond::<f64>::new(&a, 1.0);
        let p32 = Ic0Precond::<f32>::new(&a, 1.0);
        let r = vec![1.0f64; n];
        let mut z64 = vec![0.0f64; n];
        p64.apply(&r, &mut z64);
        let r32 = vec![1.0f32; n];
        let mut z32 = vec![0.0f32; n];
        p32.apply(&r32, &mut z32);
        for i in 0..n {
            assert!((f64::from(z32[i]) - z64[i]).abs() < 1e-4 * z64[i].abs().max(1.0));
        }
    }
}
