//! ILU(0): incomplete LU factorisation with zero fill-in.
//!
//! The primary preconditioner of the paper's CPU experiments is a
//! block-Jacobi ILU(0)/IC(0); this module provides the single-block ILU(0)
//! factorisation and triangular solves that the block-Jacobi wrapper
//! composes.  The factorisation is always computed in fp64 (optionally on a
//! matrix whose diagonal has been boosted by the α_ILU stabilisation factor,
//! Section 5.1) and the factors are then stored in the target precision `T`.

use f3r_precision::Scalar;
use f3r_sparse::CsrMatrix;

use crate::traits::Preconditioner;

/// ILU(0) factorisation of a square CSR matrix, stored in precision `T`.
///
/// The `L` and `U` factors share the sparsity pattern of `A`: entries with
/// column < row belong to `L` (unit diagonal implied), entries with column ≥
/// row belong to `U`.
#[derive(Debug, Clone)]
pub struct Ilu0Precond<T> {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
    /// Position of the diagonal entry within each row's slice.
    diag_pos: Vec<usize>,
    inv_diag: Vec<T>,
}

/// Smallest pivot magnitude tolerated before the breakdown safeguard kicks in.
const PIVOT_FLOOR: f64 = 1e-12;

impl<T: Scalar> Ilu0Precond<T> {
    /// Factorise `a` with the diagonal boosted by `alpha` during the
    /// factorisation only (α_ILU stabilisation; pass `1.0` for the plain
    /// factorisation).
    ///
    /// # Panics
    /// Panics if `a` is not square.
    #[must_use]
    pub fn new(a: &CsrMatrix<f64>, alpha: f64) -> Self {
        assert!(a.is_square(), "ILU(0) requires a square matrix");
        let n = a.n_rows();
        let row_ptr = a.row_ptr().to_vec();
        let col_idx = a.col_idx().to_vec();
        let mut values: Vec<f64> = a.values().to_vec();

        // α_ILU: scale diagonal entries before factorising.
        let mut diag_pos = vec![usize::MAX; n];
        for row in 0..n {
            for k in row_ptr[row]..row_ptr[row + 1] {
                if col_idx[k] as usize == row {
                    diag_pos[row] = k - row_ptr[row];
                    values[k] *= alpha;
                }
            }
        }

        // IKJ-variant ILU(0) with a dense column→position map per row.
        let mut col_map = vec![usize::MAX; n];
        for i in 0..n {
            let (start, end) = (row_ptr[i], row_ptr[i + 1]);
            for k in start..end {
                col_map[col_idx[k] as usize] = k;
            }
            for kk in start..end {
                let k_col = col_idx[kk] as usize;
                if k_col >= i {
                    break; // columns are sorted; remaining are U entries
                }
                // pivot of row k_col
                let kdiag = diag_pos[k_col];
                let pivot = if kdiag == usize::MAX {
                    PIVOT_FLOOR
                } else {
                    let p = values[row_ptr[k_col] + kdiag];
                    if p.abs() < PIVOT_FLOOR {
                        PIVOT_FLOOR.copysign(if p == 0.0 { 1.0 } else { p })
                    } else {
                        p
                    }
                };
                let lik = values[kk] / pivot;
                values[kk] = lik;
                // eliminate: for U entries of row k_col beyond the diagonal
                let kstart = row_ptr[k_col];
                let kend = row_ptr[k_col + 1];
                for kj in kstart..kend {
                    let j = col_idx[kj] as usize;
                    if j <= k_col {
                        continue;
                    }
                    let pos = col_map[j];
                    if pos != usize::MAX {
                        values[pos] -= lik * values[kj];
                    }
                }
            }
            for k in start..end {
                col_map[col_idx[k] as usize] = usize::MAX;
            }
        }

        let inv_diag: Vec<T> = (0..n)
            .map(|i| {
                let d = if diag_pos[i] == usize::MAX {
                    1.0
                } else {
                    let v = values[row_ptr[i] + diag_pos[i]];
                    if v.abs() < PIVOT_FLOOR {
                        PIVOT_FLOOR.copysign(if v == 0.0 { 1.0 } else { v })
                    } else {
                        v
                    }
                };
                T::from_f64(1.0 / d)
            })
            .collect();

        Self {
            n,
            row_ptr,
            col_idx,
            values: values.iter().map(|&v| T::from_f64(v)).collect(),
            diag_pos,
            inv_diag,
        }
    }

    /// Forward substitution `L y = r` (unit lower triangle), followed by
    /// backward substitution `U z = y`, writing the result into `z`.
    fn solve(&self, r: &[T], z: &mut [T]) {
        let n = self.n;
        // Forward: z temporarily holds y.  All operands enter the
        // accumulator with a single widening conversion (no f64 round trip).
        for i in 0..n {
            let start = self.row_ptr[i];
            let end = self.row_ptr[i + 1];
            let mut acc = r[i].widen();
            for k in start..end {
                let j = self.col_idx[k] as usize;
                if j >= i {
                    break;
                }
                acc -= self.values[k].widen() * z[j].widen();
            }
            z[i] = T::narrow(acc);
        }
        // Backward: U z = y.
        for i in (0..n).rev() {
            let start = self.row_ptr[i];
            let end = self.row_ptr[i + 1];
            let dpos = self.diag_pos[i];
            let mut acc = z[i].widen();
            let ustart = if dpos == usize::MAX { start } else { start + dpos + 1 };
            for k in ustart..end {
                let j = self.col_idx[k] as usize;
                acc -= self.values[k].widen() * z[j].widen();
            }
            z[i] = T::narrow(acc * self.inv_diag[i].widen());
        }
    }
}

impl<T: Scalar> Preconditioner<T> for Ilu0Precond<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.n, "ILU(0): length mismatch");
        assert_eq!(z.len(), self.n, "ILU(0): length mismatch");
        self.solve(r, z);
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn name(&self) -> String {
        format!("ILU(0) ({})", T::name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use f3r_sparse::spmv::spmv_seq;
    use f3r_sparse::CooMatrix;

    /// For a tridiagonal matrix ILU(0) is exact: M r should equal A^{-1} r.
    #[test]
    fn exact_for_tridiagonal() {
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        let a = coo.to_csr();
        let p = Ilu0Precond::<f64>::new(&a, 1.0);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut b = vec![0.0; n];
        spmv_seq(&a, &x_true, &mut b);
        let mut z = vec![0.0; n];
        p.apply(&b, &mut z);
        for i in 0..n {
            assert!((z[i] - x_true[i]).abs() < 1e-10, "i={i}: {} vs {}", z[i], x_true[i]);
        }
    }

    /// ILU(0) of the 5-point Laplacian is not exact, but applying M then A
    /// must reduce the residual substantially compared with the raw r.
    #[test]
    fn reduces_residual_on_poisson() {
        let a = poisson2d_5pt(12, 12);
        let n = a.n_rows();
        let p = Ilu0Precond::<f64>::new(&a, 1.0);
        let r: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 / 13.0).collect();
        let mut z = vec![0.0; n];
        p.apply(&r, &mut z);
        let mut az = vec![0.0; n];
        spmv_seq(&a, &z, &mut az);
        let err: f64 = r
            .iter()
            .zip(az.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 0.8 * rnorm, "err {err} vs {rnorm}");
    }

    #[test]
    fn fp16_storage_still_approximates_inverse() {
        use half::f16;
        let a = poisson2d_5pt(8, 8);
        let n = a.n_rows();
        let p64 = Ilu0Precond::<f64>::new(&a, 1.0);
        let p16 = Ilu0Precond::<f16>::new(&a, 1.0);
        assert_eq!(Preconditioner::<f16>::nnz(&p16), Preconditioner::<f64>::nnz(&p64));
        let r = vec![1.0f64; n];
        let mut z64 = vec![0.0f64; n];
        p64.apply(&r, &mut z64);
        let r16: Vec<f16> = r.iter().map(|&v| f16::from_f64(v)).collect();
        let mut z16 = vec![f16::from_f64(0.0); n];
        p16.apply(&r16, &mut z16);
        for i in 0..n {
            let rel = (z16[i].to_f64() - z64[i]) / z64[i].abs().max(1e-3);
            assert!(rel.abs() < 0.05, "i={i}: {} vs {}", z16[i], z64[i]);
        }
    }

    #[test]
    fn alpha_scaling_changes_factors() {
        let a = poisson2d_5pt(6, 6);
        let p1 = Ilu0Precond::<f64>::new(&a, 1.0);
        let p2 = Ilu0Precond::<f64>::new(&a, 1.1);
        let r = vec![1.0; a.n_rows()];
        let mut z1 = vec![0.0; a.n_rows()];
        let mut z2 = vec![0.0; a.n_rows()];
        p1.apply(&r, &mut z1);
        p2.apply(&r, &mut z2);
        assert!(z1.iter().zip(&z2).any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn missing_diagonal_is_safeguarded() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(1, 1, 2.0);
        coo.push(2, 2, 1.0);
        let a = coo.to_csr();
        let p = Ilu0Precond::<f64>::new(&a, 1.0);
        let r = vec![1.0; 3];
        let mut z = vec![0.0; 3];
        p.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let _ = Ilu0Precond::<f64>::new(&coo.to_csr(), 1.0);
    }
}
