//! Jacobi (diagonal) preconditioner.
//!
//! The simplest preconditioner: `M = diag(A)⁻¹`.  Used as a cheap baseline
//! and inside the SD-AINV style approximate inverse.

use f3r_precision::Scalar;
use f3r_sparse::CsrMatrix;

use crate::traits::Preconditioner;

/// Diagonal (Jacobi) preconditioner storing `1 / a_ii` in precision `T`.
#[derive(Debug, Clone)]
pub struct JacobiPrecond<T> {
    inv_diag: Vec<T>,
}

impl<T: Scalar> JacobiPrecond<T> {
    /// Build from the diagonal of `a` (constructed in fp64, stored in `T`).
    ///
    /// Zero diagonal entries are replaced by 1 so the operator stays defined.
    #[must_use]
    pub fn new(a: &CsrMatrix<f64>) -> Self {
        let inv_diag = a
            .diagonal()
            .iter()
            .map(|&d| {
                let inv = if d.abs() > 0.0 { 1.0 / d } else { 1.0 };
                T::from_f64(inv)
            })
            .collect();
        Self { inv_diag }
    }

    /// The stored reciprocal diagonal.
    #[must_use]
    pub fn inv_diagonal(&self) -> &[T] {
        &self.inv_diag
    }
}

impl<T: Scalar> Preconditioner<T> for JacobiPrecond<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.inv_diag.len(), "jacobi: length mismatch");
        assert_eq!(z.len(), self.inv_diag.len(), "jacobi: length mismatch");
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn nnz(&self) -> usize {
        self.inv_diag.len()
    }

    fn name(&self) -> String {
        format!("Jacobi ({})", T::name())
    }

    fn sweeps_per_apply(&self) -> usize {
        0
    }

    fn storage_bytes(&self) -> u64 {
        // A bare reciprocal diagonal: no indices, no row pointers.
        self.inv_diag.len() as u64 * T::PRECISION.bytes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3r_sparse::gen::laplacian::poisson2d_5pt;
    use half::f16;

    #[test]
    fn applies_inverse_diagonal() {
        let a = poisson2d_5pt(4, 4);
        let p = JacobiPrecond::<f64>::new(&a);
        let r = vec![4.0; 16];
        let mut z = vec![0.0; 16];
        p.apply(&r, &mut z);
        assert!(z.iter().all(|&v| (v - 1.0).abs() < 1e-14));
    }

    #[test]
    fn half_precision_storage_rounds_but_stays_close() {
        let a = poisson2d_5pt(4, 4);
        let p = JacobiPrecond::<f16>::new(&a);
        let r = vec![f16::from_f32(2.0); 16];
        let mut z = vec![f16::from_f32(0.0); 16];
        p.apply(&r, &mut z);
        for v in &z {
            assert!((v.to_f64() - 0.5).abs() < 1e-3);
        }
        assert_eq!(p.name(), "Jacobi (fp16)");
    }

    #[test]
    fn zero_diagonal_is_safeguarded() {
        use f3r_sparse::CooMatrix;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 1, 2.0);
        let a = coo.to_csr();
        let p = JacobiPrecond::<f64>::new(&a);
        assert_eq!(p.inv_diagonal()[0], 1.0);
        assert_eq!(p.inv_diagonal()[1], 0.5);
    }
}
