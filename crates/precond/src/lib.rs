//! Preconditioner substrate for the F3R reproduction.
//!
//! The paper's *primary preconditioner* `M` is an algebraic preconditioner
//! applied at the innermost level of the nested solver: block-Jacobi
//! ILU(0)/IC(0) on the CPU node (Section 5.1) and the SD-AINV approximate
//! inverse on the GPU node (Section 5.2).  This crate provides those
//! preconditioners (plus Jacobi and identity baselines), all constructed in
//! fp64 and stored/applied in an arbitrary precision `T` so they can serve
//! the fp64-, fp32- and fp16-variants of every solver in the study.

#![warn(missing_docs)]

pub mod ainv;
pub mod block_jacobi;
pub mod config;
pub mod ic0;
pub mod ilu0;
pub mod jacobi;
pub mod traits;

pub use ainv::SdAinvPrecond;
pub use block_jacobi::BlockJacobiPrecond;
pub use config::{build_preconditioner, PrecondKind};
pub use ic0::Ic0Precond;
pub use ilu0::Ilu0Precond;
pub use jacobi::JacobiPrecond;
pub use traits::{IdentityPrecond, Preconditioner};
