//! The [`Preconditioner`] trait and shared helpers.
//!
//! A preconditioner in this workspace is the paper's *primary preconditioner*
//! `M`: a fixed linear operator approximating `A⁻¹` that is applied as
//! `z = M r` at every innermost preconditioning step.  Preconditioners are
//! constructed in fp64 and stored/applied in an arbitrary working precision
//! `T` (Section 5: "we first construct it in fp64 and then cast its values to
//! fp32 or fp16").

use f3r_precision::{Precision, Scalar};

/// A fixed preconditioning operator `z = M r` in working precision `T`.
pub trait Preconditioner<T: Scalar>: Send + Sync {
    /// Apply the preconditioner: `z ← M r`.
    ///
    /// Implementations may use `z` as scratch; its incoming contents are
    /// ignored.
    fn apply(&self, r: &[T], z: &mut [T]);

    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Number of stored nonzero coefficients (used by the traffic model).
    fn nnz(&self) -> usize;

    /// Human-readable name (e.g. `"block-Jacobi ILU(0) x16"`).
    fn name(&self) -> String;

    /// Precision in which the coefficients are stored.
    fn value_precision(&self) -> Precision {
        T::PRECISION
    }

    /// Number of SpMV-equivalent sparse sweeps performed per application
    /// (2 for ILU(0) forward+backward, 2 for the SD-AINV style inverse,
    /// 0 for Jacobi).  Used by the modeled-traffic reports.
    fn sweeps_per_apply(&self) -> usize {
        2
    }

    /// Resident bytes of the stored factors, priced like the matrix store's
    /// accounting so cache eviction can weigh preconditioners against matrix
    /// variants.
    ///
    /// The default models the CSR-shaped combined factor the ILU(0)/IC(0)
    /// implementations hold: `nnz` stored values plus one `u32` column index
    /// each, `dim + 1` `usize` row pointers, and a diagonal-position +
    /// reciprocal-diagonal pair per row.  Implementations with a different
    /// layout (Jacobi's bare diagonal, block wrappers, approximate inverses)
    /// override this.
    fn storage_bytes(&self) -> u64 {
        let n = self.dim() as u64;
        let t = T::PRECISION.bytes() as u64;
        self.nnz() as u64 * (t + 4) + (n + 1) * 8 + n * (8 + t)
    }
}

/// The identity "preconditioner" `M = I`, useful as a baseline and in tests.
#[derive(Debug, Clone)]
pub struct IdentityPrecond {
    n: usize,
}

impl IdentityPrecond {
    /// Create an identity preconditioner of dimension `n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl<T: Scalar> Preconditioner<T> for IdentityPrecond {
    fn apply(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.n, "identity precond: length mismatch");
        assert_eq!(z.len(), self.n, "identity precond: length mismatch");
        z.copy_from_slice(r);
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn nnz(&self) -> usize {
        0
    }

    fn name(&self) -> String {
        "identity".to_string()
    }

    fn sweeps_per_apply(&self) -> usize {
        0
    }

    fn storage_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use half::f16;

    #[test]
    fn identity_copies_input() {
        let p = IdentityPrecond::new(3);
        let r = vec![1.0f64, -2.0, 3.0];
        let mut z = vec![0.0f64; 3];
        Preconditioner::<f64>::apply(&p, &r, &mut z);
        assert_eq!(z, r);
        assert_eq!(Preconditioner::<f64>::dim(&p), 3);
        assert_eq!(Preconditioner::<f64>::nnz(&p), 0);
        assert_eq!(Preconditioner::<f64>::sweeps_per_apply(&p), 0);
    }

    #[test]
    fn identity_works_in_half_precision() {
        let p = IdentityPrecond::new(2);
        let r = vec![f16::from_f32(0.5), f16::from_f32(-1.25)];
        let mut z = vec![f16::from_f32(0.0); 2];
        Preconditioner::<f16>::apply(&p, &r, &mut z);
        assert_eq!(z, r);
        assert_eq!(Preconditioner::<f16>::value_precision(&p), f3r_precision::Precision::Fp16);
    }
}
