//! Admission-controlled request/response front-end.
//!
//! [`ServeHandle`] owns a bounded submission queue and a fixed pool of worker
//! threads.  Callers submit `(solver, rhs)` requests and get a [`Ticket`]
//! they can block on; workers check warm sessions out of the solver's
//! [`SessionPool`](crate::pool::SessionPool), solve, and post a
//! [`SolveResponse`] back through the ticket.
//!
//! **Admission contract.**  The queue holds at most `queue_capacity`
//! requests.  When it is full, [`Backpressure::Block`] parks the submitting
//! thread until a slot frees (load shedding by latency), while
//! [`Backpressure::Reject`] fails the submission immediately with
//! [`SubmitError::Rejected`] (load shedding by error) — a server under
//! overload must pick one; silently unbounded queues just move the failure
//! to the out-of-memory killer.  Shutdown drains the queue: requests
//! accepted before [`ServeHandle::shutdown`] still complete.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use f3r_core::convergence::SolveResult;
use f3r_core::session::SolveOptions;
use f3r_precision::counters::CounterSnapshot;

use crate::metrics::{LatencyHistogram, MetricsSnapshot};
use crate::registry::{CachedSolver, SolverRegistry};

/// What to do with a submission when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Park the submitting thread until a queue slot frees up.
    #[default]
    Block,
    /// Fail the submission immediately with [`SubmitError::Rejected`].
    Reject,
}

/// Sizing and admission policy of a [`ServeHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads solving requests.
    pub workers: usize,
    /// Maximum queued (accepted, not yet picked up) requests.
    pub queue_capacity: usize,
    /// Full-queue policy.
    pub backpressure: Backpressure,
}

impl Default for ServeConfig {
    /// One worker per configured solver thread, a queue of twice that, and
    /// blocking admission.
    fn default() -> Self {
        let workers = f3r_parallel::current_num_threads().max(1);
        Self {
            workers,
            queue_capacity: 2 * workers,
            backpressure: Backpressure::Block,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue was full under [`Backpressure::Reject`].
    Rejected {
        /// Queue depth observed at rejection (== the configured capacity).
        queue_depth: usize,
    },
    /// [`ServeHandle::shutdown`] has been called; no new work is accepted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected { queue_depth } => {
                write!(f, "submission rejected: queue full ({queue_depth} deep)")
            }
            SubmitError::ShuttingDown => write!(f, "submission refused: server shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Owned per-request solve options.
///
/// The borrowed [`SolveOptions`] cannot cross the queue, so requests carry an
/// owned mirror.  Options apply to **single-RHS requests only**: the fused
/// batch path ([`SolveSession::solve_batch`](f3r_core::session::SolveSession::solve_batch))
/// runs every column under the spec's own tolerance and cycle budget, so a
/// batch submitted with options fails fast in [`ServeHandle::submit_batch`]
/// rather than silently ignoring them.
#[derive(Debug, Clone, Default)]
pub struct RequestOptions {
    /// Warm-start initial guess (default: the zero vector).
    pub x0: Option<Vec<f64>>,
    /// Convergence tolerance override.
    pub tol: Option<f64>,
    /// Outermost restart-cycle budget override.
    pub max_outer_cycles: Option<usize>,
}

impl RequestOptions {
    fn is_default(&self) -> bool {
        self.x0.is_none() && self.tol.is_none() && self.max_outer_cycles.is_none()
    }

    fn as_solve_options(&self) -> SolveOptions<'_> {
        SolveOptions {
            x0: self.x0.as_deref(),
            tol: self.tol,
            max_outer_cycles: self.max_outer_cycles,
        }
    }
}

/// Completed request: solutions, per-RHS solve results, and timing.
#[derive(Debug)]
pub struct SolveResponse {
    /// Fingerprint of the solver that served the request.
    pub fingerprint: u64,
    /// Solution vectors, one per submitted right-hand side, in order.
    pub xs: Vec<Vec<f64>>,
    /// Convergence results, one per right-hand side, in order.
    pub results: Vec<SolveResult>,
    /// Seconds the request waited in the queue before a worker picked it up.
    pub queued_seconds: f64,
    /// End-to-end seconds from submission to completion (queue + solve).
    pub total_seconds: f64,
}

/// Handle to one accepted request; block on [`wait`](Ticket::wait) for the
/// response.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<SolveResponse>,
}

impl Ticket {
    /// Block until the request completes.
    ///
    /// # Panics
    /// Panics if the serving worker died before responding (a worker panic is
    /// a bug in the solver stack, not a load condition — don't mask it).
    #[must_use]
    pub fn wait(self) -> SolveResponse {
        self.rx.recv().expect("serve worker dropped the response")
    }
}

struct Job {
    solver: CachedSolver,
    rhs: Vec<Vec<f64>>,
    opts: RequestOptions,
    reply: mpsc::Sender<SolveResponse>,
    enqueued: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when a job is pushed (workers wait here).
    not_empty: Condvar,
    /// Signalled when a job is popped (blocked submitters wait here).
    not_full: Condvar,
    capacity: usize,
    backpressure: Backpressure,
    in_flight: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    solves: AtomicU64,
    latency: LatencyHistogram,
    kernels: Mutex<CounterSnapshot>,
    registry: Arc<SolverRegistry>,
}

/// Request/response front-end over a [`SolverRegistry`]: bounded submission
/// queue, worker threads, warm-session checkout, and aggregate metrics (see
/// the [module docs](self)).
pub struct ServeHandle {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Start `config.workers` worker threads serving requests against
    /// `registry`.
    #[must_use]
    pub fn start(registry: Arc<SolverRegistry>, config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            backpressure: config.backpressure,
            in_flight: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            kernels: Mutex::new(CounterSnapshot::default()),
            registry,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("f3r-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The registry this front-end serves from.
    #[must_use]
    pub fn registry(&self) -> &Arc<SolverRegistry> {
        &self.shared.registry
    }

    /// Submit one right-hand side against `solver`.
    ///
    /// # Errors
    /// [`SubmitError::Rejected`] when the queue is full under
    /// [`Backpressure::Reject`]; [`SubmitError::ShuttingDown`] after
    /// [`shutdown`](Self::shutdown) started.
    pub fn submit(
        &self,
        solver: &CachedSolver,
        b: Vec<f64>,
        opts: RequestOptions,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(solver, vec![b], opts)
    }

    /// Submit a batch of right-hand sides solved by one fused
    /// [`solve_batch`](f3r_core::session::SolveSession::solve_batch) call.
    ///
    /// # Errors
    /// As [`submit`](Self::submit); additionally rejects non-default `opts`
    /// (the fused batch path has no per-request overrides — see
    /// [`RequestOptions`]) and empty batches with [`SubmitError::Rejected`].
    pub fn submit_batch(
        &self,
        solver: &CachedSolver,
        bs: Vec<Vec<f64>>,
        opts: RequestOptions,
    ) -> Result<Ticket, SubmitError> {
        if bs.is_empty() || (bs.len() > 1 && !opts.is_default()) {
            return Err(SubmitError::Rejected { queue_depth: 0 });
        }
        self.enqueue(solver, bs, opts)
    }

    fn enqueue(
        &self,
        solver: &CachedSolver,
        rhs: Vec<Vec<f64>>,
        opts: RequestOptions,
    ) -> Result<Ticket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
        loop {
            if queue.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.jobs.len() < self.shared.capacity {
                break;
            }
            match self.shared.backpressure {
                Backpressure::Reject => {
                    // ordering: statistics counter, no synchronization implied.
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Rejected {
                        queue_depth: queue.jobs.len(),
                    });
                }
                Backpressure::Block => {
                    queue = self
                        .shared
                        .not_full
                        .wait(queue)
                        .expect("serve queue poisoned");
                }
            }
        }
        queue.jobs.push_back(Job {
            solver: solver.clone(),
            rhs,
            opts,
            reply: tx,
            enqueued: Instant::now(),
        });
        drop(queue);
        // ordering: statistics counter, no synchronization implied.
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.not_empty.notify_one();
        Ok(Ticket { rx })
    }

    /// Aggregate metrics: queue/in-flight depth, latency quantiles, registry
    /// and per-pool counters, and kernel work across all completed requests.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let queue_depth = self.shared.queue.lock().expect("serve queue poisoned").jobs.len();
        MetricsSnapshot {
            queue_depth,
            // ordering: monitoring reads of statistics counters.
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            // ordering: monitoring reads of statistics counters.
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            // ordering: monitoring reads of statistics counters.
            completed: self.shared.completed.load(Ordering::Relaxed),
            // ordering: monitoring reads of statistics counters.
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            // ordering: monitoring reads of statistics counters.
            solves: self.shared.solves.load(Ordering::Relaxed),
            p50_seconds: self.shared.latency.quantile(0.5),
            p99_seconds: self.shared.latency.quantile(0.99),
            registry: self.shared.registry.stats(),
            pools: self.shared.registry.pool_stats(),
            kernels: *self
                .shared
                .kernels
                .lock()
                .expect("serve kernel counters poisoned"),
        }
    }

    /// Stop accepting submissions, drain the queue, and join the workers.
    /// Every request accepted before this call still completes.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            w.join().expect("serve worker panicked");
        }
    }

    fn begin_shutdown(&self) {
        self.shared
            .queue
            .lock()
            .expect("serve queue poisoned")
            .shutdown = true;
        // Wake everyone: blocked submitters fail with ShuttingDown, idle
        // workers notice the flag and exit once the queue is drained.
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            // A worker panic during normal drop would double-panic; the
            // explicit `shutdown()` path is the one that propagates it.
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("serve queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                // Check shutdown only after the pop attempt so accepted work
                // drains before the workers exit.
                if queue.shutdown {
                    return;
                }
                queue = shared.not_empty.wait(queue).expect("serve queue poisoned");
            }
        };
        shared.not_full.notify_one();
        // ordering: monitoring gauge, no synchronization implied.
        shared.in_flight.fetch_add(1, Ordering::Relaxed);

        let queued_seconds = job.enqueued.elapsed().as_secs_f64();
        let mut session = job.solver.checkout();
        let n = session.prepared().matrix().dim();
        let k = job.rhs.len();
        let mut xs = vec![vec![0.0; n]; k];
        let results = if k == 1 {
            let opts = job.opts.as_solve_options();
            vec![session.solve_with(&job.rhs[0], &mut xs[0], &opts)]
        } else {
            session.solve_batch(&job.rhs, &mut xs)
        };
        drop(session);

        {
            let mut kernels = shared.kernels.lock().expect("serve kernel counters poisoned");
            for r in &results {
                kernels.accumulate(&r.counters);
            }
        }
        // ordering: statistics counters, no synchronization implied.
        shared.solves.fetch_add(k as u64, Ordering::Relaxed);
        let total = job.enqueued.elapsed();
        shared.latency.record(total);
        // ordering: statistics counter, no synchronization implied.
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // ordering: monitoring gauge, no synchronization implied.
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);

        // The submitter may have dropped its ticket; that's fine.
        let _ = job.reply.send(SolveResponse {
            fingerprint: job.solver.fingerprint(),
            xs,
            results,
            queued_seconds,
            total_seconds: total.as_secs_f64(),
        });
    }
}
