//! Serving layer over the prepared-solver API.
//!
//! The solver crates answer "how do I solve `Ax = b` fast once?"; this crate
//! answers "how do I serve many solves over a handful of matrices without
//! paying setup per request?".  Three layers, each usable on its own:
//!
//! 1. [`registry::SolverRegistry`] — a fingerprint-keyed cache of
//!    [`PreparedSolver`](f3r_core::session::PreparedSolver)s with
//!    single-flight construction and LRU + byte-cap eviction.  The key is
//!    [`solver_fingerprint`](f3r_core::fingerprint::solver_fingerprint):
//!    matrix content hash × structural spec hash, computable before building.
//! 2. [`pool::SessionPool`] — per-entry pools of warm
//!    [`SolveSession`](f3r_core::session::SolveSession)s, checked out per
//!    request and returned on guard drop, so repeat requests reuse allocated
//!    workspaces and settled adaptive weights.
//! 3. [`front::ServeHandle`] — a request/response front-end: bounded
//!    submission queue with explicit [`Backpressure`] (block or reject),
//!    worker threads, per-request [`RequestOptions`], batched submission,
//!    and a [`MetricsSnapshot`] (latency quantiles, hit rates, per-precision
//!    kernel counters).
//!
//! ```
//! use std::sync::Arc;
//! use f3r_core::f3r::{f3r_spec, F3rParams, F3rScheme, SolverSettings};
//! use f3r_core::operator::ProblemMatrix;
//! use f3r_serve::{ServeConfig, ServeHandle, SolverRegistry, RequestOptions};
//! use f3r_sparse::gen::laplacian::poisson2d_5pt;
//!
//! let matrix = Arc::new(ProblemMatrix::from_csr(poisson2d_5pt(16, 16)));
//! let spec = f3r_spec(F3rParams::default(), F3rScheme::Fp32, &SolverSettings::default());
//!
//! let registry = SolverRegistry::with_defaults();
//! let serve = ServeHandle::start(Arc::clone(&registry), ServeConfig::default());
//!
//! let solver = registry.get_or_prepare(&matrix, &spec).unwrap();
//! let b = vec![1.0; matrix.dim()];
//! let ticket = serve.submit(&solver, b, RequestOptions::default()).unwrap();
//! let response = ticket.wait();
//! assert!(response.results[0].converged);
//! serve.shutdown();
//! ```

#![warn(missing_docs)]

pub mod front;
pub mod metrics;
pub mod pool;
pub mod registry;

pub use front::{
    Backpressure, RequestOptions, ServeConfig, ServeHandle, SolveResponse, SubmitError, Ticket,
};
pub use metrics::{LatencyHistogram, MetricsSnapshot};
pub use pool::{PooledSession, PoolStats, SessionPool};
pub use registry::{CachedSolver, RegistryConfig, RegistryStats, SolverRegistry};
