//! Serving-layer metrics: a lock-free latency histogram and the aggregate
//! snapshot reported by [`ServeHandle::metrics`](crate::front::ServeHandle::metrics).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use f3r_precision::counters::CounterSnapshot;

use crate::pool::PoolStats;
use crate::registry::RegistryStats;

/// Number of log₂-microsecond buckets.  Bucket `i` covers latencies in
/// `[2^i, 2^(i+1))` µs (bucket 0 additionally absorbs sub-microsecond
/// requests), so 32 buckets span ~1 µs to ~2³¹ µs ≈ 36 minutes.
const BUCKETS: usize = 32;

/// Fixed-bucket log₂ latency histogram.
///
/// `record` is a single relaxed atomic increment, so worker threads never
/// contend on a lock to report a latency; quantiles are read by walking the
/// bucket counts.  Bucket resolution is a factor of two, which is plenty for
/// p50/p99 dashboards (the histogram answers "microseconds or milliseconds?",
/// not "1.2 ms or 1.3 ms?").
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Create an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_index(latency: Duration) -> usize {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        if micros == 0 {
            0
        } else {
            (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Record one observed latency.
    pub fn record(&self, latency: Duration) {
        // ordering: statistics counter, no synchronization implied.
        self.buckets[Self::bucket_index(latency)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            // ordering: statistics counters, no synchronization implied.
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Approximate `q`-quantile (`0.0 ≤ q ≤ 1.0`) in seconds, or `None` if
    /// nothing has been recorded.  Reports the geometric midpoint of the
    /// bucket containing the quantile rank, so the answer is within ~√2× of
    /// the true latency.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // ordering: statistics counters, no synchronization implied.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        // Rank of the requested quantile, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)) µs.
                let midpoint_us = 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
                return Some(midpoint_us * 1e-6);
            }
        }
        unreachable!("rank is clamped to the total count")
    }
}

/// Point-in-time view of a [`ServeHandle`](crate::front::ServeHandle) and
/// everything behind it (registry, per-entry pools, kernel counters).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests accepted but not yet picked up by a worker.
    pub queue_depth: usize,
    /// Requests currently being solved by a worker.
    pub in_flight: usize,
    /// Requests accepted into the queue since start.
    pub submitted: u64,
    /// Requests fully processed (response sent or receiver gone).
    pub completed: u64,
    /// Requests refused by [`Backpressure::Reject`](crate::front::Backpressure::Reject).
    pub rejected: u64,
    /// Individual right-hand sides solved (a batch request counts each RHS).
    pub solves: u64,
    /// Median end-to-end latency (queue wait + solve) in seconds, if any
    /// request completed.
    pub p50_seconds: Option<f64>,
    /// 99th-percentile end-to-end latency in seconds, if any request
    /// completed.
    pub p99_seconds: Option<f64>,
    /// Registry counters (hits, misses, builds, evictions, resident bytes).
    pub registry: RegistryStats,
    /// Per-cached-entry session-pool counters.
    pub pools: Vec<PoolStats>,
    /// Kernel work aggregated across every completed request (per-precision
    /// SpMV/BLAS1 calls, bytes moved, …).
    pub kernels: CounterSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_nanos(10)), 0);
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(1)), 0);
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(2)), 1);
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(3)), 1);
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(4)), 2);
        // Milliseconds land around bucket 10 (1024 µs).
        assert_eq!(
            LatencyHistogram::bucket_index(Duration::from_millis(1)),
            9,
            "1000 us is still in [512, 1024)"
        );
        // Hours saturate into the last bucket instead of indexing out of range.
        assert_eq!(
            LatencyHistogram::bucket_index(Duration::from_secs(86_400)),
            BUCKETS - 1
        );
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!((5e-5..2e-4).contains(&p50), "p50 ≈ 90 µs, got {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 < 2e-4, "p99 rank 99 still falls in the fast bucket");
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 > 5e-2, "max lands in the 100 ms bucket, got {p100}");
    }
}
