//! Warm [`SolveSession`] pools.
//!
//! PR 4 measured a warmed session (workspaces allocated, adaptive Richardson
//! weights settled) solving ~35% faster than a cold one.  A [`SessionPool`]
//! turns that into a serving-layer primitive: sessions are checked out for
//! one request and returned on drop, so the *next* request over the same
//! solver reuses the workspaces (`workspace_generation()` stays at 1 — zero
//! reallocations on the warm path) and inherits the settled weights.
//!
//! The pool holds at most `max_idle` parked sessions; returns beyond the
//! high-water cap drop the session instead, so idle workspaces are reclaimed
//! *before* the registry has to consider evicting the (much larger) prepared
//! solver they borrow from.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use f3r_core::session::{PreparedSolver, SolveSession};

/// A pool of warm [`SolveSession`]s over one shared [`PreparedSolver`].
///
/// Checkout pops a parked session if one is idle (warm path) and opens a
/// fresh one otherwise (cold path); the [`PooledSession`] guard returns the
/// session on drop.  All state is internally synchronized — share the pool
/// via `Arc` across as many threads as needed.
pub struct SessionPool {
    prepared: Arc<PreparedSolver>,
    idle: Mutex<Vec<SolveSession>>,
    max_idle: usize,
    checked_out: AtomicUsize,
    warm_checkouts: AtomicU64,
    cold_checkouts: AtomicU64,
    discarded_returns: AtomicU64,
}

impl SessionPool {
    /// Create a pool over `prepared` parking at most `max_idle` idle
    /// sessions.
    #[must_use]
    pub fn new(prepared: Arc<PreparedSolver>, max_idle: usize) -> Arc<Self> {
        Arc::new(Self {
            prepared,
            idle: Mutex::new(Vec::new()),
            max_idle,
            checked_out: AtomicUsize::new(0),
            warm_checkouts: AtomicU64::new(0),
            cold_checkouts: AtomicU64::new(0),
            discarded_returns: AtomicU64::new(0),
        })
    }

    /// The shared solver every session of this pool solves against.
    #[must_use]
    pub fn prepared(&self) -> &Arc<PreparedSolver> {
        &self.prepared
    }

    /// Check out a session: a parked warm one if available, a fresh cold one
    /// otherwise.  The returned guard gives the session back on drop.
    #[must_use]
    pub fn checkout(self: &Arc<Self>) -> PooledSession {
        let parked = self.idle.lock().expect("session pool poisoned").pop();
        let session = match parked {
            Some(s) => {
                // ordering: statistics counter, no synchronization implied.
                self.warm_checkouts.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                // ordering: statistics counter, no synchronization implied.
                self.cold_checkouts.fetch_add(1, Ordering::Relaxed);
                self.prepared.session()
            }
        };
        // ordering: Relaxed suffices — the count gates registry eviction,
        // which only needs to observe increments that happened-before the
        // eviction scan; the scan runs under the registry mutex and a
        // checkout that races it keeps its solver alive through its own Arc.
        self.checked_out.fetch_add(1, Ordering::Relaxed);
        PooledSession {
            session: Some(session),
            pool: Arc::clone(self),
        }
    }

    /// Number of sessions currently checked out (live guards).
    #[must_use]
    pub fn checked_out(&self) -> usize {
        // ordering: monitoring read; see `checkout` for the eviction contract.
        self.checked_out.load(Ordering::Relaxed)
    }

    /// Number of warm sessions currently parked.
    #[must_use]
    pub fn idle_len(&self) -> usize {
        self.idle.lock().expect("session pool poisoned").len()
    }

    /// Total workspace bytes held by the parked sessions
    /// ([`SolveSession::workspace_bytes`] summed) — what the high-water cap
    /// is actually bounding.
    #[must_use]
    pub fn idle_workspace_bytes(&self) -> u64 {
        self.idle
            .lock()
            .expect("session pool poisoned")
            .iter()
            .map(SolveSession::workspace_bytes)
            .sum()
    }

    /// Counter snapshot of this pool.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fingerprint: self.prepared.fingerprint(),
            solver_name: self.prepared.name().to_string(),
            idle: self.idle_len(),
            checked_out: self.checked_out(),
            // ordering: statistics counters, no synchronization implied.
            warm_checkouts: self.warm_checkouts.load(Ordering::Relaxed),
            // ordering: statistics counters, no synchronization implied.
            cold_checkouts: self.cold_checkouts.load(Ordering::Relaxed),
            // ordering: statistics counters, no synchronization implied.
            discarded_returns: self.discarded_returns.load(Ordering::Relaxed),
            idle_workspace_bytes: self.idle_workspace_bytes(),
        }
    }

    /// Return a session to the pool (called by the guard's drop).
    fn give_back(&self, session: SolveSession) {
        // ordering: Relaxed pairs with the `checkout` increment; the guard
        // is consumed on this thread, so the decrement trivially follows the
        // matching increment.
        self.checked_out.fetch_sub(1, Ordering::Relaxed);
        let mut idle = self.idle.lock().expect("session pool poisoned");
        if idle.len() < self.max_idle {
            idle.push(session);
        } else {
            drop(idle);
            // Over the high-water cap: reclaim the workspaces instead of
            // parking a session that would only grow the idle footprint.
            // ordering: statistics counter, no synchronization implied.
            self.discarded_returns.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Counter snapshot of one [`SessionPool`], reported per entry by the
/// serving layer's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Fingerprint of the pooled solver.
    pub fingerprint: u64,
    /// Configuration name of the pooled solver.
    pub solver_name: String,
    /// Sessions currently parked warm.
    pub idle: usize,
    /// Sessions currently checked out.
    pub checked_out: usize,
    /// Checkouts served by a parked warm session.
    pub warm_checkouts: u64,
    /// Checkouts that had to open a fresh session.
    pub cold_checkouts: u64,
    /// Returns dropped because the pool was at its high-water cap.
    pub discarded_returns: u64,
    /// Workspace bytes held by the parked sessions.
    pub idle_workspace_bytes: u64,
}

/// Owning guard over a checked-out [`SolveSession`]; derefs to the session
/// and returns it to the pool on drop.
pub struct PooledSession {
    /// `Some` until drop (taken exactly once by the drop glue).
    session: Option<SolveSession>,
    pool: Arc<SessionPool>,
}

impl Deref for PooledSession {
    type Target = SolveSession;

    fn deref(&self) -> &SolveSession {
        self.session.as_ref().expect("session taken")
    }
}

impl DerefMut for PooledSession {
    fn deref_mut(&mut self) -> &mut SolveSession {
        self.session.as_mut().expect("session taken")
    }
}

impl Drop for PooledSession {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.pool.give_back(session);
        }
    }
}
