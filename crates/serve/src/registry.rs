//! Fingerprint-keyed cache of prepared solvers.
//!
//! Setup — precision variants, preconditioner factorization, spec validation
//! — is ~1% of a solve (BENCH_pr4) but pure waste when repeated for every
//! request over the same matrix.  The [`SolverRegistry`] owns that
//! amortization:
//!
//! * **Keying.** Entries are keyed by
//!   [`solver_fingerprint`] — the
//!   matrix content hash mixed with the structural spec hash — computable
//!   *before* building, so lookups never pay setup.
//! * **Single-flight construction.** Concurrent requests for a missing key
//!   build once: the first thread registers the key in an in-flight set and
//!   builds outside the lock; the rest wait on a condvar and pick up the
//!   finished entry.
//! * **LRU + byte-cap eviction.** Every entry is priced at
//!   [`PreparedSolver::storage_bytes`] (matrix variants + preconditioner
//!   factors).  When the total exceeds the byte cap (or the entry cap), the
//!   least-recently-used entries are dropped — but never one with
//!   checked-out sessions; a fully pinned cache transiently exceeds its cap
//!   instead of breaking live requests.  Eviction only detaches the entry:
//!   outstanding [`CachedSolver`] handles keep the solver alive until they
//!   drop.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use f3r_core::fingerprint::solver_fingerprint;
use f3r_core::nested::{NestedSpec, SpecError};
use f3r_core::operator::ProblemMatrix;
use f3r_core::session::{PreparedSolver, SolverBuilder};

use crate::pool::{PooledSession, SessionPool};

/// Sizing of a [`SolverRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Maximum cached entries (LRU-evicted beyond this).
    pub max_entries: usize,
    /// Maximum total [`PreparedSolver::storage_bytes`] across entries.
    pub max_bytes: u64,
    /// High-water cap of each entry's [`SessionPool`] (idle sessions parked
    /// per solver).
    pub max_idle_sessions: usize,
}

impl Default for RegistryConfig {
    /// 64 entries, unbounded bytes, 4 idle sessions per entry.
    fn default() -> Self {
        Self {
            max_entries: 64,
            max_bytes: u64::MAX,
            max_idle_sessions: 4,
        }
    }
}

/// One cached solver: the shared [`PreparedSolver`] plus its session pool.
///
/// Cloning is cheap (two `Arc`s).  A handle stays valid after the registry
/// evicts the entry — eviction detaches, it does not tear down.
#[derive(Clone)]
pub struct CachedSolver {
    prepared: Arc<PreparedSolver>,
    pool: Arc<SessionPool>,
}

impl CachedSolver {
    /// The shared prepared solver.
    #[must_use]
    pub fn prepared(&self) -> &Arc<PreparedSolver> {
        &self.prepared
    }

    /// The solver's content fingerprint (the registry key).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.prepared.fingerprint()
    }

    /// The warm session pool of this entry.
    #[must_use]
    pub fn pool(&self) -> &Arc<SessionPool> {
        &self.pool
    }

    /// Check out a (warm if available) session; shorthand for
    /// `self.pool().checkout()`.
    #[must_use]
    pub fn checkout(&self) -> PooledSession {
        self.pool.checkout()
    }
}

struct Entry {
    solver: CachedSolver,
    /// `storage_bytes()` at insert (variants materialized by the spec are
    /// faulted in during the build, so this is stable afterwards for
    /// non-adaptive solvers; an adaptive escalation can grow the real
    /// footprint beyond the recorded price).
    bytes: u64,
    /// LRU tick of the last hit or insert.
    last_used: u64,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    /// Keys currently being built by some thread (single-flight).
    in_flight: HashSet<u64>,
    /// Monotonic LRU clock.
    tick: u64,
}

/// Counter snapshot of a [`SolverRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Prepared solvers actually constructed (`misses` minus the lookups
    /// that piggybacked on another thread's in-flight build).
    pub builds: u64,
    /// Entries evicted by the LRU/byte-cap policy.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Total priced bytes of the cached entries.
    pub resident_bytes: u64,
}

/// Thread-safe, fingerprint-keyed cache of [`PreparedSolver`]s with warm
/// session pools, single-flight construction and LRU + byte-cap eviction
/// (see the [module docs](self)).
pub struct SolverRegistry {
    inner: Mutex<Inner>,
    /// Signalled when an in-flight build finishes (either way).
    build_done: Condvar,
    config: RegistryConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    evictions: AtomicU64,
}

impl SolverRegistry {
    /// Create a registry with the given sizing.
    #[must_use]
    pub fn new(config: RegistryConfig) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                in_flight: HashSet::new(),
                tick: 0,
            }),
            build_done: Condvar::new(),
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Create a registry with [`RegistryConfig::default`] sizing.
    #[must_use]
    pub fn with_defaults() -> Arc<Self> {
        Self::new(RegistryConfig::default())
    }

    /// The sizing this registry was created with.
    #[must_use]
    pub fn config(&self) -> RegistryConfig {
        self.config
    }

    /// Fetch the solver for `(matrix, spec)`, building and caching it on a
    /// miss.  Concurrent calls with the same key build once (single-flight);
    /// callers that arrive while the build is in flight block until it
    /// finishes and share the result.
    ///
    /// # Errors
    /// Returns the [`SpecError`] if the spec fails validation.  A failed
    /// build caches nothing; waiting callers retry (and typically fail the
    /// same way, each reporting its own error).
    pub fn get_or_prepare(
        &self,
        matrix: &Arc<ProblemMatrix>,
        spec: &NestedSpec,
    ) -> Result<CachedSolver, SpecError> {
        // Validate before fingerprinting so a nonsense spec cannot occupy an
        // in-flight slot or collide with a valid key.
        spec.check()?;
        let key = solver_fingerprint(matrix, spec);
        let mut inner = self.inner.lock().expect("registry poisoned");
        loop {
            if let Some(hit) = Self::touch(&mut inner, key) {
                // ordering: statistics counter, no synchronization implied.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            if !inner.in_flight.contains(&key) {
                break;
            }
            // Someone else is building this exact solver; wait for them
            // rather than duplicating the setup cost (single-flight).
            inner = self.build_done.wait(inner).expect("registry poisoned");
        }
        inner.in_flight.insert(key);
        drop(inner);
        // ordering: statistics counter, no synchronization implied.
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Build outside the lock: setup (variant materialization +
        // factorization) is the expensive part, and only this thread holds
        // the in-flight slot for `key`.
        let built = SolverBuilder::new(Arc::clone(matrix))
            .spec(spec.clone())
            .try_build();

        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.in_flight.remove(&key);
        let out = match built {
            Ok(prepared) => {
                // ordering: statistics counter, no synchronization implied.
                self.builds.fetch_add(1, Ordering::Relaxed);
                debug_assert_eq!(
                    prepared.fingerprint(),
                    key,
                    "builder must reproduce the lookup fingerprint"
                );
                let solver = CachedSolver {
                    pool: SessionPool::new(
                        Arc::clone(&prepared),
                        self.config.max_idle_sessions,
                    ),
                    prepared,
                };
                let bytes = solver.prepared.storage_bytes();
                inner.tick += 1;
                let tick = inner.tick;
                inner.entries.insert(
                    key,
                    Entry {
                        solver: solver.clone(),
                        bytes,
                        last_used: tick,
                    },
                );
                self.evict_over_caps(&mut inner);
                Ok(solver)
            }
            Err(e) => Err(e),
        };
        drop(inner);
        // Wake the waiters either way: on success they hit the fresh entry,
        // on failure the next one takes over the build slot.
        self.build_done.notify_all();
        out
    }

    /// Fetch an already-cached solver by fingerprint, bumping its LRU slot.
    /// Counts as a hit/miss like [`get_or_prepare`](Self::get_or_prepare)
    /// but never builds.
    #[must_use]
    pub fn lookup(&self, fingerprint: u64) -> Option<CachedSolver> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let hit = Self::touch(&mut inner, fingerprint);
        drop(inner);
        if hit.is_some() {
            // ordering: statistics counter, no synchronization implied.
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            // ordering: statistics counter, no synchronization implied.
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Whether an entry for `fingerprint` is currently cached (no LRU bump,
    /// no counter movement — a test/monitoring peek).
    #[must_use]
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.inner
            .lock()
            .expect("registry poisoned")
            .entries
            .contains_key(&fingerprint)
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry poisoned");
        RegistryStats {
            // ordering: statistics counters, no synchronization implied.
            hits: self.hits.load(Ordering::Relaxed),
            // ordering: statistics counters, no synchronization implied.
            misses: self.misses.load(Ordering::Relaxed),
            // ordering: statistics counters, no synchronization implied.
            builds: self.builds.load(Ordering::Relaxed),
            // ordering: statistics counters, no synchronization implied.
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.entries.len(),
            resident_bytes: inner.entries.values().map(|e| e.bytes).sum(),
        }
    }

    /// Per-entry pool statistics (for the serving layer's metrics), in no
    /// particular order.
    #[must_use]
    pub fn pool_stats(&self) -> Vec<crate::pool::PoolStats> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .entries
            .values()
            .map(|e| e.solver.pool.stats())
            .collect()
    }

    /// Bump the LRU clock for `key` and clone its handle, if cached.
    fn touch(inner: &mut Inner, key: u64) -> Option<CachedSolver> {
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(&key).map(|e| {
            e.last_used = tick;
            e.solver.clone()
        })
    }

    /// Evict LRU-first until both caps hold, skipping entries with
    /// checked-out sessions.  If every remaining entry is pinned the caps
    /// are transiently exceeded — live requests always win over the cap.
    fn evict_over_caps(&self, inner: &mut Inner) {
        loop {
            let total: u64 = inner.entries.values().map(|e| e.bytes).sum();
            if total <= self.config.max_bytes && inner.entries.len() <= self.config.max_entries {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| e.solver.pool.checked_out() == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(key) = victim else { return };
            // Dropping the entry frees the pool's idle sessions with it;
            // outstanding handles (if any raced the pin check) keep the
            // solver itself alive until they drop.
            inner.entries.remove(&key);
            // ordering: statistics counter, no synchronization implied.
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}
