//! Runtime-dispatched SIMD kernel backend for the F3R sparse kernels.
//!
//! The scalar kernels in `f3r-sparse` are written around the single-widening
//! convention (each stored element enters the accumulator with one direct
//! conversion, results are rounded back once) and rely on LLVM
//! autovectorisation.  That works for fp32/fp64, but fp16 traffic goes
//! through the vendored software `half` conversions — tens of cycles per
//! element — so fp16 sweeps are conversion-bound instead of bandwidth-bound,
//! inverting the paper's whole bandwidth argument on CPUs without dedicated
//! kernels.
//!
//! This crate closes that gap: hand-written `std::arch` kernels that use the
//! F16C converters (`vcvtph2ps`/`vcvtps2ph`) for fp16 lanes and AVX2/FMA
//! lanes for fp32/fp64, behind a backend tag that is detected **once per
//! process** and latched.  The crate exposes `try_*` entry points mirroring
//! the hot `f3r_sparse::blas1`/`spmv` kernels; each returns `None`/`false`
//! when the backend is scalar or the type combination is unsupported, and the
//! caller falls back to its scalar loop.  The scalar kernels therefore remain
//! the universal fallback and the semantic definition.
//!
//! # Numerical contract
//!
//! * **Elementwise kernels** (`try_axpy_stored`, `try_waxpby_norm2`'s vector
//!   output, `try_scale_into`, `try_widen_scaled`, `try_compress`) are
//!   **bit-identical** to the scalar kernels for non-NaN data: they perform
//!   the same single widening per operand, the same separate multiply and add
//!   (no FMA contraction), and the same single round-to-nearest-even back to
//!   storage, just eight lanes at a time.  (F16C conversions agree bit for
//!   bit with the software `half` conversions; checked exhaustively in this
//!   crate's `f16c_agreement` test.)
//! * **Reductions** (`try_dot*`, `try_spmv_row`, norm accumulators) keep the
//!   accumulation precision and the f64 cascade every [`CASCADE_BLOCK`]
//!   elements, but reassociate the sum across lanes and may contract
//!   multiply-add pairs into FMAs.  Results agree with the scalar kernels
//!   within the documented ULP bounds of `tests/proptest_kernels.rs` (SIMD
//!   error is generally *smaller*: more partial sums, fused rounding).
//! * `try_norm_inf` is **exactly** equal to the scalar kernel (max selection
//!   commutes), including its NaN-dropping comparison semantics.
//!
//! Kernels that narrow `f64` directly to `f16` are deliberately absent:
//! hardware offers no single-rounding path (`vcvtpd2ps` + `vcvtps2ph` double
//! rounds), so those paths always take the scalar fallback.
//!
//! # Backend selection
//!
//! [`kernel_backend`] resolves once, on first use, in this order:
//! 1. a programmatic [`set_kernel_backend`] request (latched like
//!    `f3r_parallel::set_num_threads`),
//! 2. the `F3R_KERNEL_BACKEND` environment variable
//!    (`auto`/`scalar`/`avx2`/`avx512`),
//! 3. `auto`: the widest backend the CPU supports.
//!
//! Requests are clamped to detected CPU features, so forcing `avx2` on a
//! machine without AVX2+FMA+F16C safely resolves to `scalar`.  On non-x86-64
//! architectures (including aarch64, whose NEON fp16 path is detected but
//! not yet implemented) the backend is always `scalar`.

#![warn(missing_docs)]

use core::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use f3r_precision::{FromScalar, Scalar};

#[cfg(target_arch = "x86_64")]
use f3r_precision::{SliceView as V, SliceViewMut as VM};

#[cfg(target_arch = "x86_64")]
mod x86;

/// Reduction kernels fold their accumulator into an `f64` running total every
/// this many elements, mirroring the cascade of the scalar `blas1` kernels so
/// fp32 accumulation error stays O(4096·n·ε) instead of O(n²·ε).
pub const CASCADE_BLOCK: usize = 4096;

/// The gather instructions index with signed 32-bit lanes, so SIMD paths that
/// gather from a vector `x` require `x.len() <= MAX_GATHER_LEN`.
pub const MAX_GATHER_LEN: usize = i32::MAX as usize;

/// Which kernel implementation family the process uses.
///
/// Ordered from narrowest to widest so requests can be clamped to what the
/// CPU supports with `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelBackend {
    /// Portable scalar kernels only (the universal fallback).
    Scalar,
    /// 256-bit kernels requiring AVX2 + FMA + F16C.
    Avx2,
    /// [`KernelBackend::Avx2`] kernels plus 512-bit F16C-style conversions in
    /// `half::slice` (requires AVX-512F in addition).
    Avx512,
}

impl KernelBackend {
    /// Short lowercase name (`"scalar"`, `"avx2"`, `"avx512"`), as accepted
    /// by `F3R_KERNEL_BACKEND` and recorded in bench metadata.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
        }
    }

    /// `true` if SIMD kernels are in use (anything but [`KernelBackend::Scalar`]).
    #[must_use]
    pub const fn is_simd(self) -> bool {
        !matches!(self, KernelBackend::Scalar)
    }
}

impl core::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// CPU features relevant to the kernel backends, as reported by the runtime
/// feature detection of `std::arch`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the feature names
pub struct CpuFeatures {
    pub f16c: bool,
    pub avx2: bool,
    pub fma: bool,
    pub avx512f: bool,
    pub neon: bool,
}

impl CpuFeatures {
    /// `+`-joined list of the detected features (`"f16c+avx2+fma"`), or
    /// `"none"`; used in bench metadata and diagnostics.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for (on, name) in [
            (self.f16c, "f16c"),
            (self.avx2, "avx2"),
            (self.fma, "fma"),
            (self.avx512f, "avx512f"),
            (self.neon, "neon"),
        ] {
            if on {
                parts.push(name);
            }
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join("+")
        }
    }

    /// The widest [`KernelBackend`] these features support.
    #[must_use]
    pub fn widest_backend(&self) -> KernelBackend {
        // NEON fp16 kernels are not implemented yet; aarch64 reports the
        // feature but resolves to the scalar backend.
        if self.f16c && self.avx2 && self.fma {
            if self.avx512f {
                KernelBackend::Avx512
            } else {
                KernelBackend::Avx2
            }
        } else {
            KernelBackend::Scalar
        }
    }
}

/// Detect the CPU features relevant to kernel dispatch.
#[must_use]
pub fn detect_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            f16c: is_x86_feature_detected!("f16c"),
            avx2: is_x86_feature_detected!("avx2"),
            fma: is_x86_feature_detected!("fma"),
            avx512f: is_x86_feature_detected!("avx512f"),
            neon: false,
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        CpuFeatures {
            neon: std::arch::is_aarch64_feature_detected!("neon"),
            ..CpuFeatures::default()
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        CpuFeatures::default()
    }
}

/// A backend request before clamping to CPU features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Request {
    Auto,
    Exact(KernelBackend),
}

/// Programmatic request; 0 = unset, otherwise `encode_request`.
static REQUESTED: AtomicU8 = AtomicU8::new(0);

/// The resolved backend; empty until first [`kernel_backend`] call.
static BACKEND: OnceLock<KernelBackend> = OnceLock::new();

fn encode_request(r: Request) -> u8 {
    match r {
        Request::Auto => 1,
        Request::Exact(KernelBackend::Scalar) => 2,
        Request::Exact(KernelBackend::Avx2) => 3,
        Request::Exact(KernelBackend::Avx512) => 4,
    }
}

fn decode_request(v: u8) -> Option<Request> {
    match v {
        1 => Some(Request::Auto),
        2 => Some(Request::Exact(KernelBackend::Scalar)),
        3 => Some(Request::Exact(KernelBackend::Avx2)),
        4 => Some(Request::Exact(KernelBackend::Avx512)),
        _ => None,
    }
}

/// Parse an `F3R_KERNEL_BACKEND` value.  `None` means unrecognised.
fn parse_backend(s: &str) -> Option<Request> {
    match s.trim().to_ascii_lowercase().as_str() {
        "auto" | "" => Some(Request::Auto),
        "scalar" => Some(Request::Exact(KernelBackend::Scalar)),
        "avx2" => Some(Request::Exact(KernelBackend::Avx2)),
        "avx512" => Some(Request::Exact(KernelBackend::Avx512)),
        _ => None,
    }
}

/// Request a kernel backend programmatically, mirroring
/// `f3r_parallel::set_num_threads`.
///
/// Takes effect only if called before the first kernel dispatch: the backend
/// is latched on first use and never changes afterwards, so a run never mixes
/// backends (which would break the bitwise sequential == parallel guarantees
/// of the kernel layer).  The request is clamped to what the CPU supports.
/// Returns the backend the process is (or will be) using.
pub fn set_kernel_backend(backend: KernelBackend) -> KernelBackend {
    REQUESTED.store(encode_request(Request::Exact(backend)), Ordering::Relaxed);
    if let Some(&latched) = BACKEND.get() {
        return latched;
    }
    resolve(Request::Exact(backend))
}

/// Clamp a request to the detected CPU features.
fn resolve(req: Request) -> KernelBackend {
    let widest = detect_features().widest_backend();
    match req {
        Request::Auto => widest,
        Request::Exact(b) => b.min(widest),
    }
}

/// The request from the environment, defaulting to auto; warns once on an
/// unrecognised value.
fn env_request() -> Request {
    match std::env::var("F3R_KERNEL_BACKEND") {
        Ok(v) => parse_backend(&v).unwrap_or_else(|| {
            eprintln!(
                "f3r-simd: unrecognised F3R_KERNEL_BACKEND={v:?} (expected auto|scalar|avx2|avx512), using auto"
            );
            Request::Auto
        }),
        Err(_) => Request::Auto,
    }
}

/// The kernel backend for this process, resolving and latching it on first
/// call (programmatic request > `F3R_KERNEL_BACKEND` > auto-detect).
pub fn kernel_backend() -> KernelBackend {
    *BACKEND.get_or_init(|| {
        let req = decode_request(REQUESTED.load(Ordering::Relaxed)).unwrap_or_else(env_request);
        let backend = resolve(req);
        if backend == KernelBackend::Scalar {
            // Keep the bulk conversion tier in `half::slice` consistent with
            // the kernel backend (it reads the same env var, but programmatic
            // requests only flow through here).
            half::slice::force_scalar();
        }
        backend
    })
}

/// `true` when the latched backend has SIMD kernels (x86-64 only).
#[inline]
fn simd_active() -> bool {
    cfg!(target_arch = "x86_64") && kernel_backend().is_simd()
}

// ---------------------------------------------------------------------------
// Dispatch entry points.
//
// Each `try_*` mirrors one scalar kernel in `f3r_sparse` (see that kernel's
// docs for the semantics).  The `match` on `Scalar::view` reifies the type
// parameters; after monomorphisation exactly one arm survives per
// instantiation.  All `unsafe` blocks are justified by the same invariant:
// `simd_active()` is only true after `kernel_backend()` verified AVX2 + FMA +
// F16C via `is_x86_feature_detected!`, which is precisely the
// `#[target_feature]` set of the `x86` kernels.
// ---------------------------------------------------------------------------

/// SIMD `dot`: `Σ xᵢ·yᵢ` accumulated like the scalar kernel (accumulation
/// precision + f64 cascade).  `None` when the scalar fallback should run.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn try_dot<T: Scalar>(x: &[T], y: &[T]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "try_dot: length mismatch");
    try_dot_stored(x, y)
}

/// SIMD `dot_stored`: dot of a working-precision `x` against a vector stored
/// in (possibly different) precision `S`, each stored element widened once
/// into `T::Accum` (the `dot_compressed` core).  `None` for fallback.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn try_dot_stored<T: Scalar, S: Scalar>(x: &[T], v: &[S]) -> Option<f64> {
    assert_eq!(x.len(), v.len(), "try_dot_stored: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: see module note above the dispatchers.
        let d = unsafe {
            match (T::view(x), S::view(v)) {
                (V::F16(a), V::F16(b)) => x86::dot_stored_a(a, b),
                (V::F16(a), V::F32(b)) => x86::dot_stored_a(a, b),
                (V::F16(a), V::F64(b)) => x86::dot_stored_a(a, b),
                (V::F32(a), V::F16(b)) => x86::dot_stored_a(a, b),
                (V::F32(a), V::F32(b)) => x86::dot_stored_a(a, b),
                (V::F32(a), V::F64(b)) => x86::dot_stored_a(a, b),
                (V::F64(a), V::F16(b)) => x86::dot_stored_b(a, b),
                (V::F64(a), V::F32(b)) => x86::dot_stored_b(a, b),
                (V::F64(a), V::F64(b)) => x86::dot_stored_b(a, b),
            }
        };
        return Some(d);
    }
    None
}

/// SIMD `dot2`: `(x1·y1, x2·y2)` in one pass.  `None` for fallback.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn try_dot2<T: Scalar>(x1: &[T], y1: &[T], x2: &[T], y2: &[T]) -> Option<(f64, f64)> {
    let n = x1.len();
    assert!(
        y1.len() == n && x2.len() == n && y2.len() == n,
        "try_dot2: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: see module note above the dispatchers.
        let d = unsafe {
            match (T::view(x1), T::view(y1), T::view(x2), T::view(y2)) {
                (V::F16(a), V::F16(b), V::F16(c), V::F16(d)) => x86::dot2_a(a, b, c, d),
                (V::F32(a), V::F32(b), V::F32(c), V::F32(d)) => x86::dot2_a(a, b, c, d),
                (V::F64(a), V::F64(b), V::F64(c), V::F64(d)) => x86::dot2_b(a, b, c, d),
                _ => return None, // unreachable: all four share T
            }
        };
        return Some(d);
    }
    None
}

/// SIMD `axpy` with a stored-precision `x` operand: `y += c · v` with `v`
/// widened once into `T::Accum` (covers plain `axpy` with `S = T` and the
/// compressed-basis `axpy_scaled_from`).  Elementwise bit-identical to the
/// scalar kernel.  Returns `false` for fallback.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn try_axpy_stored<T: Scalar, S: Scalar>(c: f64, v: &[S], y: &mut [T]) -> bool {
    assert_eq!(v.len(), y.len(), "try_axpy_stored: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: see module note above the dispatchers.
        unsafe {
            match (S::view(v), T::view_mut(y)) {
                (V::F16(a), VM::F16(b)) => x86::axpy_stored_a(f32::from_scalar(c), a, b),
                (V::F32(a), VM::F16(b)) => x86::axpy_stored_a(f32::from_scalar(c), a, b),
                (V::F64(a), VM::F16(b)) => x86::axpy_stored_a(f32::from_scalar(c), a, b),
                (V::F16(a), VM::F32(b)) => x86::axpy_stored_a(f32::from_scalar(c), a, b),
                (V::F32(a), VM::F32(b)) => x86::axpy_stored_a(f32::from_scalar(c), a, b),
                (V::F64(a), VM::F32(b)) => x86::axpy_stored_a(f32::from_scalar(c), a, b),
                (V::F16(a), VM::F64(b)) => x86::axpy_stored_b(c, a, b),
                (V::F32(a), VM::F64(b)) => x86::axpy_stored_b(c, a, b),
                (V::F64(a), VM::F64(b)) => x86::axpy_stored_b(c, a, b),
            }
        }
        return true;
    }
    let _ = c;
    false
}

/// SIMD `axpy_norm2`: `y += a·x` plus `‖y_new‖²`.  The updated `y` is
/// bit-identical to [`try_axpy_stored`] / scalar `axpy`; the norm accumulates
/// squares of the *stored* (rounded) values like the scalar kernel.  `None`
/// for fallback.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn try_axpy_norm2<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "try_axpy_norm2: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: see module note above the dispatchers.
        let s = unsafe {
            match (T::view(x), T::view_mut(y)) {
                (V::F16(a), VM::F16(b)) => x86::axpy_norm2_a(f32::from_scalar(alpha), a, b),
                (V::F32(a), VM::F32(b)) => x86::axpy_norm2_a(f32::from_scalar(alpha), a, b),
                (V::F64(a), VM::F64(b)) => x86::axpy_norm2_b(alpha, a, b),
                _ => return None, // unreachable: both share T
            }
        };
        return Some(s);
    }
    let _ = alpha;
    None
}

/// SIMD `waxpby_norm2`: `w = a·x + b·y` plus `‖w‖²`.  The vector output is
/// bit-identical to scalar `waxpby` (separate multiplies and add, one final
/// rounding); the norm accumulates the stored values.  `None` for fallback.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn try_waxpby_norm2<T: Scalar>(
    alpha: f64,
    x: &[T],
    beta: f64,
    y: &[T],
    w: &mut [T],
) -> Option<f64> {
    let n = x.len();
    assert!(y.len() == n && w.len() == n, "try_waxpby_norm2: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: see module note above the dispatchers.
        let s = unsafe {
            match (T::view(x), T::view(y), T::view_mut(w)) {
                (V::F16(a), V::F16(b), VM::F16(c)) => {
                    x86::waxpby_norm2_a(f32::from_scalar(alpha), a, f32::from_scalar(beta), b, c)
                }
                (V::F32(a), V::F32(b), VM::F32(c)) => {
                    x86::waxpby_norm2_a(f32::from_scalar(alpha), a, f32::from_scalar(beta), b, c)
                }
                (V::F64(a), V::F64(b), VM::F64(c)) => x86::waxpby_norm2_b(alpha, a, beta, b, c),
                _ => return None, // unreachable: all three share T
            }
        };
        return Some(s);
    }
    let _ = (alpha, beta);
    None
}

/// SIMD `scale_into`: `dst = c · src` (one widening, one multiply, one
/// rounding per element; elementwise bit-identical to the scalar kernel).
/// Returns `false` for fallback.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn try_scale_into<T: Scalar>(c: f64, src: &[T], dst: &mut [T]) -> bool {
    assert_eq!(src.len(), dst.len(), "try_scale_into: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        let n = src.len();
        // SAFETY: see module note above the dispatchers; src/dst are distinct
        // borrows so the pointer ranges cannot overlap.
        unsafe {
            match (T::view(src), T::view_mut(dst)) {
                (V::F16(s), VM::F16(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F32(s), VM::F32(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F64(s), VM::F64(d)) => x86::scale_b(c, s.as_ptr(), d.as_mut_ptr(), n),
                _ => return false, // unreachable: both share T
            }
        }
        return true;
    }
    let _ = c;
    false
}

/// SIMD in-place `scale`: `x = c · x`, the aliased twin of
/// [`try_scale_into`] (same per-element operations, so the two stay
/// bit-identical).  Returns `false` for fallback.
pub fn try_scale<T: Scalar>(c: f64, x: &mut [T]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        let n = x.len();
        // SAFETY: see module note above the dispatchers; the kernel reads
        // each block before writing it, so full aliasing (src == dst) is fine.
        unsafe {
            match T::view_mut(x) {
                VM::F16(s) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), s.as_mut_ptr(), n),
                VM::F32(s) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), s.as_mut_ptr(), n),
                VM::F64(s) => x86::scale_b(c, s.as_ptr(), s.as_mut_ptr(), n),
            }
        }
        return true;
    }
    let _ = c;
    false
}

/// SIMD compress-on-write (`narrow_scaled_into` inner loop): `dst[i] =
/// (src[i].widen() · c).into_scalar()` with the multiply in `T::Accum`.
/// Supported combinations: `f32 → f16`, `f16 → f32`, `f64 → f32`, and all
/// same-precision pairs (used with `c = 1` for verbatim narrowing).
/// `f64 → f16` is unsupported by design (no single-rounding hardware path)
/// and returns `false`, as do all other combinations when the backend is
/// scalar.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn try_compress<T: Scalar, S: Scalar>(c: f64, src: &[T], dst: &mut [S]) -> bool {
    assert_eq!(src.len(), dst.len(), "try_compress: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        let n = src.len();
        // SAFETY: see module note above the dispatchers; src/dst are distinct
        // borrows so the pointer ranges cannot overlap.
        unsafe {
            match (T::view(src), S::view_mut(dst)) {
                (V::F16(s), VM::F16(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F16(s), VM::F32(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F32(s), VM::F16(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F32(s), VM::F32(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F64(s), VM::F32(d)) => x86::scale_b(c, s.as_ptr(), d.as_mut_ptr(), n),
                (V::F64(s), VM::F64(d)) => x86::scale_b(c, s.as_ptr(), d.as_mut_ptr(), n),
                // f64 → f16 (double rounding) and narrow-to-wider pairs that
                // never occur in the basis kernels fall back to scalar.
                _ => return false,
            }
        }
        return true;
    }
    let _ = c;
    false
}

/// SIMD decompress (`widen_scaled_into` inner loop): `dst[i] =
/// T::narrow(from_scalar(src[i]) · c)` with the multiply in `T::Accum`.
/// All nine (stored, working) precision pairs are supported.  Returns
/// `false` for fallback.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn try_widen_scaled<S: Scalar, T: Scalar>(c: f64, src: &[S], dst: &mut [T]) -> bool {
    assert_eq!(src.len(), dst.len(), "try_widen_scaled: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        let n = src.len();
        // SAFETY: see module note above the dispatchers; src/dst are distinct
        // borrows so the pointer ranges cannot overlap.
        unsafe {
            match (S::view(src), T::view_mut(dst)) {
                (V::F16(s), VM::F16(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F32(s), VM::F16(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F64(s), VM::F16(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F16(s), VM::F32(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F32(s), VM::F32(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F64(s), VM::F32(d)) => x86::scale_a(f32::from_scalar(c), s.as_ptr(), d.as_mut_ptr(), n),
                (V::F16(s), VM::F64(d)) => x86::scale_b(c, s.as_ptr(), d.as_mut_ptr(), n),
                (V::F32(s), VM::F64(d)) => x86::scale_b(c, s.as_ptr(), d.as_mut_ptr(), n),
                (V::F64(s), VM::F64(d)) => x86::scale_b(c, s.as_ptr(), d.as_mut_ptr(), n),
            }
        }
        return true;
    }
    let _ = c;
    false
}

/// SIMD `norm_inf`: `max |xᵢ|`, exactly equal to the scalar kernel (max
/// selection is order-independent; NaN elements never replace the running
/// max, matching the scalar `>` comparison).  `None` for fallback.
#[must_use]
pub fn try_norm_inf<T: Scalar>(x: &[T]) -> Option<f64> {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: see module note above the dispatchers.
        let m = unsafe {
            match T::view(x) {
                V::F16(a) => f64::from(x86::norm_inf_a(a)),
                V::F32(a) => f64::from(x86::norm_inf_a(a)),
                V::F64(a) => x86::norm_inf_b(a),
            }
        };
        return Some(m);
    }
    let _ = x;
    None
}

/// SIMD CSR row kernel: `Σ from_scalar(vals[i]) · widen(x[cols[i]])` in
/// `TV::Accum`, the core of every `spmv*` variant.  `None` for fallback
/// (scalar backend, row shorter than one vector, or `x` too long for 32-bit
/// gather indices).
///
/// # Safety
/// Every entry of `cols` must be a valid index into `x` (the `CsrMatrix`
/// constructor invariant); the gathers do no bounds checking.
#[must_use]
pub unsafe fn try_spmv_row<TA: Scalar, TV: Scalar>(
    cols: &[u32],
    vals: &[TA],
    x: &[TV],
) -> Option<TV::Accum> {
    debug_assert_eq!(cols.len(), vals.len());
    #[cfg(target_arch = "x86_64")]
    if cols.len() >= 8 && x.len() <= MAX_GATHER_LEN && simd_active() {
        // SAFETY: feature set per the module note above the dispatchers;
        // index validity is this function's own safety contract.
        let acc: f64 = unsafe {
            match (TA::view(vals), TV::view(x)) {
                (V::F16(a), V::F16(v)) => f64::from(x86::spmv_row_a(cols, a, v)),
                (V::F32(a), V::F16(v)) => f64::from(x86::spmv_row_a(cols, a, v)),
                (V::F64(a), V::F16(v)) => f64::from(x86::spmv_row_a(cols, a, v)),
                (V::F16(a), V::F32(v)) => f64::from(x86::spmv_row_a(cols, a, v)),
                (V::F32(a), V::F32(v)) => f64::from(x86::spmv_row_a(cols, a, v)),
                (V::F64(a), V::F32(v)) => f64::from(x86::spmv_row_a(cols, a, v)),
                (V::F16(a), V::F64(v)) => x86::spmv_row_b(cols, a, v),
                (V::F32(a), V::F64(v)) => x86::spmv_row_b(cols, a, v),
                (V::F64(a), V::F64(v)) => x86::spmv_row_b(cols, a, v),
            }
        };
        // Exact: `acc` is exactly representable in TV::Accum (it *is* the
        // f32/f64 accumulator value, widened at most once).
        return Some(<TV::Accum as Scalar>::from_f64(acc));
    }
    let _ = (cols, vals, x);
    None
}

/// SIMD SELL kernel for one full group of 8 consecutive rows sharing a
/// chunk: lane `l` of the result is row `base_row + l`'s accumulator.
/// `cols`/`vals` must start at the group's first lane of the chunk's first
/// non-meta position (`SellMatrix::row_lanes(base_row)` slices), `stride` is
/// the chunk height and `width` the chunk's padded row width.  Padding lanes
/// (column = own row, value = 0) are included, exactly like the scalar
/// `sell_row`.  `None` for fallback.
///
/// # Safety
/// Every column entry in the `width × 8` lane window must be a valid index
/// into `x`, and `cols`/`vals` must each hold at least
/// `(width - 1) · stride + 8` elements (guaranteed by the `SellMatrix`
/// layout when `stride % 8 == 0` and the group lies inside one chunk).
#[must_use]
pub unsafe fn try_sell_group8<TA: Scalar, TV: Scalar>(
    cols: &[u32],
    vals: &[TA],
    stride: usize,
    width: usize,
    x: &[TV],
) -> Option<[TV::Accum; 8]> {
    #[cfg(target_arch = "x86_64")]
    if x.len() <= MAX_GATHER_LEN && simd_active() {
        debug_assert!(width == 0 || (width - 1) * stride + 8 <= cols.len().min(vals.len()));
        // SAFETY: feature set per the module note above the dispatchers;
        // index validity and window bounds are this function's contract.
        let acc: [f64; 8] = unsafe {
            match (TA::view(vals), TV::view(x)) {
                (V::F16(a), V::F16(v)) => x86::sell_group8_a(cols, a, stride, width, v).map(f64::from),
                (V::F32(a), V::F16(v)) => x86::sell_group8_a(cols, a, stride, width, v).map(f64::from),
                (V::F64(a), V::F16(v)) => x86::sell_group8_a(cols, a, stride, width, v).map(f64::from),
                (V::F16(a), V::F32(v)) => x86::sell_group8_a(cols, a, stride, width, v).map(f64::from),
                (V::F32(a), V::F32(v)) => x86::sell_group8_a(cols, a, stride, width, v).map(f64::from),
                (V::F64(a), V::F32(v)) => x86::sell_group8_a(cols, a, stride, width, v).map(f64::from),
                (V::F16(a), V::F64(v)) => x86::sell_group8_b(cols, a, stride, width, v),
                (V::F32(a), V::F64(v)) => x86::sell_group8_b(cols, a, stride, width, v),
                (V::F64(a), V::F64(v)) => x86::sell_group8_b(cols, a, stride, width, v),
            }
        };
        // Exact per lane, as in `try_spmv_row`.
        return Some(acc.map(<TV::Accum as Scalar>::from_f64));
    }
    let _ = (cols, vals, stride, width, x);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_backend_values() {
        assert_eq!(parse_backend("auto"), Some(Request::Auto));
        assert_eq!(parse_backend(" SCALAR "), Some(Request::Exact(KernelBackend::Scalar)));
        assert_eq!(parse_backend("avx2"), Some(Request::Exact(KernelBackend::Avx2)));
        assert_eq!(parse_backend("Avx512"), Some(Request::Exact(KernelBackend::Avx512)));
        assert_eq!(parse_backend("neon"), None);
        assert_eq!(parse_backend(""), Some(Request::Auto));
    }

    #[test]
    fn requests_clamp_to_cpu_features() {
        let widest = detect_features().widest_backend();
        assert_eq!(resolve(Request::Auto), widest);
        assert_eq!(resolve(Request::Exact(KernelBackend::Scalar)), KernelBackend::Scalar);
        assert!(resolve(Request::Exact(KernelBackend::Avx512)) <= widest.max(KernelBackend::Avx512));
        assert!(resolve(Request::Exact(KernelBackend::Avx2)) <= KernelBackend::Avx2);
    }

    #[test]
    fn backend_is_latched_after_first_use() {
        let first = kernel_backend();
        // A late programmatic request cannot change the latched backend.
        let other = match first {
            KernelBackend::Scalar => KernelBackend::Avx2,
            _ => KernelBackend::Scalar,
        };
        assert_eq!(set_kernel_backend(other), first);
        assert_eq!(kernel_backend(), first);
    }

    #[test]
    fn feature_summary_formats() {
        assert_eq!(CpuFeatures::default().summary(), "none");
        let f = CpuFeatures { f16c: true, fma: true, ..CpuFeatures::default() };
        assert_eq!(f.summary(), "f16c+fma");
        assert_eq!(f.widest_backend(), KernelBackend::Scalar);
        let full = CpuFeatures { f16c: true, avx2: true, fma: true, avx512f: false, neon: false };
        assert_eq!(full.widest_backend(), KernelBackend::Avx2);
    }

    #[test]
    fn backend_names() {
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Avx2.name(), "avx2");
        assert_eq!(KernelBackend::Avx512.name(), "avx512");
        assert!(!KernelBackend::Scalar.is_simd());
        assert!(KernelBackend::Avx512.is_simd());
        assert_eq!(format!("{}", KernelBackend::Avx2), "avx2");
    }
}
