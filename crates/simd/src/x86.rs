//! x86-64 AVX2+FMA+F16C kernel implementations.
//!
//! Everything here is `unsafe fn` with `#[target_feature(enable = "avx2,fma,
//! f16c")]`: callers (the dispatchers in the crate root) may only reach these
//! after [`crate::kernel_backend`] verified the full feature set with
//! `is_x86_feature_detected!` — that runtime check is the justification for
//! every `unsafe` block in this module, together with the per-kernel bounds
//! arguments noted inline.
//!
//! Two "worlds" mirror the two accumulation precisions of the scalar
//! kernels:
//!
//! * **world A** — `f32` accumulation (f16/f32 vectors), 8-wide `__m256`
//!   lanes, every stored element entering via one conversion to f32
//!   ([`Lane8`]), results leaving via one round-to-nearest-even
//!   ([`Lane8Dst`]);
//! * **world B** — `f64` accumulation (f64 vectors), 4-wide `__m256d` lanes
//!   ([`Lane4`]/[`Lane4Dst`]).
//!
//! Elementwise kernels use separate multiply and add instructions (never
//! FMA) and are bit-identical to their scalar counterparts; reduction
//! kernels use FMA and per-[`crate::CASCADE_BLOCK`] f64 folding, matching
//! the scalar kernels' documented error bounds (see the crate docs).

#![allow(clippy::missing_safety_doc)] // module-level contract documented above

use core::arch::x86_64::*;

use f3r_precision::Scalar;
use half::f16;

use crate::CASCADE_BLOCK;

// ---------------------------------------------------------------------------
// Lane traits: per-precision load/store/gather building blocks.
// All methods are `#[inline(always)]` plain functions; they inline into the
// `#[target_feature]` kernels below, which supply the instruction set.
// ---------------------------------------------------------------------------

/// 8 consecutive elements widened into f32 lanes with one conversion per
/// element, matching `FromScalar::<f32>::from_scalar` bit for bit.
pub(crate) trait Lane8: Scalar {
    /// # Safety
    /// 8 elements must be readable at `p`; caller must be in an
    /// AVX2+F16C-enabled context.
    unsafe fn ld8(p: *const Self) -> __m256;
}

/// [`Lane8`] types that can also absorb f32 lanes with one
/// round-to-nearest-even, matching `Scalar::narrow` (f16, f32 — *not* f64,
/// whose narrow from f32 would be a widening, handled in world B).
pub(crate) trait Lane8Dst: Lane8 {
    /// # Safety
    /// 8 elements must be writable at `p`; AVX2+F16C context.
    unsafe fn st8(p: *mut Self, v: __m256);
}

/// [`Lane8`] vector types supporting an 8-lane gather (f16, f32).
pub(crate) trait Gather8: Lane8 {
    /// # Safety
    /// Every lane of `idx` must be a valid non-negative index into the slice
    /// behind `x`; AVX2+F16C context.
    unsafe fn gat8(x: *const Self, idx: __m256i) -> __m256;
}

impl Lane8 for f16 {
    // SAFETY: per the Lane8 contract — caller guarantees 8 readable f16
    // at `p` and an AVX2+F16C context.
    #[inline(always)]
    unsafe fn ld8(p: *const Self) -> __m256 {
        // f16 is #[repr(transparent)] over u16, so the pointer cast is
        // layout-valid; vcvtph2ps agrees bit for bit with the software
        // widening (exhaustively verified in tests/f16c_agreement.rs).
        _mm256_cvtph_ps(_mm_loadu_si128(p.cast::<__m128i>()))
    }
}

impl Lane8Dst for f16 {
    // SAFETY: per the Lane8Dst contract — 8 writable f16 at `p`, F16C on.
    #[inline(always)]
    unsafe fn st8(p: *mut Self, v: __m256) {
        // vcvtps2ph with round-to-nearest-even == f16::from_f32 on non-NaN.
        _mm_storeu_si128(p.cast::<__m128i>(), _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v));
    }
}

impl Gather8 for f16 {
    // SAFETY: per the Gather8 contract — every idx lane indexes into the
    // slice behind `x`; AVX2+F16C context.
    #[inline(always)]
    unsafe fn gat8(x: *const Self, idx: __m256i) -> __m256 {
        // No 16-bit SIMD gather exists: pull the 8 half words through scalar
        // loads into a stack buffer, then convert with one vcvtph2ps.
        let mut ix = [0i32; 8];
        _mm256_storeu_si256(ix.as_mut_ptr().cast::<__m256i>(), idx);
        let mut h = [0u16; 8];
        for (slot, &i) in h.iter_mut().zip(ix.iter()) {
            *slot = (*x.add(i as usize)).to_bits();
        }
        _mm256_cvtph_ps(_mm_loadu_si128(h.as_ptr().cast::<__m128i>()))
    }
}

impl Lane8 for f32 {
    // SAFETY: per the Lane8 contract — 8 readable f32 at `p`, AVX2 on.
    #[inline(always)]
    unsafe fn ld8(p: *const Self) -> __m256 {
        _mm256_loadu_ps(p)
    }
}

impl Lane8Dst for f32 {
    // SAFETY: per the Lane8Dst contract — 8 writable f32 at `p`, AVX2 on.
    #[inline(always)]
    unsafe fn st8(p: *mut Self, v: __m256) {
        _mm256_storeu_ps(p, v);
    }
}

impl Gather8 for f32 {
    // SAFETY: per the Gather8 contract — every idx lane indexes into the
    // slice behind `x`; AVX2 gather is in-bounds by that guarantee.
    #[inline(always)]
    unsafe fn gat8(x: *const Self, idx: __m256i) -> __m256 {
        _mm256_i32gather_ps::<4>(x, idx)
    }
}

impl Lane8 for f64 {
    // SAFETY: per the Lane8 contract — 8 readable f64 at `p`, AVX2 on.
    #[inline(always)]
    unsafe fn ld8(p: *const Self) -> __m256 {
        // Two 4-wide rounds f64 → f32 (vcvtpd2ps is round-to-nearest-even,
        // identical to the scalar `as f32` of from_scalar::<f32>).
        let lo = _mm256_cvtpd_ps(_mm256_loadu_pd(p));
        let hi = _mm256_cvtpd_ps(_mm256_loadu_pd(p.add(4)));
        _mm256_set_m128(hi, lo)
    }
}

/// 4 consecutive elements widened into f64 lanes, matching
/// `FromScalar::<f64>::from_scalar` (exact for all three storage types).
pub(crate) trait Lane4: Scalar {
    /// # Safety
    /// 4 elements readable at `p`; AVX2+F16C context.
    unsafe fn ld4(p: *const Self) -> __m256d;
}

/// [`Lane4`] types that can absorb f64 lanes with at most one rounding
/// (f64: exact; f32: one vcvtpd2ps RNE — *not* f16, which would double
/// round f64 → f32 → f16).
pub(crate) trait Lane4Dst: Lane4 {
    /// # Safety
    /// 4 elements writable at `p`; AVX2+F16C context.
    unsafe fn st4(p: *mut Self, v: __m256d);
}

impl Lane4 for f16 {
    // SAFETY: per the Lane4 contract — 4 readable f16 at `p`, F16C on.
    #[inline(always)]
    unsafe fn ld4(p: *const Self) -> __m256d {
        // Both steps are exact widenings, so this equals `to_f64` bitwise.
        _mm256_cvtps_pd(_mm_cvtph_ps(_mm_loadl_epi64(p.cast::<__m128i>())))
    }
}

impl Lane4 for f32 {
    // SAFETY: per the Lane4 contract — 4 readable f32 at `p`, AVX2 on.
    #[inline(always)]
    unsafe fn ld4(p: *const Self) -> __m256d {
        _mm256_cvtps_pd(_mm_loadu_ps(p))
    }
}

impl Lane4Dst for f32 {
    // SAFETY: per the Lane4Dst contract — 4 writable f32 at `p`, AVX2 on.
    #[inline(always)]
    unsafe fn st4(p: *mut Self, v: __m256d) {
        _mm_storeu_ps(p, _mm256_cvtpd_ps(v));
    }
}

impl Lane4 for f64 {
    // SAFETY: per the Lane4 contract — 4 readable f64 at `p`, AVX2 on.
    #[inline(always)]
    unsafe fn ld4(p: *const Self) -> __m256d {
        _mm256_loadu_pd(p)
    }
}

impl Lane4Dst for f64 {
    // SAFETY: per the Lane4Dst contract — 4 writable f64 at `p`, AVX2 on.
    #[inline(always)]
    unsafe fn st4(p: *mut Self, v: __m256d) {
        _mm256_storeu_pd(p, v);
    }
}

// ---------------------------------------------------------------------------
// Horizontal reductions.
// ---------------------------------------------------------------------------

// SAFETY: pure register shuffles/adds — callers only need the AVX
// feature their own #[target_feature] context already proves.
#[inline(always)]
unsafe fn hsum_ps(v: __m256) -> f32 {
    let q = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps::<1>(v));
    let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
    _mm_cvtss_f32(_mm_add_ss(d, _mm_shuffle_ps::<1>(d, d)))
}

// SAFETY: pure register ops; AVX proven by the caller's context.
#[inline(always)]
unsafe fn hsum_pd(v: __m256d) -> f64 {
    let d = _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd::<1>(v));
    _mm_cvtsd_f64(_mm_add_sd(d, _mm_unpackhi_pd(d, d)))
}

// ---------------------------------------------------------------------------
// SpMV row kernels.
// ---------------------------------------------------------------------------

/// World-A CSR row: `Σ from_scalar(vals[i]) · widen(x[cols[i]])` in f32.
///
/// Bounds: the vector loops stop at `cols.len()`/`vals.len()`; gather
/// indices are valid by the caller's contract (`try_spmv_row`'s safety doc).
// SAFETY: caller must be in an AVX2+FMA+F16C context (dispatch latch)
// and guarantee every `cols[i] < x.len()` (try_spmv_row's contract); all
// loads stop at cols.len().min(vals.len()).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn spmv_row_a<TA: Lane8, TV: Gather8>(
    cols: &[u32],
    vals: &[TA],
    x: &[TV],
) -> f32 {
    let n = cols.len().min(vals.len());
    let cp = cols.as_ptr();
    let vp = vals.as_ptr();
    let xp = x.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        let idx0 = _mm256_loadu_si256(cp.add(i).cast::<__m256i>());
        let idx1 = _mm256_loadu_si256(cp.add(i + 8).cast::<__m256i>());
        acc0 = _mm256_fmadd_ps(TA::ld8(vp.add(i)), TV::gat8(xp, idx0), acc0);
        acc1 = _mm256_fmadd_ps(TA::ld8(vp.add(i + 8)), TV::gat8(xp, idx1), acc1);
        i += 16;
    }
    while i + 8 <= n {
        let idx = _mm256_loadu_si256(cp.add(i).cast::<__m256i>());
        acc0 = _mm256_fmadd_ps(TA::ld8(vp.add(i)), TV::gat8(xp, idx), acc0);
        i += 8;
    }
    let mut tail = 0.0f32;
    while i < n {
        let c = *cp.add(i) as usize;
        tail += (*vp.add(i)).to_f32() * (*xp.add(c)).to_f32();
        i += 1;
    }
    hsum_ps(_mm256_add_ps(acc0, acc1)) + tail
}

/// World-B CSR row: `Σ to_f64(vals[i]) · x[cols[i]]` in f64.
// SAFETY: same contract as spmv_row_a — AVX2+FMA+F16C context and
// in-bounds column indices into `x`.
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn spmv_row_b<TA: Lane4>(cols: &[u32], vals: &[TA], x: &[f64]) -> f64 {
    let n = cols.len().min(vals.len());
    let cp = cols.as_ptr();
    let vp = vals.as_ptr();
    let xp = x.as_ptr();
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let idx0 = _mm_loadu_si128(cp.add(i).cast::<__m128i>());
        let idx1 = _mm_loadu_si128(cp.add(i + 4).cast::<__m128i>());
        acc0 = _mm256_fmadd_pd(TA::ld4(vp.add(i)), _mm256_i32gather_pd::<8>(xp, idx0), acc0);
        acc1 = _mm256_fmadd_pd(TA::ld4(vp.add(i + 4)), _mm256_i32gather_pd::<8>(xp, idx1), acc1);
        i += 8;
    }
    while i + 4 <= n {
        let idx = _mm_loadu_si128(cp.add(i).cast::<__m128i>());
        acc0 = _mm256_fmadd_pd(TA::ld4(vp.add(i)), _mm256_i32gather_pd::<8>(xp, idx), acc0);
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < n {
        let c = *cp.add(i) as usize;
        tail += (*vp.add(i)).to_f64() * *xp.add(c);
        i += 1;
    }
    hsum_pd(_mm256_add_pd(acc0, acc1)) + tail
}

// ---------------------------------------------------------------------------
// SELL group-of-8 kernels: 8 consecutive rows of one chunk, lane-parallel
// across rows (the SELL layout stores lane k of 8 consecutive rows
// contiguously, so the row-parallel loads are unit-stride).
// ---------------------------------------------------------------------------

/// World-A SELL group: result lane `l` is row `base + l`'s f32 accumulator.
///
/// Bounds: caller guarantees `(width - 1) · stride + 8` elements in
/// `cols`/`vals` (see `try_sell_group8`'s safety doc).
// SAFETY: AVX2+FMA+F16C context; caller guarantees
// `(width-1)*stride + 8` elements in cols/vals and in-bounds column
// indices (try_sell_group8's contract).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn sell_group8_a<TA: Lane8, TV: Gather8>(
    cols: &[u32],
    vals: &[TA],
    stride: usize,
    width: usize,
    x: &[TV],
) -> [f32; 8] {
    let cp = cols.as_ptr();
    let vp = vals.as_ptr();
    let xp = x.as_ptr();
    let mut acc = _mm256_setzero_ps();
    for k in 0..width {
        let off = k * stride;
        let idx = _mm256_loadu_si256(cp.add(off).cast::<__m256i>());
        acc = _mm256_fmadd_ps(TA::ld8(vp.add(off)), TV::gat8(xp, idx), acc);
    }
    let mut out = [0.0f32; 8];
    _mm256_storeu_ps(out.as_mut_ptr(), acc);
    out
}

/// World-B SELL group: result lane `l` is row `base + l`'s f64 accumulator.
// SAFETY: same contract as sell_group8_a.
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn sell_group8_b<TA: Lane4>(
    cols: &[u32],
    vals: &[TA],
    stride: usize,
    width: usize,
    x: &[f64],
) -> [f64; 8] {
    let cp = cols.as_ptr();
    let vp = vals.as_ptr();
    let xp = x.as_ptr();
    let mut lo = _mm256_setzero_pd();
    let mut hi = _mm256_setzero_pd();
    for k in 0..width {
        let off = k * stride;
        let idx = _mm256_loadu_si256(cp.add(off).cast::<__m256i>());
        let idx_lo = _mm256_castsi256_si128(idx);
        let idx_hi = _mm256_extracti128_si256::<1>(idx);
        lo = _mm256_fmadd_pd(TA::ld4(vp.add(off)), _mm256_i32gather_pd::<8>(xp, idx_lo), lo);
        hi = _mm256_fmadd_pd(TA::ld4(vp.add(off + 4)), _mm256_i32gather_pd::<8>(xp, idx_hi), hi);
    }
    let mut out = [0.0f64; 8];
    _mm256_storeu_pd(out.as_mut_ptr(), lo);
    _mm256_storeu_pd(out.as_mut_ptr().add(4), hi);
    out
}

// ---------------------------------------------------------------------------
// BLAS-1 reductions.
// ---------------------------------------------------------------------------

/// World-A dot with independently stored operand precisions:
/// `Σ to_f32(x[i]) · to_f32(v[i])`, f32 lanes, f64 cascade per block.
// SAFETY: AVX2+FMA+F16C context; loads stop at x.len().min(v.len()).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn dot_stored_a<T: Lane8, S: Lane8>(x: &[T], v: &[S]) -> f64 {
    let n = x.len().min(v.len());
    let xp = x.as_ptr();
    let vp = v.as_ptr();
    let mut total = 0.0f64;
    let mut start = 0;
    while start < n {
        let end = (start + CASCADE_BLOCK).min(n);
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = start;
        while i + 16 <= end {
            acc0 = _mm256_fmadd_ps(T::ld8(xp.add(i)), S::ld8(vp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(T::ld8(xp.add(i + 8)), S::ld8(vp.add(i + 8)), acc1);
            i += 16;
        }
        while i + 8 <= end {
            acc0 = _mm256_fmadd_ps(T::ld8(xp.add(i)), S::ld8(vp.add(i)), acc0);
            i += 8;
        }
        let mut tail = 0.0f32;
        while i < end {
            tail += (*xp.add(i)).to_f32() * (*vp.add(i)).to_f32();
            i += 1;
        }
        total += f64::from(hsum_ps(_mm256_add_ps(acc0, acc1)) + tail);
        start = end;
    }
    total
}

/// World-B dot with a stored operand: `Σ x[i] · to_f64(v[i])`, f64 lanes.
// SAFETY: AVX2+FMA+F16C context; loads stop at x.len().min(v.len()).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn dot_stored_b<S: Lane4>(x: &[f64], v: &[S]) -> f64 {
    let n = x.len().min(v.len());
    let xp = x.as_ptr();
    let vp = v.as_ptr();
    let mut total = 0.0f64;
    let mut start = 0;
    while start < n {
        let end = (start + CASCADE_BLOCK).min(n);
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = start;
        while i + 8 <= end {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), S::ld4(vp.add(i)), acc0);
            acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i + 4)), S::ld4(vp.add(i + 4)), acc1);
            i += 8;
        }
        while i + 4 <= end {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), S::ld4(vp.add(i)), acc0);
            i += 4;
        }
        let mut tail = 0.0f64;
        while i < end {
            tail += *xp.add(i) * (*vp.add(i)).to_f64();
            i += 1;
        }
        total += hsum_pd(_mm256_add_pd(acc0, acc1)) + tail;
        start = end;
    }
    total
}

/// World-A fused pair of dots: `(x1·y1, x2·y2)` in one index sweep.
// SAFETY: AVX2+FMA+F16C context; caller guarantees the four slices are
// at least x1.len() long (dispatch wrappers pass equal-length views).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn dot2_a<T: Lane8>(x1: &[T], y1: &[T], x2: &[T], y2: &[T]) -> (f64, f64) {
    let n = x1.len();
    let (p1, q1, p2, q2) = (x1.as_ptr(), y1.as_ptr(), x2.as_ptr(), y2.as_ptr());
    let mut t1 = 0.0f64;
    let mut t2 = 0.0f64;
    let mut start = 0;
    while start < n {
        let end = (start + CASCADE_BLOCK).min(n);
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut i = start;
        while i + 8 <= end {
            a1 = _mm256_fmadd_ps(T::ld8(p1.add(i)), T::ld8(q1.add(i)), a1);
            a2 = _mm256_fmadd_ps(T::ld8(p2.add(i)), T::ld8(q2.add(i)), a2);
            i += 8;
        }
        let mut s1 = 0.0f32;
        let mut s2 = 0.0f32;
        while i < end {
            s1 += (*p1.add(i)).to_f32() * (*q1.add(i)).to_f32();
            s2 += (*p2.add(i)).to_f32() * (*q2.add(i)).to_f32();
            i += 1;
        }
        t1 += f64::from(hsum_ps(a1) + s1);
        t2 += f64::from(hsum_ps(a2) + s2);
        start = end;
    }
    (t1, t2)
}

/// World-B fused pair of dots.
// SAFETY: same contract as dot2_a.
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn dot2_b(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64]) -> (f64, f64) {
    let n = x1.len();
    let (p1, q1, p2, q2) = (x1.as_ptr(), y1.as_ptr(), x2.as_ptr(), y2.as_ptr());
    let mut t1 = 0.0f64;
    let mut t2 = 0.0f64;
    let mut start = 0;
    while start < n {
        let end = (start + CASCADE_BLOCK).min(n);
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut i = start;
        while i + 4 <= end {
            a1 = _mm256_fmadd_pd(_mm256_loadu_pd(p1.add(i)), _mm256_loadu_pd(q1.add(i)), a1);
            a2 = _mm256_fmadd_pd(_mm256_loadu_pd(p2.add(i)), _mm256_loadu_pd(q2.add(i)), a2);
            i += 4;
        }
        let mut s1 = 0.0f64;
        let mut s2 = 0.0f64;
        while i < end {
            s1 += *p1.add(i) * *q1.add(i);
            s2 += *p2.add(i) * *q2.add(i);
            i += 1;
        }
        t1 += hsum_pd(a1) + s1;
        t2 += hsum_pd(a2) + s2;
        start = end;
    }
    (t1, t2)
}

// ---------------------------------------------------------------------------
// BLAS-1 elementwise kernels (bit-identical to scalar: separate mul and
// add, one conversion in, one rounding out).
// ---------------------------------------------------------------------------

/// World-A `y += a · v` with stored-precision `v`.
// SAFETY: AVX2+FMA+F16C context; accesses stop at v.len().min(y.len()).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn axpy_stored_a<S: Lane8, T: Lane8Dst>(a: f32, v: &[S], y: &mut [T]) {
    let n = v.len().min(y.len());
    let vp = v.as_ptr();
    let yp = y.as_mut_ptr();
    let va = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        // mul + add (not FMA): matches the scalar `from_scalar(v)*a + widen(y)`.
        let r = _mm256_add_ps(_mm256_mul_ps(S::ld8(vp.add(i)), va), T::ld8(yp.add(i)));
        T::st8(yp.add(i), r);
        i += 8;
    }
    while i < n {
        let r = (*vp.add(i)).to_f32() * a + (*yp.add(i)).to_f32();
        *yp.add(i) = T::from_f32(r);
        i += 1;
    }
}

/// World-B `y += a · v` with stored-precision `v`.
// SAFETY: AVX2+FMA+F16C context; accesses stop at v.len().min(y.len()).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn axpy_stored_b<S: Lane4>(a: f64, v: &[S], y: &mut [f64]) {
    let n = v.len().min(y.len());
    let vp = v.as_ptr();
    let yp = y.as_mut_ptr();
    let va = _mm256_set1_pd(a);
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_add_pd(_mm256_mul_pd(S::ld4(vp.add(i)), va), _mm256_loadu_pd(yp.add(i)));
        _mm256_storeu_pd(yp.add(i), r);
        i += 4;
    }
    while i < n {
        *yp.add(i) = (*vp.add(i)).to_f64() * a + *yp.add(i);
        i += 1;
    }
}

/// World-A fused `y += a·x` + `‖y_new‖²` (squares of the *stored*, rounded
/// values, like the scalar kernel; the updated `y` is bit-identical to
/// [`axpy_stored_a`]).
// SAFETY: AVX2+FMA+F16C context; accesses stop at x.len().min(y.len()).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn axpy_norm2_a<T: Lane8Dst>(a: f32, x: &[T], y: &mut [T]) -> f64 {
    let n = x.len().min(y.len());
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let va = _mm256_set1_ps(a);
    let mut total = 0.0f64;
    let mut start = 0;
    while start < n {
        let end = (start + CASCADE_BLOCK).min(n);
        let mut acc = _mm256_setzero_ps();
        let mut i = start;
        while i + 8 <= end {
            let r = _mm256_add_ps(_mm256_mul_ps(T::ld8(xp.add(i)), va), T::ld8(yp.add(i)));
            T::st8(yp.add(i), r);
            // Reload so the norm sees the narrowed (stored) values.
            let w = T::ld8(yp.add(i));
            acc = _mm256_fmadd_ps(w, w, acc);
            i += 8;
        }
        let mut tail = 0.0f32;
        while i < end {
            let r = (*xp.add(i)).to_f32() * a + (*yp.add(i)).to_f32();
            *yp.add(i) = T::from_f32(r);
            let w = (*yp.add(i)).to_f32();
            tail += w * w;
            i += 1;
        }
        total += f64::from(hsum_ps(acc) + tail);
        start = end;
    }
    total
}

/// World-B fused `y += a·x` + `‖y_new‖²`.
// SAFETY: AVX2+FMA+F16C context; accesses stop at x.len().min(y.len()).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn axpy_norm2_b(a: f64, x: &[f64], y: &mut [f64]) -> f64 {
    let n = x.len().min(y.len());
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let va = _mm256_set1_pd(a);
    let mut total = 0.0f64;
    let mut start = 0;
    while start < n {
        let end = (start + CASCADE_BLOCK).min(n);
        let mut acc = _mm256_setzero_pd();
        let mut i = start;
        while i + 4 <= end {
            let r = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), va), _mm256_loadu_pd(yp.add(i)));
            _mm256_storeu_pd(yp.add(i), r);
            acc = _mm256_fmadd_pd(r, r, acc);
            i += 4;
        }
        let mut tail = 0.0f64;
        while i < end {
            let r = *xp.add(i) * a + *yp.add(i);
            *yp.add(i) = r;
            tail += r * r;
            i += 1;
        }
        total += hsum_pd(acc) + tail;
        start = end;
    }
    total
}

/// World-A fused `w = a·x + b·y` + `‖w‖²` (vector output bit-identical to
/// scalar `waxpby`: two multiplies, one add, one rounding).
// SAFETY: AVX2+FMA+F16C context; accesses stop at the shortest of the
// three slices.
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn waxpby_norm2_a<T: Lane8Dst>(
    a: f32,
    x: &[T],
    b: f32,
    y: &[T],
    w: &mut [T],
) -> f64 {
    let n = x.len().min(y.len()).min(w.len());
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let wp = w.as_mut_ptr();
    let va = _mm256_set1_ps(a);
    let vb = _mm256_set1_ps(b);
    let mut total = 0.0f64;
    let mut start = 0;
    while start < n {
        let end = (start + CASCADE_BLOCK).min(n);
        let mut acc = _mm256_setzero_ps();
        let mut i = start;
        while i + 8 <= end {
            let r = _mm256_add_ps(
                _mm256_mul_ps(T::ld8(xp.add(i)), va),
                _mm256_mul_ps(T::ld8(yp.add(i)), vb),
            );
            T::st8(wp.add(i), r);
            let s = T::ld8(wp.add(i));
            acc = _mm256_fmadd_ps(s, s, acc);
            i += 8;
        }
        let mut tail = 0.0f32;
        while i < end {
            let r = (*xp.add(i)).to_f32() * a + (*yp.add(i)).to_f32() * b;
            *wp.add(i) = T::from_f32(r);
            let s = (*wp.add(i)).to_f32();
            tail += s * s;
            i += 1;
        }
        total += f64::from(hsum_ps(acc) + tail);
        start = end;
    }
    total
}

/// World-B fused `w = a·x + b·y` + `‖w‖²`.
// SAFETY: same contract as waxpby_norm2_a.
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn waxpby_norm2_b(a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]) -> f64 {
    let n = x.len().min(y.len()).min(w.len());
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let wp = w.as_mut_ptr();
    let va = _mm256_set1_pd(a);
    let vb = _mm256_set1_pd(b);
    let mut total = 0.0f64;
    let mut start = 0;
    while start < n {
        let end = (start + CASCADE_BLOCK).min(n);
        let mut acc = _mm256_setzero_pd();
        let mut i = start;
        while i + 4 <= end {
            let r = _mm256_add_pd(
                _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), va),
                _mm256_mul_pd(_mm256_loadu_pd(yp.add(i)), vb),
            );
            _mm256_storeu_pd(wp.add(i), r);
            acc = _mm256_fmadd_pd(r, r, acc);
            i += 4;
        }
        let mut tail = 0.0f64;
        while i < end {
            let r = *xp.add(i) * a + *yp.add(i) * b;
            *wp.add(i) = r;
            tail += r * r;
            i += 1;
        }
        total += hsum_pd(acc) + tail;
        start = end;
    }
    total
}

/// World-A scaled copy `dst[i] = narrow(to_f32(src[i]) · c)`, the shared
/// core of `scale`/`scale_into`, compress-on-write and decompress.  Raw
/// pointers so `src == dst` aliasing (in-place scale) is allowed: each block
/// is fully read before it is written.
// SAFETY: AVX2+FMA+F16C context; caller guarantees `n` elements readable
// at `src` and writable at `dst` (exact aliasing allowed, see doc).
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn scale_a<S: Lane8, D: Lane8Dst>(c: f32, src: *const S, dst: *mut D, n: usize) {
    let vc = _mm256_set1_ps(c);
    let mut i = 0;
    while i + 8 <= n {
        D::st8(dst.add(i), _mm256_mul_ps(S::ld8(src.add(i)), vc));
        i += 8;
    }
    while i < n {
        let r = (*src.add(i)).to_f32() * c;
        *dst.add(i) = D::from_f32(r);
        i += 1;
    }
}

/// World-B scaled copy `dst[i] = narrow(to_f64(src[i]) · c)`; same aliasing
/// contract as [`scale_a`].
// SAFETY: same contract as scale_a.
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn scale_b<S: Lane4, D: Lane4Dst>(c: f64, src: *const S, dst: *mut D, n: usize) {
    let vc = _mm256_set1_pd(c);
    let mut i = 0;
    while i + 4 <= n {
        D::st4(dst.add(i), _mm256_mul_pd(S::ld4(src.add(i)), vc));
        i += 4;
    }
    while i < n {
        let r = (*src.add(i)).to_f64() * c;
        *dst.add(i) = D::from_f64(r);
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// norm_inf: exact max of absolutes with the scalar kernel's NaN-dropping
// `>` semantics (a NaN lane never replaces the running max).
// ---------------------------------------------------------------------------

/// World-A `max |xᵢ|` (exact; NaNs dropped like the scalar `>` fold).
// SAFETY: AVX2+FMA+F16C context; loads stop at x.len().
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn norm_inf_a<T: Lane8>(x: &[T]) -> f32 {
    let n = x.len();
    let xp = x.as_ptr();
    let sign = _mm256_set1_ps(-0.0);
    let mut m = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_andnot_ps(sign, T::ld8(xp.add(i)));
        // v > m (ordered, quiet): false for NaN lanes, so blend keeps m —
        // exactly the scalar `if v > m { v } else { m }`.
        m = _mm256_blendv_ps(m, v, _mm256_cmp_ps::<_CMP_GT_OQ>(v, m));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), m);
    let mut best = 0.0f32;
    for v in lanes {
        if v > best {
            best = v;
        }
    }
    while i < n {
        let v = (*xp.add(i)).to_f32().abs();
        if v > best {
            best = v;
        }
        i += 1;
    }
    best
}

/// World-B `max |xᵢ|`.
// SAFETY: AVX2+FMA+F16C context; loads stop at x.len().
#[target_feature(enable = "avx2,fma,f16c")]
pub(crate) unsafe fn norm_inf_b(x: &[f64]) -> f64 {
    let n = x.len();
    let xp = x.as_ptr();
    let sign = _mm256_set1_pd(-0.0);
    let mut m = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let v = _mm256_andnot_pd(sign, _mm256_loadu_pd(xp.add(i)));
        m = _mm256_blendv_pd(m, v, _mm256_cmp_pd::<_CMP_GT_OQ>(v, m));
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), m);
    let mut best = 0.0f64;
    for v in lanes {
        if v > best {
            best = v;
        }
    }
    while i < n {
        let v = (*xp.add(i)).abs();
        if v > best {
            best = v;
        }
        i += 1;
    }
    best
}
