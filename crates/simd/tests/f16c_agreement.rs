//! Softfloat ↔ F16C conversion agreement.
//!
//! The SIMD kernel backend is only allowed to be bit-identical to the scalar
//! kernels because the hardware f16 converters agree with the vendored
//! software conversions.  This test proves that agreement on this machine:
//! every one of the 65536 f16 bit patterns widens (`vcvtph2ps`) to exactly
//! the bits `f16::to_f32` produces, and a dense sample of the f32 space
//! narrows (`vcvtps2ph`, round-to-nearest-even) to exactly the bits
//! `f16::from_f32` produces (NaNs excepted: both sides produce *a* quiet
//! NaN, but the hardware preserves truncated payloads while the software
//! canonicalises to `0x7E00`).
//!
//! Skipped (trivially passing) on machines without F16C.

#![cfg(target_arch = "x86_64")]

use half::f16;

// SAFETY: callers must have verified F16C via is_x86_feature_detected!.
#[target_feature(enable = "f16c")]
unsafe fn widen1_hw(h: u16) -> f32 {
    use core::arch::x86_64::*;
    let v = _mm_cvtph_ps(_mm_set1_epi16(h as i16));
    _mm_cvtss_f32(v)
}

// SAFETY: callers must have verified F16C via is_x86_feature_detected!.
#[target_feature(enable = "f16c")]
unsafe fn narrow1_hw(v: f32) -> u16 {
    use core::arch::x86_64::*;
    let h = _mm_cvtps_ph::<{ core::arch::x86_64::_MM_FROUND_TO_NEAREST_INT }>(_mm_set1_ps(v));
    (_mm_cvtsi128_si32(h) & 0xFFFF) as u16
}

#[test]
fn widen_matches_f16c_on_all_65536_bit_patterns() {
    if !is_x86_feature_detected!("f16c") {
        eprintln!("skipping: CPU has no F16C");
        return;
    }
    for bits in 0..=0xFFFFu16 {
        let soft = f16::from_bits(bits).to_f32();
        // SAFETY: guarded by the is_x86_feature_detected! check above.
        let hard = unsafe { widen1_hw(bits) };
        assert_eq!(
            soft.to_bits(),
            hard.to_bits(),
            "widen disagreement at f16 bits {bits:#06x}: soft {:#010x} vs f16c {:#010x}",
            soft.to_bits(),
            hard.to_bits()
        );
    }
}

#[test]
fn narrow_matches_f16c_round_to_nearest_even_across_f32_sweep() {
    if !is_x86_feature_detected!("f16c") {
        eprintln!("skipping: CPU has no F16C");
        return;
    }
    // Prime stride covering every exponent and many mantissa/rounding
    // patterns, plus the neighbourhood of every finite f16 value (the
    // round-to-nearest-even boundaries).
    let mut bits = 0u32;
    loop {
        check_narrow(f32::from_bits(bits));
        let (next, overflow) = bits.overflowing_add(0x0001_0007);
        if overflow {
            break;
        }
        bits = next;
    }
    for h in 0..=0xFFFFu16 {
        let f = f16::from_bits(h);
        if !f.is_finite() {
            continue;
        }
        let fb = f.to_f32().to_bits();
        for delta in -3i32..=3 {
            check_narrow(f32::from_bits(fb.wrapping_add(delta as u32)));
        }
    }
}

fn check_narrow(v: f32) {
    let soft = f16::from_f32(v);
    // SAFETY: callers run only after the is_x86_feature_detected! guard.
    let hard = f16::from_bits(unsafe { narrow1_hw(v) });
    if v.is_nan() {
        assert!(soft.is_nan() && hard.is_nan(), "NaN for {:#010x}", v.to_bits());
    } else {
        assert_eq!(
            soft.to_bits(),
            hard.to_bits(),
            "narrow disagreement at f32 bits {:#010x} ({v:e})",
            v.to_bits()
        );
    }
}
