//! Dense vector (BLAS-1) kernels, generic over the working precision, built
//! on direct widening.
//!
//! Reductions (dot products, norms) accumulate in [`Scalar::Accum`] — fp32
//! for fp16 vectors, matching how the paper treats reduction kernels (they
//! are kept out of pure fp16; the innermost Richardson solver avoids them
//! entirely, and the fp32 FGMRES levels accumulate in fp32).  Element-wise
//! updates (axpy and friends) widen both operands with a single conversion,
//! combine them in the accumulation precision and round back once per
//! element with [`Scalar::narrow`] — there is no per-element `f64` round
//! trip and no scalar `mul_add` anywhere on the hot paths (see
//! [`crate::reference`] for the historical kernels kept as correctness and
//! performance baselines).
//!
//! Reductions run eight independent accumulator chains so LLVM can
//! vectorise; chunked parallel variants combine per-chunk partial sums in
//! `f64`.  Fused kernels ([`dot2`], [`dot_with_sqnorm`], [`axpy_norm2`],
//! [`scale_into`]) cover the two-reductions-one-pass and update-plus-norm
//! patterns of the CG / BiCGStab / FGMRES / Richardson iteration loops.
//!
//! Each kernel has a sequential and a thread-parallel variant plus a
//! size-dispatching wrapper, mirroring the SpMV module.  Parallel variants
//! dispatch chunk tasks to the persistent `f3r-parallel` worker pool; the
//! dispatch threshold is the shared
//! [`f3r_parallel::thresholds::PAR_LEN_THRESHOLD`].

use f3r_precision::Scalar;

/// Vector length at or above which the dispatching wrappers go parallel
/// (re-exported from the shared threshold table in `f3r-parallel`).
pub use f3r_parallel::thresholds::PAR_LEN_THRESHOLD;

/// Minimum elements per pool task.  A 2^14-element chunk streams 64–256 KiB
/// depending on precision — several microseconds of memory traffic against
/// the pool's ~1 µs dispatch cost, and small enough that vectors just above
/// [`PAR_LEN_THRESHOLD`] still split across workers.
const MIN_LEN_PER_TASK: usize = 1 << 14;

/// Elements accumulated in `T::Accum` before the partial sum is folded into
/// `f64`.  This bounds every accumulation-precision chain at
/// `CASCADE_BLOCK / 8` additions regardless of vector length or the
/// parallel chunking, so fp32 accumulation stays accurate for arbitrarily
/// long vectors (the same cascade length the pre-widening kernels used).
const CASCADE_BLOCK: usize = 4096;

/// Drive `f` over consecutive `[start, end)` cascade blocks of `0..len`.
///
/// Shared skeleton of every blocked reduction below: each invocation of `f`
/// accumulates one block in `T::Accum` and folds its partial sum(s) into
/// `f64` state captured by the closure, so changes to the cascade scheme
/// happen in one place.
#[inline]
fn for_cascade_blocks(len: usize, mut f: impl FnMut(usize, usize)) {
    let mut start = 0;
    while start < len {
        let end = (start + CASCADE_BLOCK).min(len);
        f(start, end);
        start = end;
    }
}

/// Unrolled dot kernel over one contiguous chunk, returned in `f64`.
#[inline]
fn dot_chunk<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    let mut total = 0.0f64;
    for_cascade_blocks(x.len(), |start, end| {
        let (xb, yb) = (&x[start..end], &y[start..end]);
        let mut acc = [<T::Accum as Scalar>::zero(); 8];
        let mut x8 = xb.chunks_exact(8);
        let mut y8 = yb.chunks_exact(8);
        for (xc, yc) in (&mut x8).zip(&mut y8) {
            for k in 0..8 {
                acc[k] += xc[k].widen() * yc[k].widen();
            }
        }
        let mut tail = <T::Accum as Scalar>::zero();
        for (&a, &b) in x8.remainder().iter().zip(y8.remainder().iter()) {
            tail += a.widen() * b.widen();
        }
        let p0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        let p1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
        total += ((p0 + p1) + tail).to_f64();
    });
    total
}

/// Forced-sequential dot product `xᵀ y` (no pool dispatch regardless of
/// length) — the single-core baseline the dispatch benchmarks compare
/// against; solvers use the size-dispatching [`dot`].
#[must_use]
pub fn dot_seq<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    dot_chunk(x, y)
}

/// Dot product `xᵀ y`, accumulated in `T::Accum` and returned as `f64`.
#[must_use]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(x.len(), MIN_LEN_PER_TASK, |r| {
            dot_chunk(&x[r.clone()], &y[r])
        })
        .into_iter()
        .sum()
    } else {
        dot_chunk(x, y)
    }
}

/// Two dot products in one pass: returns `(x1ᵀ y1, x2ᵀ y2)`.
///
/// All four vectors must have the same length; the fused sweep halves the
/// loop overhead of the paired reductions that CG-style methods issue
/// back-to-back (e.g. `(r, z)` and `(p, A p)`).
#[must_use]
pub fn dot2<T: Scalar>(x1: &[T], y1: &[T], x2: &[T], y2: &[T]) -> (f64, f64) {
    assert_eq!(x1.len(), y1.len(), "dot2: length mismatch");
    assert_eq!(x1.len(), x2.len(), "dot2: length mismatch");
    assert_eq!(x2.len(), y2.len(), "dot2: length mismatch");
    let body = |x1: &[T], y1: &[T], x2: &[T], y2: &[T]| -> (f64, f64) {
        let mut t1 = 0.0f64;
        let mut t2 = 0.0f64;
        for_cascade_blocks(x1.len(), |start, end| {
            let mut a = [<T::Accum as Scalar>::zero(); 4];
            let mut b = [<T::Accum as Scalar>::zero(); 4];
            let n4 = start + ((end - start) & !3);
            let mut i = start;
            while i < n4 {
                for k in 0..4 {
                    a[k] += x1[i + k].widen() * y1[i + k].widen();
                    b[k] += x2[i + k].widen() * y2[i + k].widen();
                }
                i += 4;
            }
            let mut ta = <T::Accum as Scalar>::zero();
            let mut tb = <T::Accum as Scalar>::zero();
            for j in n4..end {
                ta += x1[j].widen() * y1[j].widen();
                tb += x2[j].widen() * y2[j].widen();
            }
            t1 += (((a[0] + a[1]) + (a[2] + a[3])) + ta).to_f64();
            t2 += (((b[0] + b[1]) + (b[2] + b[3])) + tb).to_f64();
        });
        (t1, t2)
    };
    if x1.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(x1.len(), MIN_LEN_PER_TASK, |r| {
            body(&x1[r.clone()], &y1[r.clone()], &x2[r.clone()], &y2[r])
        })
        .into_iter()
        .fold((0.0, 0.0), |(s0, s1), (p0, p1)| (s0 + p0, s1 + p1))
    } else {
        body(x1, y1, x2, y2)
    }
}

/// Fused `(xᵀ y, xᵀ x)` in one pass over `x` (reads `x` once instead of
/// twice).  This is the BiCGStab `ω = (t, s)/(t, t)` and Richardson
/// `ω′ = (r, AMr)/(AMr, AMr)` reduction shape.
#[must_use]
pub fn dot_with_sqnorm<T: Scalar>(x: &[T], y: &[T]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "dot_with_sqnorm: length mismatch");
    let body = |x: &[T], y: &[T]| -> (f64, f64) {
        let mut t1 = 0.0f64;
        let mut t2 = 0.0f64;
        for_cascade_blocks(x.len(), |start, end| {
            let mut a = [<T::Accum as Scalar>::zero(); 4];
            let mut b = [<T::Accum as Scalar>::zero(); 4];
            let n4 = start + ((end - start) & !3);
            let mut i = start;
            while i < n4 {
                for k in 0..4 {
                    let xv = x[i + k].widen();
                    a[k] += xv * y[i + k].widen();
                    b[k] += xv * xv;
                }
                i += 4;
            }
            let mut ta = <T::Accum as Scalar>::zero();
            let mut tb = <T::Accum as Scalar>::zero();
            for j in n4..end {
                let xv = x[j].widen();
                ta += xv * y[j].widen();
                tb += xv * xv;
            }
            t1 += (((a[0] + a[1]) + (a[2] + a[3])) + ta).to_f64();
            t2 += (((b[0] + b[1]) + (b[2] + b[3])) + tb).to_f64();
        });
        (t1, t2)
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(x.len(), MIN_LEN_PER_TASK, |r| {
            body(&x[r.clone()], &y[r])
        })
        .into_iter()
        .fold((0.0, 0.0), |(s0, s1), (p0, p1)| (s0 + p0, s1 + p1))
    } else {
        body(x, y)
    }
}

/// Euclidean norm `‖x‖₂`, accumulated in `T::Accum`.
#[must_use]
pub fn norm2<T: Scalar>(x: &[T]) -> f64 {
    dot(x, x).sqrt()
}

/// One contiguous chunk of an axpy update (`chunk ← chunk + a * xs`).
#[inline]
fn axpy_chunk<T: Scalar>(a: T::Accum, xs: &[T], chunk: &mut [T]) {
    for (yi, &xi) in chunk.iter_mut().zip(xs.iter()) {
        *yi = T::narrow(xi.widen() * a + yi.widen());
    }
}

/// Forced-sequential `y ← y + alpha * x` (no pool dispatch regardless of
/// length) — the single-core baseline the dispatch benchmarks compare
/// against; solvers use the size-dispatching [`axpy`].
pub fn axpy_seq<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    axpy_chunk(<T::Accum as Scalar>::from_f64(alpha), x, y);
}

/// `y ← y + alpha * x`.
pub fn axpy<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(y, MIN_LEN_PER_TASK, |base, chunk| {
            axpy_chunk(a, &x[base..base + chunk.len()], chunk);
        });
    } else {
        axpy_chunk(a, x, y);
    }
}

/// Fused `y ← y + alpha * x` returning `‖y_new‖²` (as `f64`) from the same
/// sweep — the CG/BiCGStab "update the residual, then take its norm"
/// pattern without the second pass.
#[must_use]
pub fn axpy_norm2<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_norm2: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let body = |base: usize, chunk: &mut [T]| -> f64 {
        let xs = &x[base..base + chunk.len()];
        let mut total = 0.0f64;
        for_cascade_blocks(chunk.len(), |start, end| {
            let mut s0 = <T::Accum as Scalar>::zero();
            let mut s1 = <T::Accum as Scalar>::zero();
            let n2 = start + ((end - start) & !1);
            let mut i = start;
            while i < n2 {
                let v0 = T::narrow(xs[i].widen() * a + chunk[i].widen());
                let v1 = T::narrow(xs[i + 1].widen() * a + chunk[i + 1].widen());
                chunk[i] = v0;
                chunk[i + 1] = v1;
                // accumulate on the stored (rounded) values so the result
                // equals norm2 of the updated vector exactly
                let w0 = v0.widen();
                let w1 = v1.widen();
                s0 += w0 * w0;
                s1 += w1 * w1;
                i += 2;
            }
            if i < end {
                let v = T::narrow(xs[i].widen() * a + chunk[i].widen());
                chunk[i] = v;
                let w = v.widen();
                s0 += w * w;
            }
            total += (s0 + s1).to_f64();
        });
        total
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_chunks_mut(y, MIN_LEN_PER_TASK, body)
            .into_iter()
            .sum()
    } else {
        body(0, y)
    }
}

/// Fused `w ← alpha * x + beta * y` returning `‖w‖²` (as `f64`) from the
/// same sweep — BiCGStab's `s = r − α v` plus the early-exit norm check in
/// three memory sweeps (read `x`, read `y`, write `w`).
#[must_use]
pub fn waxpby_norm2<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &[T], w: &mut [T]) -> f64 {
    assert_eq!(x.len(), y.len(), "waxpby_norm2: length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby_norm2: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let b = <T::Accum as Scalar>::from_f64(beta);
    let body = |base: usize, chunk: &mut [T]| -> f64 {
        let xs = &x[base..base + chunk.len()];
        let ys = &y[base..base + chunk.len()];
        let mut total = 0.0f64;
        for_cascade_blocks(chunk.len(), |start, end| {
            let mut s = <T::Accum as Scalar>::zero();
            for i in start..end {
                let v = T::narrow(xs[i].widen() * a + ys[i].widen() * b);
                chunk[i] = v;
                let wv = v.widen();
                s += wv * wv;
            }
            total += s.to_f64();
        });
        total
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_chunks_mut(w, MIN_LEN_PER_TASK, body)
            .into_iter()
            .sum()
    } else {
        body(0, w)
    }
}

/// `y ← alpha * x + beta * y`.
pub fn axpby<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let b = <T::Accum as Scalar>::from_f64(beta);
    let body = |base: usize, chunk: &mut [T]| {
        let xs = &x[base..base + chunk.len()];
        for (yi, &xi) in chunk.iter_mut().zip(xs.iter()) {
            *yi = T::narrow(xi.widen() * a + yi.widen() * b);
        }
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(y, MIN_LEN_PER_TASK, body);
    } else {
        body(0, y);
    }
}

/// `w ← alpha * x + beta * y` (three-operand form used by CG/BiCGStab).
pub fn waxpby<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &[T], w: &mut [T]) {
    assert_eq!(x.len(), y.len(), "waxpby: length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let b = <T::Accum as Scalar>::from_f64(beta);
    let body = |base: usize, chunk: &mut [T]| {
        let xs = &x[base..base + chunk.len()];
        let ys = &y[base..base + chunk.len()];
        for i in 0..chunk.len() {
            chunk[i] = T::narrow(xs[i].widen() * a + ys[i].widen() * b);
        }
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(w, MIN_LEN_PER_TASK, body);
    } else {
        body(0, w);
    }
}

/// `x ← alpha * x`.
pub fn scale<T: Scalar>(alpha: f64, x: &mut [T]) {
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let body = |_base: usize, chunk: &mut [T]| {
        for xi in chunk.iter_mut() {
            *xi = T::narrow(xi.widen() * a);
        }
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(x, MIN_LEN_PER_TASK, body);
    } else {
        body(0, x);
    }
}

/// Fused `dst ← alpha * src` (the FGMRES "normalise the new basis vector"
/// copy + scale collapsed into one sweep).
pub fn scale_into<T: Scalar>(alpha: f64, src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len(), "scale_into: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let body = |base: usize, chunk: &mut [T]| {
        let xs = &src[base..base + chunk.len()];
        for (di, &si) in chunk.iter_mut().zip(xs.iter()) {
            *di = T::narrow(si.widen() * a);
        }
    };
    if src.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(dst, MIN_LEN_PER_TASK, body);
    } else {
        body(0, dst);
    }
}

/// Set every element of `x` to zero.
pub fn set_zero<T: Scalar>(x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi = T::zero();
    }
}

/// Element-wise product `z ← x ⊙ y` (used by diagonal preconditioning).
pub fn hadamard<T: Scalar>(x: &[T], y: &[T], z: &mut [T]) {
    assert_eq!(x.len(), y.len(), "hadamard: length mismatch");
    assert_eq!(x.len(), z.len(), "hadamard: length mismatch");
    for i in 0..x.len() {
        z[i] = T::narrow(x[i].widen() * y[i].widen());
    }
}

/// Maximum absolute entry `‖x‖_∞`.
#[must_use]
pub fn norm_inf<T: Scalar>(x: &[T]) -> f64 {
    x.iter()
        .map(|v| v.widen().abs())
        .fold(<T::Accum as Scalar>::zero(), |m, v| if v > m { v } else { m })
        .to_f64()
}

/// Sum of the entries, accumulated in `f64`.
#[must_use]
pub fn sum<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.to_f64()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use half::f16;

    #[test]
    fn dot_and_norm_small() {
        let x = vec![1.0f64, 2.0, 3.0];
        let y = vec![4.0f64, -5.0, 6.0];
        assert!((dot(&x, &y) - 12.0).abs() < 1e-14);
        assert!((norm2(&x) - 14.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn dot_parallel_matches_serial() {
        let n = PAR_LEN_THRESHOLD + 1234;
        let x: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) * 1e-3).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 89) as f64) * 1e-3).collect();
        let serial = dot_chunk(&x, &y);
        let par = dot(&x, &y);
        assert!((serial - par).abs() < 1e-9 * serial.abs());
    }

    #[test]
    fn fp16_dot_accumulates_in_fp32() {
        // 4096 ones: a pure fp16 accumulation would saturate at 2048
        // (adding 1 to 2048 in fp16 is a no-op); fp32 accumulation is exact.
        let x = vec![f16::from_f32(1.0); 4096];
        assert_eq!(dot(&x, &x), 4096.0);
    }

    #[test]
    fn fused_dot2_matches_two_dots() {
        let n = 1001;
        let x1: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) / 17.0).collect();
        let y1: Vec<f32> = (0..n).map(|i| ((i % 13) as f32 - 6.0) / 13.0).collect();
        let x2: Vec<f32> = (0..n).map(|i| ((i % 11) as f32 - 5.0) / 11.0).collect();
        let y2: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) / 7.0).collect();
        // dot and dot2 unroll differently (8 vs 4 chains), so f32
        // accumulation may differ by a few ulps of the absolute sum.
        let tol = 4.0 * n as f64 * f64::from(f32::EPSILON);
        let (d1, d2) = dot2(&x1, &y1, &x2, &y2);
        assert!((d1 - dot(&x1, &y1)).abs() < tol);
        assert!((d2 - dot(&x2, &y2)).abs() < tol);
    }

    #[test]
    fn fused_dot_with_sqnorm_matches_two_dots() {
        let n = 777;
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 101) as f64 / 101.0 - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 17) % 97) as f64 / 97.0 - 0.5).collect();
        let (xy, xx) = dot_with_sqnorm(&x, &y);
        assert!((xy - dot(&x, &y)).abs() < 1e-12);
        assert!((xx - dot(&x, &x)).abs() < 1e-12);
    }

    #[test]
    fn fused_axpy_norm2_matches_separate_ops() {
        for n in [5usize, 64, 1003] {
            let x: Vec<f32> = (0..n).map(|i| ((i % 23) as f32 - 11.0) / 23.0).collect();
            let mut y1: Vec<f32> = (0..n).map(|i| ((i % 19) as f32 - 9.0) / 19.0).collect();
            let mut y2 = y1.clone();
            axpy(0.37, &x, &mut y1);
            let nn = axpy_norm2(0.37, &x, &mut y2);
            assert_eq!(y1, y2, "n={n}");
            assert!((nn.sqrt() - norm2(&y1)).abs() < 1e-6, "n={n}");
        }
    }

    #[test]
    fn fused_waxpby_norm2_matches_separate_ops() {
        for n in [3usize, 64, 4097, 9001] {
            let x: Vec<f32> = (0..n).map(|i| ((i % 23) as f32 - 11.0) / 23.0).collect();
            let y: Vec<f32> = (0..n).map(|i| ((i % 19) as f32 - 9.0) / 19.0).collect();
            let mut w1 = vec![0.0f32; n];
            let mut w2 = vec![0.0f32; n];
            waxpby(1.0, &x, -0.75, &y, &mut w1);
            let nn = waxpby_norm2(1.0, &x, -0.75, &y, &mut w2);
            assert_eq!(w1, w2, "n={n}");
            assert!((nn.sqrt() - norm2(&w1)).abs() < 1e-5 * (1.0 + norm2(&w1)), "n={n}");
        }
    }

    #[test]
    fn long_fp32_dot_stays_accurate_via_f64_cascade() {
        // 2^20 identical entries: a single f32 accumulation chain would lose
        // ~2^-4 relative accuracy; the 4096-element f64 cascade keeps the
        // result within a few f32 ulps of exact.
        let n = 1 << 20;
        let x = vec![1.000_001f32; n];
        let exact = f64::from(x[0]) * f64::from(x[0]) * n as f64;
        let got = dot(&x, &x);
        assert!(
            (got - exact).abs() < 1e-4 * exact,
            "{got} vs {exact} (rel {})",
            ((got - exact) / exact).abs()
        );
    }

    #[test]
    fn scale_into_matches_copy_then_scale() {
        let src = vec![1.0f64, -2.0, 3.5, 0.25];
        let mut dst = vec![0.0f64; 4];
        scale_into(-2.0, &src, &mut dst);
        assert_eq!(dst, vec![-2.0, 4.0, -7.0, -0.5]);
    }

    #[test]
    fn axpy_variants() {
        let x = vec![1.0f32, 2.0, 3.0];
        let mut y = vec![10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);

        let mut y2 = vec![10.0f32, 20.0, 30.0];
        axpby(2.0, &x, 0.5, &mut y2);
        assert_eq!(y2, vec![7.0, 14.0, 21.0]);

        let mut w = vec![0.0f32; 3];
        waxpby(1.0, &x, -1.0, &y, &mut w);
        assert_eq!(w, vec![-11.0, -22.0, -33.0]);
    }

    #[test]
    fn fp16_axpy_widens_through_fp32() {
        // alpha below fp16 resolution relative to y must still contribute
        // through the fp32 arithmetic before the final rounding.
        let x = vec![f16::from_f32(1.0); 4];
        let mut y = vec![f16::from_f32(1.0); 4];
        axpy(f64::from(f16::EPSILON) * 0.75, &x, &mut y);
        // 1 + 0.75*eps rounds to 1 + eps in round-to-nearest? No: halfway is
        // 0.5*eps, 0.75 eps is above it, so it rounds up.
        assert!(y.iter().all(|&v| v.to_f32() > 1.0));
    }

    #[test]
    fn scale_zero_hadamard() {
        let mut x = vec![1.0f64, -2.0, 3.0];
        scale(3.0, &mut x);
        assert_eq!(x, vec![3.0, -6.0, 9.0]);
        let y = vec![2.0f64, 0.5, 1.0];
        let mut z = vec![0.0f64; 3];
        hadamard(&x, &y, &mut z);
        assert_eq!(z, vec![6.0, -3.0, 9.0]);
        set_zero(&mut x);
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    fn inf_norm_and_sum() {
        let x = vec![1.0f64, -5.0, 3.0];
        assert_eq!(norm_inf(&x), 5.0);
        assert_eq!(sum(&x), -1.0);
        assert_eq!(norm_inf::<f64>(&[]), 0.0);
    }

    #[test]
    fn large_parallel_axpy_matches_serial() {
        let n = PAR_LEN_THRESHOLD + 717;
        let x: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
        let mut y1: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let mut y2 = y1.clone();
        // force serial by updating manually
        for (yi, &xi) in y1.iter_mut().zip(x.iter()) {
            *yi += xi * 0.25;
        }
        axpy(0.25, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_dot_panics() {
        let _ = dot(&[1.0f64, 2.0], &[1.0f64]);
    }
}
