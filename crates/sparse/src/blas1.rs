//! Dense vector (BLAS-1) kernels, generic over the working precision, built
//! on direct widening.
//!
//! Reductions (dot products, norms) accumulate in [`Scalar::Accum`] — fp32
//! for fp16 vectors, matching how the paper treats reduction kernels (they
//! are kept out of pure fp16; the innermost Richardson solver avoids them
//! entirely, and the fp32 FGMRES levels accumulate in fp32).  Element-wise
//! updates (axpy and friends) widen both operands with a single conversion,
//! combine them in the accumulation precision and round back once per
//! element with [`Scalar::narrow`] — there is no per-element `f64` round
//! trip and no scalar `mul_add` anywhere on the hot paths (see
//! [`crate::reference`] for the historical kernels kept as correctness and
//! performance baselines).
//!
//! Reductions run eight independent accumulator chains so LLVM can
//! vectorise; chunked parallel variants combine per-chunk partial sums in
//! `f64`.  Fused kernels ([`dot2`], [`dot_with_sqnorm`], [`axpy_norm2`],
//! [`scale_into`]) cover the two-reductions-one-pass and update-plus-norm
//! patterns of the CG / BiCGStab / FGMRES / Richardson iteration loops.
//!
//! Each kernel has a sequential and a thread-parallel variant plus a
//! size-dispatching wrapper, mirroring the SpMV module.  Parallel variants
//! dispatch chunk tasks to the persistent `f3r-parallel` worker pool; the
//! dispatch threshold is the shared
//! [`f3r_parallel::thresholds::PAR_LEN_THRESHOLD`].
//!
//! # SIMD backend
//!
//! The hot kernels first offer their chunk to the runtime-dispatched
//! `f3r-simd` backend (`try_*` entry points) and fall into their scalar
//! loops when it declines — scalar backend forced, unsupported type
//! combination, or a non-x86-64 build.  Element-wise kernels are
//! bit-identical across backends; reductions agree within the documented
//! cascade bounds (see the `f3r_simd` crate docs for the exact contract).
//! The interception sits *inside* the per-chunk bodies, so the sequential
//! and pool-parallel variants of a kernel always run the same backend on
//! identical chunk geometry.

use f3r_precision::{FromScalar, Scalar};

/// Vector length at or above which the dispatching wrappers go parallel
/// (re-exported from the shared threshold table in `f3r-parallel`).
pub use f3r_parallel::thresholds::PAR_LEN_THRESHOLD;

use f3r_parallel::thresholds::MIN_LEN_PER_TASK;

/// Elements accumulated in `T::Accum` before the partial sum is folded into
/// `f64`.  This bounds every accumulation-precision chain at
/// `CASCADE_BLOCK / 8` additions regardless of vector length or the
/// parallel chunking, so fp32 accumulation stays accurate for arbitrarily
/// long vectors (the same cascade length the pre-widening kernels used).
const CASCADE_BLOCK: usize = 4096;

/// Drive `f` over consecutive `[start, end)` cascade blocks of `0..len`.
///
/// Shared skeleton of every blocked reduction below: each invocation of `f`
/// accumulates one block in `T::Accum` and folds its partial sum(s) into
/// `f64` state captured by the closure, so changes to the cascade scheme
/// happen in one place.
#[inline]
fn for_cascade_blocks(len: usize, mut f: impl FnMut(usize, usize)) {
    let mut start = 0;
    while start < len {
        let end = (start + CASCADE_BLOCK).min(len);
        f(start, end);
        start = end;
    }
}

/// Unrolled dot kernel over one contiguous chunk, returned in `f64`.
#[inline]
fn dot_chunk<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    if let Some(d) = f3r_simd::try_dot(x, y) {
        return d;
    }
    let mut total = 0.0f64;
    for_cascade_blocks(x.len(), |start, end| {
        let (xb, yb) = (&x[start..end], &y[start..end]);
        let mut acc = [<T::Accum as Scalar>::zero(); 8];
        let mut x8 = xb.chunks_exact(8);
        let mut y8 = yb.chunks_exact(8);
        for (xc, yc) in (&mut x8).zip(&mut y8) {
            for k in 0..8 {
                acc[k] += xc[k].widen() * yc[k].widen();
            }
        }
        let mut tail = <T::Accum as Scalar>::zero();
        for (&a, &b) in x8.remainder().iter().zip(y8.remainder().iter()) {
            tail += a.widen() * b.widen();
        }
        let p0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        let p1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
        total += ((p0 + p1) + tail).to_f64();
    });
    total
}

/// Forced-sequential dot product `xᵀ y` (no pool dispatch regardless of
/// length) — the single-core baseline the dispatch benchmarks compare
/// against; solvers use the size-dispatching [`dot`].
#[must_use]
pub fn dot_seq<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    dot_chunk(x, y)
}

/// Dot product `xᵀ y`, accumulated in `T::Accum` and returned as `f64`.
#[must_use]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(x.len(), MIN_LEN_PER_TASK, |r| {
            dot_chunk(&x[r.clone()], &y[r])
        })
        .into_iter()
        .sum()
    } else {
        dot_chunk(x, y)
    }
}

/// Two dot products in one pass: returns `(x1ᵀ y1, x2ᵀ y2)`.
///
/// All four vectors must have the same length; the fused sweep halves the
/// loop overhead of the paired reductions that CG-style methods issue
/// back-to-back (e.g. `(r, z)` and `(p, A p)`).
#[must_use]
pub fn dot2<T: Scalar>(x1: &[T], y1: &[T], x2: &[T], y2: &[T]) -> (f64, f64) {
    assert_eq!(x1.len(), y1.len(), "dot2: length mismatch");
    assert_eq!(x1.len(), x2.len(), "dot2: length mismatch");
    assert_eq!(x2.len(), y2.len(), "dot2: length mismatch");
    let body = |x1: &[T], y1: &[T], x2: &[T], y2: &[T]| -> (f64, f64) {
        if let Some(d) = f3r_simd::try_dot2(x1, y1, x2, y2) {
            return d;
        }
        let mut t1 = 0.0f64;
        let mut t2 = 0.0f64;
        for_cascade_blocks(x1.len(), |start, end| {
            let mut a = [<T::Accum as Scalar>::zero(); 4];
            let mut b = [<T::Accum as Scalar>::zero(); 4];
            let n4 = start + ((end - start) & !3);
            let mut i = start;
            while i < n4 {
                for k in 0..4 {
                    a[k] += x1[i + k].widen() * y1[i + k].widen();
                    b[k] += x2[i + k].widen() * y2[i + k].widen();
                }
                i += 4;
            }
            let mut ta = <T::Accum as Scalar>::zero();
            let mut tb = <T::Accum as Scalar>::zero();
            for j in n4..end {
                ta += x1[j].widen() * y1[j].widen();
                tb += x2[j].widen() * y2[j].widen();
            }
            t1 += (((a[0] + a[1]) + (a[2] + a[3])) + ta).to_f64();
            t2 += (((b[0] + b[1]) + (b[2] + b[3])) + tb).to_f64();
        });
        (t1, t2)
    };
    if x1.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(x1.len(), MIN_LEN_PER_TASK, |r| {
            body(&x1[r.clone()], &y1[r.clone()], &x2[r.clone()], &y2[r])
        })
        .into_iter()
        .fold((0.0, 0.0), |(s0, s1), (p0, p1)| (s0 + p0, s1 + p1))
    } else {
        body(x1, y1, x2, y2)
    }
}

/// Fused `(xᵀ y, xᵀ x)` in one pass over `x` (reads `x` once instead of
/// twice).  This is the BiCGStab `ω = (t, s)/(t, t)` and Richardson
/// `ω′ = (r, AMr)/(AMr, AMr)` reduction shape.
///
/// Stays on the scalar path (no `f3r-simd` entry point yet): it is issued
/// once per outer iteration on data the fused SpMV variants already cover,
/// so it is far off the profile compared to `dot`/`dot2`.
#[must_use]
pub fn dot_with_sqnorm<T: Scalar>(x: &[T], y: &[T]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "dot_with_sqnorm: length mismatch");
    let body = |x: &[T], y: &[T]| -> (f64, f64) {
        let mut t1 = 0.0f64;
        let mut t2 = 0.0f64;
        for_cascade_blocks(x.len(), |start, end| {
            let mut a = [<T::Accum as Scalar>::zero(); 4];
            let mut b = [<T::Accum as Scalar>::zero(); 4];
            let n4 = start + ((end - start) & !3);
            let mut i = start;
            while i < n4 {
                for k in 0..4 {
                    let xv = x[i + k].widen();
                    a[k] += xv * y[i + k].widen();
                    b[k] += xv * xv;
                }
                i += 4;
            }
            let mut ta = <T::Accum as Scalar>::zero();
            let mut tb = <T::Accum as Scalar>::zero();
            for j in n4..end {
                let xv = x[j].widen();
                ta += xv * y[j].widen();
                tb += xv * xv;
            }
            t1 += (((a[0] + a[1]) + (a[2] + a[3])) + ta).to_f64();
            t2 += (((b[0] + b[1]) + (b[2] + b[3])) + tb).to_f64();
        });
        (t1, t2)
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(x.len(), MIN_LEN_PER_TASK, |r| {
            body(&x[r.clone()], &y[r])
        })
        .into_iter()
        .fold((0.0, 0.0), |(s0, s1), (p0, p1)| (s0 + p0, s1 + p1))
    } else {
        body(x, y)
    }
}

/// Euclidean norm `‖x‖₂`, accumulated in `T::Accum`.
#[must_use]
pub fn norm2<T: Scalar>(x: &[T]) -> f64 {
    dot(x, x).sqrt()
}

/// One contiguous chunk of an axpy update (`chunk ← chunk + a * xs`).
#[inline]
fn axpy_chunk<T: Scalar>(a: T::Accum, xs: &[T], chunk: &mut [T]) {
    // `a.to_f64()` is exact (accum → f64 widening), and the SIMD side
    // re-narrows it back to the accumulation precision, so both backends
    // multiply by bit-identical coefficients.
    if f3r_simd::try_axpy_stored(a.to_f64(), xs, chunk) {
        return;
    }
    for (yi, &xi) in chunk.iter_mut().zip(xs.iter()) {
        *yi = T::narrow(xi.widen() * a + yi.widen());
    }
}

/// Forced-sequential `y ← y + alpha * x` (no pool dispatch regardless of
/// length) — the single-core baseline the dispatch benchmarks compare
/// against; solvers use the size-dispatching [`axpy`].
pub fn axpy_seq<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    axpy_chunk(<T::Accum as Scalar>::from_f64(alpha), x, y);
}

/// `y ← y + alpha * x`.
pub fn axpy<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(y, MIN_LEN_PER_TASK, |base, chunk| {
            axpy_chunk(a, &x[base..base + chunk.len()], chunk);
        });
    } else {
        axpy_chunk(a, x, y);
    }
}

/// Fused `y ← y + alpha * x` returning `‖y_new‖²` (as `f64`) from the same
/// sweep — the CG/BiCGStab "update the residual, then take its norm"
/// pattern without the second pass.
#[must_use]
pub fn axpy_norm2<T: Scalar>(alpha: f64, x: &[T], y: &mut [T]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_norm2: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let body = |base: usize, chunk: &mut [T]| -> f64 {
        let xs = &x[base..base + chunk.len()];
        if let Some(s) = f3r_simd::try_axpy_norm2(alpha, xs, chunk) {
            return s;
        }
        let mut total = 0.0f64;
        for_cascade_blocks(chunk.len(), |start, end| {
            let mut s0 = <T::Accum as Scalar>::zero();
            let mut s1 = <T::Accum as Scalar>::zero();
            let n2 = start + ((end - start) & !1);
            let mut i = start;
            while i < n2 {
                let v0 = T::narrow(xs[i].widen() * a + chunk[i].widen());
                let v1 = T::narrow(xs[i + 1].widen() * a + chunk[i + 1].widen());
                chunk[i] = v0;
                chunk[i + 1] = v1;
                // accumulate on the stored (rounded) values so the result
                // equals norm2 of the updated vector exactly
                let w0 = v0.widen();
                let w1 = v1.widen();
                s0 += w0 * w0;
                s1 += w1 * w1;
                i += 2;
            }
            if i < end {
                let v = T::narrow(xs[i].widen() * a + chunk[i].widen());
                chunk[i] = v;
                let w = v.widen();
                s0 += w * w;
            }
            total += (s0 + s1).to_f64();
        });
        total
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_chunks_mut(y, MIN_LEN_PER_TASK, body)
            .into_iter()
            .sum()
    } else {
        body(0, y)
    }
}

/// Fused `w ← alpha * x + beta * y` returning `‖w‖²` (as `f64`) from the
/// same sweep — BiCGStab's `s = r − α v` plus the early-exit norm check in
/// three memory sweeps (read `x`, read `y`, write `w`).
#[must_use]
pub fn waxpby_norm2<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &[T], w: &mut [T]) -> f64 {
    assert_eq!(x.len(), y.len(), "waxpby_norm2: length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby_norm2: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let b = <T::Accum as Scalar>::from_f64(beta);
    let body = |base: usize, chunk: &mut [T]| -> f64 {
        let xs = &x[base..base + chunk.len()];
        let ys = &y[base..base + chunk.len()];
        if let Some(s) = f3r_simd::try_waxpby_norm2(alpha, xs, beta, ys, chunk) {
            return s;
        }
        let mut total = 0.0f64;
        for_cascade_blocks(chunk.len(), |start, end| {
            let mut s = <T::Accum as Scalar>::zero();
            for i in start..end {
                let v = T::narrow(xs[i].widen() * a + ys[i].widen() * b);
                chunk[i] = v;
                let wv = v.widen();
                s += wv * wv;
            }
            total += s.to_f64();
        });
        total
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_chunks_mut(w, MIN_LEN_PER_TASK, body)
            .into_iter()
            .sum()
    } else {
        body(0, w)
    }
}

/// `y ← alpha * x + beta * y`.
pub fn axpby<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let b = <T::Accum as Scalar>::from_f64(beta);
    let body = |base: usize, chunk: &mut [T]| {
        let xs = &x[base..base + chunk.len()];
        for (yi, &xi) in chunk.iter_mut().zip(xs.iter()) {
            *yi = T::narrow(xi.widen() * a + yi.widen() * b);
        }
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(y, MIN_LEN_PER_TASK, body);
    } else {
        body(0, y);
    }
}

/// `w ← alpha * x + beta * y` (three-operand form used by CG/BiCGStab).
pub fn waxpby<T: Scalar>(alpha: f64, x: &[T], beta: f64, y: &[T], w: &mut [T]) {
    assert_eq!(x.len(), y.len(), "waxpby: length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let b = <T::Accum as Scalar>::from_f64(beta);
    let body = |base: usize, chunk: &mut [T]| {
        let xs = &x[base..base + chunk.len()];
        let ys = &y[base..base + chunk.len()];
        for i in 0..chunk.len() {
            chunk[i] = T::narrow(xs[i].widen() * a + ys[i].widen() * b);
        }
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(w, MIN_LEN_PER_TASK, body);
    } else {
        body(0, w);
    }
}

/// `x ← alpha * x`.
pub fn scale<T: Scalar>(alpha: f64, x: &mut [T]) {
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let body = |_base: usize, chunk: &mut [T]| {
        if f3r_simd::try_scale(alpha, chunk) {
            return;
        }
        for xi in chunk.iter_mut() {
            *xi = T::narrow(xi.widen() * a);
        }
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(x, MIN_LEN_PER_TASK, body);
    } else {
        body(0, x);
    }
}

/// Fused `dst ← alpha * src` (the FGMRES "normalise the new basis vector"
/// copy + scale collapsed into one sweep).
pub fn scale_into<T: Scalar>(alpha: f64, src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len(), "scale_into: length mismatch");
    let a = <T::Accum as Scalar>::from_f64(alpha);
    let body = |base: usize, chunk: &mut [T]| {
        let xs = &src[base..base + chunk.len()];
        if f3r_simd::try_scale_into(alpha, xs, chunk) {
            return;
        }
        for (di, &si) in chunk.iter_mut().zip(xs.iter()) {
            *di = T::narrow(si.widen() * a);
        }
    };
    if src.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(dst, MIN_LEN_PER_TASK, body);
    } else {
        body(0, dst);
    }
}

// ---------------------------------------------------------------------------
// Compressed-basis kernels
//
// A compressed basis vector is a pair `(stored, scale)`: elements held in a
// storage precision `S` (typically fp16 or fp32) plus one `f64` amplitude
// scale per vector, representing `scale * stored`.  When `S` is narrower
// than the working precision the scale is a power of two chosen so
// `|stored| <= 1`, which keeps fp16 storage inside its narrow exponent
// range; same-precision storage skips the normalisation and stores values
// verbatim (bit-lossless, no extra reduction pass on the default path).
//
// Every kernel below follows the direct-widening convention: each stored
// element enters the working accumulator `T::Accum` through exactly one
// conversion (`FromScalar::from_scalar`) and results leave through one
// rounding (`Scalar::narrow` / `FromScalar::into_scalar`); the per-vector
// scale is folded into the scalar coefficient outside the loop.  All kernels
// dispatch to the worker pool above [`PAR_LEN_THRESHOLD`], like their
// uncompressed counterparts.
// ---------------------------------------------------------------------------

/// Pick the power-of-two scale for [`narrow_scaled_into`]: the smallest
/// `2^k >= amax` (`0.0` for a zero vector, non-finite propagated).  The
/// convention is shared with the scaled matrix storage through
/// [`crate::scaling::pow2_amplitude`].
#[inline]
fn pow2_scale(amax: f64) -> f64 {
    crate::scaling::pow2_amplitude(amax)
}

/// True when the `f64` coefficient `c` survives conversion into the
/// accumulator `A` (finite, and nonzero unless `c` itself is zero).
///
/// The fast compressed-kernel loops pre-convert their scalar coefficient
/// (`alpha * scale` or `1/scale`) into the accumulation precision once per
/// call; for an `f32` accumulator that conversion silently saturates to
/// `inf`/`0` outside roughly `2^±149` even though the per-element *product*
/// `c * stored` may be perfectly representable.  Kernels fall back to a
/// per-element `f64` path (cold, extreme-amplitude vectors only) when this
/// returns false, so compression stays amplitude-independent as documented.
#[inline]
fn coeff_fits<A: FromScalar>(c: f64) -> bool {
    let a = A::from_f64(c);
    a.is_finite() && (c == 0.0 || a.to_f64() != 0.0)
}

/// Compress-on-write: store `alpha * src` into `dst` as a scaled
/// storage-precision vector, returning the amplitude scale.
///
/// When `S` is narrower than `T`, the stored elements are `src / 2^k` with
/// `2^k` the smallest power of two at least `max|src|`, so `|dst| <= 1`
/// (inside fp16's exponent range whatever the amplitude); the returned
/// scale is `alpha * 2^k` and the represented vector is
/// `scale * dst == alpha * src`.  Division by a power of two is exact, so
/// the only per-element rounding is the single
/// [`FromScalar::into_scalar`] narrowing.  A zero `src` stores zeros and
/// returns scale `0.0`; non-finite input propagates a non-finite scale or
/// stored values, so downstream norm/dot breakdown checks still fire.
///
/// When `S` has the same precision as `T` (uncompressed storage), the
/// normalisation is unnecessary — the storage has the source's full
/// exponent range — so the values are stored verbatim (lossless), `alpha`
/// is returned as the scale, and the amplitude reduction pass is skipped
/// entirely, keeping the default path at the cost of a plain fused
/// copy.
pub fn narrow_scaled_into<T: Scalar, S: Scalar>(alpha: f64, src: &[T], dst: &mut [S]) -> f64 {
    assert_eq!(src.len(), dst.len(), "narrow_scaled_into: length mismatch");
    if S::PRECISION == T::PRECISION {
        // Same-precision storage needs no |stored| <= 1 normalisation (the
        // storage has the full exponent range of the source), so skip the
        // amplitude reduction and the per-element division: store the values
        // as-is and carry `alpha` in the scale.  This keeps the uncompressed
        // default path at the cost of the pre-compression `scale_into`
        // (one read + one write sweep, no extra max-reduction pass).
        let body = |base: usize, chunk: &mut [S]| {
            let xs = &src[base..base + chunk.len()];
            // `c = 1` compress: multiplying by one is exact, so the SIMD
            // kernel stores exactly `si.widen().into_scalar()` too.
            if f3r_simd::try_compress(1.0, xs, chunk) {
                return;
            }
            for (di, &si) in chunk.iter_mut().zip(xs.iter()) {
                *di = si.widen().into_scalar();
            }
        };
        if src.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_chunks_mut(dst, MIN_LEN_PER_TASK, body);
        } else {
            body(0, dst);
        }
        return alpha;
    }
    let amax = if src.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(src.len(), MIN_LEN_PER_TASK, |r| norm_inf(&src[r]))
            .into_iter()
            .fold(0.0f64, f64::max)
    } else {
        norm_inf(src)
    };
    let s = pow2_scale(amax);
    if s == 0.0 {
        set_zero(dst);
        return 0.0;
    }
    let inv_f64 = 1.0 / s;
    if coeff_fits::<T::Accum>(inv_f64) {
        let inv = <T::Accum as Scalar>::from_f64(inv_f64);
        let body = |base: usize, chunk: &mut [S]| {
            let xs = &src[base..base + chunk.len()];
            if f3r_simd::try_compress(inv_f64, xs, chunk) {
                return;
            }
            for (di, &si) in chunk.iter_mut().zip(xs.iter()) {
                *di = (si.widen() * inv).into_scalar();
            }
        };
        if src.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_chunks_mut(dst, MIN_LEN_PER_TASK, body);
        } else {
            body(0, dst);
        }
    } else {
        // 1/s overflows/underflows the accumulator (amplitude near the edge
        // of the working precision's range): scale each element in f64.
        let body = |base: usize, chunk: &mut [S]| {
            let xs = &src[base..base + chunk.len()];
            for (di, &si) in chunk.iter_mut().zip(xs.iter()) {
                *di = S::from_f64(si.to_f64() * inv_f64);
            }
        };
        if src.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_chunks_mut(dst, MIN_LEN_PER_TASK, body);
        } else {
            body(0, dst);
        }
    }
    alpha * s
}

/// Decompress: `dst ← scale * src`, widening each stored element once into
/// the destination's accumulation precision (the read-side inverse of
/// [`narrow_scaled_into`]).
pub fn widen_scaled_into<S: Scalar, T: Scalar>(scale: f64, src: &[S], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len(), "widen_scaled_into: length mismatch");
    if coeff_fits::<T::Accum>(scale) {
        let a = <T::Accum as Scalar>::from_f64(scale);
        let body = |base: usize, chunk: &mut [T]| {
            let xs = &src[base..base + chunk.len()];
            if f3r_simd::try_widen_scaled(scale, xs, chunk) {
                return;
            }
            for (di, &si) in chunk.iter_mut().zip(xs.iter()) {
                *di = T::narrow(<T::Accum as FromScalar>::from_scalar(si) * a);
            }
        };
        if src.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_chunks_mut(dst, MIN_LEN_PER_TASK, body);
        } else {
            body(0, dst);
        }
    } else {
        let body = |base: usize, chunk: &mut [T]| {
            let xs = &src[base..base + chunk.len()];
            for (di, &si) in chunk.iter_mut().zip(xs.iter()) {
                *di = T::from_f64(si.to_f64() * scale);
            }
        };
        if src.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_chunks_mut(dst, MIN_LEN_PER_TASK, body);
        } else {
            body(0, dst);
        }
    }
}

/// Unrolled mixed-precision dot over one contiguous chunk: `x` in the working
/// precision, `v` stored, result in `f64` *without* the amplitude scale.
#[inline]
fn dot_stored_chunk<T: Scalar, S: Scalar>(x: &[T], v: &[S]) -> f64 {
    if let Some(d) = f3r_simd::try_dot_stored(x, v) {
        return d;
    }
    let mut total = 0.0f64;
    for_cascade_blocks(x.len(), |start, end| {
        let (xb, vb) = (&x[start..end], &v[start..end]);
        let mut acc = [<T::Accum as Scalar>::zero(); 8];
        let mut x8 = xb.chunks_exact(8);
        let mut v8 = vb.chunks_exact(8);
        for (xc, vc) in (&mut x8).zip(&mut v8) {
            for k in 0..8 {
                acc[k] += xc[k].widen() * <T::Accum as FromScalar>::from_scalar(vc[k]);
            }
        }
        let mut tail = <T::Accum as Scalar>::zero();
        for (&a, &b) in x8.remainder().iter().zip(v8.remainder().iter()) {
            tail += a.widen() * <T::Accum as FromScalar>::from_scalar(b);
        }
        let p0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        let p1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
        total += ((p0 + p1) + tail).to_f64();
    });
    total
}

/// Dot product `xᵀ (scale · v)` of a working-precision vector against a
/// compressed basis vector.
#[must_use]
pub fn dot_compressed<T: Scalar, S: Scalar>(x: &[T], v: &[S], scale: f64) -> f64 {
    assert_eq!(x.len(), v.len(), "dot_compressed: length mismatch");
    let raw = if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(x.len(), MIN_LEN_PER_TASK, |r| {
            dot_stored_chunk(&x[r.clone()], &v[r])
        })
        .into_iter()
        .sum()
    } else {
        dot_stored_chunk(x, v)
    };
    raw * scale
}

/// Two dots of the same working-precision vector against two compressed
/// basis vectors in one fused sweep over `x`:
/// `(xᵀ (s1 · v1), xᵀ (s2 · v2))`.
///
/// This is the compressed counterpart of [`dot2`] for the FGMRES classical
/// Gram–Schmidt projections — `x` (the new Krylov direction) streams once per
/// *pair* of basis vectors instead of once per vector.
///
/// Stays on the scalar path: the mixed-precision two-vector fusion has no
/// `f3r-simd` entry point yet, and the single-dot core it decomposes into
/// ([`dot_compressed`]) is already vectorised.
#[must_use]
pub fn dot2_compressed<T: Scalar, S: Scalar>(
    x: &[T],
    v1: &[S],
    s1: f64,
    v2: &[S],
    s2: f64,
) -> (f64, f64) {
    assert_eq!(x.len(), v1.len(), "dot2_compressed: length mismatch");
    assert_eq!(x.len(), v2.len(), "dot2_compressed: length mismatch");
    let body = |x: &[T], v1: &[S], v2: &[S]| -> (f64, f64) {
        let mut t1 = 0.0f64;
        let mut t2 = 0.0f64;
        for_cascade_blocks(x.len(), |start, end| {
            let mut a = [<T::Accum as Scalar>::zero(); 4];
            let mut b = [<T::Accum as Scalar>::zero(); 4];
            let n4 = start + ((end - start) & !3);
            let mut i = start;
            while i < n4 {
                for k in 0..4 {
                    let xv = x[i + k].widen();
                    a[k] += xv * <T::Accum as FromScalar>::from_scalar(v1[i + k]);
                    b[k] += xv * <T::Accum as FromScalar>::from_scalar(v2[i + k]);
                }
                i += 4;
            }
            let mut ta = <T::Accum as Scalar>::zero();
            let mut tb = <T::Accum as Scalar>::zero();
            for j in n4..end {
                let xv = x[j].widen();
                ta += xv * <T::Accum as FromScalar>::from_scalar(v1[j]);
                tb += xv * <T::Accum as FromScalar>::from_scalar(v2[j]);
            }
            t1 += (((a[0] + a[1]) + (a[2] + a[3])) + ta).to_f64();
            t2 += (((b[0] + b[1]) + (b[2] + b[3])) + tb).to_f64();
        });
        (t1, t2)
    };
    let (r1, r2) = if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_map_ranges(x.len(), MIN_LEN_PER_TASK, |r| {
            body(&x[r.clone()], &v1[r.clone()], &v2[r])
        })
        .into_iter()
        .fold((0.0, 0.0), |(s0, s1), (p0, p1)| (s0 + p0, s1 + p1))
    } else {
        body(x, v1, v2)
    };
    (r1 * s1, r2 * s2)
}

/// `y ← y + alpha * (scale · v)` with `v` a compressed basis vector: the
/// coefficient and the amplitude scale fold into one scalar, so the loop is
/// exactly an [`axpy`] whose source widens from the storage precision.
pub fn axpy_scaled_from<T: Scalar, S: Scalar>(alpha: f64, v: &[S], scale: f64, y: &mut [T]) {
    assert_eq!(v.len(), y.len(), "axpy_scaled_from: length mismatch");
    let c = alpha * scale;
    if coeff_fits::<T::Accum>(c) {
        let a = <T::Accum as Scalar>::from_f64(c);
        let body = |base: usize, chunk: &mut [T]| {
            let xs = &v[base..base + chunk.len()];
            if f3r_simd::try_axpy_stored(c, xs, chunk) {
                return;
            }
            for (yi, &xi) in chunk.iter_mut().zip(xs.iter()) {
                *yi = T::narrow(<T::Accum as FromScalar>::from_scalar(xi) * a + yi.widen());
            }
        };
        if v.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_chunks_mut(y, MIN_LEN_PER_TASK, body);
        } else {
            body(0, y);
        }
    } else {
        let body = |base: usize, chunk: &mut [T]| {
            let xs = &v[base..base + chunk.len()];
            for (yi, &xi) in chunk.iter_mut().zip(xs.iter()) {
                *yi = T::from_f64(xi.to_f64() * c + yi.to_f64());
            }
        };
        if v.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_chunks_mut(y, MIN_LEN_PER_TASK, body);
        } else {
            body(0, y);
        }
    }
}

/// Fused `y ← y + alpha * (scale · v)` returning `‖y_new‖²` from the same
/// sweep — the compressed counterpart of [`axpy_norm2`], used for the last
/// FGMRES orthogonalisation update so `y` is not swept again for
/// `h_{j+1,j}`.
///
/// Stays on the scalar path (no mixed-precision fused `f3r-simd` entry point
/// yet); it runs once per FGMRES iteration against `j` vectorised
/// [`axpy_scaled_from`] calls, so the scalar cost is amortised.
#[must_use]
pub fn axpy_scaled_norm2<T: Scalar, S: Scalar>(
    alpha: f64,
    v: &[S],
    scale: f64,
    y: &mut [T],
) -> f64 {
    assert_eq!(v.len(), y.len(), "axpy_scaled_norm2: length mismatch");
    let c = alpha * scale;
    if coeff_fits::<T::Accum>(c) {
        let a = <T::Accum as Scalar>::from_f64(c);
        let body = |base: usize, chunk: &mut [T]| -> f64 {
            let xs = &v[base..base + chunk.len()];
            let mut total = 0.0f64;
            for_cascade_blocks(chunk.len(), |start, end| {
                let mut s = <T::Accum as Scalar>::zero();
                for i in start..end {
                    let val = T::narrow(
                        <T::Accum as FromScalar>::from_scalar(xs[i]) * a + chunk[i].widen(),
                    );
                    chunk[i] = val;
                    let w = val.widen();
                    s += w * w;
                }
                total += s.to_f64();
            });
            total
        };
        if v.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_map_chunks_mut(y, MIN_LEN_PER_TASK, body)
                .into_iter()
                .sum()
        } else {
            body(0, y)
        }
    } else {
        let body = |base: usize, chunk: &mut [T]| -> f64 {
            let xs = &v[base..base + chunk.len()];
            let mut total = 0.0f64;
            for (yi, &xi) in chunk.iter_mut().zip(xs.iter()) {
                let val = T::from_f64(xi.to_f64() * c + yi.to_f64());
                *yi = val;
                let w = val.to_f64();
                total += w * w;
            }
            total
        };
        if v.len() >= PAR_LEN_THRESHOLD {
            f3r_parallel::par_map_chunks_mut(y, MIN_LEN_PER_TASK, body)
                .into_iter()
                .sum()
        } else {
            body(0, y)
        }
    }
}

/// Euclidean norm `‖scale · v‖₂` of a compressed basis vector, accumulated
/// in the storage precision's accumulator with the usual `f64` cascade.
#[must_use]
pub fn norm2_compressed<S: Scalar>(v: &[S], scale: f64) -> f64 {
    dot(v, v).sqrt() * scale.abs()
}

/// Set every element of `x` to zero.
pub fn set_zero<T: Scalar>(x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi = T::zero();
    }
}

/// Element-wise product `z ← x ⊙ y` (used by diagonal preconditioning).
///
/// Follows the single-widening convention (one widening per operand, one
/// [`Scalar::narrow`] per element), unrolled by four so LLVM vectorises the
/// fp32/fp64 instantiations, and dispatches to the worker pool above
/// [`PAR_LEN_THRESHOLD`] like the other element-wise kernels.
pub fn hadamard<T: Scalar>(x: &[T], y: &[T], z: &mut [T]) {
    assert_eq!(x.len(), y.len(), "hadamard: length mismatch");
    assert_eq!(x.len(), z.len(), "hadamard: length mismatch");
    let body = |base: usize, chunk: &mut [T]| {
        let xs = &x[base..base + chunk.len()];
        let ys = &y[base..base + chunk.len()];
        let n4 = chunk.len() & !3;
        let mut i = 0;
        while i < n4 {
            for k in 0..4 {
                chunk[i + k] = T::narrow(xs[i + k].widen() * ys[i + k].widen());
            }
            i += 4;
        }
        for j in n4..chunk.len() {
            chunk[j] = T::narrow(xs[j].widen() * ys[j].widen());
        }
    };
    if x.len() >= PAR_LEN_THRESHOLD {
        f3r_parallel::par_chunks_mut(z, MIN_LEN_PER_TASK, body);
    } else {
        body(0, z);
    }
}

/// Maximum absolute entry `‖x‖_∞`.
///
/// Four independent max chains (max selection commutes, so the unrolled fold
/// is exactly the sequential fold); each element is widened once into
/// `T::Accum` before the comparison.  NaN entries never replace the running
/// max — the `>` comparison is false for NaN — matching the scalar fold this
/// kernel always used, and the SIMD backend replicates exactly.
#[must_use]
pub fn norm_inf<T: Scalar>(x: &[T]) -> f64 {
    if let Some(m) = f3r_simd::try_norm_inf(x) {
        return m;
    }
    let mut m = [<T::Accum as Scalar>::zero(); 4];
    let mut x4 = x.chunks_exact(4);
    for c in &mut x4 {
        for k in 0..4 {
            let v = c[k].widen().abs();
            if v > m[k] {
                m[k] = v;
            }
        }
    }
    let mut best = <T::Accum as Scalar>::zero();
    for mk in m {
        if mk > best {
            best = mk;
        }
    }
    for &v in x4.remainder() {
        let v = v.widen().abs();
        if v > best {
            best = v;
        }
    }
    best.to_f64()
}

/// Sum of the entries, accumulated in `T::Accum` over eight independent
/// chains with the shared `f64` cascade every 4096 elements — the same
/// single-widening reduction scheme as [`dot`].
#[must_use]
pub fn sum<T: Scalar>(x: &[T]) -> f64 {
    let mut total = 0.0f64;
    for_cascade_blocks(x.len(), |start, end| {
        let xb = &x[start..end];
        let mut acc = [<T::Accum as Scalar>::zero(); 8];
        let mut x8 = xb.chunks_exact(8);
        for c in &mut x8 {
            for k in 0..8 {
                acc[k] += c[k].widen();
            }
        }
        let mut tail = <T::Accum as Scalar>::zero();
        for &v in x8.remainder() {
            tail += v.widen();
        }
        let p0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        let p1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
        total += ((p0 + p1) + tail).to_f64();
    });
    total
}

// ---------------------------------------------------------------------------
// Panel (blocked multi-vector) kernels.
//
// The blocked Gram–Schmidt of the batched FGMRES path orthogonalizes k
// independent Krylov recurrences at once.  The panel kernels below walk a
// column-major panel (`xs[c*n .. (c+1)*n]` is column c) column by column
// through the optimized single-vector kernels above — the columns are
// *disjoint* vectors, so unlike the SpMM kernels there is no shared operand
// whose traffic a deeper fusion could amortize; a fused k-wide sweep would
// move exactly the same bytes.  Keeping the per-column kernels also keeps
// every column bit-identical to the corresponding single-vector call, which
// is what makes the batched solver's per-column parity testable.
// ---------------------------------------------------------------------------

/// Per-column dot products of two column-major panels:
/// `out[c] = xs_cᵀ ys_c` for `c in 0..k`.
///
/// Each column runs the dispatched [`dot`] kernel, so the results are
/// bitwise identical to k separate `dot` calls.
///
/// # Panics
/// Panics if `xs.len() != ys.len()` or the length is not a multiple of `k`.
#[must_use]
pub fn dot_panel<T: Scalar>(xs: &[T], ys: &[T], k: usize) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "dot_panel: length mismatch");
    let n = panel_height(xs.len(), k, "dot_panel");
    (0..k)
        .map(|c| dot(&xs[c * n..(c + 1) * n], &ys[c * n..(c + 1) * n]))
        .collect()
}

/// Per-column axpy on column-major panels: `ys_c += alphas[c] · xs_c` for
/// each of the `alphas.len()` columns (bitwise identical to per-column
/// [`axpy`] calls).
///
/// # Panics
/// Panics if `xs.len() != ys.len()` or the length is not
/// `alphas.len() · n` for a whole `n`.
pub fn axpy_panel<T: Scalar>(alphas: &[f64], xs: &[T], ys: &mut [T]) {
    assert_eq!(xs.len(), ys.len(), "axpy_panel: length mismatch");
    let k = alphas.len();
    let n = panel_height(xs.len(), k, "axpy_panel");
    for (c, &alpha) in alphas.iter().enumerate() {
        axpy(alpha, &xs[c * n..(c + 1) * n], &mut ys[c * n..(c + 1) * n]);
    }
}

/// Per-column Euclidean norms of a column-major panel:
/// `out[c] = ‖xs_c‖₂` (bitwise identical to per-column [`norm2`] calls).
///
/// # Panics
/// Panics if the length is not a multiple of `k`.
#[must_use]
pub fn norm2_panel<T: Scalar>(xs: &[T], k: usize) -> Vec<f64> {
    let n = panel_height(xs.len(), k, "norm2_panel");
    (0..k).map(|c| norm2(&xs[c * n..(c + 1) * n])).collect()
}

/// Panel height `n` from a total length and column count, validating that
/// the panel is rectangular (zero columns require zero length).
fn panel_height(len: usize, k: usize, kernel: &str) -> usize {
    if k == 0 {
        assert_eq!(len, 0, "{kernel}: zero-column panel must be empty");
        return 0;
    }
    assert_eq!(len % k, 0, "{kernel}: panel length not a multiple of k");
    len / k
}

#[cfg(test)]
mod tests {
    use super::*;
    use half::f16;

    #[test]
    fn dot_and_norm_small() {
        let x = vec![1.0f64, 2.0, 3.0];
        let y = vec![4.0f64, -5.0, 6.0];
        assert!((dot(&x, &y) - 12.0).abs() < 1e-14);
        assert!((norm2(&x) - 14.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn dot_parallel_matches_serial() {
        let n = PAR_LEN_THRESHOLD + 1234;
        let x: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) * 1e-3).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 89) as f64) * 1e-3).collect();
        let serial = dot_chunk(&x, &y);
        let par = dot(&x, &y);
        assert!((serial - par).abs() < 1e-9 * serial.abs());
    }

    #[test]
    fn fp16_dot_accumulates_in_fp32() {
        // 4096 ones: a pure fp16 accumulation would saturate at 2048
        // (adding 1 to 2048 in fp16 is a no-op); fp32 accumulation is exact.
        let x = vec![f16::from_f32(1.0); 4096];
        assert_eq!(dot(&x, &x), 4096.0);
    }

    #[test]
    fn fused_dot2_matches_two_dots() {
        let n = 1001;
        let x1: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) / 17.0).collect();
        let y1: Vec<f32> = (0..n).map(|i| ((i % 13) as f32 - 6.0) / 13.0).collect();
        let x2: Vec<f32> = (0..n).map(|i| ((i % 11) as f32 - 5.0) / 11.0).collect();
        let y2: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) / 7.0).collect();
        // dot and dot2 unroll differently (8 vs 4 chains), so f32
        // accumulation may differ by a few ulps of the absolute sum.
        let tol = 4.0 * n as f64 * f64::from(f32::EPSILON);
        let (d1, d2) = dot2(&x1, &y1, &x2, &y2);
        assert!((d1 - dot(&x1, &y1)).abs() < tol);
        assert!((d2 - dot(&x2, &y2)).abs() < tol);
    }

    #[test]
    fn fused_dot_with_sqnorm_matches_two_dots() {
        let n = 777;
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 101) as f64 / 101.0 - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 17) % 97) as f64 / 97.0 - 0.5).collect();
        let (xy, xx) = dot_with_sqnorm(&x, &y);
        assert!((xy - dot(&x, &y)).abs() < 1e-12);
        assert!((xx - dot(&x, &x)).abs() < 1e-12);
    }

    #[test]
    fn fused_axpy_norm2_matches_separate_ops() {
        for n in [5usize, 64, 1003] {
            let x: Vec<f32> = (0..n).map(|i| ((i % 23) as f32 - 11.0) / 23.0).collect();
            let mut y1: Vec<f32> = (0..n).map(|i| ((i % 19) as f32 - 9.0) / 19.0).collect();
            let mut y2 = y1.clone();
            axpy(0.37, &x, &mut y1);
            let nn = axpy_norm2(0.37, &x, &mut y2);
            assert_eq!(y1, y2, "n={n}");
            assert!((nn.sqrt() - norm2(&y1)).abs() < 1e-6, "n={n}");
        }
    }

    #[test]
    fn fused_waxpby_norm2_matches_separate_ops() {
        for n in [3usize, 64, 4097, 9001] {
            let x: Vec<f32> = (0..n).map(|i| ((i % 23) as f32 - 11.0) / 23.0).collect();
            let y: Vec<f32> = (0..n).map(|i| ((i % 19) as f32 - 9.0) / 19.0).collect();
            let mut w1 = vec![0.0f32; n];
            let mut w2 = vec![0.0f32; n];
            waxpby(1.0, &x, -0.75, &y, &mut w1);
            let nn = waxpby_norm2(1.0, &x, -0.75, &y, &mut w2);
            assert_eq!(w1, w2, "n={n}");
            assert!((nn.sqrt() - norm2(&w1)).abs() < 1e-5 * (1.0 + norm2(&w1)), "n={n}");
        }
    }

    #[test]
    fn long_fp32_dot_stays_accurate_via_f64_cascade() {
        // 2^20 identical entries: a single f32 accumulation chain would lose
        // ~2^-4 relative accuracy; the 4096-element f64 cascade keeps the
        // result within a few f32 ulps of exact.
        let n = 1 << 20;
        let x = vec![1.000_001f32; n];
        let exact = f64::from(x[0]) * f64::from(x[0]) * n as f64;
        let got = dot(&x, &x);
        assert!(
            (got - exact).abs() < 1e-4 * exact,
            "{got} vs {exact} (rel {})",
            ((got - exact) / exact).abs()
        );
    }

    #[test]
    fn scale_into_matches_copy_then_scale() {
        let src = vec![1.0f64, -2.0, 3.5, 0.25];
        let mut dst = vec![0.0f64; 4];
        scale_into(-2.0, &src, &mut dst);
        assert_eq!(dst, vec![-2.0, 4.0, -7.0, -0.5]);
    }

    #[test]
    fn axpy_variants() {
        let x = vec![1.0f32, 2.0, 3.0];
        let mut y = vec![10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);

        let mut y2 = vec![10.0f32, 20.0, 30.0];
        axpby(2.0, &x, 0.5, &mut y2);
        assert_eq!(y2, vec![7.0, 14.0, 21.0]);

        let mut w = vec![0.0f32; 3];
        waxpby(1.0, &x, -1.0, &y, &mut w);
        assert_eq!(w, vec![-11.0, -22.0, -33.0]);
    }

    #[test]
    fn fp16_axpy_widens_through_fp32() {
        // alpha below fp16 resolution relative to y must still contribute
        // through the fp32 arithmetic before the final rounding.
        let x = vec![f16::from_f32(1.0); 4];
        let mut y = vec![f16::from_f32(1.0); 4];
        axpy(f64::from(f16::EPSILON) * 0.75, &x, &mut y);
        // 1 + 0.75*eps rounds to 1 + eps in round-to-nearest? No: halfway is
        // 0.5*eps, 0.75 eps is above it, so it rounds up.
        assert!(y.iter().all(|&v| v.to_f32() > 1.0));
    }

    #[test]
    fn scale_zero_hadamard() {
        let mut x = vec![1.0f64, -2.0, 3.0];
        scale(3.0, &mut x);
        assert_eq!(x, vec![3.0, -6.0, 9.0]);
        let y = vec![2.0f64, 0.5, 1.0];
        let mut z = vec![0.0f64; 3];
        hadamard(&x, &y, &mut z);
        assert_eq!(z, vec![6.0, -3.0, 9.0]);
        set_zero(&mut x);
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    fn inf_norm_and_sum() {
        let x = vec![1.0f64, -5.0, 3.0];
        assert_eq!(norm_inf(&x), 5.0);
        assert_eq!(sum(&x), -1.0);
        assert_eq!(norm_inf::<f64>(&[]), 0.0);
    }

    #[test]
    fn large_parallel_axpy_matches_serial() {
        let n = PAR_LEN_THRESHOLD + 717;
        let x: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
        let mut y1: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let mut y2 = y1.clone();
        // force serial by updating manually
        for (yi, &xi) in y1.iter_mut().zip(x.iter()) {
            *yi += xi * 0.25;
        }
        axpy(0.25, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_dot_panics() {
        let _ = dot(&[1.0f64, 2.0], &[1.0f64]);
    }

    // --- compressed-basis kernels -----------------------------------------

    #[test]
    fn narrow_scaled_round_trip_is_exact_in_same_precision() {
        // Same-precision storage takes the fast path: values stored as-is,
        // alpha carried entirely in the scale, no amplitude reduction.
        let src: Vec<f64> = (0..257).map(|i| ((i * 37) % 101) as f64 / 7.0 - 6.0).collect();
        let mut stored = vec![0.0f64; src.len()];
        let scale = narrow_scaled_into(0.5, &src, &mut stored);
        assert_eq!(scale, 0.5);
        assert_eq!(stored, src);
        let mut back = vec![0.0f64; src.len()];
        widen_scaled_into(scale, &stored, &mut back);
        for (&b, &s) in back.iter().zip(src.iter()) {
            assert_eq!(b, 0.5 * s);
        }
    }

    #[test]
    fn narrow_scaled_cross_precision_bounds_stored_magnitudes() {
        // The compressing path normalises into |stored| <= 1 so fp16 storage
        // stays inside its exponent range.
        let src: Vec<f32> = (0..257).map(|i| ((i * 37) % 101) as f32 / 7.0 - 6.0).collect();
        let mut stored = vec![f16::from_f32(0.0); src.len()];
        let _ = narrow_scaled_into(1.0, &src, &mut stored);
        assert!(stored.iter().all(|v| v.to_f64().abs() <= 1.0));
    }

    #[test]
    fn narrow_scaled_fp16_error_is_bounded_by_storage_eps() {
        // |scale·stored − src| <= 2^-11 · 2^k <= 2^-10 · max|src| element-wise
        // (one round-to-nearest in fp16 on values scaled into [-1, 1]).
        let src: Vec<f64> = (0..1000).map(|i| (((i * 29) % 211) as f64 - 105.0) * 0.37).collect();
        let amax = src.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let mut stored = vec![f16::from_f32(0.0); src.len()];
        let scale = narrow_scaled_into(1.0, &src, &mut stored);
        let bound = amax * f64::from(f16::EPSILON);
        for (&s, &x) in stored.iter().zip(src.iter()) {
            assert!((scale * s.to_f64() - x).abs() <= bound, "{s} vs {x}");
        }
    }

    #[test]
    fn narrow_scaled_applies_alpha_through_the_scale() {
        let src = vec![2.0f64, -4.0, 8.0];
        let mut stored = vec![f16::from_f32(0.0); 3];
        let scale = narrow_scaled_into(0.25, &src, &mut stored);
        // amax = 8 -> 2^3; scale = 0.25 * 8 = 2; represented = src / 4.
        assert_eq!(scale, 2.0);
        let rep: Vec<f64> = stored.iter().map(|s| scale * s.to_f64()).collect();
        assert_eq!(rep, vec![0.5, -1.0, 2.0]);
    }

    #[test]
    fn narrow_scaled_zero_vector_gives_zero_scale() {
        let src = vec![0.0f32; 16];
        let mut stored = vec![f16::from_f32(7.0); 16];
        assert_eq!(narrow_scaled_into(3.0, &src, &mut stored), 0.0);
        assert!(stored.iter().all(|v| v.to_f64() == 0.0));
        assert_eq!(norm2_compressed(&stored, 0.0), 0.0);
    }

    #[test]
    fn narrow_scaled_survives_fp16_dynamic_range() {
        // Values far outside fp16's representable range (max 65504) and far
        // below its subnormal floor survive compression because the scale
        // carries the magnitude.
        for huge in [1e9f64, 1e-9f64] {
            let src = vec![huge, -0.5 * huge, 0.25 * huge];
            let mut stored = vec![f16::from_f32(0.0); 3];
            let scale = narrow_scaled_into(1.0, &src, &mut stored);
            for (&s, &x) in stored.iter().zip(src.iter()) {
                let err = (scale * s.to_f64() - x).abs();
                assert!(err <= huge * f64::from(f16::EPSILON), "{err} for {x}");
            }
        }
    }

    #[test]
    fn extreme_amplitudes_survive_fp32_working_precision() {
        // Amplitudes near the edges of f32's range: the scale (or its
        // reciprocal) does not fit an f32 accumulator even though every
        // element-wise product is representable.  The kernels must fall back
        // to the f64 path instead of producing inf/NaN.
        for amp in [1.0e-41f64, 3.0e38f64] {
            let src: Vec<f32> = (0..64)
                .map(|i| ((i % 7) as f64 / 7.0 * amp) as f32)
                .collect();
            let mut stored = vec![f16::from_f32(0.0); src.len()];
            let scale = narrow_scaled_into(1.0, &src, &mut stored);
            assert!(scale.is_finite(), "amp {amp}: scale {scale}");
            assert!(stored.iter().all(|v| v.is_finite()), "amp {amp}");
            let mut back = vec![0.0f32; src.len()];
            widen_scaled_into(scale, &stored, &mut back);
            for (&b, &s) in back.iter().zip(src.iter()) {
                assert!(b.is_finite(), "amp {amp}");
                let err = (f64::from(b) - f64::from(s)).abs();
                assert!(err <= amp * f64::from(f16::EPSILON), "amp {amp}: {b} vs {s}");
            }
            let mut y = vec![0.0f32; src.len()];
            axpy_scaled_from(1.0, &stored, scale, &mut y);
            assert!(y.iter().all(|v| v.is_finite()), "amp {amp}");
            let mut y2 = vec![0.0f32; src.len()];
            let nn = axpy_scaled_norm2(1.0, &stored, scale, &mut y2);
            assert!(nn.is_finite(), "amp {amp}");
            assert_eq!(y, y2, "amp {amp}");
        }
    }

    #[test]
    fn dot_compressed_matches_reference_dot_on_widened_copy() {
        let n = 1003;
        let x: Vec<f64> = (0..n).map(|i| ((i % 23) as f64 - 11.0) / 23.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i % 19) as f64 - 9.0) / 19.0).collect();
        let mut stored = vec![f16::from_f32(0.0); n];
        let scale = narrow_scaled_into(1.0, &v, &mut stored);
        // Reference: decompress into f64 and use the plain dot.
        let mut widened = vec![0.0f64; n];
        widen_scaled_into(scale, &stored, &mut widened);
        let reference = dot(&x, &widened);
        let got = dot_compressed(&x, &stored, scale);
        assert!((got - reference).abs() < 1e-12 * n as f64, "{got} vs {reference}");
        // And both sit within the fp16 storage error of the exact dot.
        let exact = dot(&x, &v);
        assert!((got - exact).abs() < n as f64 * f64::from(f16::EPSILON));
    }

    #[test]
    fn dot2_compressed_matches_two_single_dots() {
        let n = 513;
        let x: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) / 17.0).collect();
        let v1: Vec<f32> = (0..n).map(|i| ((i % 13) as f32 - 6.0) / 13.0).collect();
        let v2: Vec<f32> = (0..n).map(|i| ((i % 11) as f32 - 5.0) / 11.0).collect();
        let mut s1 = vec![f16::from_f32(0.0); n];
        let mut s2 = vec![f16::from_f32(0.0); n];
        let sc1 = narrow_scaled_into(1.0, &v1, &mut s1);
        let sc2 = narrow_scaled_into(1.0, &v2, &mut s2);
        let (d1, d2) = dot2_compressed(&x, &s1, sc1, &s2, sc2);
        let tol = 4.0 * n as f64 * f64::from(f32::EPSILON);
        assert!((d1 - dot_compressed(&x, &s1, sc1)).abs() < tol);
        assert!((d2 - dot_compressed(&x, &s2, sc2)).abs() < tol);
    }

    #[test]
    fn axpy_scaled_from_matches_decompress_then_axpy() {
        for n in [5usize, 64, 1003] {
            let v: Vec<f64> = (0..n).map(|i| ((i % 31) as f64 - 15.0) * 0.8).collect();
            let mut stored = vec![f16::from_f32(0.0); n];
            let scale = narrow_scaled_into(1.0, &v, &mut stored);
            let mut widened = vec![0.0f64; n];
            widen_scaled_into(scale, &stored, &mut widened);

            let mut y1: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
            let mut y2 = y1.clone();
            axpy(-0.37, &widened, &mut y1);
            axpy_scaled_from(-0.37, &stored, scale, &mut y2);
            assert_eq!(y1, y2, "n={n}");

            let mut y3: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
            let nn = axpy_scaled_norm2(-0.37, &stored, scale, &mut y3);
            assert_eq!(y1, y3, "n={n}");
            assert!((nn.sqrt() - norm2(&y1)).abs() < 1e-9 * (1.0 + norm2(&y1)), "n={n}");
        }
    }

    #[test]
    fn norm2_compressed_matches_widened_norm() {
        let v: Vec<f32> = (0..777).map(|i| ((i % 41) as f32 - 20.0) * 3.0).collect();
        let mut stored = vec![f16::from_f32(0.0); v.len()];
        let scale = narrow_scaled_into(1.0, &v, &mut stored);
        let mut widened = vec![0.0f32; v.len()];
        widen_scaled_into(scale, &stored, &mut widened);
        let got = norm2_compressed(&stored, scale);
        assert!((got - norm2(&widened)).abs() < 1e-3 * got);
    }

    #[test]
    fn compressed_kernels_parallel_match_serial() {
        // Above PAR_LEN_THRESHOLD the pool dispatch path must agree with the
        // sequential path.
        let n = PAR_LEN_THRESHOLD + 321;
        let v: Vec<f64> = (0..n).map(|i| ((i % 97) as f64 - 48.0) * 1e-2).collect();
        let x: Vec<f64> = (0..n).map(|i| ((i % 89) as f64 - 44.0) * 1e-2).collect();
        let mut stored = vec![f16::from_f32(0.0); n];
        let scale = narrow_scaled_into(1.0, &v, &mut stored);
        let serial_dot: f64 = dot_stored_chunk(&x, &stored) * scale;
        let par_dot = dot_compressed(&x, &stored, scale);
        assert!((serial_dot - par_dot).abs() < 1e-9 * serial_dot.abs().max(1.0));
        let mut y1 = x.clone();
        let mut y2 = x.clone();
        axpy_chunk(<f64 as Scalar>::from_f64(0.5 * scale), &{
            let mut w = vec![0.0f64; n];
            widen_scaled_into(1.0, &stored, &mut w);
            w
        }, &mut y1);
        axpy_scaled_from(0.5, &stored, scale, &mut y2);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn panel_kernels_match_per_column_calls() {
        for &(n, k) in &[(1usize, 1usize), (7, 3), (33, 5), (100, 8), (4097, 2)] {
            let xs: Vec<f64> = (0..n * k).map(|i| ((i as f64) * 0.37).sin()).collect();
            let ys0: Vec<f64> = (0..n * k).map(|i| ((i as f64) * 0.11).cos()).collect();
            let alphas: Vec<f64> = (0..k).map(|c| 0.5 - 0.25 * c as f64).collect();

            let dots = dot_panel(&xs, &ys0, k);
            let norms = norm2_panel(&xs, k);
            let mut ys = ys0.clone();
            axpy_panel(&alphas, &xs, &mut ys);
            for c in 0..k {
                let xc = &xs[c * n..(c + 1) * n];
                let yc0 = &ys0[c * n..(c + 1) * n];
                assert_eq!(dots[c], dot(xc, yc0), "n {n} k {k} dot col {c}");
                assert_eq!(norms[c], norm2(xc), "n {n} k {k} norm col {c}");
                let mut want = yc0.to_vec();
                axpy(alphas[c], xc, &mut want);
                assert_eq!(&ys[c * n..(c + 1) * n], &want[..], "n {n} k {k} axpy col {c}");
            }
        }
    }

    #[test]
    fn panel_kernels_accept_empty_panels() {
        let e: Vec<f32> = vec![];
        assert!(dot_panel(&e, &e, 0).is_empty());
        assert!(norm2_panel(&e, 0).is_empty());
        let mut y: Vec<f32> = vec![];
        axpy_panel(&[], &e, &mut y);
    }

    #[test]
    #[should_panic(expected = "dot_panel: panel length not a multiple of k")]
    fn panel_length_mismatch_panics() {
        let xs = vec![0.0f64; 7];
        let _ = dot_panel(&xs, &xs, 2);
    }
}
